"""The robustness-evaluation service: HTTP API over the job queue.

``python -m repro serve`` keeps one long-lived process warm (trained zoo
models stay memoised in-process; the artifact store keeps every computed
cell) and exposes the experiment pipeline over plain HTTP:

* ``GET  /health`` / ``GET /store/stats`` -- liveness and store telemetry
* ``GET  /metrics`` -- Prometheus text exposition (queue/job/cell counters,
  store occupancy + lease/eviction counters, kernel + attack-query process
  counters, request-latency histogram)
* ``GET  /experiments`` / ``GET /experiments/{name}`` -- the catalog, as the
  machine-readable specs ``POST /jobs`` accepts
* ``POST /jobs`` -- submit a batch ``{"experiments": [...], "fast": true}``
  (catalog names or inline spec objects); responds ``202`` with the job id
  and a dedup report (how many cells are cached / already in flight)
* ``GET  /jobs`` / ``GET /jobs/{id}`` -- queue listing and job snapshots
* ``GET  /jobs/{id}/events`` -- the job's progress stream as NDJSON
  (``?from=N`` resumes mid-stream); terminates when the job does
* ``GET  /results/{name}`` -- a finished experiment's JSON result, served
  straight from the results directory (instant for anything ever computed)
* ``POST /store/gc`` -- run artifact-store eviction on demand
* ``GET/PUT /store/artifacts/{namespace}/{digest}`` (+ ``HEAD``, and the
  ``.../meta`` sidecar) -- the artifact-exchange surface behind
  ``serve --share-store``; bodies travel with an ``X-Repro-Sha256``
  integrity header both ways (see ``docs/store-remote.md``)

Everything is stdlib: the HTTP layer is :mod:`repro.service.http`, jobs run
on :mod:`repro.service.jobs`, artifacts live in :mod:`repro.store`.
"""

from __future__ import annotations

import asyncio
import json
import re
import sys
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.experiments.zoo import CACHE_DIR
from repro.obs import Histogram, MetricsRenderer
from repro.pipeline.runner import Runner, get_experiment, list_experiments
from repro.service.http import HttpError, HttpServer, Request, Response
from repro.service.jobs import JOB_STATES, JobQueue, SubmitError
from repro.store import ArtifactStore, parse_size

#: what a Prometheus scraper expects back from ``GET /metrics``
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8642

#: experiment names are catalog identifiers, never paths
_NAME_RE = re.compile(r"^[A-Za-z0-9_.-]+$")


class Service:
    """One service instance: job queue + artifact store + route table."""

    def __init__(
        self,
        results_dir: Union[str, Path] = "results",
        cache_dir: Optional[Union[str, Path]] = None,
        workers: int = 2,
        jobs: Union[int, str, None] = 1,
        fast_default: bool = False,
        progress=None,
        share_store: bool = False,
    ):
        self.results_dir = Path(results_dir)
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.default_jobs = jobs
        self.fast_default = bool(fast_default)
        self.progress = progress
        self.share_store = bool(share_store)
        self.store = ArtifactStore(
            self.cache_dir if self.cache_dir is not None else CACHE_DIR / "pipeline"
        )
        self.queue = JobQueue(self._make_runner, workers=workers)
        self.http = HttpServer()
        self._started_monotonic: Optional[float] = None
        self._request_latency = Histogram()
        self._requests: Dict[Tuple[str, int], int] = {}  # (method, status) -> count
        self.http.on_request = self._observe_request
        self._register_routes()

    def _observe_request(self, method: str, path: str, status: int, seconds: float) -> None:
        """Per-request latency observer (labels stay low-cardinality: no paths)."""
        key = (method, int(status))
        self._requests[key] = self._requests.get(key, 0) + 1
        self._request_latency.observe(seconds)

    def uptime_seconds(self) -> Optional[float]:
        if self._started_monotonic is None:
            return None
        return time.monotonic() - self._started_monotonic

    def _make_runner(self, fast: bool = False, jobs: Union[int, str, None] = None) -> Runner:
        return Runner(
            fast=fast,
            results_dir=self.results_dir,
            cache_dir=self.cache_dir,
            jobs=self.default_jobs if jobs is None else jobs,
            progress=self.progress,
        )

    # -------------------------------------------------------------- routes
    def _register_routes(self) -> None:
        route = self.http.route

        @route("GET", "/health")
        def health(request: Request):
            import repro

            uptime = self.uptime_seconds()
            return {
                "status": "ok",
                "service": "repro",
                "version": repro.__version__,
                "uptime_seconds": round(uptime, 3) if uptime is not None else 0.0,
                "queue": self.queue.stats(),
            }

        @route("GET", "/metrics")
        def metrics(request: Request):
            return Response(
                text=self.render_metrics(), content_type=PROMETHEUS_CONTENT_TYPE
            )

        @route("GET", "/experiments")
        def experiments(request: Request):
            names = list_experiments()
            if request.query.get("full"):
                return {"experiments": [get_experiment(n).to_dict() for n in names]}
            return {"experiments": names}

        @route("GET", "/experiments/{name}")
        def experiment(request: Request, name: str):
            try:
                spec = get_experiment(name)
            except KeyError:
                raise HttpError(404, f"no such experiment: {name}") from None
            return spec.to_dict()

        @route("POST", "/jobs")
        def submit(request: Request):
            payload = request.json()
            if payload is None:
                raise HttpError(400, "POST /jobs needs a JSON body")
            try:
                job = self.queue.submit(payload)
            except SubmitError as exc:
                raise HttpError(400, str(exc)) from None
            return Response(202, job.snapshot())

        @route("GET", "/jobs")
        def jobs(request: Request):
            return {
                "jobs": [job.snapshot() for job in self.queue.jobs.values()],
                "stats": self.queue.stats(),
            }

        @route("GET", "/jobs/{job_id}")
        def job_detail(request: Request, job_id: str):
            return self._job(job_id).snapshot()

        @route("GET", "/jobs/{job_id}/events")
        def job_events(request: Request, job_id: str):
            job = self._job(job_id)
            try:
                from_seq = int(request.query.get("from", "0"))
            except ValueError:
                raise HttpError(400, "'from' must be an integer sequence number") from None

            async def ndjson():
                async for event in self.queue.stream(job, from_seq):
                    yield json.dumps(event, sort_keys=False)

            return ndjson()

        @route("GET", "/results/{name}")
        def result(request: Request, name: str):
            if not _NAME_RE.match(name) or name.startswith("."):
                raise HttpError(400, f"invalid experiment name: {name!r}")
            path = self.results_dir / f"{name}.json"
            try:
                text = path.read_text()
            except OSError:
                raise HttpError(
                    404, f"no result for {name!r} yet (submit it via POST /jobs)"
                ) from None
            return Response(text=text, content_type="application/json")

        @route("GET", "/store/stats")
        def store_stats(request: Request):
            return self.store.stats()

        @route("POST", "/store/gc")
        def store_gc(request: Request):
            payload = request.json(default={}) or {}
            budget = parse_size(payload.get("budget")) if "budget" in payload else None
            return self.store.gc(budget=budget)

        if self.share_store:
            self._register_artifact_routes()

    def _register_artifact_routes(self) -> None:
        """The ``--share-store`` artifact-exchange surface.

        Not registered at all unless sharing is enabled: a service that was
        not asked to share its cache answers 404 here, indistinguishable
        from a service without the feature.  Bodies carry an
        ``X-Repro-Sha256`` header of the exact bytes in both directions; a
        PUT whose body does not hash to the client's claim is refused (400).
        """
        from repro.store.remote import CHECKSUM_HEADER, body_checksum

        route = self.http.route

        def checksummed(value: Any) -> Response:
            text = json.dumps(value, sort_keys=True)
            return Response(
                text=text,
                content_type="application/json",
                headers={CHECKSUM_HEADER: body_checksum(text.encode("utf-8"))},
            )

        @route("GET", "/store/artifacts/{namespace}/{digest}")
        def artifact_get(request: Request, namespace: str, digest: str):
            ns, dg = self._artifact_key(namespace, digest)
            value = self.store.get(ns, dg)
            if value is None:
                raise HttpError(404, f"no artifact {ns}/{dg}")
            return checksummed(value)

        @route("GET", "/store/artifacts/{namespace}/{digest}/meta")
        def artifact_meta(request: Request, namespace: str, digest: str):
            ns, dg = self._artifact_key(namespace, digest)
            meta = self.store.get_meta(ns, dg)
            if meta is None:
                raise HttpError(404, f"no meta sidecar for {ns}/{dg}")
            return checksummed(meta)

        @route("PUT", "/store/artifacts/{namespace}/{digest}")
        def artifact_put(request: Request, namespace: str, digest: str):
            ns, dg = self._artifact_key(namespace, digest)
            claimed = request.headers.get(CHECKSUM_HEADER.lower())
            if not claimed or claimed != body_checksum(request.body):
                raise HttpError(
                    400, f"body checksum mismatch (or {CHECKSUM_HEADER} missing)"
                )
            envelope = request.json()
            if not isinstance(envelope, dict) or "value" not in envelope:
                raise HttpError(400, 'PUT body must be {"value": ..., "meta"?: {...}}')
            meta = envelope.get("meta")
            if meta is not None and not isinstance(meta, dict):
                raise HttpError(400, "meta sidecar must be a JSON object")
            self.store.put(ns, dg, envelope["value"], meta=meta)
            return Response(201, {"stored": True, "namespace": ns, "digest": dg})

    @staticmethod
    def _artifact_key(namespace: str, digest: str) -> Tuple[str, str]:
        """Validate route params before they touch the filesystem.

        Route ``{param}`` segments arrive percent-decoded, so a crafted
        ``%2F`` or ``%2E%2E`` could otherwise smuggle separators into store
        paths; only plain single-segment names get through.
        """
        for label, part in (("namespace", namespace), ("digest", digest)):
            if not _NAME_RE.match(part) or part.startswith("."):
                raise HttpError(400, f"invalid artifact {label}: {part!r}")
        return namespace, digest

    def _job(self, job_id: str):
        job = self.queue.jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"no such job: {job_id}")
        return job

    # -------------------------------------------------------------- metrics
    def render_metrics(self) -> str:
        """The service's state as Prometheus text exposition (``GET /metrics``).

        Sources: the job queue (jobs by state, cell hit/computed counters),
        the artifact store (occupancy plus the :data:`repro.store.STORE_STATS`
        lease/eviction counters), the kernel-engine and attack-query process
        counters, and the HTTP layer's request latency histogram.  Process
        counters are since-process-start totals, which is exactly the
        monotonic-counter contract Prometheus wants.
        """
        import repro
        from repro.arith.kernels import KERNEL_STATS
        from repro.attacks.base import QUERY_STATS
        from repro.store import STORE_STATS

        out = MetricsRenderer()
        out.gauge(
            "repro_service_info",
            "Service identity (constant 1; version carried as a label).",
            samples=[({"version": repro.__version__}, 1)],
        )
        uptime = self.uptime_seconds()
        out.gauge(
            "repro_service_uptime_seconds",
            "Seconds since the service started accepting connections.",
            round(uptime, 3) if uptime is not None else 0.0,
        )

        qstats = self.queue.stats()
        by_status = dict(qstats.get("by_status", {}))
        out.gauge(
            "repro_jobs",
            "Jobs known to the queue, by lifecycle state.",
            samples=[
                ({"state": state}, by_status.get(state, 0)) for state in JOB_STATES
            ],
        )
        out.counter(
            "repro_job_retries_total",
            "Job attempts requeued after a retryable execution failure.",
            qstats.get("job_retries", 0),
        )
        out.gauge("repro_job_workers", "Concurrent runner threads.", qstats["workers"])
        out.gauge(
            "repro_inflight_cells",
            "Cell digests currently owned by a running job.",
            qstats["inflight_cells"],
        )
        out.counter(
            "repro_cells_total",
            "Pipeline cells resolved across all jobs, by outcome.",
            samples=[
                ({"outcome": "hit"}, self.queue.cells_hit),
                ({"outcome": "computed"}, self.queue.cells_computed),
            ],
        )

        store = self.store.stats()
        out.gauge(
            "repro_store_bytes", "Bytes of artifacts in the store.", store["bytes"]
        )
        out.gauge(
            "repro_store_artifacts", "Artifact count in the store.", store["artifacts"]
        )
        if store.get("budget_bytes"):
            out.gauge(
                "repro_store_budget_bytes",
                "Configured store eviction budget.",
                store["budget_bytes"],
            )
        out.gauge(
            "repro_store_active_leases",
            "Store leases currently held by writers.",
            store["active_leases"],
        )
        store_counters = STORE_STATS.snapshot()
        out.counter(
            "repro_store_events_total",
            "Artifact-store lease and eviction events since process start.",
            samples=[
                ({"event": name}, value)
                for name, value in sorted(store_counters.items())
                if name != "lease_wait_us"
            ],
        )
        out.counter(
            "repro_store_lease_wait_seconds_total",
            "Total seconds spent waiting on foreign store leases.",
            store_counters.get("lease_wait_us", 0) / 1e6,
        )

        from repro.store import BREAKER_STATES, REMOTE_STATS, all_breakers

        out.counter(
            "repro_remote_events_total",
            "Remote artifact-tier client events since process start "
            "(zero unless this process talks to a --share-store peer).",
            samples=[
                ({"event": name}, value)
                for name, value in sorted(REMOTE_STATS.snapshot().items())
            ],
        )
        breaker_samples = []
        for breaker in all_breakers():
            current, _failures = breaker.snapshot()
            breaker_samples.extend(
                ({"peer": breaker.name, "state": state}, 1 if state == current else 0)
                for state in BREAKER_STATES
            )
        if breaker_samples:
            out.gauge(
                "repro_remote_breaker_state",
                "Remote-peer circuit-breaker state (1 on the current state).",
                samples=breaker_samples,
            )

        from repro.faults import FAULT_POINTS, FAULT_STATS

        fault_counters = FAULT_STATS.snapshot()
        by_field = {point.replace(".", "_"): point for point in FAULT_POINTS}
        out.counter(
            "repro_fault_checks_total",
            "Armed fault-point evaluations since process start (service "
            "process only; zero unless REPRO_FAULTS is set).",
            fault_counters.get("checks", 0),
        )
        out.counter(
            "repro_fault_injections_total",
            "Injected faults fired since process start, by catalog point.",
            samples=[
                ({"point": point}, fault_counters.get(field, 0))
                for field, point in sorted(by_field.items())
            ],
        )

        out.counter(
            "repro_kernel_events_total",
            "Kernel-engine counters since process start (service process only; "
            "per-run worker activity is folded into each result's telemetry).",
            samples=[
                ({"event": name}, value)
                for name, value in sorted(KERNEL_STATS.snapshot().items())
            ],
        )
        out.counter(
            "repro_attack_query_events_total",
            "Attack query counters since process start (service process only).",
            samples=[
                ({"event": name}, value)
                for name, value in sorted(QUERY_STATS.snapshot().items())
            ],
        )

        out.counter(
            "repro_http_requests_total",
            "HTTP requests served, by method and status.",
            samples=[
                ({"method": method, "status": status}, count)
                for (method, status), count in sorted(self._requests.items())
            ],
        )
        out.histogram(
            "repro_http_request_seconds",
            "Wall-clock request latency (request parsed to response flushed).",
            self._request_latency,
        )
        return out.render()

    # ------------------------------------------------------------- lifecycle
    async def start(self, host: str = DEFAULT_HOST, port: int = DEFAULT_PORT):
        """Start workers + listener; returns the ``asyncio`` server object.

        ``port=0`` binds an ephemeral port; read it back from
        ``server.sockets[0].getsockname()`` (the tests do).
        """
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self._started_monotonic = time.monotonic()
        self.queue.start()
        return await self.http.start(host, port)

    async def close(self) -> None:
        await self.queue.close()


async def serve_async(
    host: str = DEFAULT_HOST, port: int = DEFAULT_PORT, **service_kwargs
) -> None:
    """Run the service until cancelled."""
    service = Service(**service_kwargs)
    server = await service.start(host, port)
    bound = server.sockets[0].getsockname()
    print(f"repro.service listening on http://{bound[0]}:{bound[1]}", flush=True)
    try:
        async with server:
            await server.serve_forever()
    finally:
        await service.close()


def serve(host: str = DEFAULT_HOST, port: int = DEFAULT_PORT, **service_kwargs) -> int:
    """Blocking entry point behind ``python -m repro serve``."""
    try:
        asyncio.run(serve_async(host, port, **service_kwargs))
    except KeyboardInterrupt:
        print("repro.service: shutting down", file=sys.stderr)
    return 0
