"""repro.service -- the long-lived robustness-evaluation service.

A stdlib-only HTTP front end (:mod:`repro.service.http`) over an asyncio
job queue (:mod:`repro.service.jobs`) that executes experiment submissions
through the shared :class:`~repro.pipeline.runner.Runner` / artifact-store
machinery.  Start it with ``python -m repro serve``.
"""

from repro.service.app import DEFAULT_HOST, DEFAULT_PORT, Service, serve, serve_async
from repro.service.jobs import Job, JobQueue, SubmitError

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "Service",
    "serve",
    "serve_async",
    "Job",
    "JobQueue",
    "SubmitError",
]
