"""A minimal stdlib-only asyncio HTTP/1.1 server.

Just enough HTTP for the robustness-evaluation service: request-line +
header parsing, ``Content-Length`` bodies, path templates with ``{param}``
segments, JSON responses, and close-delimited NDJSON streaming for the
job-event endpoints.  Every connection serves exactly one request
(``Connection: close``) -- the service's clients are submit/poll/stream
loops, not high-frequency RPC, and one-shot connections keep the protocol
surface tiny and impossible to desynchronise.

No third-party framework is involved; the module depends only on
:mod:`asyncio`, :mod:`json` and :mod:`urllib.parse`.
"""

from __future__ import annotations

import asyncio
import inspect
import json
import os
import sys
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.faults import FAULTS

#: request hygiene limits -- a misbehaving client cannot balloon the process.
#: ``REPRO_HTTP_MAX_BODY`` overrides the body cap (sizes like ``16M`` work);
#: the header cap is fixed.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

#: idle-read deadline (seconds) for request parsing: a client that connects
#: and then stalls mid-request-line, mid-headers or mid-body is dropped after
#: this long instead of holding the connection open forever.
#: ``REPRO_HTTP_READ_TIMEOUT`` overrides it; values <= 0 disable the guard.
DEFAULT_READ_TIMEOUT = 30.0

STATUS_PHRASES = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


def max_body_bytes() -> int:
    """The request-body cap (``REPRO_HTTP_MAX_BODY``, e.g. ``16M``)."""
    raw = os.environ.get("REPRO_HTTP_MAX_BODY", "")
    if raw.strip():
        from repro.store import parse_size

        try:
            value = parse_size(raw)
        except ValueError:
            value = None
        if value:
            return int(value)
    return MAX_BODY_BYTES


def read_timeout() -> Optional[float]:
    """The per-read idle deadline (``REPRO_HTTP_READ_TIMEOUT`` seconds)."""
    raw = os.environ.get("REPRO_HTTP_READ_TIMEOUT", "")
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_READ_TIMEOUT
    return None if value <= 0 else value


class HttpError(Exception):
    """Raise inside a handler to return a JSON error response."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = int(status)
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes = b""

    def json(self, default: Any = None) -> Any:
        """The request body as JSON; 400 on malformed input."""
        if not self.body:
            return default
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from None


@dataclass
class Response:
    """One full (non-streaming) HTTP response."""

    status: int = 200
    payload: Any = None  #: JSON-encoded unless ``text`` is given
    text: Optional[str] = None
    content_type: Optional[str] = None
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self, head_only: bool = False) -> bytes:
        """Wire bytes; ``head_only`` keeps the headers (with the true
        ``Content-Length``) and drops the body -- HEAD semantics."""
        if self.text is not None:
            body = self.text.encode("utf-8")
            content_type = self.content_type or "text/plain; charset=utf-8"
        else:
            body = (json.dumps(self.payload, indent=2, sort_keys=False) + "\n").encode("utf-8")
            content_type = self.content_type or "application/json"
        phrase = STATUS_PHRASES.get(self.status, "OK")
        head = [
            f"HTTP/1.1 {self.status} {phrase}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        head.extend(f"{k}: {v}" for k, v in self.headers.items())
        wire = ("\r\n".join(head) + "\r\n\r\n").encode("ascii")
        return wire if head_only else wire + body


#: a handler returns a Response (or JSON-able payload), or an async iterator
#: of strings to stream as close-delimited NDJSON
Handler = Callable[..., Any]


@dataclass
class _Route:
    method: str
    segments: Tuple[str, ...]
    handler: Handler

    def match(self, parts: Tuple[str, ...]) -> Optional[Dict[str, str]]:
        if len(parts) != len(self.segments):
            return None
        params: Dict[str, str] = {}
        for pattern, part in zip(self.segments, parts):
            if pattern.startswith("{") and pattern.endswith("}"):
                params[pattern[1:-1]] = unquote(part)
            elif pattern != part:
                return None
        return params


class HttpServer:
    """Route table + connection handling over ``asyncio.start_server``."""

    def __init__(self, name: str = "repro.service"):
        self.name = name
        self._routes: List[_Route] = []
        #: optional observer called with ``(method, path, status, seconds)``
        #: after every served request -- the service's latency histogram.
        #: Must never raise (it runs on the connection handler).
        self.on_request: Optional[Callable[[str, str, int, float], None]] = None

    def route(self, method: str, pattern: str) -> Callable[[Handler], Handler]:
        """Register ``handler(request, **params)`` for ``method pattern``.

        ``pattern`` is a slash path with optional ``{param}`` segments, e.g.
        ``"/jobs/{job_id}/events"``.
        """

        def register(handler: Handler) -> Handler:
            segments = tuple(s for s in pattern.strip("/").split("/") if s)
            self._routes.append(_Route(method.upper(), segments, handler))
            return handler

        return register

    async def start(self, host: str, port: int) -> asyncio.AbstractServer:
        return await asyncio.start_server(self._serve_connection, host, port)

    # ------------------------------------------------------------ internals
    def _match(self, method: str, path: str) -> Tuple[Handler, Dict[str, str]]:
        parts = tuple(s for s in path.strip("/").split("/") if s)
        allowed: List[str] = []
        for route in self._routes:
            params = route.match(parts)
            if params is None:
                continue
            if route.method == method:
                return route.handler, params
            allowed.append(route.method)
        if method == "HEAD" and "GET" in allowed:
            # HEAD is answered by the GET handler; _serve_connection strips
            # the body and keeps the headers (true Content-Length included)
            return self._match("GET", path)
        if allowed:
            raise HttpError(405, f"{method} not allowed here (try {sorted(set(allowed))})")
        raise HttpError(404, f"no such endpoint: {path}")

    async def _read_request(self, reader: asyncio.StreamReader) -> Optional[Request]:
        deadline = read_timeout()

        async def read_step(coro):
            # per-read idle guard: every readline/readexactly must make
            # progress within the deadline or the request is abandoned --
            # a stalled client cannot pin a connection handler forever
            if deadline is None:
                return await coro
            try:
                return await asyncio.wait_for(coro, timeout=deadline)
            except asyncio.TimeoutError:
                raise HttpError(408, f"request read stalled past {deadline:g}s") from None

        try:
            request_line = await read_step(reader.readline())
        except (ConnectionError, asyncio.LimitOverrunError):
            return None
        if not request_line.strip():
            return None
        try:
            method, target, _version = request_line.decode("ascii").split(None, 2)
        except (ValueError, UnicodeDecodeError):
            raise HttpError(400, "malformed request line")
        headers: Dict[str, str] = {}
        total = len(request_line)
        while True:
            line = await read_step(reader.readline())
            total += len(line)
            if total > MAX_HEADER_BYTES:
                raise HttpError(413, "headers too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                n = int(length)
            except ValueError:
                raise HttpError(400, "malformed Content-Length")
            cap = max_body_bytes()
            if n > cap:
                raise HttpError(413, f"body exceeds {cap} bytes")
            body = await read_step(reader.readexactly(n))
        split = urlsplit(target)
        query = dict(parse_qsl(split.query, keep_blank_values=True))
        return Request(
            method=method.upper(),
            path=unquote(split.path) or "/",
            query=query,
            headers=headers,
            body=body,
        )

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        stream: Optional[AsyncIterator[str]] = None
        request: Optional[Request] = None
        status = 0
        start = time.perf_counter()
        try:
            try:
                request = await self._read_request(reader)
                if request is None:
                    return
                handler, params = self._match(request.method, request.path)
                result = handler(request, **params)
                if inspect.isawaitable(result):
                    result = await result
            except HttpError as exc:
                result = Response(exc.status, {"error": exc.message})
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # a handler bug is a 500, not a dead server
                traceback.print_exc(file=sys.stderr)
                result = Response(500, {"error": f"{type(exc).__name__}: {exc}"})
            if request is not None and FAULTS.should_inject("http.disconnect", request.path):
                # chaos: drop the connection after the handler ran but before
                # any response byte -- what a mid-flight network partition
                # looks like to the client, which must treat it as unknown
                # outcome and re-poll
                writer.transport.abort()
                return
            if hasattr(result, "__aiter__"):
                stream = result
                status = 200
                await self._stream_ndjson(writer, stream)
            else:
                if not isinstance(result, Response):
                    result = Response(payload=result)
                status = result.status
                head_only = request is not None and request.method == "HEAD"
                writer.write(result.encode(head_only=head_only))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to salvage
        finally:
            if self.on_request is not None and request is not None:
                self.on_request(
                    request.method, request.path, status, time.perf_counter() - start
                )
            if stream is not None and hasattr(stream, "aclose"):
                await stream.aclose()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _stream_ndjson(
        self, writer: asyncio.StreamWriter, stream: AsyncIterator[str]
    ) -> None:
        """Send a close-delimited NDJSON stream (one JSON document per line)."""
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("ascii"))
        await writer.drain()
        async for line in stream:
            writer.write((line.rstrip("\n") + "\n").encode("utf-8"))
            await writer.drain()
