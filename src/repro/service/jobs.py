"""The asyncio job queue behind the robustness-evaluation service.

A *job* is one submitted batch of experiments (catalog names or inline
:class:`~repro.pipeline.spec.ExperimentSpec` dicts).  Submission is cheap
and synchronous on the event loop: the specs are resolved, planned into
their deduplicated cell graph (:func:`repro.parallel.plan.build_plan` -- no
model is resolved, nothing is computed) and the planned digests are compared
against the artifact store and the cells of already-running jobs, so the
submit response can say up front how much of the work is cached or already
in flight.

Execution happens on a small pool of worker tasks, each running the blocking
:meth:`Runner.run_many` in a thread.  Concurrent jobs that share cells do
not race: every cell is computed under its store lease, so the first job
computes it and the others read the published artifact -- the job telemetry
(one ``cell`` event per cell, ``computed`` vs ``hit``) proves the dedup to
the client.  Progress is forwarded to the event loop as a monotonically
numbered event list per job, which the HTTP layer replays and streams as
NDJSON.

Job lifecycle::

    pending -> running -> succeeded
                       -> retrying -> running -> ...   (bounded by retries)
                       -> failed
                       -> cancelled                     (service shutdown)

A job that dies on a retryable execution error is requeued up to its retry
budget (per-submission ``{"retries": N}``, default ``REPRO_JOB_RETRIES``) --
already-published cells are cache hits on the next attempt, so a retry
recomputes only what the failed attempt left unfinished.  Cancellation is
honest: a job interrupted by shutdown reports ``cancelled``, never
``failed``, and still-queued jobs are drained and marked the same way so no
streamer blocks forever.
"""

from __future__ import annotations

import asyncio
import functools
import secrets
import time
from dataclasses import dataclass, field
from typing import Any, AsyncIterator, Callable, Dict, List, Optional

from repro.faults import job_retries
from repro.parallel.telemetry import DIGEST_WIDTH
from repro.pipeline.runner import Runner
from repro.pipeline.spec import ExperimentSpec

#: the states a job can end in (see the lifecycle diagram above)
TERMINAL_STATES = ("succeeded", "failed", "cancelled")

#: every state a job can report, for metrics enumeration
JOB_STATES = ("pending", "running", "retrying", "succeeded", "failed", "cancelled")


class SubmitError(ValueError):
    """A malformed submission (unknown experiment, bad inline spec...)."""


@dataclass
class Job:
    """One submitted batch of experiments and its execution record."""

    id: str
    names: List[str]
    specs: List[ExperimentSpec]
    fast: bool
    jobs: int  #: worker processes per runner (1 = serial in the job thread)
    digests: List[str]
    dedup: Dict[str, int]
    status: str = "pending"
    max_retries: int = 0
    attempts: int = 0
    submitted_unix: float = field(default_factory=time.time)
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    error: Optional[str] = None
    #: identity of the cell whose failure ended the job (CellExecutionError)
    failed_cell: Optional[Dict[str, Any]] = None
    events: List[Dict[str, Any]] = field(default_factory=list)
    results: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    summary: Dict[str, Any] = field(default_factory=dict)
    _wakeup: asyncio.Event = field(default_factory=asyncio.Event, repr=False)

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    def post(self, event: str, **data: Any) -> None:
        """Append one event and wake every streamer.  Event-loop thread only."""
        self.events.append({"seq": len(self.events), "event": event, "job": self.id, **data})
        wakeup, self._wakeup = self._wakeup, asyncio.Event()
        wakeup.set()

    def snapshot(self) -> Dict[str, Any]:
        """The job's public JSON form (``GET /jobs/<id>``)."""
        out: Dict[str, Any] = {
            "id": self.id,
            "status": self.status,
            "experiments": list(self.names),
            "fast": self.fast,
            "jobs": self.jobs,
            "attempts": self.attempts,
            "max_retries": self.max_retries,
            "dedup": dict(self.dedup),
            "submitted_unix": round(self.submitted_unix, 3),
            "events": len(self.events),
            "links": {
                "self": f"/jobs/{self.id}",
                "events": f"/jobs/{self.id}/events",
                "results": [f"/results/{name}" for name in self.names],
            },
        }
        if self.started_unix is not None:
            out["started_unix"] = round(self.started_unix, 3)
        if self.finished_unix is not None:
            out["finished_unix"] = round(self.finished_unix, 3)
            if self.started_unix is not None:  # cancelled-while-pending has no start
                out["elapsed_seconds"] = round(self.finished_unix - self.started_unix, 4)
        if self.error is not None:
            out["error"] = self.error
        if self.failed_cell is not None:
            out["failed_cell"] = dict(self.failed_cell)
        if self.summary:
            out["summary"] = self.summary
        return out


#: builds a Runner for one job; the service binds results/cache directories
RunnerFactory = Callable[..., Runner]


class JobQueue:
    """FIFO job queue executing on ``workers`` concurrent runner threads."""

    def __init__(self, runner_factory: RunnerFactory, workers: int = 2):
        self.runner_factory = runner_factory
        self.workers = max(1, int(workers))
        self.jobs: Dict[str, Job] = {}
        self._queue: "asyncio.Queue[Job]" = asyncio.Queue()
        self._inflight: Dict[str, str] = {}  # cell digest -> running job id
        self._tasks: List[asyncio.Task] = []
        self._counter = 0
        #: lifetime cell outcomes across every job (the /metrics counters)
        self.cells_hit = 0
        self.cells_computed = 0
        #: lifetime job-retry count (the /metrics repro_job_retries_total)
        self.retries_total = 0

    # ---------------------------------------------------------------- control
    def start(self) -> None:
        if not self._tasks:
            self._tasks = [
                asyncio.get_running_loop().create_task(self._worker())
                for _ in range(self.workers)
            ]

    async def close(self) -> None:
        """Stop the workers and drain the queue; interrupted jobs report
        ``cancelled`` (never ``failed``) and every streamer unblocks.

        Only ``CancelledError`` -- the expected outcome of our own
        ``cancel()`` -- is suppressed here; a worker that died on a real
        exception propagates it, instead of shutdown quietly eating the
        evidence.
        """
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks = []
        while not self._queue.empty():  # drain still-pending submissions
            try:
                self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            self._queue.task_done()
        for job in self.jobs.values():
            if not job.terminal:
                self._finish(job, "cancelled")

    # ----------------------------------------------------------------- submit
    def submit(self, payload: Any) -> Job:
        """Validate, plan and enqueue one submission (event-loop thread).

        ``payload`` is the decoded request body: ``{"experiments": [...],
        "fast": bool, "jobs": int}`` where each experiment is a catalog name
        or an inline spec dict -- or a bare spec dict (what ``python -m repro
        info <name> --json`` emits).
        """
        from repro.parallel.plan import build_plan, cache_outlook

        if isinstance(payload, dict) and "experiments" not in payload:
            if "name" in payload and "kind" in payload:
                payload = {"experiments": [payload]}  # a bare inline spec
            else:
                raise SubmitError(
                    "submission needs an 'experiments' list (catalog names or "
                    "inline spec objects), or a bare spec with 'name' and 'kind'"
                )
        if not isinstance(payload, dict):
            raise SubmitError("submission body must be a JSON object")
        requested = payload.get("experiments")
        if isinstance(requested, str):
            requested = [requested]
        if not isinstance(requested, list) or not requested:
            raise SubmitError("'experiments' must be a non-empty list")
        fast = bool(payload.get("fast", False))
        jobs = payload.get("jobs", None)
        retries = payload.get("retries", None)
        if retries is None:
            retries = job_retries()
        elif not isinstance(retries, int) or isinstance(retries, bool) or retries < 0:
            raise SubmitError("'retries' must be a non-negative integer")
        specs = [self._resolve(entry) for entry in requested]

        planner = self.runner_factory(fast=fast, jobs=jobs)
        try:
            plan = build_plan(planner, specs)
        except Exception as exc:
            raise SubmitError(f"planning failed: {exc}") from exc
        digests = list(plan.tasks)
        # warm/stale/cold outlook against the artifact store, then overlay
        # the cells other running jobs are computing right now: a cell is
        # "inflight" when it is not yet published but someone is on it
        outlook = cache_outlook(planner, plan)
        statuses = {cell["digest"]: cell["status"] for cell in outlook["cells"]}
        cached = outlook["warm"]
        inflight = sum(
            1 for d in digests if statuses[d] != "warm" and d in self._inflight
        )
        stale = sum(
            1 for d in digests if statuses[d] == "stale" and d not in self._inflight
        )
        self._counter += 1
        job = Job(
            id=f"job{self._counter}-{secrets.token_hex(4)}",
            names=[spec.name for spec in specs],
            specs=specs,
            fast=fast,
            jobs=planner.jobs,
            digests=digests,
            max_retries=retries,
            dedup={
                "cells_total": len(digests),
                "cells_cached": cached,
                "cells_inflight": inflight,
                "cells_stale": stale,
                "cells_new": len(digests) - cached - inflight - stale,
            },
        )
        self.jobs[job.id] = job
        job.post("status", status="pending", experiments=job.names, dedup=job.dedup)
        self._queue.put_nowait(job)
        return job

    @staticmethod
    def _resolve(entry: Any) -> ExperimentSpec:
        from repro.pipeline.runner import get_experiment
        from repro.registry import RegistryError

        if isinstance(entry, str):
            try:
                return get_experiment(entry)
            except RegistryError as exc:
                raise SubmitError(str(exc.args[0])) from None
        if isinstance(entry, dict):
            try:
                return ExperimentSpec.from_dict(entry)
            except (TypeError, ValueError) as exc:
                raise SubmitError(f"bad inline spec: {exc}") from None
        raise SubmitError(f"experiment entries must be names or spec objects, got {entry!r}")

    # -------------------------------------------------------------- execution
    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            if job.terminal:  # cancelled while queued (shutdown race)
                self._queue.task_done()
                continue
            job.status = "running"
            job.attempts += 1
            if job.started_unix is None:
                job.started_unix = time.time()
            for digest in job.digests:
                self._inflight.setdefault(digest, job.id)
            job.post("status", status="running", attempt=job.attempts)
            try:
                await loop.run_in_executor(None, self._execute, loop, job)
            except asyncio.CancelledError:
                # shutdown interrupted this job: it did not fail, and saying
                # so matters -- clients distinguish "rerun me" from "fix me".
                # (The runner thread may still be draining in the executor.)
                self._finish(job, "cancelled")
                raise
            except Exception as exc:
                error, failed_cell = self._describe_failure(exc)
                if job.attempts <= job.max_retries:
                    # every cell the failed attempt published is a cache hit
                    # next time round: the retry recomputes only what's left
                    job.status = "retrying"
                    self.retries_total += 1
                    job.post(
                        "status",
                        status="retrying",
                        attempt=job.attempts,
                        max_retries=job.max_retries,
                        error=error,
                    )
                    self._queue.put_nowait(job)
                else:
                    job.error = error
                    job.failed_cell = failed_cell
                    extra = {"error": error}
                    if failed_cell is not None:
                        extra["failed_cell"] = failed_cell
                    self._finish(job, "failed", **extra)
            else:
                self._finish(job, "succeeded")
            finally:
                for digest in job.digests:
                    if self._inflight.get(digest) == job.id:
                        del self._inflight[digest]
                self._queue.task_done()

    def _finish(self, job: Job, status: str, **data: Any) -> None:
        """Move a job to a terminal state and post its final event."""
        job.status = status
        job.finished_unix = time.time()
        if status == "succeeded" and job.started_unix is not None:
            data.setdefault(
                "elapsed_seconds", round(job.finished_unix - job.started_unix, 4)
            )
        job.post("status", status=status, **data)

    @staticmethod
    def _describe_failure(exc: Exception):
        """``(message, failed_cell)`` -- cell identity when the error has one."""
        from repro.parallel.engine import CellExecutionError

        message = f"{type(exc).__name__}: {exc}"
        if isinstance(exc, CellExecutionError) and exc.digest:
            cell = {
                "kind": exc.kind,
                "digest": exc.digest[:DIGEST_WIDTH],
                "owner": exc.owner,
            }
            if exc.shard is not None:
                cell["shard"] = exc.shard
            return message, cell
        return message, None

    def _record_cell(self, job: Job, event: Dict[str, Any]) -> None:
        """Count one cell outcome and forward it to the job's event stream.

        Runs on the event loop (hopped via ``call_soon_threadsafe``), so the
        queue-level counters need no locking.
        """
        status = event.get("status")
        if status == "hit":
            self.cells_hit += 1
        elif status == "computed":
            self.cells_computed += 1
        job.post("cell", **event)

    def _execute(self, loop: asyncio.AbstractEventLoop, job: Job) -> None:
        """Run one job's experiments (worker thread; events hop to the loop)."""
        runner = self.runner_factory(fast=job.fast, jobs=job.jobs)
        runner.on_cell = lambda event: loop.call_soon_threadsafe(
            functools.partial(self._record_cell, job, event.to_dict())
        )

        def on_result(result) -> None:
            job.results[result.name] = result.to_json()
            loop.call_soon_threadsafe(
                functools.partial(
                    job.post,
                    "result",
                    name=result.name,
                    cache_hits=result.cache_hits,
                    cache_misses=result.cache_misses,
                    elapsed_seconds=round(result.elapsed_seconds, 4),
                )
            )

        runner.run_many(job.specs, on_result=on_result)
        telemetry = runner.telemetry
        job.summary = {
            "cells_total": telemetry.cells_total,
            "cache_hits": telemetry.cache_hits,
            "cache_misses": telemetry.cache_misses,
            "compute_seconds": round(telemetry.compute_seconds, 4),
            "attack_queries": telemetry.attack_queries(),
        }
        if telemetry.trace is not None:
            # with REPRO_TRACE on, the run's merged span file is part of the
            # job record -- clients learn where the timeline landed
            job.summary["trace"] = dict(telemetry.trace)
            loop.call_soon_threadsafe(
                functools.partial(job.post, "trace", **telemetry.trace)
            )

    # -------------------------------------------------------------- streaming
    async def stream(self, job: Job, from_seq: int = 0) -> AsyncIterator[Dict[str, Any]]:
        """Replay the job's events from ``from_seq`` and follow until terminal."""
        index = max(0, int(from_seq))
        while True:
            wakeup = job._wakeup  # capture before draining: no lost wake-ups
            while index < len(job.events):
                yield job.events[index]
                index += 1
            if job.terminal:
                return
            await wakeup.wait()

    # ------------------------------------------------------------------ stats
    def stats(self) -> Dict[str, Any]:
        counts: Dict[str, int] = {}
        for job in self.jobs.values():
            counts[job.status] = counts.get(job.status, 0) + 1
        return {
            "jobs_total": len(self.jobs),
            "by_status": counts,
            "queued": self._queue.qsize(),
            "inflight_cells": len(self._inflight),
            "workers": self.workers,
            "cells_hit": self.cells_hit,
            "cells_computed": self.cells_computed,
            "job_retries": self.retries_total,
        }
