"""Experiment infrastructure shared by the benchmarks and the examples.

:mod:`repro.experiments.zoo` trains (and disk-caches) the paper's benchmark
models on the synthetic datasets: the exact LeNet-5 digit classifier, the
exact AlexNet object classifier, and the Defensive Quantization variants.
Every benchmark and example pulls its models from here so the expensive
training happens at most once per machine.
"""

from repro.experiments.zoo import (
    CACHE_DIR,
    ZOO,
    alexnet_objects,
    dq_models_objects,
    lenet_digits,
    load_digits_split,
    load_objects_split,
    substitute_digits,
)

__all__ = [
    "CACHE_DIR",
    "ZOO",
    "load_digits_split",
    "load_objects_split",
    "lenet_digits",
    "alexnet_objects",
    "dq_models_objects",
    "substitute_digits",
]
