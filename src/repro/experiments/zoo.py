"""Trained-model zoo with on-disk caching.

The paper's experiments start from pre-trained exact classifiers (LeNet-5 on
MNIST, AlexNet on CIFAR-10).  This module plays that role for the synthetic
datasets: models are trained once, their parameters are cached under
``~/.cache/repro-da`` (override with the ``REPRO_DA_CACHE`` environment
variable), and every benchmark / example reuses them.

The configurations here are the calibrated "paper models" of this
reproduction: they reach high clean accuracy and, once converted to DA, lose
only a small amount of it (see EXPERIMENTS.md).  Each entry also has a *fast*
profile (``fast=True``) -- a smaller dataset and shorter training schedule,
cached separately -- used by ``python -m repro run <experiment> --fast`` and
the CI smoke test.

All entries are registered in the unified ``"zoo"`` registry so the experiment
pipeline can resolve them by name.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, Tuple

import numpy as np

from repro.datasets import DataSplit, generate_digits, generate_objects, train_test_split
from repro.nn import SGD, Adam, build_alexnet, build_dq_cnn, build_lenet5, train_classifier
from repro.nn.network import Sequential
from repro.parallel.locks import FileLock, atomic_path
from repro.registry import registry

#: unified registry of trained-model providers (namespace ``"zoo"``)
ZOO = registry("zoo")

#: default location of the trained-parameter cache
CACHE_DIR = Path(os.environ.get("REPRO_DA_CACHE", Path.home() / ".cache" / "repro-da"))

#: version tag folded into every trained-parameter cache filename.  Bump it
#: whenever the *training numerics* change (forward/backward bit patterns --
#: e.g. the batch-invariant GEMM rework), so stale caches trained under old
#: numerics retrain instead of silently feeding new-code experiments weights
#: a fresh checkout could never reproduce.  The cell cache has
#: ``CELL_CACHE_VERSION`` for the same reason; this is its zoo counterpart.
#: Version 2: batch-invariant forward/backward numerics (PR 4).
ZOO_NUMERICS_VERSION = 2


def zoo_cache_path(cache_name: str) -> Path:
    """Where ``cache_name``'s trained parameters live (numerics-versioned)."""
    return CACHE_DIR / f"{cache_name}_v{ZOO_NUMERICS_VERSION}.npz"

#: digit dataset configuration (MNIST substitute)
DIGITS_CONFIG = {"n_samples": 6000, "size": 16, "seed": 1}
DIGITS_CONFIG_FAST = {"n_samples": 2000, "size": 16, "seed": 1}
#: object dataset configuration (CIFAR-10 substitute)
OBJECTS_CONFIG = {"n_samples": 3000, "size": 32, "seed": 2}
OBJECTS_CONFIG_FAST = {"n_samples": 1200, "size": 32, "seed": 2}


def load_digits_split(test_fraction: float = 0.15, fast: bool = False) -> DataSplit:
    """The digit dataset split used by all digit experiments."""
    config = DIGITS_CONFIG_FAST if fast else DIGITS_CONFIG
    return train_test_split(generate_digits(**config), test_fraction)


def load_objects_split(test_fraction: float = 0.2, fast: bool = False) -> DataSplit:
    """The object dataset split used by all object experiments."""
    config = OBJECTS_CONFIG_FAST if fast else OBJECTS_CONFIG
    return train_test_split(generate_objects(**config), test_fraction)


def _try_load(model: Sequential, cache_path: Path) -> bool:
    """Load cached parameters into ``model``; drops unreadable caches."""
    if not cache_path.exists():
        return False
    try:
        model.load(str(cache_path))
        return True
    except (KeyError, ValueError, OSError, EOFError):
        # architecture changed since the cache was written (or the file
        # predates atomic writes and is truncated); retrain
        try:
            cache_path.unlink()
        except OSError:
            pass
        return False


def _save_atomic(model: Sequential, cache_path: Path) -> None:
    """Publish trained parameters via tmp + rename (never a partial ``.npz``)."""
    with atomic_path(cache_path, suffix=".npz") as tmp:
        model.save(str(tmp))


def _cached_model(cache_name: str, builder: Callable[[], Sequential], trainer) -> Sequential:
    """Build a model and load cached parameters, or train and cache them.

    Training happens under an advisory file lock, so concurrent processes
    (pipeline pool workers, parallel CLI invocations) sharing the cache
    directory train each model exactly once: whoever takes the lock first
    trains and saves, everyone else blocks and then loads the published file.
    """
    model = builder()
    cache_path = zoo_cache_path(cache_name)
    if _try_load(model, cache_path):
        return model
    CACHE_DIR.mkdir(parents=True, exist_ok=True)
    with FileLock(cache_path.with_name(cache_path.name + ".lock")):
        if _try_load(model, cache_path):  # trained elsewhere while we waited
            return model
        trainer(model)
        _save_atomic(model, cache_path)
    return model


def _suffix(fast: bool) -> str:
    return "_fast" if fast else ""


@ZOO.register("lenet_digits", metadata={"summary": "exact LeNet-5 on the digit dataset"})
def lenet_digits(fast: bool = False) -> Tuple[Sequential, DataSplit]:
    """Exact LeNet-5 trained on the synthetic digits (the paper's MNIST model)."""
    split = load_digits_split(fast=fast)

    def build() -> Sequential:
        return build_lenet5(
            split.train.input_shape,
            conv_channels=(12, 24),
            fc_sizes=(96, 64),
            dropout=0.25,
            seed=0,
        )

    def train(model: Sequential) -> None:
        optimizer = Adam(model.parameters(), lr=0.002)
        epochs = 8 if fast else 25
        train_classifier(
            model, optimizer, split.train.images, split.train.labels, epochs=epochs, batch_size=64
        )
        if not fast:
            optimizer.lr = 0.0005
            train_classifier(
                model, optimizer, split.train.images, split.train.labels, epochs=10, batch_size=64
            )

    return _cached_model(f"lenet_digits{_suffix(fast)}", build, train), split


@ZOO.register("alexnet_objects", metadata={"summary": "exact AlexNet on the object dataset"})
def alexnet_objects(fast: bool = False) -> Tuple[Sequential, DataSplit]:
    """Exact AlexNet trained on the synthetic objects (the paper's CIFAR-10 model)."""
    split = load_objects_split(fast=fast)

    def build() -> Sequential:
        return build_alexnet(split.train.input_shape, dropout=0.25, seed=0)

    def train(model: Sequential) -> None:
        optimizer = SGD(model.parameters(), lr=0.02, momentum=0.9, weight_decay=1e-4)
        epochs = 6 if fast else 20
        train_classifier(
            model, optimizer, split.train.images, split.train.labels, epochs=epochs, batch_size=64
        )
        if not fast:
            optimizer.lr = 0.005
            train_classifier(
                model, optimizer, split.train.images, split.train.labels, epochs=8, batch_size=64
            )

    return _cached_model(f"alexnet_objects{_suffix(fast)}", build, train), split


@ZOO.register("dq_objects", metadata={"summary": "Defensive Quantization models on the objects"})
def dq_models_objects(bits: int = 4, fast: bool = False) -> Tuple[Dict[str, Sequential], DataSplit]:
    """Defensive Quantization models (full and weight-only) trained on the objects.

    Returns a dict with keys ``"full"`` and ``"weight"``.
    """
    split = load_objects_split(fast=fast)
    models: Dict[str, Sequential] = {}
    for mode in ("full", "weight"):

        def build(mode=mode) -> Sequential:
            return build_dq_cnn(split.train.input_shape, bits=bits, mode=mode, seed=3)

        def train(model: Sequential) -> None:
            optimizer = Adam(model.parameters(), lr=0.002)
            epochs = 5 if fast else 18
            train_classifier(
                model, optimizer, split.train.images, split.train.labels, epochs=epochs, batch_size=64
            )

        models[mode] = _cached_model(f"dq_{mode}_objects_{bits}b{_suffix(fast)}", build, train)
    return models, split


@ZOO.register(
    "substitute_digits",
    metadata={"summary": "black-box substitute trained from a digit victim's queries"},
)
def substitute_digits(victim: str = "da", fast: bool = False) -> Sequential:
    """Black-box substitute model trained from the victim's query labels.

    ``victim`` selects the model whose query responses train the substitute:
    ``"exact"`` for the exact LeNet, ``"da"`` for its Defensive Approximation
    conversion.  The substitute's parameters are cached on disk next to the
    zoo models.
    """
    from repro.nn.models import convert_to_approximate

    exact_model, split = lenet_digits(fast=fast)
    victim_model = convert_to_approximate(exact_model) if victim == "da" else exact_model
    cache_path = zoo_cache_path(f"substitute_{victim}_digits{_suffix(fast)}")

    def build() -> Sequential:
        return build_lenet5(
            split.train.input_shape, conv_channels=(8, 16), fc_sizes=(64, 48), dropout=0.2, seed=11
        )

    substitute = build()
    if _try_load(substitute, cache_path):
        return substitute
    CACHE_DIR.mkdir(parents=True, exist_ok=True)
    with FileLock(cache_path.with_name(cache_path.name + ".lock")):
        if _try_load(substitute, cache_path):  # trained elsewhere while we waited
            return substitute
        from repro.core.substitute import train_substitute

        n_queries = 400 if fast else 1000
        substitute = train_substitute(
            victim_model.predict,
            split.train.images[:n_queries],
            build_model=build,
            epochs=6 if fast else 20,
            augmentation_rounds=0 if fast else 1,
            seed=11,
        )
        _save_atomic(substitute, cache_path)
    return substitute
