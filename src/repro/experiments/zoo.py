"""Trained-model zoo with on-disk caching.

The paper's experiments start from pre-trained exact classifiers (LeNet-5 on
MNIST, AlexNet on CIFAR-10).  This module plays that role for the synthetic
datasets: models are trained once, their parameters are cached under
``~/.cache/repro-da`` (override with the ``REPRO_DA_CACHE`` environment
variable), and every benchmark / example reuses them.

The configurations here are the calibrated "paper models" of this
reproduction: they reach high clean accuracy and, once converted to DA, lose
only a small amount of it (see EXPERIMENTS.md).  Each entry also has a *fast*
profile (``fast=True``) -- a smaller dataset and shorter training schedule,
cached separately -- used by ``python -m repro run <experiment> --fast`` and
the CI smoke test.

Every entry declares its full **training recipe** as a plain dict -- the
architecture, optimizer, schedule and dataset configuration its trainer
actually reads -- registered as the entry's ``"recipe"`` metadata.  The
recipe, together with the model/dataset numerics versions, digests into the
entry's cache filename (:func:`zoo_cache_path`): change a recipe and only
*that* entry's ``.npz`` files go stale and retrain, while every other model
keeps its cache.  The same digest is the entry's ``zoo:<name>`` fingerprint
surface (:mod:`repro.pipeline.fingerprints`), so grid cells that evaluated
the old model re-key in the same stroke.  This replaced the global
``ZOO_NUMERICS_VERSION`` filename tag -- see ``docs/caching.md``.

All entries are registered in the unified ``"zoo"`` registry so the experiment
pipeline can resolve them by name.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Callable, Dict, Tuple

import numpy as np

from repro.datasets import DataSplit, generate_digits, generate_objects, train_test_split
from repro.nn import SGD, Adam, build_alexnet, build_dq_cnn, build_lenet5, train_classifier
from repro.nn.network import Sequential
from repro.parallel.locks import FileLock, atomic_path
from repro.registry import registry

#: unified registry of trained-model providers (namespace ``"zoo"``)
ZOO = registry("zoo")

#: default location of the trained-parameter cache
CACHE_DIR = Path(os.environ.get("REPRO_DA_CACHE", Path.home() / ".cache" / "repro-da"))

#: hex digits of the recipe digest folded into cache filenames
_RECIPE_TAG_WIDTH = 10

#: digit dataset configuration (MNIST substitute)
DIGITS_CONFIG = {"n_samples": 6000, "size": 16, "seed": 1}
DIGITS_CONFIG_FAST = {"n_samples": 2000, "size": 16, "seed": 1}
#: object dataset configuration (CIFAR-10 substitute)
OBJECTS_CONFIG = {"n_samples": 3000, "size": 32, "seed": 2}
OBJECTS_CONFIG_FAST = {"n_samples": 1200, "size": 32, "seed": 2}


# ----------------------------------------------------------------- recipes
# One dict per zoo entry, the single source of truth for its training
# configuration: the builders and trainers below read these values, and the
# recipe digests into the entry's cache filename and fingerprint surface.
# Editing a number here therefore *is* the invalidation: the stale .npz is
# simply never looked up again.

LENET_DIGITS_RECIPE: Dict[str, Any] = {
    "arch": {
        "builder": "lenet5",
        "conv_channels": [12, 24],
        "fc_sizes": [96, 64],
        "dropout": 0.25,
        "seed": 0,
    },
    "optimizer": {"kind": "adam", "lr": 0.002},
    "schedule": {
        "epochs": 25,
        "fine_tune_epochs": 10,
        "fine_tune_lr": 0.0005,
        "fast_epochs": 8,
        "batch_size": 64,
    },
    "dataset": {
        "name": "digits",
        "config": DIGITS_CONFIG,
        "fast_config": DIGITS_CONFIG_FAST,
        "test_fraction": 0.15,
    },
}

ALEXNET_OBJECTS_RECIPE: Dict[str, Any] = {
    "arch": {"builder": "alexnet", "dropout": 0.25, "seed": 0},
    "optimizer": {"kind": "sgd", "lr": 0.02, "momentum": 0.9, "weight_decay": 1e-4},
    "schedule": {
        "epochs": 20,
        "fine_tune_epochs": 8,
        "fine_tune_lr": 0.005,
        "fast_epochs": 6,
        "batch_size": 64,
    },
    "dataset": {
        "name": "objects",
        "config": OBJECTS_CONFIG,
        "fast_config": OBJECTS_CONFIG_FAST,
        "test_fraction": 0.2,
    },
}

DQ_OBJECTS_RECIPE: Dict[str, Any] = {
    "arch": {"builder": "dq_cnn", "bits": 4, "modes": ["full", "weight"], "seed": 3},
    "optimizer": {"kind": "adam", "lr": 0.002},
    "schedule": {"epochs": 18, "fast_epochs": 5, "batch_size": 64},
    "dataset": {
        "name": "objects",
        "config": OBJECTS_CONFIG,
        "fast_config": OBJECTS_CONFIG_FAST,
        "test_fraction": 0.2,
    },
}

SUBSTITUTE_DIGITS_RECIPE: Dict[str, Any] = {
    "arch": {
        "builder": "lenet5",
        "conv_channels": [8, 16],
        "fc_sizes": [64, 48],
        "dropout": 0.2,
        "seed": 11,
    },
    "queries": {"n_queries": 1000, "fast_n_queries": 400},
    "schedule": {
        "epochs": 20,
        "fast_epochs": 6,
        "augmentation_rounds": 1,
        "fast_augmentation_rounds": 0,
        "seed": 11,
    },
    # the substitute is distilled from a victim built on the LeNet entry, so
    # its parameters go stale whenever that entry's recipe moves too
    "depends_on": ["lenet_digits"],
}


def zoo_recipe(name: str) -> Dict[str, Any]:
    """The declared training recipe of one zoo entry (registry metadata)."""
    recipe = ZOO.get(name).metadata.get("recipe")
    if not isinstance(recipe, dict):
        raise KeyError(f"zoo entry {name!r} declares no training recipe")
    return recipe


def zoo_recipe_digest(name: str) -> str:
    """Digest of everything that determines ``name``'s trained parameters.

    Folds the entry's recipe, the model-numerics and dataset-numerics
    versions, and -- transitively -- the digests of any entries the recipe
    ``depends_on``.  This is both the cache filename tag and the entry's
    ``zoo:<name>`` fingerprint surface, so parameter caches and dependent
    grid cells go stale together, per entry, never globally.
    """
    import repro.datasets as datasets
    import repro.nn as nn
    from repro.pipeline.spec import canonical_digest  # lazy: avoids a cycle

    try:
        recipe = zoo_recipe(name)
    except KeyError:
        # a registered entry with no declared recipe (third-party or test
        # registration): it still fingerprints -- on its name and the global
        # numerics constants, the pre-recipe behaviour.  Truly unknown names
        # keep raising (the registry lookup inside zoo_recipe).
        ZOO.get(name)
        recipe = {"undeclared": name}
    return canonical_digest(
        {
            "recipe": recipe,
            "model_numerics": nn.MODEL_NUMERICS_VERSION,
            "dataset_numerics": datasets.DATASET_NUMERICS_VERSION,
            "depends_on": {
                dep: zoo_recipe_digest(dep) for dep in recipe.get("depends_on", [])
            },
        }
    )


def zoo_cache_path(cache_name: str, recipe_name: str) -> Path:
    """Where ``cache_name``'s trained parameters live (recipe-digest-tagged)."""
    tag = zoo_recipe_digest(recipe_name)[:_RECIPE_TAG_WIDTH]
    return CACHE_DIR / f"{cache_name}_{tag}.npz"


def load_digits_split(test_fraction: float = 0.15, fast: bool = False) -> DataSplit:
    """The digit dataset split used by all digit experiments."""
    config = DIGITS_CONFIG_FAST if fast else DIGITS_CONFIG
    return train_test_split(generate_digits(**config), test_fraction)


def load_objects_split(test_fraction: float = 0.2, fast: bool = False) -> DataSplit:
    """The object dataset split used by all object experiments."""
    config = OBJECTS_CONFIG_FAST if fast else OBJECTS_CONFIG
    return train_test_split(generate_objects(**config), test_fraction)


def _try_load(model: Sequential, cache_path: Path) -> bool:
    """Load cached parameters into ``model``; drops unreadable caches."""
    if not cache_path.exists():
        return False
    try:
        model.load(str(cache_path))
        return True
    except (KeyError, ValueError, OSError, EOFError):
        # architecture changed since the cache was written (or the file
        # predates atomic writes and is truncated); retrain
        try:
            cache_path.unlink()
        except OSError:
            pass
        return False


def _save_atomic(model: Sequential, cache_path: Path) -> None:
    """Publish trained parameters via tmp + rename (never a partial ``.npz``)."""
    with atomic_path(cache_path, suffix=".npz") as tmp:
        model.save(str(tmp))


def _cached_model(
    cache_name: str, recipe_name: str, builder: Callable[[], Sequential], trainer
) -> Sequential:
    """Build a model and load cached parameters, or train and cache them.

    Training happens under an advisory file lock, so concurrent processes
    (pipeline pool workers, parallel CLI invocations) sharing the cache
    directory train each model exactly once: whoever takes the lock first
    trains and saves, everyone else blocks and then loads the published file.
    """
    model = builder()
    cache_path = zoo_cache_path(cache_name, recipe_name)
    if _try_load(model, cache_path):
        return model
    CACHE_DIR.mkdir(parents=True, exist_ok=True)
    with FileLock(cache_path.with_name(cache_path.name + ".lock")):
        if _try_load(model, cache_path):  # trained elsewhere while we waited
            return model
        trainer(model)
        _save_atomic(model, cache_path)
    return model


def _suffix(fast: bool) -> str:
    return "_fast" if fast else ""


@ZOO.register(
    "lenet_digits",
    metadata={
        "summary": "exact LeNet-5 on the digit dataset",
        "recipe": LENET_DIGITS_RECIPE,
    },
)
def lenet_digits(fast: bool = False) -> Tuple[Sequential, DataSplit]:
    """Exact LeNet-5 trained on the synthetic digits (the paper's MNIST model)."""
    recipe = LENET_DIGITS_RECIPE
    arch, schedule = recipe["arch"], recipe["schedule"]
    split = load_digits_split(recipe["dataset"]["test_fraction"], fast=fast)

    def build() -> Sequential:
        return build_lenet5(
            split.train.input_shape,
            conv_channels=tuple(arch["conv_channels"]),
            fc_sizes=tuple(arch["fc_sizes"]),
            dropout=arch["dropout"],
            seed=arch["seed"],
        )

    def train(model: Sequential) -> None:
        optimizer = Adam(model.parameters(), lr=recipe["optimizer"]["lr"])
        epochs = schedule["fast_epochs"] if fast else schedule["epochs"]
        train_classifier(
            model,
            optimizer,
            split.train.images,
            split.train.labels,
            epochs=epochs,
            batch_size=schedule["batch_size"],
        )
        if not fast:
            optimizer.lr = schedule["fine_tune_lr"]
            train_classifier(
                model,
                optimizer,
                split.train.images,
                split.train.labels,
                epochs=schedule["fine_tune_epochs"],
                batch_size=schedule["batch_size"],
            )

    return _cached_model(f"lenet_digits{_suffix(fast)}", "lenet_digits", build, train), split


@ZOO.register(
    "alexnet_objects",
    metadata={
        "summary": "exact AlexNet on the object dataset",
        "recipe": ALEXNET_OBJECTS_RECIPE,
    },
)
def alexnet_objects(fast: bool = False) -> Tuple[Sequential, DataSplit]:
    """Exact AlexNet trained on the synthetic objects (the paper's CIFAR-10 model)."""
    recipe = ALEXNET_OBJECTS_RECIPE
    arch, optim, schedule = recipe["arch"], recipe["optimizer"], recipe["schedule"]
    split = load_objects_split(recipe["dataset"]["test_fraction"], fast=fast)

    def build() -> Sequential:
        return build_alexnet(split.train.input_shape, dropout=arch["dropout"], seed=arch["seed"])

    def train(model: Sequential) -> None:
        optimizer = SGD(
            model.parameters(),
            lr=optim["lr"],
            momentum=optim["momentum"],
            weight_decay=optim["weight_decay"],
        )
        epochs = schedule["fast_epochs"] if fast else schedule["epochs"]
        train_classifier(
            model,
            optimizer,
            split.train.images,
            split.train.labels,
            epochs=epochs,
            batch_size=schedule["batch_size"],
        )
        if not fast:
            optimizer.lr = schedule["fine_tune_lr"]
            train_classifier(
                model,
                optimizer,
                split.train.images,
                split.train.labels,
                epochs=schedule["fine_tune_epochs"],
                batch_size=schedule["batch_size"],
            )

    return _cached_model(f"alexnet_objects{_suffix(fast)}", "alexnet_objects", build, train), split


@ZOO.register(
    "dq_objects",
    metadata={
        "summary": "Defensive Quantization models on the objects",
        "recipe": DQ_OBJECTS_RECIPE,
    },
)
def dq_models_objects(
    bits: int = 4, fast: bool = False
) -> Tuple[Dict[str, Sequential], DataSplit]:
    """Defensive Quantization models (full and weight-only) trained on the objects.

    Returns a dict with keys ``"full"`` and ``"weight"``.
    """
    recipe = DQ_OBJECTS_RECIPE
    schedule = recipe["schedule"]
    split = load_objects_split(recipe["dataset"]["test_fraction"], fast=fast)
    models: Dict[str, Sequential] = {}
    for mode in recipe["arch"]["modes"]:

        def build(mode=mode) -> Sequential:
            return build_dq_cnn(
                split.train.input_shape, bits=bits, mode=mode, seed=recipe["arch"]["seed"]
            )

        def train(model: Sequential) -> None:
            optimizer = Adam(model.parameters(), lr=recipe["optimizer"]["lr"])
            epochs = schedule["fast_epochs"] if fast else schedule["epochs"]
            train_classifier(
                model,
                optimizer,
                split.train.images,
                split.train.labels,
                epochs=epochs,
                batch_size=schedule["batch_size"],
            )

        models[mode] = _cached_model(
            f"dq_{mode}_objects_{bits}b{_suffix(fast)}", "dq_objects", build, train
        )
    return models, split


@ZOO.register(
    "substitute_digits",
    metadata={
        "summary": "black-box substitute trained from a digit victim's queries",
        "recipe": SUBSTITUTE_DIGITS_RECIPE,
    },
)
def substitute_digits(victim: str = "da", fast: bool = False) -> Sequential:
    """Black-box substitute model trained from the victim's query labels.

    ``victim`` selects the model whose query responses train the substitute:
    ``"exact"`` for the exact LeNet, ``"da"`` for its Defensive Approximation
    conversion.  The substitute's parameters are cached on disk next to the
    zoo models.
    """
    from repro.nn.models import convert_to_approximate

    recipe = SUBSTITUTE_DIGITS_RECIPE
    arch, schedule = recipe["arch"], recipe["schedule"]
    exact_model, split = lenet_digits(fast=fast)
    victim_model = convert_to_approximate(exact_model) if victim == "da" else exact_model
    cache_path = zoo_cache_path(f"substitute_{victim}_digits{_suffix(fast)}", "substitute_digits")

    def build() -> Sequential:
        return build_lenet5(
            split.train.input_shape,
            conv_channels=tuple(arch["conv_channels"]),
            fc_sizes=tuple(arch["fc_sizes"]),
            dropout=arch["dropout"],
            seed=arch["seed"],
        )

    substitute = build()
    if _try_load(substitute, cache_path):
        return substitute
    CACHE_DIR.mkdir(parents=True, exist_ok=True)
    with FileLock(cache_path.with_name(cache_path.name + ".lock")):
        if _try_load(substitute, cache_path):  # trained elsewhere while we waited
            return substitute
        from repro.core.substitute import train_substitute

        n_queries = recipe["queries"]["fast_n_queries" if fast else "n_queries"]
        substitute = train_substitute(
            victim_model.predict,
            split.train.images[:n_queries],
            build_model=build,
            epochs=schedule["fast_epochs"] if fast else schedule["epochs"],
            augmentation_rounds=schedule[
                "fast_augmentation_rounds" if fast else "augmentation_rounds"
            ],
            seed=schedule["seed"],
        )
        _save_atomic(substitute, cache_path)
    return substitute
