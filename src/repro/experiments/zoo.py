"""Trained-model zoo with on-disk caching.

The paper's experiments start from pre-trained exact classifiers (LeNet-5 on
MNIST, AlexNet on CIFAR-10).  This module plays that role for the synthetic
datasets: models are trained once, their parameters are cached under
``~/.cache/repro-da`` (override with the ``REPRO_DA_CACHE`` environment
variable), and every benchmark / example reuses them.

The configurations here are the calibrated "paper models" of this
reproduction: they reach high clean accuracy and, once converted to DA, lose
only a small amount of it (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, Tuple

import numpy as np

from repro.datasets import DataSplit, generate_digits, generate_objects, train_test_split
from repro.nn import SGD, Adam, build_alexnet, build_dq_cnn, build_lenet5, train_classifier
from repro.nn.network import Sequential

#: default location of the trained-parameter cache
CACHE_DIR = Path(os.environ.get("REPRO_DA_CACHE", Path.home() / ".cache" / "repro-da"))

#: digit dataset configuration (MNIST substitute)
DIGITS_CONFIG = {"n_samples": 6000, "size": 16, "seed": 1}
#: object dataset configuration (CIFAR-10 substitute)
OBJECTS_CONFIG = {"n_samples": 3000, "size": 32, "seed": 2}


def load_digits_split(test_fraction: float = 0.15) -> DataSplit:
    """The digit dataset split used by all digit experiments."""
    return train_test_split(generate_digits(**DIGITS_CONFIG), test_fraction)


def load_objects_split(test_fraction: float = 0.2) -> DataSplit:
    """The object dataset split used by all object experiments."""
    return train_test_split(generate_objects(**OBJECTS_CONFIG), test_fraction)


def _cached_model(cache_name: str, builder: Callable[[], Sequential], trainer) -> Sequential:
    """Build a model and load cached parameters, or train and cache them."""
    model = builder()
    cache_path = CACHE_DIR / f"{cache_name}.npz"
    if cache_path.exists():
        try:
            model.load(str(cache_path))
            return model
        except (KeyError, ValueError):
            # architecture changed since the cache was written; retrain
            cache_path.unlink()
    trainer(model)
    CACHE_DIR.mkdir(parents=True, exist_ok=True)
    model.save(str(cache_path))
    return model


def lenet_digits() -> Tuple[Sequential, DataSplit]:
    """Exact LeNet-5 trained on the synthetic digits (the paper's MNIST model)."""
    split = load_digits_split()

    def build() -> Sequential:
        return build_lenet5(
            split.train.input_shape,
            conv_channels=(12, 24),
            fc_sizes=(96, 64),
            dropout=0.25,
            seed=0,
        )

    def train(model: Sequential) -> None:
        optimizer = Adam(model.parameters(), lr=0.002)
        train_classifier(
            model, optimizer, split.train.images, split.train.labels, epochs=25, batch_size=64
        )
        optimizer.lr = 0.0005
        train_classifier(
            model, optimizer, split.train.images, split.train.labels, epochs=10, batch_size=64
        )

    return _cached_model("lenet_digits", build, train), split


def alexnet_objects() -> Tuple[Sequential, DataSplit]:
    """Exact AlexNet trained on the synthetic objects (the paper's CIFAR-10 model)."""
    split = load_objects_split()

    def build() -> Sequential:
        return build_alexnet(split.train.input_shape, dropout=0.25, seed=0)

    def train(model: Sequential) -> None:
        optimizer = SGD(model.parameters(), lr=0.02, momentum=0.9, weight_decay=1e-4)
        train_classifier(
            model, optimizer, split.train.images, split.train.labels, epochs=20, batch_size=64
        )
        optimizer.lr = 0.005
        train_classifier(
            model, optimizer, split.train.images, split.train.labels, epochs=8, batch_size=64
        )

    return _cached_model("alexnet_objects", build, train), split


def dq_models_objects(bits: int = 4) -> Tuple[Dict[str, Sequential], DataSplit]:
    """Defensive Quantization models (full and weight-only) trained on the objects.

    Returns a dict with keys ``"full"`` and ``"weight"``.
    """
    split = load_objects_split()
    models: Dict[str, Sequential] = {}
    for mode in ("full", "weight"):

        def build(mode=mode) -> Sequential:
            return build_dq_cnn(split.train.input_shape, bits=bits, mode=mode, seed=3)

        def train(model: Sequential) -> None:
            optimizer = Adam(model.parameters(), lr=0.002)
            train_classifier(
                model, optimizer, split.train.images, split.train.labels, epochs=18, batch_size=64
            )

        models[mode] = _cached_model(f"dq_{mode}_objects_{bits}b", build, train)
    return models, split
