"""Defensive Approximation (DA) -- reproduction of Guesmi et al., ASPLOS 2021.

``repro`` implements, from the gate level up, the full system described in
"Defensive Approximation: Securing CNNs using Approximate Computing":

* :mod:`repro.arith` -- approximate adder cells, gate-level array multipliers
  and the Ax-FPM / HEAP / Bfloat16 floating point multipliers;
* :mod:`repro.nn` -- a pure-numpy CNN substrate (layers, training, model zoo)
  with approximate and quantised layer variants;
* :mod:`repro.datasets` -- synthetic MNIST-like and CIFAR-like datasets;
* :mod:`repro.attacks` -- the eight evasion attacks of the paper's Table 1;
* :mod:`repro.core` -- the Defensive Approximation defense and the
  transferability / black-box / white-box evaluation harnesses;
* :mod:`repro.hw` -- the analytical energy/delay cost model;
* :mod:`repro.registry` -- the unified component registry every pluggable
  piece (multipliers, adder cells, attacks, models, datasets, zoo entries,
  experiment kinds) is registered in;
* :mod:`repro.pipeline` -- the declarative experiment pipeline: one
  :class:`~repro.pipeline.spec.ExperimentSpec` per paper table/figure,
  executed by the :class:`~repro.pipeline.runner.Runner` (also available
  from the command line as ``python -m repro``).

Public API quickstart::

    from repro import Registry, Runner, create_attack, get_multiplier

    Runner(fast=True).run("table04_blackbox_mnist")

(The registry *hub accessor* is ``repro.registry.registry`` -- it is not
re-exported here because the ``repro.registry`` submodule shadows the name.)
"""

__version__ = "1.1.0"


def __getattr__(name):
    """Lazily re-export the public API to keep ``import repro`` light."""
    if name in ("Registry", "namespaces"):
        import repro.registry as _registry

        return getattr(_registry, name)
    if name in ("ExperimentSpec", "AttackGridEntry", "ExperimentResult", "Runner",
                "list_experiments", "get_experiment"):
        import repro.pipeline as _pipeline

        return getattr(_pipeline, name)
    if name == "DefensiveApproximation":
        from repro.core.defense import DefensiveApproximation

        return DefensiveApproximation
    if name == "get_multiplier":
        from repro.arith.fpm import get_multiplier

        return get_multiplier
    if name == "create_attack":
        from repro.attacks.registry import create_attack

        return create_attack
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = [
    "__version__",
    "Registry",
    "namespaces",
    "ExperimentSpec",
    "AttackGridEntry",
    "ExperimentResult",
    "Runner",
    "list_experiments",
    "get_experiment",
    "DefensiveApproximation",
    "get_multiplier",
    "create_attack",
]
