"""Defensive Approximation (DA) -- reproduction of Guesmi et al., ASPLOS 2021.

``repro`` implements, from the gate level up, the full system described in
"Defensive Approximation: Securing CNNs using Approximate Computing":

* :mod:`repro.arith` -- approximate adder cells, gate-level array multipliers
  and the Ax-FPM / HEAP / Bfloat16 floating point multipliers;
* :mod:`repro.nn` -- a pure-numpy CNN substrate (layers, training, model zoo)
  with approximate and quantised layer variants;
* :mod:`repro.datasets` -- synthetic MNIST-like and CIFAR-like datasets;
* :mod:`repro.attacks` -- the eight evasion attacks of the paper's Table 1;
* :mod:`repro.core` -- the Defensive Approximation defense and the
  transferability / black-box / white-box evaluation harnesses;
* :mod:`repro.hw` -- the analytical energy/delay cost model.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
