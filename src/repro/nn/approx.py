"""Approximate layers: convolution and dense layers whose multiplications run
through a hardware multiplier model.

This is the emulation path of Defensive Approximation: the layer keeps the
exact pre-trained weights but every elementwise product of the forward pass is
computed by a :class:`repro.arith.fpm.Multiplier` (Ax-FPM by default).
Additions stay exact, as in the paper (only the multiplier is approximated).

Execution
---------
Both layers drive their multiply-accumulate through the fused approximate-GEMM
engine (:mod:`repro.arith.kernels`), obtained once per layer via the
capability API :meth:`~repro.arith.fpm.Multiplier.make_gemm_kernel`.  For
LUT-tabulated designs this replaces the historical per-call decompose /
broadcast-gather / ``np.ldexp`` pipeline with precomposed signed-product
tables, a cached weight decomposition (keyed by the parameter's version
counter) and K-blocked in-place accumulation -- bit-for-bit identical outputs,
several times faster.  Multipliers without a LUT transparently fall back to a
kernel wrapping plain ``multiply``.

Gradients
---------
The approximate datapath is a non-differentiable gate-level circuit.  For
white-box attacks the backward pass uses the exact analytic gradients of the
corresponding exact layer evaluated at the same cached activations
(Backward-Pass Differentiable Approximation, BPDA) -- this is the strongest
practical attacker model and mirrors how the paper's adaptive white-box
attacker differentiates the emulated circuit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.arith.fpm import AxFPM, Multiplier
from repro.nn import functional as F
from repro.nn.layers import Conv2d, Linear, Module, Parameter


class _KernelHolder:
    """Mixin managing a layer's GEMM kernel (rebuilt if the multiplier swaps)."""

    multiplier: Multiplier

    def _kernel(self):
        cached = getattr(self, "_gemm_kernel", None)
        if cached is None or cached.multiplier is not self.multiplier:
            cached = self._gemm_kernel = self.multiplier.make_gemm_kernel()
        return cached

    @property
    def gemm_kernel(self):
        """The layer's approximate-GEMM engine (one per layer, lazily built)."""
        return self._kernel()


def prime_gemm_kernels(model) -> None:
    """Eagerly build the GEMM kernels of a model's approximate layers.

    Kernel construction resolves the multiplier's mantissa LUT and the derived
    signed-product table into their process-level caches; priming a model in a
    pipeline parent before its worker pool forks lets every worker inherit the
    tables copy-on-write instead of re-tabulating the gate-level array.
    """
    for layer in getattr(model, "layers", []):
        if isinstance(layer, _KernelHolder):
            layer.gemm_kernel  # noqa: B018 -- property access builds the kernel


class ApproxConv2d(_KernelHolder, Conv2d):
    """Convolution layer whose multiply-accumulate uses an approximate multiplier.

    Parameters
    ----------
    multiplier:
        Hardware multiplier model.  Defaults to a fresh :class:`AxFPM`.
    batch_chunk:
        Maximum number of images processed per chunk; bounds the memory of
        the kernel's per-chunk working set.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        multiplier: Optional[Multiplier] = None,
        batch_chunk: int = 32,
        rng: Optional[np.random.Generator] = None,
        name: str = "approx_conv",
    ):
        super().__init__(
            in_channels, out_channels, kernel_size, stride, padding, rng=rng, name=name
        )
        self.multiplier = multiplier if multiplier is not None else AxFPM()
        self.batch_chunk = int(batch_chunk)
        self._gemm_kernel = None

    @classmethod
    def from_exact(
        cls, layer: Conv2d, multiplier: Optional[Multiplier] = None, batch_chunk: int = 32
    ) -> "ApproxConv2d":
        """Build an approximate layer sharing the exact layer's trained parameters.

        This is the "drop-in hardware replacement" of the paper: no retraining,
        no fine-tuning, the very same weights.
        """
        approx = cls(
            layer.in_channels,
            layer.out_channels,
            layer.kernel_size,
            layer.stride,
            layer.padding,
            multiplier=multiplier,
            batch_chunk=batch_chunk,
            name=getattr(layer, "name", "approx_conv"),
        )
        approx.weight = layer.weight
        approx.bias = layer.bias
        return approx

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, _, h, w = x.shape
        f = self.out_channels
        k = self.kernel_size
        cols = F.im2col(x, (k, k), self.stride, self.padding)  # (N, K, L)
        self._cache = (cols, x.shape)
        w_mat = self.weight.value.reshape(f, -1)  # (F, K)

        out_h, out_w, l = F.conv_geometry(h, w, k, self.stride, self.padding)
        out = np.empty((n, f, l), dtype=np.float32)
        kernel = self.gemm_kernel
        version = self.weight.version
        chunk = max(1, self.batch_chunk)
        for start in range(0, n, chunk):
            stop = min(n, start + chunk)
            # the activation patch drives the multiplicand port and the weight
            # drives the multiplier port of the array multiplier; with the
            # AMA5 array this is the operand assignment that keeps the clean
            # accuracy of the approximate classifier closest to the exact one
            # (see DESIGN.md, "Key design decisions").
            out[start:stop] = kernel(cols[start:stop], w_mat, weight_version=version)
        out += self.bias.value.reshape(1, f, 1)
        return out.reshape(n, f, out_h, out_w).astype(np.float32)

    # backward() is inherited from Conv2d: BPDA through the exact convolution.

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ApproxConv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, multiplier={self.multiplier.name})"
        )


class ApproxLinear(_KernelHolder, Linear):
    """Dense layer whose products run through an approximate multiplier.

    The paper confines the approximation to convolution layers; this layer is
    provided for completeness and for the design-space exploration ablations.

    Parameters
    ----------
    batch_chunk:
        Maximum batch rows per kernel call.
    out_chunk:
        Maximum output features per kernel call.  Together the two chunks
        bound the per-call working set at roughly
        ``batch_chunk * out_chunk * in_features`` products, so wide layers no
        longer materialise a full ``(batch, out, in)`` intermediate.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        multiplier: Optional[Multiplier] = None,
        batch_chunk: int = 128,
        out_chunk: int = 128,
        rng: Optional[np.random.Generator] = None,
        name: str = "approx_fc",
    ):
        super().__init__(in_features, out_features, rng=rng, name=name)
        self.multiplier = multiplier if multiplier is not None else AxFPM()
        self.batch_chunk = int(batch_chunk)
        self.out_chunk = int(out_chunk)
        self._gemm_kernel = None

    @classmethod
    def from_exact(
        cls,
        layer: Linear,
        multiplier: Optional[Multiplier] = None,
        batch_chunk: int = 128,
        out_chunk: int = 128,
    ) -> "ApproxLinear":
        """Build an approximate dense layer sharing the exact layer's parameters."""
        approx = cls(
            layer.in_features,
            layer.out_features,
            multiplier=multiplier,
            batch_chunk=batch_chunk,
            out_chunk=out_chunk,
            name=getattr(layer, "name", "approx_fc"),
        )
        approx.weight = layer.weight
        approx.bias = layer.bias
        return approx

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache = x
        n = x.shape[0]
        out = np.empty((n, self.out_features), dtype=np.float32)
        kernel = self.gemm_kernel
        weight = self.weight.value
        version = self.weight.version
        chunk = max(1, self.batch_chunk)
        ochunk = max(1, self.out_chunk)
        for start in range(0, n, chunk):
            stop = min(n, start + chunk)
            # activations drive the multiplicand port, weights the multiplier
            # port (same assignment as ApproxConv2d); the GEMM contraction is
            # the L=1 case of the conv kernel
            cols = x[start:stop, :, np.newaxis]
            for o_start in range(0, self.out_features, ochunk):
                o_stop = min(self.out_features, o_start + ochunk)
                out[start:stop, o_start:o_stop] = kernel(
                    cols,
                    weight[o_start:o_stop],
                    weight_version=version,
                    weight_key=(o_start, o_stop),
                )[:, :, 0]
        return (out + self.bias.value).astype(np.float32)

    # backward() inherited from Linear (BPDA).

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ApproxLinear({self.in_features}, {self.out_features}, "
            f"multiplier={self.multiplier.name})"
        )
