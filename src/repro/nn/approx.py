"""Approximate layers: convolution and dense layers whose multiplications run
through a hardware multiplier model.

This is the emulation path of Defensive Approximation: the layer keeps the
exact pre-trained weights but every elementwise product of the forward pass is
computed by a :class:`repro.arith.fpm.Multiplier` (Ax-FPM by default).
Additions stay exact, as in the paper (only the multiplier is approximated).

Gradients
---------
The approximate datapath is a non-differentiable gate-level circuit.  For
white-box attacks the backward pass uses the exact analytic gradients of the
corresponding exact layer evaluated at the same cached activations
(Backward-Pass Differentiable Approximation, BPDA) -- this is the strongest
practical attacker model and mirrors how the paper's adaptive white-box
attacker differentiates the emulated circuit.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.arith.fpm import AxFPM, Multiplier
from repro.nn import functional as F
from repro.nn.layers import Conv2d, Linear, Module, Parameter


class ApproxConv2d(Conv2d):
    """Convolution layer whose multiply-accumulate uses an approximate multiplier.

    Parameters
    ----------
    multiplier:
        Hardware multiplier model.  Defaults to a fresh :class:`AxFPM`.
    batch_chunk:
        Maximum number of images processed per chunk; bounds the memory of the
        intermediate ``(chunk, F, K, L)`` product tensor.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        multiplier: Optional[Multiplier] = None,
        batch_chunk: int = 32,
        rng: Optional[np.random.Generator] = None,
        name: str = "approx_conv",
    ):
        super().__init__(
            in_channels, out_channels, kernel_size, stride, padding, rng=rng, name=name
        )
        self.multiplier = multiplier if multiplier is not None else AxFPM()
        self.batch_chunk = int(batch_chunk)

    @classmethod
    def from_exact(
        cls, layer: Conv2d, multiplier: Optional[Multiplier] = None, batch_chunk: int = 32
    ) -> "ApproxConv2d":
        """Build an approximate layer sharing the exact layer's trained parameters.

        This is the "drop-in hardware replacement" of the paper: no retraining,
        no fine-tuning, the very same weights.
        """
        approx = cls(
            layer.in_channels,
            layer.out_channels,
            layer.kernel_size,
            layer.stride,
            layer.padding,
            multiplier=multiplier,
            batch_chunk=batch_chunk,
            name=getattr(layer, "name", "approx_conv"),
        )
        approx.weight = layer.weight
        approx.bias = layer.bias
        return approx

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, _, h, w = x.shape
        f = self.out_channels
        k = self.kernel_size
        cols = F.im2col(x, (k, k), self.stride, self.padding)  # (N, K, L)
        self._cache = (cols, x.shape)
        w_mat = self.weight.value.reshape(f, -1)  # (F, K)

        out_h = F.conv_output_size(h, k, self.stride, self.padding)
        out_w = F.conv_output_size(w, k, self.stride, self.padding)
        l = out_h * out_w
        out = np.empty((n, f, l), dtype=np.float32)
        chunk = max(1, self.batch_chunk)
        for start in range(0, n, chunk):
            stop = min(n, start + chunk)
            # (chunk, F, K, L) elementwise products through the hardware model.
            # The activation patch drives the multiplicand port and the weight
            # drives the multiplier port of the array multiplier; with the
            # AMA5 array this is the operand assignment that keeps the clean
            # accuracy of the approximate classifier closest to the exact one
            # (see DESIGN.md, "Key design decisions").
            products = self.multiplier.multiply(
                cols[start:stop, np.newaxis, :, :], w_mat[np.newaxis, :, :, np.newaxis]
            )
            out[start:stop] = products.sum(axis=2, dtype=np.float32)
        out += self.bias.value.reshape(1, f, 1)
        return out.reshape(n, f, out_h, out_w).astype(np.float32)

    # backward() is inherited from Conv2d: BPDA through the exact convolution.

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ApproxConv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, multiplier={self.multiplier.name})"
        )


class ApproxLinear(Linear):
    """Dense layer whose products run through an approximate multiplier.

    The paper confines the approximation to convolution layers; this layer is
    provided for completeness and for the design-space exploration ablations.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        multiplier: Optional[Multiplier] = None,
        batch_chunk: int = 128,
        rng: Optional[np.random.Generator] = None,
        name: str = "approx_fc",
    ):
        super().__init__(in_features, out_features, rng=rng, name=name)
        self.multiplier = multiplier if multiplier is not None else AxFPM()
        self.batch_chunk = int(batch_chunk)

    @classmethod
    def from_exact(
        cls, layer: Linear, multiplier: Optional[Multiplier] = None, batch_chunk: int = 128
    ) -> "ApproxLinear":
        """Build an approximate dense layer sharing the exact layer's parameters."""
        approx = cls(
            layer.in_features,
            layer.out_features,
            multiplier=multiplier,
            batch_chunk=batch_chunk,
            name=getattr(layer, "name", "approx_fc"),
        )
        approx.weight = layer.weight
        approx.bias = layer.bias
        return approx

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache = x
        n = x.shape[0]
        out = np.empty((n, self.out_features), dtype=np.float32)
        chunk = max(1, self.batch_chunk)
        for start in range(0, n, chunk):
            stop = min(n, start + chunk)
            # activations drive the multiplicand port, weights the multiplier
            # port (same assignment as ApproxConv2d).
            products = self.multiplier.multiply(
                x[start:stop, np.newaxis, :], self.weight.value[np.newaxis, :, :]
            )
            out[start:stop] = products.sum(axis=2, dtype=np.float32)
        return (out + self.bias.value).astype(np.float32)

    # backward() inherited from Linear (BPDA).

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ApproxLinear({self.in_features}, {self.out_features}, "
            f"multiplier={self.multiplier.name})"
        )
