"""DoReFa-style k-bit quantisation layers (Defensive Quantization baseline).

The paper compares Defensive Approximation against Defensive Quantization
(Lin et al., ICLR 2019), implemented with the DoReFa-Net quantisation scheme:

* **weight quantisation** -- weights are squashed through ``tanh``, scaled to
  ``[0, 1]``, uniformly quantised to ``k`` bits and rescaled to ``[-1, 1]``;
* **activation quantisation** -- activations are clipped to ``[0, 1]`` and
  uniformly quantised to ``k`` bits.

Training uses the straight-through estimator (the quantiser is treated as the
identity in the backward pass).  Two model variants are exercised by the
benchmarks, matching Table 5 / Appendix B: *weight-only* quantisation and
*full* quantisation (weights + activations).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.layers import Conv2d, Linear, Module, Parameter


def quantize_tensor(x: np.ndarray, bits: int) -> np.ndarray:
    """Uniformly quantise values in ``[0, 1]`` to ``bits`` bits (DoReFa quantiser)."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    if bits >= 32:
        return np.asarray(x, dtype=np.float32)
    levels = float((1 << bits) - 1)
    return (np.round(np.asarray(x, dtype=np.float32) * levels) / levels).astype(np.float32)


def quantize_weights(w: np.ndarray, bits: int) -> np.ndarray:
    """DoReFa weight quantisation to ``bits`` bits, output in ``[-1, 1]``."""
    w = np.asarray(w, dtype=np.float32)
    if bits >= 32:
        return w
    t = np.tanh(w)
    max_abs = np.max(np.abs(t)) + 1e-12
    normalised = t / (2.0 * max_abs) + 0.5
    return (2.0 * quantize_tensor(normalised, bits) - 1.0).astype(np.float32)


def quantize_activations(x: np.ndarray, bits: int) -> np.ndarray:
    """DoReFa activation quantisation: clip to ``[0, 1]`` then quantise."""
    clipped = np.clip(np.asarray(x, dtype=np.float32), 0.0, 1.0)
    return quantize_tensor(clipped, bits)


class QuantConv2d(Conv2d):
    """Convolution layer with k-bit quantised weights (straight-through gradients)."""

    def __init__(self, *args, bits: int = 4, **kwargs):
        super().__init__(*args, **kwargs)
        self.bits = bits

    def forward(self, x: np.ndarray) -> np.ndarray:
        real_weight = self.weight.value
        try:
            self.weight.value = quantize_weights(real_weight, self.bits)
            return super().forward(x)
        finally:
            self.weight.value = real_weight

    # backward() inherited: straight-through estimator uses the exact-layer
    # gradient formulas with the latent full-precision weights.

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"QuantConv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, bits={self.bits})"
        )


class QuantLinear(Linear):
    """Dense layer with k-bit quantised weights (straight-through gradients)."""

    def __init__(self, *args, bits: int = 4, **kwargs):
        super().__init__(*args, **kwargs)
        self.bits = bits

    def forward(self, x: np.ndarray) -> np.ndarray:
        real_weight = self.weight.value
        try:
            self.weight.value = quantize_weights(real_weight, self.bits)
            return super().forward(x)
        finally:
            self.weight.value = real_weight

    def __repr__(self) -> str:  # pragma: no cover
        return f"QuantLinear({self.in_features}, {self.out_features}, bits={self.bits})"


class QuantReLU(Module):
    """ReLU followed by k-bit activation quantisation (the ``reluQuant`` block).

    Used by the *fully quantised* Defensive Quantization model: the activation
    is clipped to ``[0, 1]`` and quantised; the backward pass passes gradients
    through wherever the activation was inside the clipping range
    (straight-through estimator).
    """

    def __init__(self, bits: int = 4):
        super().__init__()
        self.bits = bits
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = (x > 0) & (x < 1)
        return quantize_activations(x, self.bits)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return (grad_out * self._mask).astype(np.float32)

    def __repr__(self) -> str:  # pragma: no cover
        return f"QuantReLU(bits={self.bits})"
