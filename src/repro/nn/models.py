"""Model zoo: LeNet-5, a compact AlexNet, and the Defensive Quantization CNN.

The architectures follow the paper's experimental setup (Section 5.1 and
Appendix B) scaled to the synthetic datasets shipped with this reproduction:

* **LeNet-5** -- two convolution layers, two max-pooling layers and a small
  fully connected head, for grayscale digit classification.
* **AlexNet** -- five convolution layers, three max-pooling layers and three
  fully connected layers, for 3-channel object classification.  Channel counts
  are reduced so the network trains in seconds on CPU; the layer structure is
  preserved.
* **DQ CNN** -- the six-convolution-block architecture of Appendix B used for
  the Defensive Quantization comparison, in *full* (weights + activations) and
  *weight-only* quantised variants.

``convert_to_approximate`` turns any trained model into its Defensive
Approximation counterpart by swapping every exact convolution for an
:class:`~repro.nn.approx.ApproxConv2d` that shares the same parameters -- the
paper's "drop-in hardware replacement" with no retraining.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.arith.fpm import AxFPM, Bfloat16Multiplier, HEAPMultiplier, Multiplier
from repro.nn.approx import ApproxConv2d, ApproxLinear
from repro.nn.functional import conv_output_size
from repro.nn.layers import BatchNorm2d, Conv2d, Dropout, Flatten, Linear, MaxPool2d, Module, ReLU
from repro.nn.network import Sequential
from repro.nn.quantize import QuantConv2d, QuantLinear, QuantReLU
from repro.registry import registry

#: unified registry of model architecture builders (namespace ``"model"``)
MODELS = registry("model")

#: unified registry of hardware variants: factories that turn a trained model
#: into its exact / approximate / bfloat16 deployment (namespace ``"variant"``)
VARIANTS = registry("variant")


def _after_conv(size: int, kernel: int, stride: int = 1, padding: int = 0) -> int:
    return conv_output_size(size, kernel, stride, padding)


def _after_pool(size: int, kernel: int = 2) -> int:
    return size // kernel


@MODELS.register("lenet5", metadata={"summary": "LeNet-5 digit classifier"})
def build_lenet5(
    input_shape: Tuple[int, int, int] = (1, 16, 16),
    num_classes: int = 10,
    kernel_size: int = 3,
    conv_channels: Tuple[int, int] = (6, 16),
    fc_sizes: Tuple[int, int] = (120, 84),
    dropout: float = 0.25,
    seed: int = 0,
) -> Sequential:
    """LeNet-5 style CNN: conv-pool-conv-pool followed by fully connected layers."""
    c, h, w = input_shape
    rng = np.random.default_rng(seed)
    c1, c2 = conv_channels
    h1 = _after_pool(_after_conv(h, kernel_size))
    w1 = _after_pool(_after_conv(w, kernel_size))
    h2 = _after_pool(_after_conv(h1, kernel_size))
    w2 = _after_pool(_after_conv(w1, kernel_size))
    if h2 < 1 or w2 < 1:
        raise ValueError(f"input {h}x{w} too small for LeNet-5 with kernel {kernel_size}")
    flat = c2 * h2 * w2
    layers: list[Module] = [
        Conv2d(c, c1, kernel_size, rng=rng, name="conv1"),
        ReLU(),
        MaxPool2d(2),
        Conv2d(c1, c2, kernel_size, rng=rng, name="conv2"),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(flat, fc_sizes[0], rng=rng, name="fc1"),
        ReLU(),
    ]
    if dropout > 0:
        layers.append(Dropout(dropout, rng=rng))
    layers += [
        Linear(fc_sizes[0], fc_sizes[1], rng=rng, name="fc2"),
        ReLU(),
        Linear(fc_sizes[1], num_classes, rng=rng, name="fc3"),
    ]
    return Sequential(layers, name="lenet5")


@MODELS.register("alexnet", metadata={"summary": "compact AlexNet object classifier"})
def build_alexnet(
    input_shape: Tuple[int, int, int] = (3, 32, 32),
    num_classes: int = 10,
    conv_channels: Tuple[int, int, int, int, int] = (8, 16, 24, 24, 16),
    fc_sizes: Tuple[int, int] = (128, 64),
    dropout: float = 0.25,
    seed: int = 0,
) -> Sequential:
    """Compact AlexNet: five convolutions, three max-pools, three dense layers."""
    c, h, w = input_shape
    rng = np.random.default_rng(seed)
    c1, c2, c3, c4, c5 = conv_channels
    h_out = _after_pool(_after_pool(_after_pool(h)))
    w_out = _after_pool(_after_pool(_after_pool(w)))
    if h_out < 1 or w_out < 1:
        raise ValueError(f"input {h}x{w} too small for AlexNet (needs three 2x2 pools)")
    flat = c5 * h_out * w_out
    layers: list[Module] = [
        Conv2d(c, c1, 3, padding=1, rng=rng, name="conv1"),
        ReLU(),
        MaxPool2d(2),
        Conv2d(c1, c2, 3, padding=1, rng=rng, name="conv2"),
        ReLU(),
        MaxPool2d(2),
        Conv2d(c2, c3, 3, padding=1, rng=rng, name="conv3"),
        ReLU(),
        Conv2d(c3, c4, 3, padding=1, rng=rng, name="conv4"),
        ReLU(),
        Conv2d(c4, c5, 3, padding=1, rng=rng, name="conv5"),
        ReLU(),
        MaxPool2d(2),
        Flatten(),
        Linear(flat, fc_sizes[0], rng=rng, name="fc1"),
        ReLU(),
    ]
    if dropout > 0:
        layers.append(Dropout(dropout, rng=rng))
    layers += [
        Linear(fc_sizes[0], fc_sizes[1], rng=rng, name="fc2"),
        ReLU(),
        Linear(fc_sizes[1], num_classes, rng=rng, name="fc3"),
    ]
    return Sequential(layers, name="alexnet")


@MODELS.register("dq_cnn", metadata={"summary": "Defensive Quantization CNN (Appendix B)"})
def build_dq_cnn(
    input_shape: Tuple[int, int, int] = (3, 32, 32),
    num_classes: int = 10,
    bits: int = 4,
    mode: str = "full",
    conv_channels: Sequence[int] = (8, 8, 16, 16, 24, 24),
    fc_sizes: Tuple[int, int] = (64, 32),
    seed: int = 0,
) -> Sequential:
    """Defensive Quantization CNN (Appendix B architecture, DoReFa quantisers).

    Parameters
    ----------
    mode:
        ``"full"`` quantises weights and activations (ConvolutionQuant +
        reluQuant blocks); ``"weight"`` quantises only the weights and keeps
        exact ReLU activations; ``"float"`` builds the same architecture
        without any quantisation (useful as its exact reference).
    """
    if mode not in ("full", "weight", "float"):
        raise ValueError("mode must be 'full', 'weight' or 'float'")
    c, h, w = input_shape
    rng = np.random.default_rng(seed)

    def conv(cin: int, cout: int, name: str) -> Module:
        if mode == "float":
            return Conv2d(cin, cout, 3, padding=1, rng=rng, name=name)
        return QuantConv2d(cin, cout, 3, padding=1, bits=bits, rng=rng, name=name)

    def act() -> Module:
        if mode == "full":
            return QuantReLU(bits=bits)
        return ReLU()

    def dense(fin: int, fout: int, name: str) -> Module:
        if mode == "float":
            return Linear(fin, fout, rng=rng, name=name)
        return QuantLinear(fin, fout, bits=bits, rng=rng, name=name)

    chans = list(conv_channels)
    layers: list[Module] = []
    in_c = c
    size = h
    for block in range(3):
        c_a, c_b = chans[2 * block], chans[2 * block + 1]
        layers += [
            conv(in_c, c_a, f"conv{2 * block + 1}"),
            BatchNorm2d(c_a, name=f"bn{2 * block + 1}"),
            act(),
            conv(c_a, c_b, f"conv{2 * block + 2}"),
            MaxPool2d(2),
            BatchNorm2d(c_b, name=f"bn{2 * block + 2}"),
            act(),
        ]
        in_c = c_b
        size = _after_pool(size)
    flat = in_c * size * size
    layers += [
        Flatten(),
        dense(flat, fc_sizes[0], "fc1"),
        act(),
        dense(fc_sizes[0], fc_sizes[1], "fc2"),
        act(),
        Linear(fc_sizes[1], num_classes, rng=rng, name="fc3"),
    ]
    return Sequential(layers, name=f"dq_cnn_{mode}")


# --------------------------------------------------------------- conversions
def _fresh_stateful_copy(layer: Module) -> Module:
    """Re-instantiate a layer so the converted model owns its forward caches.

    Parameters (and BatchNorm running statistics) are *shared* with the
    original layer -- the converted model uses the very same trained weights --
    but activation caches are per-model so that interleaving forward/backward
    passes of the exact and the approximate model never cross-contaminates.
    """
    if isinstance(layer, ReLU):
        return ReLU()
    if isinstance(layer, Flatten):
        return Flatten()
    if isinstance(layer, MaxPool2d):
        return MaxPool2d(layer.kernel_size, layer.stride)
    if isinstance(layer, Dropout):
        return Dropout(layer.p, rng=layer.rng)
    if isinstance(layer, QuantReLU):
        return QuantReLU(bits=layer.bits)
    if isinstance(layer, BatchNorm2d):
        copy = BatchNorm2d(layer.num_features, layer.momentum, layer.eps)
        copy.gamma = layer.gamma
        copy.beta = layer.beta
        copy.running_mean = layer.running_mean
        copy.running_var = layer.running_var
        return copy
    if isinstance(layer, QuantLinear):
        copy = QuantLinear(layer.in_features, layer.out_features, bits=layer.bits, name=layer.name)
        copy.weight = layer.weight
        copy.bias = layer.bias
        return copy
    if isinstance(layer, Linear) and not isinstance(layer, ApproxLinear):
        copy = Linear(layer.in_features, layer.out_features, name=layer.name)
        copy.weight = layer.weight
        copy.bias = layer.bias
        return copy
    if isinstance(layer, QuantConv2d):
        copy = QuantConv2d(
            layer.in_channels,
            layer.out_channels,
            layer.kernel_size,
            layer.stride,
            layer.padding,
            bits=layer.bits,
            name=layer.name,
        )
        copy.weight = layer.weight
        copy.bias = layer.bias
        return copy
    return layer


def convert_to_approximate(
    model: Sequential,
    multiplier: Optional[Multiplier] = None,
    convert_linear: bool = False,
    batch_chunk: int = 32,
    name_suffix: str = "_approx",
) -> Sequential:
    """Create the Defensive Approximation version of a trained model.

    Every exact :class:`Conv2d` is replaced by an :class:`ApproxConv2d` that
    *shares* the original parameters (no retraining, no copy), exactly as the
    paper deploys DA by swapping the hardware multiplier.  Dense layers are
    left exact by default, matching the paper's implementation which confines
    the approximation to the convolution layers.
    """
    multiplier = multiplier if multiplier is not None else AxFPM()
    converted: list[Module] = []
    for layer in model.layers:
        if type(layer) is Conv2d:
            converted.append(ApproxConv2d.from_exact(layer, multiplier, batch_chunk=batch_chunk))
        elif convert_linear and type(layer) is Linear:
            converted.append(ApproxLinear.from_exact(layer, multiplier, batch_chunk=batch_chunk))
        else:
            converted.append(_fresh_stateful_copy(layer))
    return Sequential(converted, name=model.name + name_suffix)


def convert_to_bfloat16(model: Sequential, convert_linear: bool = False) -> Sequential:
    """Create the bfloat16 variant of a trained model (Section 7.2 baseline)."""
    return convert_to_approximate(
        model,
        multiplier=Bfloat16Multiplier(),
        convert_linear=convert_linear,
        name_suffix="_bf16",
    )


# ----------------------------------------------------------------- variants
# Hardware variants resolve a *trained* exact model into the deployment the
# experiment pipeline names in its specs ("exact", "da", "heap", ...).  Each
# factory shares the trained parameters with the input model.
#
# The ``"approx"`` metadata flag declares whether the variant's forward pass
# executes through the approximate-arithmetic substrate (multiplier models +
# the fused GEMM kernel engine): cell digests use it to decide whether a cell
# depends on the "kernels"/"arith" fingerprint surfaces (docs/caching.md).
VARIANTS.register(
    "exact",
    lambda model: model,
    metadata={"summary": "unmodified float32 model", "approx": False},
)
VARIANTS.register(
    "da",
    lambda model, **kw: convert_to_approximate(model, **kw),
    metadata={"summary": "Defensive Approximation (Ax-FPM convolutions)", "approx": True},
)
VARIANTS.register(
    "heap",
    lambda model, **kw: convert_to_approximate(
        model, multiplier=HEAPMultiplier(), name_suffix="_heap", **kw
    ),
    metadata={"summary": "DA built from the HEAP multiplier", "approx": True},
)
VARIANTS.register(
    "bfloat16",
    lambda model, **kw: convert_to_bfloat16(model, **kw),
    metadata={"summary": "bfloat16-truncated convolutions", "approx": True},
)


def model_variant(model: Sequential, variant: str, **kwargs) -> Sequential:
    """Resolve a trained model into one of its registered hardware variants."""
    return VARIANTS.create(variant, model=model, **kwargs)
