"""Pure-numpy neural network substrate.

The paper's experiments run LeNet-5 and AlexNet CNNs in PyTorch; no deep
learning framework is available in this offline environment, so this package
implements the required substrate from scratch:

* :mod:`repro.nn.functional` -- im2col convolution, pooling and activation
  primitives with analytic backward passes.
* :mod:`repro.nn.layers` -- layer modules (Conv2d, Linear, ReLU, MaxPool2d,
  BatchNorm2d, Dropout, Flatten) with a shared :class:`Module` interface.
* :mod:`repro.nn.approx` -- approximate layers that route every multiplication
  of the forward pass through a pluggable hardware multiplier model.
* :mod:`repro.nn.quantize` -- DoReFa-style k-bit quantisation layers used for
  the Defensive Quantization baseline.
* :mod:`repro.nn.network` -- the :class:`Sequential` container with parameter
  (de)serialisation.
* :mod:`repro.nn.losses`, :mod:`repro.nn.optim`, :mod:`repro.nn.training` --
  losses, optimisers (SGD / Adam) and a training loop.
* :mod:`repro.nn.models` -- the model zoo (LeNet-5, small AlexNet, DQ CNN).
"""

#: numerics version of the model substrate's forward/backward bit patterns.
#: Bump when inference or training numerics change for *every* model (e.g.
#: the batch-invariant GEMM rework); zoo recipe digests fold it in, so every
#: trained-parameter cache and every model-dependent cell re-keys.
#: Version 2: batch-invariant forward/backward numerics (the old
#: ``ZOO_NUMERICS_VERSION = 2``).
MODEL_NUMERICS_VERSION = 2

from repro.nn.approx import ApproxConv2d, ApproxLinear
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
)
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.models import (
    build_alexnet,
    build_dq_cnn,
    build_lenet5,
    convert_to_approximate,
    convert_to_bfloat16,
)
from repro.nn.network import Sequential
from repro.nn.optim import SGD, Adam
from repro.nn.quantize import QuantConv2d, QuantLinear, QuantReLU, quantize_tensor
from repro.nn.training import TrainingHistory, evaluate_accuracy, train_classifier

__all__ = [
    "Module",
    "Parameter",
    "Conv2d",
    "Linear",
    "ReLU",
    "MaxPool2d",
    "Flatten",
    "Dropout",
    "BatchNorm2d",
    "ApproxConv2d",
    "ApproxLinear",
    "QuantConv2d",
    "QuantLinear",
    "QuantReLU",
    "quantize_tensor",
    "Sequential",
    "CrossEntropyLoss",
    "MSELoss",
    "SGD",
    "Adam",
    "train_classifier",
    "evaluate_accuracy",
    "TrainingHistory",
    "build_lenet5",
    "build_alexnet",
    "build_dq_cnn",
    "convert_to_approximate",
    "convert_to_bfloat16",
]
