"""Training loop and evaluation helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.nn.losses import CrossEntropyLoss
from repro.nn.network import Sequential
from repro.nn.optim import Optimizer


@dataclass
class TrainingHistory:
    """Per-epoch loss and accuracy curves."""

    losses: List[float] = field(default_factory=list)
    train_accuracies: List[float] = field(default_factory=list)
    val_accuracies: List[float] = field(default_factory=list)

    @property
    def final_val_accuracy(self) -> float:
        return self.val_accuracies[-1] if self.val_accuracies else float("nan")


def iterate_minibatches(
    x: np.ndarray, y: np.ndarray, batch_size: int, rng: Optional[np.random.Generator] = None
):
    """Yield shuffled minibatches of ``(x, y)``."""
    rng = rng or np.random.default_rng(0)
    indices = rng.permutation(len(x))
    for start in range(0, len(x), batch_size):
        batch = indices[start : start + batch_size]
        yield x[batch], y[batch]


def evaluate_accuracy(model: Sequential, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> float:
    """Classification accuracy of ``model`` on ``(x, y)``."""
    correct = 0
    for start in range(0, len(x), batch_size):
        stop = min(len(x), start + batch_size)
        preds = model.predict(x[start:stop])
        correct += int((preds == y[start:stop]).sum())
    return correct / max(len(x), 1)


def train_classifier(
    model: Sequential,
    optimizer: Optimizer,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_val: Optional[np.ndarray] = None,
    y_val: Optional[np.ndarray] = None,
    epochs: int = 5,
    batch_size: int = 64,
    rng: Optional[np.random.Generator] = None,
    verbose: bool = False,
) -> TrainingHistory:
    """Train a classifier with softmax cross entropy.

    The loop is deliberately simple (full-batch shuffling, fixed learning
    rate): the experiments only need models that reach solid clean accuracy on
    the synthetic datasets, mirroring the pre-trained exact classifiers of the
    paper.
    """
    rng = rng or np.random.default_rng(0)
    criterion = CrossEntropyLoss()
    history = TrainingHistory()
    for epoch in range(epochs):
        model.set_training(True)
        epoch_losses = []
        for xb, yb in iterate_minibatches(x_train, y_train, batch_size, rng):
            optimizer.zero_grad()
            logits = model.forward(xb)
            loss = criterion.forward(logits, yb)
            grad = criterion.backward()
            model.backward(grad)
            optimizer.step()
            epoch_losses.append(loss)
        model.set_training(False)
        history.losses.append(float(np.mean(epoch_losses)))
        history.train_accuracies.append(evaluate_accuracy(model, x_train, y_train))
        if x_val is not None and y_val is not None:
            history.val_accuracies.append(evaluate_accuracy(model, x_val, y_val))
        if verbose:  # pragma: no cover - logging only
            val = history.val_accuracies[-1] if history.val_accuracies else float("nan")
            print(
                f"epoch {epoch + 1}/{epochs}: loss={history.losses[-1]:.4f} "
                f"train_acc={history.train_accuracies[-1]:.3f} val_acc={val:.3f}"
            )
    return history
