"""Loss functions with analytic gradients."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.functional import log_softmax, softmax


class CrossEntropyLoss:
    """Softmax cross entropy over integer class labels.

    ``forward`` returns the mean loss; ``backward`` returns the gradient with
    respect to the logits (already divided by the batch size).
    """

    def __init__(self) -> None:
        self._cache: Tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        labels = np.asarray(labels, dtype=np.int64)
        log_p = log_softmax(logits)
        n = logits.shape[0]
        loss = -float(np.mean(log_p[np.arange(n), labels]))
        self._cache = (softmax(logits), labels)
        return loss

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, labels = self._cache
        n = probs.shape[0]
        grad = probs.copy()
        grad[np.arange(n), labels] -= 1.0
        return (grad / n).astype(np.float32)

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)


class MSELoss:
    """Mean squared error (used by the substitute-training utilities)."""

    def __init__(self) -> None:
        self._cache: Tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, prediction: np.ndarray, target: np.ndarray) -> float:
        self._cache = (prediction, np.asarray(target, dtype=np.float32))
        return float(np.mean((prediction - target) ** 2))

    def backward(self) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        prediction, target = self._cache
        return (2.0 * (prediction - target) / prediction.size).astype(np.float32)

    def __call__(self, prediction: np.ndarray, target: np.ndarray) -> float:
        return self.forward(prediction, target)
