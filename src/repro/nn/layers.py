"""Layer modules with forward and analytic backward passes.

Each layer caches whatever it needs during ``forward`` and consumes that cache
in ``backward``.  The cache is intentionally tied to the last forward call;
networks are evaluated layer-by-layer in sequence (see
:class:`repro.nn.network.Sequential`) so this matches usage.
"""

from __future__ import annotations

from contextlib import contextmanager
from itertools import count
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.init import he_normal, zeros


#: when False, layer backward passes compute only the *input* gradient and
#: skip parameter-gradient accumulation.  Toggled via :func:`no_param_grads`.
_ACCUMULATE_PARAM_GRADS = True


@contextmanager
def no_param_grads():
    """Skip parameter-gradient accumulation inside the context.

    The attack-facing gradient paths (BPDA / white-box input gradients,
    :class:`repro.attacks.base.Classifier`) only consume the gradient w.r.t.
    the *input*; the weight/bias gradient GEMMs are pure waste there and are
    some of the largest per-sample costs of a backward pass.  Training code
    never uses this context, so optimisers see normal accumulation.
    """
    global _ACCUMULATE_PARAM_GRADS
    previous = _ACCUMULATE_PARAM_GRADS
    _ACCUMULATE_PARAM_GRADS = False
    try:
        yield
    finally:
        _ACCUMULATE_PARAM_GRADS = previous


#: process-wide source of parameter version numbers; drawing every version
#: from one counter makes a version globally unique, so a (version, shape)
#: pair can never collide across Parameter instances -- swapping a layer's
#: Parameter object for a fresh one is indistinguishable from a mutation to
#: any cache keyed on the version
_VERSION_COUNTER = count(1)


class Parameter:
    """A trainable tensor with an accumulated gradient.

    Every (re)assignment of :attr:`value` advances the :attr:`version`
    counter to a fresh process-unique number.  Downstream caches keyed by
    parameter content -- most importantly the fused GEMM kernels' per-layer
    weight decompositions (:mod:`repro.arith.kernels`) -- use it to detect
    mutation *and* object replacement.  All mutation paths in this codebase
    go through assignment (optimisers use ``p.value -= ...``, which re-binds
    through the setter); code that writes *into* the array
    (``p.value[i] = ...``) must call :meth:`bump_version`.
    """

    def __init__(self, value: np.ndarray, name: str = "param"):
        self.value = np.asarray(value, dtype=np.float32)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def value(self) -> np.ndarray:
        return self._value

    @value.setter
    def value(self, new_value: np.ndarray) -> None:
        self._value = np.asarray(new_value, dtype=np.float32)
        self._version = next(_VERSION_COUNTER)

    @property
    def version(self) -> int:
        """Content-version token: strictly increasing, process-unique."""
        return self._version

    def bump_version(self) -> None:
        """Mark in-place array mutation that bypassed the ``value`` setter."""
        self._version = next(_VERSION_COUNTER)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.value.shape

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"


class Module:
    """Base class of all layers."""

    def __init__(self) -> None:
        self.training = False

    # ------------------------------------------------------------------ API
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        """Trainable parameters of this layer (empty by default)."""
        return []

    def set_training(self, training: bool) -> None:
        self.training = training

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}()"


class Conv2d(Module):
    """Exact 2D convolution layer (the reference hardware: exact FP32 MACs)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng: Optional[np.random.Generator] = None,
        name: str = "conv",
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.name = name
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            he_normal((out_channels, in_channels, kernel_size, kernel_size), fan_in, rng),
            name=f"{name}.weight",
        )
        self.bias = Parameter(zeros((out_channels,)), name=f"{name}.bias")
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, int, int, int]]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, cols = F.conv2d_forward(
            x,
            self.weight.value,
            self.bias.value,
            self.stride,
            self.padding,
            batch_invariant=not self.training,
        )
        self._cache = (cols, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cols, x_shape = self._cache
        grad_in, grad_w, grad_b = F.conv2d_backward(
            grad_out,
            cols,
            x_shape,
            self.weight.value,
            self.stride,
            self.padding,
            with_param_grads=_ACCUMULATE_PARAM_GRADS,
            batch_invariant=not self.training,
        )
        if _ACCUMULATE_PARAM_GRADS:
            self.weight.grad += grad_w
            self.bias.grad += grad_b
        return grad_in

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding})"
        )


class Linear(Module):
    """Fully connected layer."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        name: str = "fc",
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.name = name
        self.weight = Parameter(
            he_normal((out_features, in_features), in_features, rng), name=f"{name}.weight"
        )
        self.bias = Parameter(zeros((out_features,)), name=f"{name}.bias")
        self._cache: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache = x
        if self.training:
            # training passes are batch-shaped anyway (BatchNorm, batch-mean
            # loss): keep the single fused GEMM
            out = x @ self.weight.value.T
        else:
            # batch-invariant contraction: each row's logits are bitwise
            # independent of the batch size (see repro.nn.functional docstring)
            out = F.linear_forward_values(x, self.weight.value)
        return (out + self.bias.value).astype(np.float32)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x = self._cache
        if _ACCUMULATE_PARAM_GRADS:
            self.weight.grad += grad_out.T @ x
            self.bias.grad += grad_out.sum(axis=0)
        if self.training:
            grad_in = grad_out @ self.weight.value
        else:
            grad_in = F.linear_backward_values(grad_out, self.weight.value)
        return grad_in.astype(np.float32)

    def parameters(self) -> List[Parameter]:
        return [self.weight, self.bias]

    def __repr__(self) -> str:  # pragma: no cover
        return f"Linear({self.in_features}, {self.out_features})"


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, self._mask = F.relu_forward(x)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return F.relu_backward(grad_out, self._mask)


class MaxPool2d(Module):
    """Max pooling layer."""

    def __init__(self, kernel_size: int = 2, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, int, int, int]]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out, argmax = F.maxpool2d_forward(x, self.kernel_size, self.stride)
        self._cache = (argmax, x.shape)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        argmax, x_shape = self._cache
        return F.maxpool2d_backward(grad_out, argmax, x_shape, self.kernel_size, self.stride)

    def __repr__(self) -> str:  # pragma: no cover
        return f"MaxPool2d(kernel_size={self.kernel_size}, stride={self.stride})"


class Flatten(Module):
    """Flatten all but the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._shape)


class Dropout(Module):
    """Inverted dropout; identity in evaluation mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self.rng = rng or np.random.default_rng(0)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep).astype(np.float32) / keep
        return (x * self._mask).astype(np.float32)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return (grad_out * self._mask).astype(np.float32)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Dropout(p={self.p})"


class BatchNorm2d(Module):
    """Batch normalisation over the channel dimension of ``(N, C, H, W)`` inputs."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5, name: str = "bn"):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features, dtype=np.float32), name=f"{name}.gamma")
        self.beta = Parameter(np.zeros(num_features, dtype=np.float32), name=f"{name}.beta")
        self.running_mean = np.zeros(num_features, dtype=np.float32)
        self.running_var = np.ones(num_features, dtype=np.float32)
        self._cache: Optional[Dict[str, np.ndarray]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError("BatchNorm2d expects (N, C, H, W) inputs")
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mean = self.running_mean
            var = self.running_var
        mean_b = mean.reshape(1, -1, 1, 1)
        std_b = np.sqrt(var + self.eps).reshape(1, -1, 1, 1)
        x_hat = (x - mean_b) / std_b
        out = self.gamma.value.reshape(1, -1, 1, 1) * x_hat + self.beta.value.reshape(1, -1, 1, 1)
        self._cache = {"x_hat": x_hat, "std": std_b, "training": np.array(self.training)}
        return out.astype(np.float32)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat = self._cache["x_hat"]
        std = self._cache["std"]
        was_training = bool(self._cache["training"])
        if _ACCUMULATE_PARAM_GRADS:
            self.gamma.grad += (grad_out * x_hat).sum(axis=(0, 2, 3))
            self.beta.grad += grad_out.sum(axis=(0, 2, 3))
        gamma_b = self.gamma.value.reshape(1, -1, 1, 1)
        if not was_training:
            # running statistics are constants w.r.t. the input
            return (grad_out * gamma_b / std).astype(np.float32)
        n = grad_out.shape[0] * grad_out.shape[2] * grad_out.shape[3]
        grad_xhat = grad_out * gamma_b
        grad_in = (
            grad_xhat
            - grad_xhat.mean(axis=(0, 2, 3), keepdims=True)
            - x_hat * (grad_xhat * x_hat).mean(axis=(0, 2, 3), keepdims=True)
        ) / std
        del n
        return grad_in.astype(np.float32)

    def parameters(self) -> List[Parameter]:
        return [self.gamma, self.beta]

    def __repr__(self) -> str:  # pragma: no cover
        return f"BatchNorm2d({self.num_features})"
