"""Optimisers.

The paper trains LeNet-5 with Adam and AlexNet with SGD; both are provided.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.layers import Parameter


class Optimizer:
    """Base optimiser over a list of :class:`Parameter` objects."""

    def __init__(self, parameters: Iterable[Parameter]):
        self.parameters: List[Parameter] = list(parameters)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            if self.momentum:
                v *= self.momentum
                v += grad
                update = v
            else:
                update = grad
            p.value -= self.lr * update


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
