"""Functional primitives: im2col convolution, pooling, activations, softmax.

All functions operate on ``float32`` arrays in ``(N, C, H, W)`` layout and come
with analytic backward companions, which is what the gradient-based adversarial
attacks (FGSM, PGD, JSMA, C&W, DeepFool) need.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


# --------------------------------------------------------------------- im2col
def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution / pooling window."""
    return (size + 2 * padding - kernel) // stride + 1


def conv_geometry(
    h: int, w: int, kernel, stride: int, padding: int
) -> Tuple[int, int, int]:
    """``(out_h, out_w, out_h * out_w)`` of a convolution window.

    ``kernel`` is a single size or a ``(kh, kw)`` pair.  The third element is
    the ``L`` (flattened spatial) extent of the im2col GEMM formulation
    shared by the exact and the approximate convolutions.
    """
    kh, kw = kernel if isinstance(kernel, tuple) else (kernel, kernel)
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    return out_h, out_w, out_h * out_w


def im2col(
    x: np.ndarray, kernel: Tuple[int, int], stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel:
        ``(kh, kw)`` window size.

    Returns
    -------
    Array of shape ``(N, C * kh * kw, out_h * out_w)``.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"invalid convolution geometry: input {h}x{w}, kernel {kh}x{kw}, "
            f"stride {stride}, padding {padding}"
        )
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant")

    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        i_end = i + stride * out_h
        for j in range(kw):
            j_end = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_end:stride, j:j_end:stride]
    return cols.reshape(n, c * kh * kw, out_h * out_w)


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Inverse of :func:`im2col` (accumulating overlapping patches)."""
    n, c, h, w = input_shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + stride * out_h
        for j in range(kw):
            j_end = j + stride * out_w
            padded[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j, :, :]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


# ---------------------------------------------------------------- convolution
def conv2d_forward(
    x: np.ndarray, weight: np.ndarray, bias: np.ndarray, stride: int = 1, padding: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact convolution forward pass.

    Returns ``(output, columns)`` where ``columns`` is the im2col buffer needed
    by the backward pass.
    """
    n, _, h, w = x.shape
    f, _, kh, kw = weight.shape
    cols = im2col(x, (kh, kw), stride, padding)  # (N, C*kh*kw, L)
    w_mat = weight.reshape(f, -1)  # (F, C*kh*kw)
    out = np.einsum("fk,nkl->nfl", w_mat, cols, optimize=True)
    out += bias.reshape(1, f, 1)
    out_h, out_w, _ = conv_geometry(h, w, (kh, kw), stride, padding)
    return out.reshape(n, f, out_h, out_w).astype(np.float32), cols


def conv2d_backward(
    grad_out: np.ndarray,
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    weight: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass of :func:`conv2d_forward`.

    Returns ``(grad_input, grad_weight, grad_bias)``.
    """
    n, f, out_h, out_w = grad_out.shape
    _, _, kh, kw = weight.shape
    grad_mat = grad_out.reshape(n, f, out_h * out_w)  # (N, F, L)
    w_mat = weight.reshape(f, -1)  # (F, K)

    grad_weight = np.einsum("nfl,nkl->fk", grad_mat, cols, optimize=True).reshape(weight.shape)
    grad_bias = grad_out.sum(axis=(0, 2, 3))
    grad_cols = np.einsum("fk,nfl->nkl", w_mat, grad_mat, optimize=True)
    grad_input = col2im(grad_cols, x_shape, (kh, kw), stride, padding)
    return (
        grad_input.astype(np.float32),
        grad_weight.astype(np.float32),
        grad_bias.astype(np.float32),
    )


# -------------------------------------------------------------------- pooling
def maxpool2d_forward(
    x: np.ndarray, kernel: int = 2, stride: int = 2
) -> Tuple[np.ndarray, np.ndarray]:
    """Max pooling forward pass; returns ``(output, argmax_indices)``."""
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)
    # view patches via im2col over each channel independently
    cols = im2col(x.reshape(n * c, 1, h, w), (kernel, kernel), stride, 0)
    cols = cols.reshape(n * c, kernel * kernel, out_h * out_w)
    argmax = cols.argmax(axis=1)  # (N*C, L)
    out = np.take_along_axis(cols, argmax[:, np.newaxis, :], axis=1).squeeze(1)
    return out.reshape(n, c, out_h, out_w).astype(np.float32), argmax


def maxpool2d_backward(
    grad_out: np.ndarray,
    argmax: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int = 2,
    stride: int = 2,
) -> np.ndarray:
    """Backward pass of :func:`maxpool2d_forward`."""
    n, c, h, w = x_shape
    _, _, out_h, out_w = grad_out.shape
    grad_cols = np.zeros((n * c, kernel * kernel, out_h * out_w), dtype=np.float32)
    grad_flat = grad_out.reshape(n * c, out_h * out_w)
    np.put_along_axis(grad_cols, argmax[:, np.newaxis, :], grad_flat[:, np.newaxis, :], axis=1)
    grad_input = col2im(grad_cols, (n * c, 1, h, w), (kernel, kernel), stride, 0)
    return grad_input.reshape(n, c, h, w).astype(np.float32)


# ---------------------------------------------------------------- activations
def relu_forward(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """ReLU forward; returns ``(output, mask)``."""
    mask = x > 0
    return (x * mask).astype(np.float32), mask


def relu_backward(grad_out: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """ReLU backward."""
    return (grad_out * mask).astype(np.float32)


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    z = logits - logits.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return (e / e.sum(axis=axis, keepdims=True)).astype(np.float32)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    z = logits - logits.max(axis=axis, keepdims=True)
    return (z - np.log(np.exp(z).sum(axis=axis, keepdims=True))).astype(np.float32)
