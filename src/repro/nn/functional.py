"""Functional primitives: im2col convolution, pooling, activations, softmax.

All functions operate on ``float32`` arrays in ``(N, C, H, W)`` layout and come
with analytic backward companions, which is what the gradient-based adversarial
attacks (FGSM, PGD, JSMA, C&W, DeepFool) need.

Batch invariance
----------------
Every *input-dependent* GEMM in this module is issued so that a given
example's outputs (and input gradients) are bitwise independent of the batch
it rode in with.  BLAS picks different micro-kernels -- with different
floating-point reduction orders -- depending on the operand widths, so a
naive ``x @ W.T`` at batch 1 does not reproduce the bits of the same row
inside a batch-8 call.  Two constructions restore invariance:

* convolutions contract ``weight @ cols[i]`` one example at a time: the GEMM
  shape ``(F, K) x (K, L)`` is a constant of the layer geometry, so every
  call -- whatever the batch size -- takes the identical BLAS path;
* dense contractions go through :func:`batch_invariant_matmul`, which puts
  the batch on the GEMM's *column* dimension and issues fixed-width,
  zero-padded column blocks: each output column is then a pure function of
  its own input column, independent of position and neighbours.

Parameter-gradient GEMMs (``grad.T @ x``) reduce *over* the batch and are
inherently batch-shaped; they only feed training and keep the fast fused
path.  The batched attack engine (:mod:`repro.attacks.batched`) relies on
this contract for its bit-for-bit active-set rollouts.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: column width of every :func:`batch_invariant_matmul` BLAS call.  Any fixed
#: value works (calls of one constant shape always take one BLAS path); 32
#: keeps the zero-padding waste of small active-set batches low while leaving
#: per-call overhead negligible for wide evaluation batches.
GEMM_COLUMN_BLOCK = 32


def batch_invariant_matmul(a: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """``a @ cols`` with bitwise column-stable results.

    ``a`` is the fixed operand (weights), ``cols`` carries one example per
    column.  The product is issued in :data:`GEMM_COLUMN_BLOCK`-wide column
    blocks, the ragged tail zero-padded to the full width, so every BLAS call
    has the same shape ``(M, K) x (K, block)`` and every output column gets
    the same floating-point reduction order regardless of how many other
    columns were in the caller's batch.
    """
    k, n = cols.shape
    block = GEMM_COLUMN_BLOCK
    if n == block:
        return np.asarray(a @ cols, dtype=np.float32)
    out = np.empty((a.shape[0], n), dtype=np.float32)
    pad = None
    for lo in range(0, n, block):
        hi = min(n, lo + block)
        if hi - lo == block:
            out[:, lo:hi] = a @ cols[:, lo:hi]
        else:
            if pad is None:
                pad = np.zeros((k, block), dtype=np.float32)
            pad[:, : hi - lo] = cols[:, lo:hi]
            out[:, lo:hi] = (a @ pad)[:, : hi - lo]
    return out


def linear_forward_values(x: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """``x @ weight.T`` computed batch-invariantly (batch on the column axis)."""
    return batch_invariant_matmul(weight, x.T).T


def linear_backward_values(grad_out: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """``grad_out @ weight`` computed batch-invariantly."""
    return batch_invariant_matmul(weight.T, grad_out.T).T


# --------------------------------------------------------------------- im2col
def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution / pooling window."""
    return (size + 2 * padding - kernel) // stride + 1


def conv_geometry(
    h: int, w: int, kernel, stride: int, padding: int
) -> Tuple[int, int, int]:
    """``(out_h, out_w, out_h * out_w)`` of a convolution window.

    ``kernel`` is a single size or a ``(kh, kw)`` pair.  The third element is
    the ``L`` (flattened spatial) extent of the im2col GEMM formulation
    shared by the exact and the approximate convolutions.
    """
    kh, kw = kernel if isinstance(kernel, tuple) else (kernel, kernel)
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    return out_h, out_w, out_h * out_w


def im2col(
    x: np.ndarray, kernel: Tuple[int, int], stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Rearrange image patches into columns.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel:
        ``(kh, kw)`` window size.

    Returns
    -------
    Array of shape ``(N, C * kh * kw, out_h * out_w)``.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"invalid convolution geometry: input {h}x{w}, kernel {kh}x{kw}, "
            f"stride {stride}, padding {padding}"
        )
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant")

    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        i_end = i + stride * out_h
        for j in range(kw):
            j_end = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_end:stride, j:j_end:stride]
    return cols.reshape(n, c * kh * kw, out_h * out_w)


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Inverse of :func:`im2col` (accumulating overlapping patches)."""
    n, c, h, w = input_shape
    kh, kw = kernel
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + stride * out_h
        for j in range(kw):
            j_end = j + stride * out_w
            padded[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j, :, :]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


# ---------------------------------------------------------------- convolution
def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    batch_invariant: bool = True,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact convolution forward pass.

    Returns ``(output, columns)`` where ``columns`` is the im2col buffer needed
    by the backward pass.  ``batch_invariant=False`` (training-mode passes,
    which are batch-shaped anyway through BatchNorm and the batch-mean loss)
    keeps the fused whole-batch einsum instead of the per-example GEMMs.
    """
    n, _, h, w = x.shape
    f, _, kh, kw = weight.shape
    cols = im2col(x, (kh, kw), stride, padding)  # (N, C*kh*kw, L)
    w_mat = weight.reshape(f, -1)  # (F, C*kh*kw)
    out_h, out_w, l = conv_geometry(h, w, (kh, kw), stride, padding)
    if batch_invariant:
        # one (F, K) x (K, L) GEMM per example: the call shape is a constant
        # of the layer geometry, so each example's output is bitwise
        # independent of the batch size (see the module docstring)
        out = np.empty((n, f, l), dtype=np.float32)
        for i in range(n):
            out[i] = w_mat @ cols[i]
    else:
        out = np.einsum("fk,nkl->nfl", w_mat, cols, optimize=True)
    out += bias.reshape(1, f, 1)
    return out.reshape(n, f, out_h, out_w).astype(np.float32), cols


def conv2d_backward(
    grad_out: np.ndarray,
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    weight: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    with_param_grads: bool = True,
    batch_invariant: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward pass of :func:`conv2d_forward`.

    Returns ``(grad_input, grad_weight, grad_bias)``; with
    ``with_param_grads=False`` the parameter gradients are skipped (returned
    as ``None``) -- the attack-facing input-gradient path never reads them.
    ``batch_invariant=False`` (training) keeps the fused whole-batch einsum
    for the column gradient.
    """
    n, f, out_h, out_w = grad_out.shape
    _, _, kh, kw = weight.shape
    grad_mat = grad_out.reshape(n, f, out_h * out_w)  # (N, F, L)
    w_mat = weight.reshape(f, -1)  # (F, K)

    if with_param_grads:
        # parameter gradients reduce over the batch (training-only; no batch
        # invariance required) and keep the fused einsum path
        grad_weight = np.einsum("nfl,nkl->fk", grad_mat, cols, optimize=True).reshape(
            weight.shape
        )
        grad_bias = grad_out.sum(axis=(0, 2, 3))
    else:
        grad_weight = grad_bias = None
    if batch_invariant:
        # the input gradient feeds the attacks' BPDA path: per-example GEMMs
        # of constant shape (K, F) x (F, L), batch-invariant like the forward
        grad_cols = np.empty_like(cols)
        w_t = np.ascontiguousarray(w_mat.T)
        for i in range(len(grad_mat)):
            grad_cols[i] = w_t @ grad_mat[i]
    else:
        grad_cols = np.einsum("fk,nfl->nkl", w_mat, grad_mat, optimize=True)
    grad_input = col2im(grad_cols, x_shape, (kh, kw), stride, padding)
    return (
        grad_input.astype(np.float32),
        grad_weight.astype(np.float32) if grad_weight is not None else None,
        grad_bias.astype(np.float32) if grad_bias is not None else None,
    )


# -------------------------------------------------------------------- pooling
def maxpool2d_forward(
    x: np.ndarray, kernel: int = 2, stride: int = 2
) -> Tuple[np.ndarray, np.ndarray]:
    """Max pooling forward pass; returns ``(output, argmax_indices)``."""
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, 0)
    out_w = conv_output_size(w, kernel, stride, 0)
    # view patches via im2col over each channel independently
    cols = im2col(x.reshape(n * c, 1, h, w), (kernel, kernel), stride, 0)
    cols = cols.reshape(n * c, kernel * kernel, out_h * out_w)
    argmax = cols.argmax(axis=1)  # (N*C, L)
    out = np.take_along_axis(cols, argmax[:, np.newaxis, :], axis=1).squeeze(1)
    return out.reshape(n, c, out_h, out_w).astype(np.float32), argmax


def maxpool2d_backward(
    grad_out: np.ndarray,
    argmax: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int = 2,
    stride: int = 2,
) -> np.ndarray:
    """Backward pass of :func:`maxpool2d_forward`."""
    n, c, h, w = x_shape
    _, _, out_h, out_w = grad_out.shape
    grad_cols = np.zeros((n * c, kernel * kernel, out_h * out_w), dtype=np.float32)
    grad_flat = grad_out.reshape(n * c, out_h * out_w)
    np.put_along_axis(grad_cols, argmax[:, np.newaxis, :], grad_flat[:, np.newaxis, :], axis=1)
    grad_input = col2im(grad_cols, (n * c, 1, h, w), (kernel, kernel), stride, 0)
    return grad_input.reshape(n, c, h, w).astype(np.float32)


# ---------------------------------------------------------------- activations
def relu_forward(x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """ReLU forward; returns ``(output, mask)``."""
    mask = x > 0
    return (x * mask).astype(np.float32), mask


def relu_backward(grad_out: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """ReLU backward."""
    return (grad_out * mask).astype(np.float32)


def row_sums(a: np.ndarray) -> np.ndarray:
    """Per-row sums of a 2D array, bitwise independent of the row count.

    ``a.sum(axis=-1)`` lets numpy pick a reduction strategy based on the
    *outer* dimension, so the same row can sum to different bits inside a
    batch-8 array than alone -- one 1D reduction per row always takes one
    code path.  (Order-exact reductions -- ``max``, ``argmax``, ``argsort``
    -- don't need this: only floating-point *accumulation* is order-
    sensitive.)
    """
    out = np.empty(a.shape[0], dtype=a.dtype)
    for i in range(a.shape[0]):
        out[i] = a[i].sum()
    return out


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax (batch-invariant along the class axis)."""
    z = logits - logits.max(axis=axis, keepdims=True)
    e = np.exp(z)
    if e.ndim == 2 and axis in (-1, 1):
        denominator = row_sums(e)[:, np.newaxis]
    else:  # pragma: no cover - no 2D class axis to stabilise
        denominator = e.sum(axis=axis, keepdims=True)
    return (e / denominator).astype(np.float32)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    z = logits - logits.max(axis=axis, keepdims=True)
    return (z - np.log(np.exp(z).sum(axis=axis, keepdims=True))).astype(np.float32)
