"""Weight initialisation helpers."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def he_normal(
    shape: Tuple[int, ...], fan_in: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """He/Kaiming normal initialisation, appropriate for ReLU networks."""
    rng = rng or np.random.default_rng(0)
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def glorot_uniform(
    shape: Tuple[int, ...], fan_in: int, fan_out: int, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    rng = rng or np.random.default_rng(0)
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape, dtype=np.float32)
