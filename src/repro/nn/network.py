"""The :class:`Sequential` network container."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.nn.functional import softmax
from repro.nn.layers import Module, Parameter


class Sequential(Module):
    """A feed-forward stack of layers evaluated in order.

    In addition to ``forward``/``backward`` the container provides the
    prediction helpers the attack and evaluation code relies on
    (``predict_logits``, ``predict_proba``, ``predict``) and simple parameter
    (de)serialisation so a trained exact model's weights can be dropped into an
    approximate or quantised copy without retraining.
    """

    def __init__(self, layers: Iterable[Module], name: str = "model"):
        super().__init__()
        self.layers: List[Module] = list(layers)
        self.name = name

    # ------------------------------------------------------------------ core
    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.asarray(x, dtype=np.float32)
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def set_training(self, training: bool) -> None:
        self.training = training
        for layer in self.layers:
            layer.set_training(training)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------ prediction
    def predict_logits(self, x: np.ndarray) -> np.ndarray:
        """Raw class scores (evaluation mode)."""
        was_training = self.training
        self.set_training(False)
        try:
            return self.forward(x)
        finally:
            self.set_training(was_training)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Softmax class probabilities."""
        return softmax(self.predict_logits(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        return self.predict_logits(x).argmax(axis=1)

    # --------------------------------------------------------- serialisation
    #: non-trainable per-layer buffers that must survive save/load (BatchNorm
    #: running statistics)
    _BUFFER_NAMES = ("running_mean", "running_var")

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy all parameter values (and buffers), keyed by layer index and name."""
        state: Dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for p in layer.parameters():
                state[f"{i}:{p.name}"] = p.value.copy()
            for buffer_name in self._BUFFER_NAMES:
                if hasattr(layer, buffer_name):
                    state[f"{i}:buffer.{buffer_name}"] = np.asarray(
                        getattr(layer, buffer_name), dtype=np.float32
                    ).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values previously produced by :meth:`state_dict`.

        Buffer entries (BatchNorm running statistics) are optional for backward
        compatibility with checkpoints written before they were tracked.
        """
        own: Dict[str, Parameter] = {}
        buffers: Dict[str, tuple] = {}
        for i, layer in enumerate(self.layers):
            for p in layer.parameters():
                own[f"{i}:{p.name}"] = p
            for buffer_name in self._BUFFER_NAMES:
                if hasattr(layer, buffer_name):
                    buffers[f"{i}:buffer.{buffer_name}"] = (layer, buffer_name)
        missing = set(own) - set(state)
        unexpected = set(state) - set(own) - set(buffers)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}")
        for key, param in own.items():
            value = np.asarray(state[key], dtype=np.float32)
            if value.shape != param.value.shape:
                raise ValueError(f"shape mismatch for {key}: {value.shape} vs {param.value.shape}")
            param.value = value.copy()
        for key, (layer, buffer_name) in buffers.items():
            if key in state:
                setattr(layer, buffer_name, np.asarray(state[key], dtype=np.float32).copy())

    def save(self, path: str) -> None:
        """Persist parameters to an ``.npz`` file."""
        np.savez(path, **self.state_dict())

    def load(self, path: str) -> None:
        """Load parameters from an ``.npz`` file produced by :meth:`save`."""
        with np.load(path) as data:
            self.load_state_dict({k: data[k] for k in data.files})

    # -------------------------------------------------------------- utility
    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return int(sum(p.value.size for p in self.parameters()))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        inner = ",\n  ".join(repr(l) for l in self.layers)
        return f"Sequential(name={self.name!r}, layers=[\n  {inner}\n])"
