"""``python -m repro`` -- command line front end of the experiment pipeline.

Commands
--------

``list [--json]``
    Enumerate the experiment catalog (every paper table / figure).
``info <experiment> [--fast] [--json]``
    Show one experiment's resolved declarative spec, followed by its planned
    grid cells with their cache digests and hit/stale/cold status -- a
    run-cost preview that resolves no models and computes nothing.
    ``--json`` emits only the exact machine-readable spec the service's
    ``POST /jobs`` accepts inline (round-trippable; no cell section).
``run <experiment> [...] [--fast] [--jobs N] [--resume] [--remote URL]``
    Execute experiments through the :class:`~repro.pipeline.runner.Runner`,
    printing the paper-style table and writing ``results/<name>.txt`` and
    ``results/<name>.json``.  ``run all`` executes the whole catalog.
    ``--fast`` switches to the smoke-test profile (small zoo models, few
    attack samples, scaled-down attack iterations).  ``--jobs`` shards the
    run's grid cells (and, within the attack cells, the victim examples)
    across worker processes -- the default ``auto`` uses every available
    core, and any value is bit-for-bit identical to ``--jobs 1``.  All
    requested experiments are planned as one deduplicated cell graph, so
    ``run all`` computes each shared cell once.  Every run writes an
    incremental manifest of completed cells; after a crash (or a
    ``CellExecutionError``) ``--resume`` proves in the telemetry that only
    unfinished cells are recomputed (see ``docs/faults.md``).  ``--remote``
    layers a ``serve --share-store`` peer's artifact cache under this run
    (fill-through reads, async publication; see ``docs/store-remote.md``).
``serve [--host H] [--port P] [--workers N] [--jobs N] [--share-store]``
    Start the long-lived robustness-evaluation service: an HTTP API with a
    job queue in front of the same runner (see :mod:`repro.service`).
    ``--share-store`` additionally exposes the artifact-exchange endpoints
    so ``run --remote`` clients can trade cached cells with this service.
``cache stats [--json] [--remote URL]`` / ``cache gc [--budget SIZE] [--stale]`` /
``cache explain <digest>``
    Inspect and garbage-collect the content-addressed artifact store behind
    the cell cache (see :mod:`repro.store`).  ``stats`` includes a staleness
    breakdown (fresh / stale / unknown against the live dependency
    fingerprints), ``gc --stale`` reclaims cells superseded by code changes,
    and ``explain`` shows which recorded dependency of one artifact moved
    (see :mod:`repro.pipeline.fingerprints` and ``docs/caching.md``).
``trace <trace.ndjson | result.json> [--chrome OUT]``
    Summarise a traced run (``REPRO_TRACE=1 ... run``) as a per-span table
    and per-cell timeline, or export Chrome trace-event JSON for
    https://ui.perfetto.dev.  Also accepts an untraced ``results/*.json``
    (a synthetic timeline is rebuilt from its telemetry).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.parallel.engine import CellExecutionError
from repro.pipeline import EXPERIMENTS, Runner, get_experiment, list_experiments
from repro.registry import RegistryError


def _jobs_value(value: str):
    """argparse type for ``--jobs``: ``auto`` or a positive integer."""
    if value == "auto":
        return value
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a positive integer or 'auto', got {value!r}")
    if jobs < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer or 'auto', got {value!r}")
    return jobs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Defensive Approximation (ASPLOS 2021) experiment pipeline",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", help="enumerate the experiment catalog")
    list_cmd.add_argument(
        "--json",
        action="store_true",
        help="emit the catalog as a JSON array of {name, kind, title}",
    )

    info = sub.add_parser(
        "info", help="show one experiment's spec and its cells' cache status"
    )
    info.add_argument("experiment", help="catalog name (see `list`)")
    info.add_argument(
        "--fast",
        action="store_true",
        help="preview the --fast profile's cells instead of the full run's",
    )
    info.add_argument(
        "--cache-dir", default=None, help="cell-cache location (default: zoo cache)"
    )
    info.add_argument(
        "--json",
        action="store_true",
        help="emit only the round-trippable machine spec (what the service's "
        "POST /jobs accepts as an inline experiment); no cell section",
    )

    run = sub.add_parser("run", help="execute experiments and write results/")
    run.add_argument(
        "experiments",
        nargs="+",
        help="catalog names (see `list`), or `all` for the whole catalog",
    )
    run.add_argument(
        "--fast",
        action="store_true",
        help="smoke-test profile: small zoo models and attack budgets",
    )
    run.add_argument(
        "--results-dir",
        default="results",
        help="where <name>.txt / <name>.json are written (default: results/)",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every grid cell, ignoring cached artifacts",
    )
    run.add_argument(
        "--jobs",
        default="auto",
        type=_jobs_value,
        metavar="N",
        help="worker processes for cell execution: a positive integer, or "
        "'auto' for the CPU count (default).  Results are identical for "
        "every value.",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted run: cells the previous run's manifest "
        "proves complete (and still cached) are skipped, and counted as "
        "resumed in the telemetry",
    )
    run.add_argument(
        "--cache-dir",
        default=None,
        help="cell-cache location (default: zoo cache)",
    )
    run.add_argument(
        "--remote",
        default=None,
        metavar="URL",
        help="artifact-exchange peer (a `serve --share-store` base URL, e.g. "
        "http://127.0.0.1:8642): local cache misses fill through from the "
        "peer and computed cells publish back; a dead or lying peer "
        "degrades to local-only compute with identical results",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress progress lines (tables still print)"
    )

    serve = sub.add_parser(
        "serve", help="start the long-lived robustness-evaluation HTTP service"
    )
    serve.add_argument("--host", default=None, help="bind address (default: 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=None, help="bind port (default: 8642; 0 = ephemeral)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrent jobs executing at once (default: 2)",
    )
    serve.add_argument(
        "--jobs",
        default=1,
        type=_jobs_value,
        metavar="N",
        help="worker processes per job's cell execution (default: 1; "
        "'auto' for the CPU count)",
    )
    serve.add_argument(
        "--results-dir",
        default="results",
        help="where job results are persisted and GET /results serves from",
    )
    serve.add_argument(
        "--cache-dir", default=None, help="artifact-store location (default: zoo cache)"
    )
    serve.add_argument(
        "--share-store",
        action="store_true",
        help="expose the artifact-exchange endpoints (GET/PUT "
        "/store/artifacts/...) so `run --remote` clients can trade cached "
        "cells with this service",
    )
    serve.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )

    cache = sub.add_parser(
        "cache", help="inspect / garbage-collect the cell artifact store"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    stats = cache_sub.add_parser("stats", help="artifact counts, bytes, active leases")
    stats.add_argument("--json", action="store_true", help="emit raw JSON")
    stats.add_argument(
        "--cache-dir", default=None, help="store location (default: zoo cache)"
    )
    stats.add_argument(
        "--remote",
        default=None,
        metavar="URL",
        help="also show a `serve --share-store` peer's store occupancy "
        "(GET /store/stats on that URL)",
    )
    gc = cache_sub.add_parser(
        "gc", help="evict least-recently-read artifacts down to a byte budget"
    )
    gc.add_argument(
        "--budget",
        default=None,
        metavar="SIZE",
        help="byte budget like 512M or 2G (default: REPRO_STORE_BUDGET)",
    )
    gc.add_argument(
        "--stale",
        action="store_true",
        help="also drop every artifact whose recorded dependency fingerprints "
        "no longer match the live code (superseded cells)",
    )
    gc.add_argument(
        "--cache-dir", default=None, help="store location (default: zoo cache)"
    )
    explain = cache_sub.add_parser(
        "explain", help="show one cached cell's dependency fingerprints vs live code"
    )
    explain.add_argument(
        "cell", help="an artifact digest, or a unique digest prefix (>= 6 chars)"
    )
    explain.add_argument(
        "--cache-dir", default=None, help="store location (default: zoo cache)"
    )
    explain.add_argument("--json", action="store_true", help="emit raw JSON")

    trace = sub.add_parser(
        "trace", help="summarise a run trace / export Chrome trace-event JSON"
    )
    trace.add_argument(
        "path",
        help="a merged *.trace.ndjson (from REPRO_TRACE=1 run) or a "
        "results/<name>.json",
    )
    trace.add_argument(
        "--chrome",
        default=None,
        metavar="OUT",
        help="write Chrome trace-event JSON here (open at ui.perfetto.dev)",
    )
    trace.add_argument(
        "--json",
        action="store_true",
        help="emit the per-span aggregate as JSON instead of the text report",
    )
    return parser


def _cmd_list(as_json: bool) -> int:
    names = list_experiments()
    if as_json:
        catalog = [
            {"name": name, **{k: EXPERIMENTS.metadata(name)[k] for k in ("kind", "title")}}
            for name in names
        ]
        print(json.dumps(catalog, indent=2))
        return 0
    width = max(len(name) for name in names)
    for name in names:
        meta = EXPERIMENTS.metadata(name)
        print(f"{name.ljust(width)}  [{meta['kind']}]  {meta['title']}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    spec = get_experiment(args.experiment)
    if args.json:
        # the wire format: ExperimentSpec.from_dict round-trips this exactly,
        # so it can be edited and submitted to the service's POST /jobs
        print(json.dumps(spec.to_dict(), indent=2, sort_keys=False))
        return 0
    print(json.dumps(spec.to_dict(), indent=2, default=str))
    # the run-cost preview: plan the cell graph (no model resolution, no
    # compute) and classify each cell against the artifact store
    from repro.parallel.plan import build_plan, cache_outlook

    runner = Runner(fast=args.fast, cache_dir=args.cache_dir)
    plan = build_plan(runner, [spec])
    if not plan.tasks:
        print(f"\n# cells (fast={runner.fast}): none planned (legacy handler)")
        return 0
    outlook = cache_outlook(runner, plan)
    display = {"warm": "hit", "stale": "stale", "cold": "cold"}
    print(
        f"\n# cells (fast={runner.fast}): {len(plan.tasks)} total -- "
        f"{outlook['warm']} hit / {outlook['stale']} stale / {outlook['cold']} cold"
    )
    for cell in outlook["cells"]:
        line = f"#   {display[cell['status']].ljust(5)} {cell['kind'].ljust(16)} {cell['digest']}"
        if cell.get("superseded"):
            line += f"  (supersedes {', '.join(d[:10] for d in cell['superseded'])})"
        print(line)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names = list_experiments() if "all" in args.experiments else list(args.experiments)
    progress = None if args.quiet else lambda line: print(line, file=sys.stderr)
    runner = Runner(
        fast=args.fast,
        results_dir=args.results_dir,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        progress=progress,
        jobs=args.jobs,
        resume=args.resume,
        remote=args.remote,
    )

    def show(result) -> None:
        print(f"\n===== {result.name} =====")
        if result.title:
            print(f"# {result.title}")
        print(result.table)
        print(
            f"# wrote {args.results_dir}/{result.name}.txt and .json "
            f"({result.elapsed_seconds:.1f}s, cells: {result.cache_hits} cached / "
            f"{result.cache_misses} computed)"
        )

    runner.run_many(names, on_result=show)
    telemetry = runner.telemetry
    if telemetry.trace is not None:
        print(
            f"# trace: {telemetry.trace['spans']} spans from "
            f"{len(telemetry.trace['pids'])} process(es) -> {telemetry.trace['path']} "
            f"(inspect with `python -m repro trace {telemetry.trace['path']}`)"
        )
    print(
        f"\n# run summary: {telemetry.cells_total} cells "
        f"({telemetry.cache_hits} cached, {telemetry.cache_misses} computed, "
        f"{telemetry.compute_seconds:.1f}s compute) on {runner.jobs} worker(s)"
    )
    if any(telemetry.faults.values()):
        survived = ", ".join(f"{k}={v}" for k, v in telemetry.faults.items() if v)
        print(f"# fault tolerance: {survived}")
    if runner.remote is not None:
        remote = telemetry.remote_totals()
        print(
            f"# remote store: {remote['hits']} hit(s) / {remote['misses']} miss(es) "
            f"fetched, {remote['puts']} published, "
            f"{remote['rejected_checksum'] + remote['rejected_meta']} rejected, "
            f"{remote['timeouts'] + remote['errors']} transport error(s) "
            f"via {runner.remote}"
        )
    kernels = telemetry.snapshot().get("kernels", {})
    if kernels.get("fused_calls") or kernels.get("fallback_calls"):
        print(
            f"# gemm kernels: {kernels['fused_calls']} fused / "
            f"{kernels['fallback_calls']} fallback calls, "
            f"{kernels['fused_macs'] / 1e6:.1f}M fused MACs, "
            f"{kernels['weight_cache_hits']} weight-cache hits"
        )
    queries = telemetry.attack_queries()
    if queries.get("query_calls") or queries.get("gradient_calls"):
        print(
            f"# attack queries: {queries['query_samples']} samples over "
            f"{queries['query_calls']} calls "
            f"(mean batch {queries['mean_query_batch']}, "
            f"{queries['query_calls_batch1']} at batch 1); "
            f"gradients: {queries['gradient_samples']} over "
            f"{queries['gradient_calls']} calls "
            f"(mean batch {queries['mean_gradient_batch']})"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import DEFAULT_HOST, DEFAULT_PORT, serve

    progress = None if args.quiet else lambda line: print(line, file=sys.stderr)
    return serve(
        host=args.host if args.host is not None else DEFAULT_HOST,
        port=args.port if args.port is not None else DEFAULT_PORT,
        workers=args.workers,
        jobs=args.jobs,
        results_dir=args.results_dir,
        cache_dir=args.cache_dir,
        progress=progress,
        share_store=args.share_store,
    )


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.experiments.zoo import CACHE_DIR
    from repro.store import ArtifactStore, parse_size

    root = args.cache_dir if args.cache_dir is not None else CACHE_DIR / "pipeline"
    store = ArtifactStore(root)
    if args.cache_command == "stats":
        from repro.pipeline.fingerprints import store_staleness

        stats = store.stats()
        staleness = store_staleness(store)
        stats["staleness"] = staleness["totals"]
        peer_stats = peer_error = peer_url = None
        if args.remote:
            from repro.store import RemoteStoreClient, RemoteStoreError

            client = RemoteStoreClient(args.remote, retries=0)
            peer_url = client.base_url
            try:
                peer_stats = client.remote_store_stats()
            except RemoteStoreError as exc:
                peer_error = str(exc)
            stats["remote"] = {
                "url": peer_url,
                "stats": peer_stats,
                "error": peer_error,
            }
        if args.json:
            print(json.dumps(stats, indent=2))
            return 0
        budget = stats["budget_bytes"]
        fresh, stale, unknown = (
            staleness["totals"]["fresh"],
            staleness["totals"]["stale"],
            staleness["totals"]["unknown"],
        )
        print(f"store:    {stats['root']}")
        print(
            f"artifacts: {stats['artifacts']} "
            f"({stats['bytes'] / 1e6:.2f} MB"
            + (f" of {budget / 1e6:.2f} MB budget" if budget else ", no budget")
            + ")"
        )
        print(
            f"staleness: {fresh} fresh / {stale} stale / {unknown} unknown"
            + (" (stale: reclaim with `cache gc --stale`)" if stale else "")
        )
        print(f"leases:   {stats['active_leases']} active (TTL {stats['lease_ttl_seconds']:.0f}s)")
        corrupt = stats.get("counters", {}).get("corrupt_unlinked", 0)
        if corrupt:
            print(
                f"corrupt:  {corrupt} unreadable artifact(s) unlinked on read "
                f"(this process)"
            )
        if peer_url is not None:
            if peer_error is not None:
                print(f"remote:   {peer_url} unreachable ({peer_error})")
            else:
                print(
                    f"remote:   {peer_url}: {peer_stats.get('artifacts', 0)} artifacts "
                    f"({peer_stats.get('bytes', 0) / 1e6:.2f} MB), "
                    f"{peer_stats.get('active_leases', 0)} active lease(s)"
                )
        for namespace, info in sorted(stats["namespaces"].items()):
            by_ns = staleness["namespaces"].get(
                namespace, {"fresh": 0, "stale": 0, "unknown": 0}
            )
            print(
                f"  {namespace.ljust(24)} {str(info['artifacts']).rjust(5)} artifacts  "
                f"{info['bytes'] / 1e6:8.2f} MB  "
                f"({by_ns['fresh']} fresh / {by_ns['stale']} stale / "
                f"{by_ns['unknown']} unknown)"
            )
        return 0
    if args.cache_command == "gc":
        report: dict = {}
        if args.stale:
            from repro.pipeline.fingerprints import collect_stale

            stale_cells = collect_stale(store)
            removed = sum(
                1 for namespace, digest in stale_cells if store.remove(namespace, digest)
            )
            report["stale_removed"] = removed
        budget = parse_size(args.budget) if args.budget is not None else None
        report.update(store.gc(budget=budget))
        print(json.dumps(report, indent=2))
        return 0
    if args.cache_command == "explain":
        return _cmd_cache_explain(store, args)
    return 2  # pragma: no cover - argparse enforces the choices


def _cmd_cache_explain(store, args: argparse.Namespace) -> int:
    """``cache explain <digest>``: which recorded dependency moved, if any."""
    from repro.pipeline.fingerprints import diff_fingerprints, meta_status

    prefix = args.cell.strip().lower()
    if len(prefix) < 6:
        print("error: give at least 6 digest characters", file=sys.stderr)
        return 2
    matches = [
        (namespace, digest)
        for namespace, digest, _path, _stat in store._artifacts()
        if digest.startswith(prefix)
    ]
    if not matches:
        print(f"error: no artifact matches {prefix!r} under {store.root}", file=sys.stderr)
        return 2
    reports = []
    for namespace, digest in matches:
        meta = store.get_meta(namespace, digest)
        status = meta_status(meta)
        entry = {"namespace": namespace, "digest": digest, "status": status}
        if meta is not None:
            entry["content_key"] = meta.get("content_key")
            entry["fast"] = meta.get("fast")
            if isinstance(meta.get("deps"), dict):
                entry["deps"] = diff_fingerprints(meta["deps"])
        reports.append(entry)
    if args.json:
        print(json.dumps(reports if len(reports) > 1 else reports[0], indent=2))
        return 0
    for entry in reports:
        print(f"{entry['namespace']}/{entry['digest']}: {entry['status']}")
        if entry["status"] == "unknown":
            print(
                "  no provenance sidecar (written before per-cell fingerprints, "
                "or by a foreign tool); recompute to adopt one"
            )
            continue
        print(f"  content_key: {entry['content_key']}  fast={entry['fast']}")
        for key, diff in entry.get("deps", {}).items():
            verdict = "MOVED" if diff["moved"] else "ok"
            live = diff["live"] if diff["live"] is not None else "<gone>"
            print(
                f"  {key.ljust(22)} recorded {diff['recorded']}  "
                f"live {live}  {verdict}"
            )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.timeline import _aggregate, chrome_trace, load_spans, summarize

    path = Path(args.path)
    try:
        spans, source = load_spans(path)
    except OSError as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {path} is not a trace or result file: {exc}", file=sys.stderr)
        return 2
    if args.chrome:
        out = Path(args.chrome)
        out.write_text(json.dumps(chrome_trace(spans), indent=2) + "\n")
        print(f"# wrote {out} ({len(spans)} events; open at https://ui.perfetto.dev)")
    if args.json:
        pids = sorted({int(s.get("pid", 0)) for s in spans})
        print(
            json.dumps(
                {
                    "source": source,
                    "spans": len(spans),
                    "pids": pids,
                    "by_span": [
                        {"cat": cat, "name": name, "count": count, "total_ms": round(ms, 3)}
                        for cat, name, count, ms in _aggregate(spans)
                    ],
                },
                indent=2,
            )
        )
        return 0
    print(summarize(spans, source))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args.json)
        if args.command == "info":
            return _cmd_info(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command == "trace":
            return _cmd_trace(args)
    except RegistryError as exc:
        # unknown experiment/component: a clean one-line error, not a traceback
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except CellExecutionError as exc:
        # a cell died for good (retry budget exhausted): one line naming the
        # failing cell -- its message carries kind, digest and owning
        # experiment -- not a traceback.  Finished cells are cached and in
        # the run manifest, so --resume picks up where this run died.
        print(f"error: {exc}", file=sys.stderr)
        print("hint: completed cells are cached; rerun with --resume", file=sys.stderr)
        return 3
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
