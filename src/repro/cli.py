"""``python -m repro`` -- command line front end of the experiment pipeline.

Commands
--------

``list``
    Enumerate the experiment catalog (every paper table / figure).
``info <experiment>``
    Show one experiment's resolved declarative spec as JSON.
``run <experiment> [...] [--fast] [--jobs N]``
    Execute experiments through the :class:`~repro.pipeline.runner.Runner`,
    printing the paper-style table and writing ``results/<name>.txt`` and
    ``results/<name>.json``.  ``run all`` executes the whole catalog.
    ``--fast`` switches to the smoke-test profile (small zoo models, few
    attack samples, scaled-down attack iterations).  ``--jobs`` shards the
    run's grid cells (and, within the attack cells, the victim examples)
    across worker processes -- the default ``auto`` uses every available
    core, and any value is bit-for-bit identical to ``--jobs 1``.  All
    requested experiments are planned as one deduplicated cell graph, so
    ``run all`` computes each shared cell once.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.pipeline import EXPERIMENTS, Runner, get_experiment, list_experiments
from repro.registry import RegistryError


def _jobs_value(value: str):
    """argparse type for ``--jobs``: ``auto`` or a positive integer."""
    if value == "auto":
        return value
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a positive integer or 'auto', got {value!r}")
    if jobs < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer or 'auto', got {value!r}")
    return jobs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Defensive Approximation (ASPLOS 2021) experiment pipeline",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="enumerate the experiment catalog")

    info = sub.add_parser("info", help="show one experiment's declarative spec")
    info.add_argument("experiment", help="catalog name (see `list`)")

    run = sub.add_parser("run", help="execute experiments and write results/")
    run.add_argument(
        "experiments",
        nargs="+",
        help="catalog names (see `list`), or `all` for the whole catalog",
    )
    run.add_argument(
        "--fast",
        action="store_true",
        help="smoke-test profile: small zoo models and attack budgets",
    )
    run.add_argument(
        "--results-dir",
        default="results",
        help="where <name>.txt / <name>.json are written (default: results/)",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every grid cell, ignoring cached artifacts",
    )
    run.add_argument(
        "--jobs",
        default="auto",
        type=_jobs_value,
        metavar="N",
        help="worker processes for cell execution: a positive integer, or "
        "'auto' for the CPU count (default).  Results are identical for "
        "every value.",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress progress lines (tables still print)"
    )
    return parser


def _cmd_list() -> int:
    names = list_experiments()
    width = max(len(name) for name in names)
    for name in names:
        meta = EXPERIMENTS.metadata(name)
        print(f"{name.ljust(width)}  [{meta['kind']}]  {meta['title']}")
    return 0


def _cmd_info(name: str) -> int:
    spec = get_experiment(name)
    print(json.dumps(spec.to_dict(), indent=2, default=str))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names = list_experiments() if "all" in args.experiments else list(args.experiments)
    progress = None if args.quiet else lambda line: print(line, file=sys.stderr)
    runner = Runner(
        fast=args.fast,
        results_dir=args.results_dir,
        use_cache=not args.no_cache,
        progress=progress,
        jobs=args.jobs,
    )

    def show(result) -> None:
        print(f"\n===== {result.name} =====")
        if result.title:
            print(f"# {result.title}")
        print(result.table)
        print(
            f"# wrote {args.results_dir}/{result.name}.txt and .json "
            f"({result.elapsed_seconds:.1f}s, cells: {result.cache_hits} cached / "
            f"{result.cache_misses} computed)"
        )

    runner.run_many(names, on_result=show)
    telemetry = runner.telemetry
    print(
        f"\n# run summary: {telemetry.cells_total} cells "
        f"({telemetry.cache_hits} cached, {telemetry.cache_misses} computed, "
        f"{telemetry.compute_seconds:.1f}s compute) on {runner.jobs} worker(s)"
    )
    kernels = telemetry.snapshot().get("kernels", {})
    if kernels.get("fused_calls") or kernels.get("fallback_calls"):
        print(
            f"# gemm kernels: {kernels['fused_calls']} fused / "
            f"{kernels['fallback_calls']} fallback calls, "
            f"{kernels['fused_macs'] / 1e6:.1f}M fused MACs, "
            f"{kernels['weight_cache_hits']} weight-cache hits"
        )
    queries = telemetry.attack_queries()
    if queries.get("query_calls") or queries.get("gradient_calls"):
        print(
            f"# attack queries: {queries['query_samples']} samples over "
            f"{queries['query_calls']} calls "
            f"(mean batch {queries['mean_query_batch']}, "
            f"{queries['query_calls_batch1']} at batch 1); "
            f"gradients: {queries['gradient_samples']} over "
            f"{queries['gradient_calls']} calls "
            f"(mean batch {queries['mean_gradient_batch']})"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "info":
            return _cmd_info(args.experiment)
        if args.command == "run":
            return _cmd_run(args)
    except RegistryError as exc:
        # unknown experiment/component: a clean one-line error, not a traceback
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
