"""Multi-tenant content-addressed artifact store.

The pipeline's per-cell JSON cache started life as bare files guarded by a
``flock`` (PR 2).  This module generalises it into an :class:`ArtifactStore`
shared by every client of one cache directory -- CLI runs, pool workers and
the :mod:`repro.service` job queue -- with the read/write discipline of an
optimistically-fast MWMR register:

* **Lock-free optimistic reads.**  Artifacts are only ever published through
  an atomic same-directory rename, so a reader never observes a torn file:
  :meth:`ArtifactStore.get` is a plain ``read + json.loads`` with *no* lock
  taken.  This is the hot path -- a warm cache costs one ``open`` per cell.
* **Writer leases.**  A missing artifact is computed under a *lease*: a JSON
  claim file naming the writer (pid, host, token) with an expiry.  Leases are
  acquired/refreshed/released under a short ``flock`` critical section, but
  the claim itself is authoritative: a lease whose owner process has died
  (same host) or whose TTL has lapsed (hung or remote writer) is taken over
  by the next acquirer, so a crashed worker never wedges a cell.  Waiters
  poll the artifact optimistically and only fall back to lease acquisition
  when the writer vanishes -- contention is the slow path, not the default.
* **LRU eviction under a byte budget.**  :meth:`gc` evicts least-recently-read
  artifacts (reads touch mtimes) until the store fits ``budget`` bytes
  (``REPRO_STORE_BUDGET``, e.g. ``512M``); artifacts under an active lease
  are never evicted.  ``python -m repro cache stats|gc`` surfaces both.

Namespaces (one subdirectory per tenant -- the pipeline uses one per cell
kind) keep co-hosted workloads from colliding while still sharing one budget
and one lease table.
"""

from __future__ import annotations

import json
import os
import random
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union

from repro.counters import ProcessCounters
from repro.faults import FAULTS, lease_poll
from repro.obs import TRACER
from repro.parallel.locks import FileLock, atomic_write_json


class StoreStats(ProcessCounters):
    """Process-level artifact-store counters (lease traffic, eviction).

    Same snapshot/delta contract as the kernel and query counters; the
    service's ``/metrics`` endpoint exposes the running totals.  Wait time
    is tracked in microseconds (integer fields only) -- divide
    ``lease_wait_us`` by 1e6 for seconds.
    """

    _FIELDS = (
        "reads",
        "lease_acquires",
        "lease_busy",
        "stale_takeovers",
        "lease_waits",
        "lease_wait_us",
        "evictions",
        "evicted_bytes",
        "gc_runs",
        "corrupt_unlinked",
    )


#: process-wide store counters (consumers snapshot/delta like KERNEL_STATS)
STORE_STATS = StoreStats()

#: default writer-lease lifetime (seconds); ``REPRO_STORE_LEASE_TTL``
#: overrides it.  Same-host crashes are reclaimed immediately via a pid
#: liveness probe -- the TTL only bounds how long a *hung* (or remote)
#: writer can hold a cell.
DEFAULT_LEASE_TTL = 300.0

#: directories under the store root that hold bookkeeping, not artifacts
_RESERVED_DIRS = frozenset({"leases", "locks"})

_SIZE_SUFFIXES = {"k": 1024, "m": 1024**2, "g": 1024**3, "t": 1024**4}


def parse_size(text: Union[str, int, None]) -> Optional[int]:
    """``"512M"`` / ``"2G"`` / ``"1048576"`` -> bytes; empty/None -> ``None``."""
    if text is None or isinstance(text, int):
        return text
    text = text.strip().lower().replace("_", "")
    if not text:
        return None
    if text.endswith("b"):
        text = text[:-1]
    factor = 1
    if text and text[-1] in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[text[-1]]
        text = text[:-1]
    try:
        return max(0, int(float(text) * factor))
    except ValueError:
        raise ValueError(f"unparseable size {text!r} (expected e.g. '512M', '2G', bytes)")


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a pid on *this* host."""
    try:
        os.kill(int(pid), 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OverflowError, ValueError):
        return True  # exists but not ours / unprobeable: assume alive
    return True


@dataclass
class Lease:
    """An acquired writer claim on one ``(namespace, digest)`` artifact.

    Only the holder (matching ``token``) can refresh or release it; a stale
    release after a takeover is a silent no-op, so a resurrected writer can
    never drop the usurper's claim.
    """

    store: "ArtifactStore"
    namespace: str
    digest: str
    token: str
    ttl: float

    def refresh(self) -> bool:
        """Extend the claim's expiry; ``False`` if the lease was taken over."""
        return self.store._refresh_lease(self)

    def release(self) -> None:
        self.store._release_lease(self)

    def __enter__(self) -> "Lease":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class ArtifactStore:
    """Content-addressed JSON artifacts under ``root/<namespace>/<digest>.json``.

    Parameters
    ----------
    root:
        The store directory (shared by every cooperating process).
    budget:
        Byte budget for :meth:`gc`; ``None`` (default) reads
        ``REPRO_STORE_BUDGET`` (unset means unbounded).  When bounded, writes
        trigger opportunistic eviction.
    lease_ttl:
        Writer-lease lifetime in seconds; ``None`` reads
        ``REPRO_STORE_LEASE_TTL`` (default :data:`DEFAULT_LEASE_TTL`).
    """

    def __init__(
        self,
        root: Union[str, Path],
        budget: Union[str, int, None] = None,
        lease_ttl: Optional[float] = None,
    ):
        self.root = Path(root)
        if budget is None:
            budget = parse_size(os.environ.get("REPRO_STORE_BUDGET"))
        self.budget = parse_size(budget)
        if lease_ttl is None:
            raw = os.environ.get("REPRO_STORE_LEASE_TTL", "")
            try:
                lease_ttl = float(raw)
            except ValueError:
                lease_ttl = DEFAULT_LEASE_TTL
        self.lease_ttl = max(0.001, float(lease_ttl))
        self._host = socket.gethostname()
        self._token_counter = 0

    # ----------------------------------------------------------------- paths
    def path(self, namespace: str, digest: str) -> Path:
        """Where the artifact lives (the legacy cell-cache layout, unchanged)."""
        return self.root / self._safe(namespace) / f"{digest}.json"

    def meta_path(self, namespace: str, digest: str) -> Path:
        """Where the artifact's provenance sidecar lives (``.meta.json``).

        The sidecar records what the writer knew at publication time --
        for pipeline cells: the cell's content key and the dependency
        fingerprints it was computed under (see
        :mod:`repro.pipeline.fingerprints`).  Optional: artifacts written
        without one are still readable, just unclassifiable by staleness.
        """
        return self.root / self._safe(namespace) / f"{digest}.meta.json"

    def _lease_path(self, namespace: str, digest: str) -> Path:
        return self.root / "leases" / f"{self._safe(namespace)}.{digest}.lease"

    def _meta_lock(self, namespace: str, digest: str) -> FileLock:
        path = self.root / "leases" / f"{self._safe(namespace)}.{digest}.lock"
        return FileLock(path)

    @staticmethod
    def _safe(namespace: str) -> str:
        name = str(namespace).replace(os.sep, "_").replace("..", "_")
        if not name or name in _RESERVED_DIRS or name.startswith("."):
            raise ValueError(f"invalid store namespace {namespace!r}")
        return name

    # ----------------------------------------------------------- fast path IO
    def get(self, namespace: str, digest: str) -> Optional[Any]:
        """Optimistic lock-free read: the artifact value, or ``None``.

        Atomic publication means the file is either absent or complete --
        no lock is taken.  A corrupt artifact (pre-atomic-writes leftovers,
        a torn foreign write) is removed and treated as absent -- and counted
        (``StoreStats.corrupt_unlinked``), so the quiet data loss shows up in
        ``cache stats`` and the service's ``/metrics`` instead of vanishing.
        Successful reads touch the file's mtime so :meth:`gc` evicts in
        least-recently-*read* order.
        """
        STORE_STATS.reads += 1
        path = self.path(namespace, digest)
        try:
            value = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (ValueError, OSError):
            try:
                path.unlink()
                STORE_STATS.corrupt_unlinked += 1
            except OSError:
                pass
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        return value

    def contains(self, namespace: str, digest: str) -> bool:
        return self.path(namespace, digest).exists()

    def put(
        self,
        namespace: str,
        digest: str,
        value: Any,
        sort_keys: bool = True,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Atomically publish an artifact (readers see absent or complete).

        ``meta`` publishes a provenance sidecar (:meth:`meta_path`) *before*
        the artifact: a reader that sees the artifact is guaranteed to see
        its sidecar too, so staleness classification never races publication.
        """
        path = self.path(namespace, digest)
        if FAULTS.should_inject("store.torn_write", f"{namespace}:{digest}"):
            # simulate a non-atomic writer dying mid-write: half the payload
            # lands at the artifact path, no sidecar.  get() treats the torn
            # file as absent (unlink + recompute), so correctness holds -- the
            # cell is just not cached this time.
            path.parent.mkdir(parents=True, exist_ok=True)
            text = json.dumps(value, sort_keys=sort_keys)
            path.write_text(text[: max(1, len(text) // 2)])
            return path
        if meta is not None:
            atomic_write_json(self.meta_path(namespace, digest), meta, sort_keys=True)
        atomic_write_json(path, value, sort_keys=sort_keys)
        if self.budget is not None:
            self.gc()
        return path

    def get_meta(self, namespace: str, digest: str) -> Optional[Dict[str, Any]]:
        """The artifact's provenance sidecar, or ``None`` (absent / corrupt)."""
        try:
            meta = json.loads(self.meta_path(namespace, digest).read_text())
        except (FileNotFoundError, ValueError, OSError):
            return None
        return meta if isinstance(meta, dict) else None

    def remove(self, namespace: str, digest: str) -> bool:
        """Delete one artifact and its sidecar; ``True`` if anything went."""
        removed = False
        for path in (self.path(namespace, digest), self.meta_path(namespace, digest)):
            try:
                path.unlink()
                removed = True
            except OSError:
                pass
        return removed

    def meta_index(self, namespace: str) -> Dict[str, list]:
        """``{content_key: [digests]}`` over one namespace's sidecars.

        The pivot behind the warm/stale/cold plan outlook: a planned digest
        that is absent but whose *content key* appears here is a stale cell
        (same computation, superseded fingerprints), not a cold one.
        """
        index: Dict[str, list] = {}
        try:
            entries = sorted(os.scandir(self.root / self._safe(namespace)), key=lambda e: e.name)
        except (FileNotFoundError, ValueError):
            return index
        for entry in entries:
            if not entry.name.endswith(".meta.json"):
                continue
            digest = entry.name[: -len(".meta.json")]
            meta = self.get_meta(namespace, digest)
            if meta is not None and isinstance(meta.get("content_key"), str):
                index.setdefault(meta["content_key"], []).append(digest)
        return index

    # ------------------------------------------------------------- leases
    def try_lease(
        self, namespace: str, digest: str, ttl: Optional[float] = None
    ) -> Optional[Lease]:
        """Claim the writer lease, or ``None`` if a live writer holds it.

        A stale claim -- expired TTL, or a dead owner pid on this host -- is
        taken over on the spot.
        """
        ttl = self.lease_ttl if ttl is None else max(0.001, float(ttl))
        lease_path = self._lease_path(namespace, digest)
        with TRACER.span(
            "store.lease_acquire", cat="store", namespace=namespace, digest=digest[:12]
        ) as span:
            with self._meta_lock(namespace, digest):
                holder = self._read_claim(lease_path)
                if holder is not None and not self._stale(holder):
                    STORE_STATS.lease_busy += 1
                    span["outcome"] = "busy"
                    return None
                if holder is not None:
                    STORE_STATS.stale_takeovers += 1
                    span["outcome"] = "stale_takeover"
                else:
                    span["outcome"] = "acquired"
                STORE_STATS.lease_acquires += 1
                self._token_counter += 1
                token = f"{os.getpid()}.{id(self)}.{self._token_counter}"
                self._write_claim(lease_path, token, ttl)
        return Lease(store=self, namespace=namespace, digest=digest, token=token, ttl=ttl)

    def lease_holder(self, namespace: str, digest: str) -> Optional[Dict[str, Any]]:
        """The current (possibly stale) claim record, for observability."""
        return self._read_claim(self._lease_path(namespace, digest))

    def wait_for(
        self,
        namespace: str,
        digest: str,
        poll: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[Optional[Any], Optional[Lease]]:
        """Wait out a foreign writer: ``(value, None)`` or ``(None, lease)``.

        Polls the artifact optimistically (the common case: the writer
        publishes and we read it lock-free) and falls back to claiming the
        lease only when the writer disappeared without publishing -- then the
        caller computes the artifact itself under the returned lease.

        The poll interval starts at ``poll`` (default: the
        ``REPRO_STORE_LEASE_POLL`` policy) and backs off exponentially to the
        policy's cap, with +/-25% jitter -- N waiters watching one writer
        spread their probes out instead of thundering the artifact and lease
        files in lockstep.
        """
        start_poll, poll_cap = lease_poll()
        if poll is not None:
            start_poll = max(0.001, float(poll))
            poll_cap = max(start_poll, poll_cap)
        interval = start_poll
        deadline = None if timeout is None else time.monotonic() + timeout
        start = time.monotonic()
        with TRACER.span(
            "store.lease_wait", cat="store", namespace=namespace, digest=digest[:12]
        ) as span:
            STORE_STATS.lease_waits += 1
            try:
                while True:
                    value = self.get(namespace, digest)
                    if value is not None:
                        span["outcome"] = "published"
                        return value, None
                    lease = self.try_lease(namespace, digest)
                    if lease is not None:
                        span["outcome"] = "takeover"
                        return None, lease
                    if deadline is not None and time.monotonic() >= deadline:
                        span["outcome"] = "timeout"
                        raise TimeoutError(
                            f"artifact {namespace}/{digest[:12]} still leased after {timeout}s"
                        )
                    time.sleep(interval * random.uniform(0.75, 1.25))
                    interval = min(poll_cap, interval * 2.0)
            finally:
                STORE_STATS.lease_wait_us += int((time.monotonic() - start) * 1e6)

    def _stale(self, claim: Dict[str, Any]) -> bool:
        if float(claim.get("expires_unix", 0)) <= time.time():
            return True
        if claim.get("host") == self._host and not _pid_alive(claim.get("pid", -1)):
            return True
        return False

    def _read_claim(self, path: Path) -> Optional[Dict[str, Any]]:
        try:
            claim = json.loads(path.read_text())
        except (FileNotFoundError, ValueError, OSError):
            return None
        return claim if isinstance(claim, dict) else None

    def _write_claim(self, path: Path, token: str, ttl: float) -> None:
        now = time.time()
        atomic_write_json(
            path,
            {
                "token": token,
                "pid": os.getpid(),
                "host": self._host,
                "acquired_unix": now,
                "expires_unix": now + ttl,
                "ttl": ttl,
            },
        )

    def _refresh_lease(self, lease: Lease) -> bool:
        path = self._lease_path(lease.namespace, lease.digest)
        if FAULTS.should_inject("store.lease_steal", f"{lease.namespace}:{lease.digest}"):
            # simulate a usurper: the claim vanishes out from under its
            # holder, whose refresh fails -- callers must re-acquire before
            # trusting their exclusivity again
            with self._meta_lock(lease.namespace, lease.digest):
                try:
                    path.unlink()
                except OSError:
                    pass
            return False
        with self._meta_lock(lease.namespace, lease.digest):
            holder = self._read_claim(path)
            if holder is None or holder.get("token") != lease.token:
                return False  # taken over; the usurper owns the cell now
            self._write_claim(path, lease.token, lease.ttl)
            return True

    def _release_lease(self, lease: Lease) -> None:
        path = self._lease_path(lease.namespace, lease.digest)
        with self._meta_lock(lease.namespace, lease.digest):
            holder = self._read_claim(path)
            if holder is not None and holder.get("token") == lease.token:
                try:
                    path.unlink()
                except OSError:
                    pass

    # ------------------------------------------------------- stats / eviction
    def _artifacts(self) -> Iterator[Tuple[str, str, Path, os.stat_result]]:
        """Every ``(namespace, digest, path, stat)`` currently in the store."""
        try:
            namespaces = sorted(
                entry.name
                for entry in os.scandir(self.root)
                if entry.is_dir() and entry.name not in _RESERVED_DIRS
                and not entry.name.startswith(".")
            )
        except FileNotFoundError:
            return
        for namespace in namespaces:
            try:
                entries = sorted(os.scandir(self.root / namespace), key=lambda e: e.name)
            except FileNotFoundError:
                continue
            for entry in entries:
                if not entry.name.endswith(".json") or entry.name.startswith("."):
                    continue
                if entry.name.endswith(".meta.json"):  # provenance sidecar
                    continue
                try:
                    yield namespace, entry.name[: -len(".json")], Path(entry.path), entry.stat()
                except OSError:
                    continue

    def _active_leases(self) -> Dict[Tuple[str, str], Dict[str, Any]]:
        """``(namespace, digest) -> claim`` for every non-stale lease."""
        active: Dict[Tuple[str, str], Dict[str, Any]] = {}
        try:
            entries = list(os.scandir(self.root / "leases"))
        except FileNotFoundError:
            return active
        for entry in entries:
            if not entry.name.endswith(".lease"):
                continue
            claim = self._read_claim(Path(entry.path))
            if claim is None or self._stale(claim):
                continue
            namespace, _, digest = entry.name[: -len(".lease")].rpartition(".")
            active[(namespace, digest)] = claim
        return active

    def stats(self) -> Dict[str, Any]:
        """Occupancy summary (``python -m repro cache stats``)."""
        namespaces: Dict[str, Dict[str, int]] = {}
        total_bytes = 0
        count = 0
        for namespace, _digest, _path, stat in self._artifacts():
            entry = namespaces.setdefault(namespace, {"artifacts": 0, "bytes": 0})
            entry["artifacts"] += 1
            entry["bytes"] += stat.st_size
            total_bytes += stat.st_size
            count += 1
        return {
            "root": str(self.root),
            "budget_bytes": self.budget,
            "lease_ttl_seconds": self.lease_ttl,
            "artifacts": count,
            "bytes": total_bytes,
            "active_leases": len(self._active_leases()),
            "namespaces": namespaces,
            "counters": STORE_STATS.snapshot(),
        }

    def gc(self, budget: Union[str, int, None] = None) -> Dict[str, Any]:
        """Evict least-recently-read artifacts until the store fits ``budget``.

        Artifacts under an active lease are never evicted (their writer --
        or a reader that just took the lease to recompute -- is live).  With
        no budget configured this is a no-op scan.
        """
        budget = self.budget if budget is None else parse_size(budget)
        with TRACER.span("store.gc", cat="store", budget=budget) as span:
            STORE_STATS.gc_runs += 1
            entries = sorted(self._artifacts(), key=lambda e: (e[3].st_mtime, e[2]))
            total = sum(stat.st_size for _, _, _, stat in entries)
            report = {
                "budget_bytes": budget,
                "bytes_before": total,
                "scanned": len(entries),
                "evicted": 0,
                "evicted_bytes": 0,
                "skipped_leased": 0,
                "orphan_meta_removed": self._remove_orphan_meta(
                    {(ns, digest) for ns, digest, _, _ in entries}
                ),
            }
            if budget is None:
                report["bytes_after"] = total
                return report
            leased = self._active_leases()
            for namespace, digest, path, stat in entries:
                if total <= budget:
                    break
                if (self._safe(namespace), digest) in leased:
                    report["skipped_leased"] += 1
                    continue
                try:
                    path.unlink()
                except OSError:
                    continue
                try:  # the sidecar travels with its artifact
                    self.meta_path(namespace, digest).unlink()
                except OSError:
                    pass
                total -= stat.st_size
                report["evicted"] += 1
                report["evicted_bytes"] += stat.st_size
            report["bytes_after"] = total
            STORE_STATS.evictions += report["evicted"]
            STORE_STATS.evicted_bytes += report["evicted_bytes"]
            span["evicted"] = report["evicted"]
            span["evicted_bytes"] = report["evicted_bytes"]
        return report

    def _remove_orphan_meta(self, live: set) -> int:
        """Drop sidecars whose artifact is gone (crashed writers, manual rm)."""
        removed = 0
        try:
            namespaces = [
                entry.name
                for entry in os.scandir(self.root)
                if entry.is_dir() and entry.name not in _RESERVED_DIRS
                and not entry.name.startswith(".")
            ]
        except FileNotFoundError:
            return removed
        for namespace in namespaces:
            try:
                entries = list(os.scandir(self.root / namespace))
            except FileNotFoundError:
                continue
            for entry in entries:
                if not entry.name.endswith(".meta.json"):
                    continue
                digest = entry.name[: -len(".meta.json")]
                if (namespace, digest) in live:
                    continue
                try:
                    # a young sidecar may belong to a publication in flight
                    # (put() writes meta first): leave anything fresher than
                    # the lease TTL alone
                    if entry.stat().st_mtime > time.time() - self.lease_ttl:
                        continue
                    os.unlink(entry.path)
                    removed += 1
                except OSError:
                    continue
        return removed
