"""The remote tier's availability gate: a closed/open/half-open breaker.

Every call to the remote artifact store passes through one
:class:`CircuitBreaker`.  The state machine is the classic one, written out
explicitly (every transition has a name and a counter):

::

          success                failure (consecutive >= threshold)
        +---------+            +----------------------------------+
        |         v            |                                  v
        +------ CLOSED --------+                                OPEN
                  ^                                               |
                  | probe succeeds                 cooldown lapsed|
                  |                                               v
                  +--------------------------- HALF_OPEN <--------+
                                                  |
                                                  | probe fails
                                                  +-> OPEN (fresh cooldown)

* **closed** -- calls flow; each failure bumps a consecutive-failure count,
  each success resets it.  Reaching the threshold opens the breaker.
* **open** -- every call is refused without touching the network
  (:meth:`CircuitBreaker.allow` returns ``False``), so a dead remote costs a
  clock read per call instead of a timeout per call.  After ``cooldown``
  seconds the next caller is admitted as the half-open probe.
* **half-open** -- exactly one probe is in flight; other callers are still
  refused.  The probe's success closes the breaker, its failure re-opens it
  for a fresh cooldown.

Policy comes from ``REPRO_REMOTE_BREAKER`` (``threshold[:cooldown]``,
parsed by :func:`repro.faults.policy.remote_breaker`).  Transitions are
counted into :data:`repro.store.remote.REMOTE_STATS` by the caller and the
current state of every live breaker is exported on the service's
``/metrics`` (``repro_remote_breaker_state``) via :func:`all_breakers`.
"""

from __future__ import annotations

import threading
import time
import weakref
from typing import Callable, List, Optional, Tuple

from repro.faults import remote_breaker

#: the three states, in the order the metrics enum renders them
BREAKER_STATES = ("closed", "open", "half_open")

#: every breaker constructed in this process (weakly held), for /metrics
_LIVE: "weakref.WeakSet[CircuitBreaker]" = weakref.WeakSet()


def all_breakers() -> List["CircuitBreaker"]:
    """The live breakers of this process, stably ordered by name."""
    return sorted(_LIVE, key=lambda b: b.name)


class CircuitBreaker:
    """One remote peer's availability state (thread-safe).

    Parameters
    ----------
    name:
        Stable identity for metrics labels -- the remote's base URL.
    threshold / cooldown:
        ``None`` (default) reads the ``REPRO_REMOTE_BREAKER`` policy.
    clock:
        Injectable monotonic clock (tests); defaults to ``time.monotonic``.
    """

    def __init__(
        self,
        name: str = "remote",
        threshold: Optional[int] = None,
        cooldown: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        policy_threshold, policy_cooldown = remote_breaker()
        self.name = str(name)
        self.threshold = policy_threshold if threshold is None else max(1, int(threshold))
        self.cooldown = policy_cooldown if cooldown is None else max(0.0, float(cooldown))
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0  # consecutive, while closed
        self._opened_at = 0.0
        self._probe_inflight = False
        #: observer called with (old_state, new_state) on every transition;
        #: used by the client to count breaker_opened/half_open/closed.
        #: Must never raise (it runs under the breaker lock).
        self.on_transition: Optional[Callable[[str, str], None]] = None
        _LIVE.add(self)

    # ------------------------------------------------------------- inspection
    @property
    def state(self) -> str:
        """The current state, with the open->half_open lapse applied lazily."""
        with self._lock:
            self._lapse_locked()
            return self._state

    def snapshot(self) -> Tuple[str, int]:
        """``(state, consecutive_failures)`` for stats reporting."""
        with self._lock:
            self._lapse_locked()
            return self._state, self._failures

    # ------------------------------------------------------------- decisions
    def allow(self) -> bool:
        """Whether the caller may issue a remote call right now.

        In ``half_open`` exactly one caller is admitted (the probe); everyone
        else is refused until the probe resolves via :meth:`record_success`
        or :meth:`record_failure`.
        """
        with self._lock:
            self._lapse_locked()
            if self._state == "closed":
                return True
            if self._state == "half_open" and not self._probe_inflight:
                self._probe_inflight = True
                return True
            return False

    def record_success(self) -> None:
        """A remote call completed cleanly: reset failures, close the breaker."""
        with self._lock:
            self._failures = 0
            self._probe_inflight = False
            if self._state != "closed":
                self._transition_locked("closed")

    def record_failure(self) -> None:
        """A remote call failed (after its own retries were exhausted)."""
        with self._lock:
            self._failures += 1
            if self._state == "half_open":
                # the probe failed: straight back to open, fresh cooldown
                self._probe_inflight = False
                self._opened_at = self._clock()
                self._transition_locked("open")
            elif self._state == "closed" and self._failures >= self.threshold:
                self._opened_at = self._clock()
                self._transition_locked("open")

    # -------------------------------------------------------------- internals
    def _lapse_locked(self) -> None:
        if self._state == "open" and self._clock() - self._opened_at >= self.cooldown:
            self._probe_inflight = False
            self._transition_locked("half_open")

    def _transition_locked(self, new_state: str) -> None:
        old, self._state = self._state, new_state
        if old != new_state and self.on_transition is not None:
            self.on_transition(old, new_state)
