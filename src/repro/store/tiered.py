"""Local(L1) + remote(L2) artifact store behind the Runner's store surface.

A :class:`TieredStore` wraps the local :class:`~repro.store.local.ArtifactStore`
and a :class:`~repro.store.remote.RemoteStoreClient` behind the exact
``get``/``put``/``try_lease`` surface the Runner and parallel engine already
use -- swapping it in changes where artifacts can come *from*, never what
they contain:

* **Reads fill through.**  A local hit never touches the network.  On a
  local miss the remote peer is consulted; a verified foreign artifact is
  written into the local tier (with its sidecar) and returned -- the next
  read is a local hit.
* **Foreign artifacts are verified before they are trusted.**  Wire
  integrity first (the body checksum, enforced by the client), then
  provenance: the fetched sidecar's dependency fingerprints are diffed
  against the *live* local surfaces (:func:`repro.pipeline.fingerprints`),
  and a stale recording means the peer computed the cell under superseded
  code -- the artifact is rejected, counted, and the cell recomputed
  locally.  A sidecar-less remote artifact is accepted, matching the local
  tier's tolerance for sidecar-less files.
* **Writes publish asynchronously.**  ``put`` returns as soon as the local
  tier has the artifact; a background publisher drains a bounded queue to
  the peer.  A full queue or a failed publish drops that artifact's upload
  (counted), never blocks or fails the run.  :meth:`flush` drains the queue
  at end of run.
* **Failure degrades, never breaks.**  Every remote error -- timeouts,
  refused connections, integrity rejects, an open circuit breaker -- is
  translated into "local miss" and counted (``REMOTE_STATS`` plus the
  optional :attr:`on_fault` run-telemetry callback).  A run against a dead
  peer is byte-identical to a local-only run.

Leases, eviction, gc and every introspection helper delegate to the local
tier untouched: coordination stays host-local, the remote tier is purely an
artifact exchange.
"""

from __future__ import annotations

import queue
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from repro.store.local import ArtifactStore
from repro.store.remote import (
    REMOTE_STATS,
    RemoteRejected,
    RemoteStoreClient,
    RemoteStoreError,
)

#: at most this many artifacts waiting for async publication; beyond it new
#: publishes are dropped (counted) rather than ever blocking the run
PUBLISH_QUEUE_DEPTH = 256


class TieredStore:
    """Compose a local :class:`ArtifactStore` with one remote peer.

    Parameters
    ----------
    local:
        The L1 store (owns leases, eviction and all on-disk state).
    remote:
        The L2 exchange client; ``None`` makes this a pure pass-through.
    publish_async:
        Publish ``put`` artifacts from a background thread (the default).
        ``False`` publishes inline -- deterministic ordering for tests.
    """

    def __init__(
        self,
        local: ArtifactStore,
        remote: Optional[RemoteStoreClient] = None,
        publish_async: bool = True,
    ):
        self.local = local
        self.remote = remote
        self.publish_async = bool(publish_async)
        #: optional run-telemetry callback ``(fault_name, n=1)`` -- the Runner
        #: wires it to ``RunTelemetry.count_fault`` so remote degradation
        #: shows up in each run's ``faults`` dict
        self.on_fault: Optional[Callable[..., None]] = None
        self._queue: Optional["queue.Queue"] = None
        self._publisher: Optional[threading.Thread] = None
        self._publisher_lock = threading.Lock()

    # ---------------------------------------------------------- delegation
    def __getattr__(self, name: str) -> Any:
        # everything not overridden here (leases, gc, stats helpers, paths,
        # root/budget/lease_ttl, private scan helpers) is the local tier's
        local = self.__dict__.get("local")
        if local is None:  # guards __init__-time lookups against recursion
            raise AttributeError(name)
        return getattr(local, name)

    def _count(self, name: str, n: int = 1) -> None:
        if self.on_fault is not None:
            try:
                self.on_fault(name, n)
            except TypeError:
                self.on_fault(name)

    # ---------------------------------------------------------------- reads
    def get(self, namespace: str, digest: str) -> Optional[Any]:
        """Local read, filling through from the remote tier on a miss."""
        value = self.local.get(namespace, digest)
        if value is not None or self.remote is None:
            return value
        return self._fill_through(namespace, digest)

    def _fill_through(self, namespace: str, digest: str) -> Optional[Any]:
        try:
            value = self.remote.fetch(namespace, digest)
            if value is None:
                return None  # a plain remote miss: compute locally
            meta = self.remote.fetch_meta(namespace, digest)
        except RemoteRejected:
            # damaged on the wire (or unvouched-for): counted by the client,
            # surfaced to the run, computed locally -- never trusted
            self._count("remote_rejects")
            return None
        except RemoteStoreError:
            # breaker open, timeout, dead peer: degrade to local-only
            self._count("remote_fallbacks")
            return None
        if not self._trust_meta(meta):
            REMOTE_STATS.rejected_meta += 1
            self._count("remote_rejects")
            return None
        # adopt the artifact into L1 with its provenance: the next read is a
        # local hit, and staleness classification keeps working on it
        self.local.put(namespace, digest, value, meta=meta)
        self._count("remote_cell_hits")
        return value

    @staticmethod
    def _trust_meta(meta: Optional[Dict[str, Any]]) -> bool:
        """Verify a foreign sidecar against the *live* local code surfaces.

        ``stale`` -- any recorded fingerprint token differs from what this
        process's code surfaces hash to right now -- means the peer computed
        the cell under superseded code, and its artifact must not be used.
        ``fresh`` and ``unknown`` (no deps recorded / no sidecar at all) are
        accepted, mirroring how the local tier treats its own artifacts.
        """
        if meta is None:
            return True
        from repro.pipeline.fingerprints import meta_status

        return meta_status(meta) != "stale"

    # --------------------------------------------------------------- writes
    def put(
        self,
        namespace: str,
        digest: str,
        value: Any,
        sort_keys: bool = True,
        meta: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Publish locally, then share with the peer (async by default)."""
        path = self.local.put(namespace, digest, value, sort_keys=sort_keys, meta=meta)
        if self.remote is not None:
            if self.publish_async:
                self._enqueue(namespace, digest, value, meta)
            else:
                self._publish_one(namespace, digest, value, meta)
        return path

    def _publish_one(
        self, namespace: str, digest: str, value: Any, meta: Optional[Dict[str, Any]]
    ) -> None:
        try:
            self.remote.publish(namespace, digest, value, meta=meta)
        except RemoteStoreError:
            REMOTE_STATS.put_failures += 1
            self._count("remote_fallbacks")

    def _enqueue(
        self, namespace: str, digest: str, value: Any, meta: Optional[Dict[str, Any]]
    ) -> None:
        if self._queue is None:
            with self._publisher_lock:
                if self._queue is None:
                    self._queue = queue.Queue(maxsize=PUBLISH_QUEUE_DEPTH)
                    self._publisher = threading.Thread(
                        target=self._drain, name="repro-store-publisher", daemon=True
                    )
                    self._publisher.start()
        try:
            self._queue.put_nowait((namespace, digest, value, meta))
        except queue.Full:
            # the peer is slower than the run: drop this upload, keep running
            REMOTE_STATS.put_failures += 1
            self._count("remote_fallbacks")

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is None:
                    return
                self._publish_one(*item)
            finally:
                self._queue.task_done()

    def flush(self, timeout: float = 30.0) -> bool:
        """Wait for queued publications to drain; ``False`` on timeout."""
        if self._queue is None:
            return True
        deadline = time.monotonic() + max(0.0, timeout)
        while time.monotonic() < deadline:
            if self._queue.unfinished_tasks == 0:
                return True
            time.sleep(0.01)
        return self._queue.unfinished_tasks == 0

    def close(self, timeout: float = 5.0) -> None:
        """Drain and stop the publisher thread (idempotent)."""
        self.flush(timeout)
        if self._queue is not None and self._publisher is not None:
            self._queue.put(None)
            self._publisher.join(timeout=timeout)

    # ---------------------------------------------------------------- stats
    def stats(self) -> Dict[str, Any]:
        """The local tier's occupancy plus the remote client's view."""
        out = self.local.stats()
        if self.remote is not None:
            out["remote"] = self.remote.stats()
        return out
