"""repro.store -- the artifact store, local tier and remote exchange.

Split across four modules, one per concern:

* :mod:`repro.store.local` -- :class:`ArtifactStore`, the on-disk
  content-addressed store (optimistic reads, writer leases, LRU eviction)
  every pipeline client shares;
* :mod:`repro.store.breaker` -- :class:`CircuitBreaker`, the
  closed/open/half-open availability gate in front of every remote call
  (``REPRO_REMOTE_BREAKER``);
* :mod:`repro.store.remote` -- :class:`RemoteStoreClient`, the stdlib HTTP
  client for the artifact-exchange endpoints a ``serve --share-store``
  service exposes, with per-request timeouts, bounded jittered retries and
  body checksums (``REPRO_REMOTE_TIMEOUT`` / ``REPRO_REMOTE_RETRIES``);
* :mod:`repro.store.tiered` -- :class:`TieredStore`, the local(L1)+remote(L2)
  composition behind ``run --remote URL``: reads fill through after
  integrity + fingerprint verification, writes publish asynchronously, and
  a dead or flapping remote degrades to local-only compute -- byte-identical
  results, never an error.

``from repro.store import ArtifactStore`` (and friends) keeps working: the
historical single-module surface is re-exported here.  See
``docs/store-remote.md`` for the exchange protocol and trust rules.
"""

from repro.store.breaker import BREAKER_STATES, CircuitBreaker, all_breakers
from repro.store.local import (
    DEFAULT_LEASE_TTL,
    STORE_STATS,
    ArtifactStore,
    Lease,
    StoreStats,
    parse_size,
)
from repro.store.remote import (
    REMOTE_STATS,
    RemoteRejected,
    RemoteStoreClient,
    RemoteStoreError,
    RemoteStats,
    RemoteUnavailable,
    body_checksum,
)
from repro.store.tiered import TieredStore

__all__ = [
    "ArtifactStore",
    "Lease",
    "StoreStats",
    "STORE_STATS",
    "parse_size",
    "DEFAULT_LEASE_TTL",
    "CircuitBreaker",
    "BREAKER_STATES",
    "all_breakers",
    "RemoteStoreClient",
    "RemoteStoreError",
    "RemoteUnavailable",
    "RemoteRejected",
    "RemoteStats",
    "REMOTE_STATS",
    "body_checksum",
    "TieredStore",
]
