"""HTTP client for the artifact-exchange endpoints (``serve --share-store``).

One :class:`RemoteStoreClient` talks to one peer service exposing the
``/store/artifacts/{namespace}/{digest}`` endpoints (see
``docs/store-remote.md`` for the wire protocol).  The client is built so the
remote tier can *never* make a run worse than local-only execution:

* **Every call has a deadline** (``REPRO_REMOTE_TIMEOUT``) -- connect, send
  and read together; there is no "no timeout" setting for the remote tier.
* **Bounded retries with jittered exponential backoff**
  (``REPRO_REMOTE_RETRIES``, the shard-retry :func:`backoff_seconds`
  schedule) for transport errors, timeouts and 5xx answers.  A 404 is a
  *miss*, not a failure: it is answered immediately and never retried.
* **A circuit breaker** (:class:`repro.store.breaker.CircuitBreaker`) in
  front of every operation: once a peer has failed ``threshold`` operations
  in a row, calls short-circuit locally (:class:`RemoteUnavailable`) for the
  cooldown instead of eating a timeout each, then a single half-open probe
  decides whether to close again.
* **Wire integrity**: artifact and sidecar bodies travel with an
  ``X-Repro-Sha256`` header; the client re-hashes the exact received bytes
  and rejects on mismatch (or on a missing header) -- a rejected body is a
  counted miss, never an exception.

Transport is stdlib :mod:`http.client`, one connection per request (the
service speaks ``Connection: close``).  Fault points ``remote.timeout``,
``remote.error_5xx`` and ``remote.corrupt_body`` are injected here, keyed so
retries draw fresh coins (see :mod:`repro.faults.injector`);
``remote.reject_meta`` garbles a fetched sidecar's fingerprint tokens so the
:class:`~repro.store.tiered.TieredStore` verification layer must catch it.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import socket
import time
from typing import Any, Dict, Optional, Tuple
from urllib.parse import quote, urlsplit

from repro.counters import ProcessCounters
from repro.faults import FAULTS, backoff_seconds, remote_retries, remote_timeout
from repro.store.breaker import CircuitBreaker

#: the integrity header carried by every artifact/sidecar body (both ways)
CHECKSUM_HEADER = "X-Repro-Sha256"


def body_checksum(data: bytes) -> str:
    """The wire-integrity digest of an exact body: sha256 hex."""
    return hashlib.sha256(data).hexdigest()


class RemoteStats(ProcessCounters):
    """Process-level remote-tier counters (same contract as STORE_STATS).

    ``rejected_checksum`` / ``rejected_meta`` count foreign artifacts the
    trust rules refused; ``breaker_open_skips`` counts calls short-circuited
    without touching the network; the ``breaker_*`` transition counters make
    the state machine's history auditable from ``/metrics``.
    """

    _FIELDS = (
        "gets",
        "hits",
        "misses",
        "puts",
        "put_failures",
        "rejected_checksum",
        "rejected_meta",
        "errors",
        "timeouts",
        "retries",
        "breaker_open_skips",
        "breaker_opened",
        "breaker_half_open",
        "breaker_closed",
    )


#: process-wide remote-tier counters (snapshot/delta like STORE_STATS)
REMOTE_STATS = RemoteStats()


class RemoteStoreError(Exception):
    """A remote operation failed for good (retry budget exhausted)."""


class RemoteUnavailable(RemoteStoreError):
    """The breaker is open: the call was refused without touching the network."""


class RemoteRejected(RemoteStoreError):
    """A response arrived but failed the integrity rules (checksum/parse)."""


class RemoteStoreClient:
    """Artifact-exchange client for one ``serve --share-store`` peer.

    Parameters
    ----------
    base_url:
        ``http://host:port`` (an optional path prefix is honoured).
    timeout / retries:
        ``None`` (default) reads ``REPRO_REMOTE_TIMEOUT`` /
        ``REPRO_REMOTE_RETRIES``.
    breaker:
        Injectable :class:`CircuitBreaker` (tests); by default one is built
        for this client under the ``REPRO_REMOTE_BREAKER`` policy.
    """

    def __init__(
        self,
        base_url: str,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        breaker: Optional[CircuitBreaker] = None,
    ):
        split = urlsplit(base_url if "//" in base_url else f"//{base_url}", scheme="http")
        if split.scheme != "http":
            raise ValueError(f"remote store URL must be http://, got {base_url!r}")
        if not split.hostname:
            raise ValueError(f"remote store URL has no host: {base_url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.prefix = split.path.rstrip("/")
        self.base_url = f"http://{self.host}:{self.port}{self.prefix}"
        self.timeout = remote_timeout() if timeout is None else max(0.001, float(timeout))
        self.retries = remote_retries() if retries is None else max(0, int(retries))
        self.breaker = breaker if breaker is not None else CircuitBreaker(name=self.base_url)
        self.breaker.on_transition = self._count_transition

    @staticmethod
    def _count_transition(_old: str, new: str) -> None:
        field = {
            "open": "breaker_opened",
            "half_open": "breaker_half_open",
            "closed": "breaker_closed",
        }[new]
        setattr(REMOTE_STATS, field, getattr(REMOTE_STATS, field) + 1)

    # -------------------------------------------------------------- transport
    def _artifact_path(self, namespace: str, digest: str) -> str:
        return f"/store/artifacts/{quote(str(namespace), safe='')}/{quote(str(digest), safe='')}"

    def _attempt(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Optional[Dict[str, str]],
        attempt: int,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One HTTP exchange (or an injected failure standing in for one)."""
        key = f"{method}:{path}:{attempt}"
        if FAULTS.should_inject("remote.timeout", key):
            raise socket.timeout(f"injected remote.timeout at {key}")
        if FAULTS.should_inject("remote.error_5xx", key):
            return 500, {}, b'{"error": "injected remote.error_5xx"}'
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request(method, self.prefix + path, body=body, headers=headers or {})
            response = conn.getresponse()
            payload = response.read()
            rheaders = {k.lower(): v for k, v in response.getheaders()}
            status = response.status
        finally:
            conn.close()
        # corrupt the body *after* a successful exchange and keyed without the
        # attempt: the damage is deterministic per operation, and the reject
        # path (count + recompute locally) is what gets exercised, not a retry
        if status == 200 and payload and FAULTS.should_inject(
            "remote.corrupt_body", f"{method}:{path}"
        ):
            payload = payload[::-1]
        return status, rheaders, payload

    def _call(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Dict[str, str], bytes]:
        """The policy wrapper: breaker gate, bounded retries, backoff.

        Returns any sub-5xx response as-is (404 is an answer).  Raises
        :class:`RemoteUnavailable` when the breaker refuses the call and
        :class:`RemoteStoreError` when the retry budget runs out.
        """
        if not self.breaker.allow():
            REMOTE_STATS.breaker_open_skips += 1
            raise RemoteUnavailable(
                f"remote store {self.base_url} circuit breaker is open"
            )
        attempt = 0
        while True:
            failure: str
            try:
                status, rheaders, payload = self._attempt(method, path, body, headers, attempt)
            except (socket.timeout, TimeoutError) as exc:
                REMOTE_STATS.timeouts += 1
                failure = f"timeout after {self.timeout}s ({exc})"
            except (OSError, http.client.HTTPException) as exc:
                REMOTE_STATS.errors += 1
                failure = str(exc) or type(exc).__name__
            else:
                if status < 500:
                    self.breaker.record_success()
                    return status, rheaders, payload
                REMOTE_STATS.errors += 1
                failure = f"HTTP {status}"
            if attempt >= self.retries:
                self.breaker.record_failure()
                raise RemoteStoreError(
                    f"{method} {self.base_url}{path} failed after "
                    f"{attempt + 1} attempt(s): {failure}"
                )
            attempt += 1
            REMOTE_STATS.retries += 1
            time.sleep(backoff_seconds(attempt))

    # ------------------------------------------------------------- operations
    def _verified_json(self, rheaders: Dict[str, str], payload: bytes) -> Any:
        """Parse a checksummed body; :class:`RemoteRejected` when it fails.

        A missing checksum header counts as a failure too: a peer that does
        not vouch for its bytes is not trusted with cache contents.
        """
        expected = rheaders.get(CHECKSUM_HEADER.lower())
        if not expected or expected != body_checksum(payload):
            REMOTE_STATS.rejected_checksum += 1
            raise RemoteRejected("body checksum mismatch (or peer sent none)")
        try:
            return json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            REMOTE_STATS.rejected_checksum += 1
            raise RemoteRejected(f"checksummed body is not valid JSON: {exc}") from None

    def fetch(self, namespace: str, digest: str) -> Optional[Any]:
        """The artifact's value, or ``None`` when the peer does not have it.

        Raises :class:`RemoteRejected` on an integrity failure and
        :class:`RemoteStoreError` on transport failure -- callers (the
        tiered store) translate both into a counted local fallback.
        """
        REMOTE_STATS.gets += 1
        status, rheaders, payload = self._call("GET", self._artifact_path(namespace, digest))
        if status != 200:
            REMOTE_STATS.misses += 1
            return None
        value = self._verified_json(rheaders, payload)
        REMOTE_STATS.hits += 1
        return value

    def fetch_meta(self, namespace: str, digest: str) -> Optional[Dict[str, Any]]:
        """The artifact's provenance sidecar, or ``None`` when it has none.

        Raises :class:`RemoteRejected` when the sidecar arrives damaged --
        an artifact whose provenance cannot be read is not trusted at all.
        """
        status, rheaders, payload = self._call(
            "GET", self._artifact_path(namespace, digest) + "/meta"
        )
        if status != 200:
            return None
        meta = self._verified_json(rheaders, payload)
        if not isinstance(meta, dict):
            raise RemoteRejected("meta sidecar is not a JSON object")
        if FAULTS.should_inject("remote.reject_meta", f"{namespace}:{digest}"):
            # garble the recorded fingerprint tokens: the sidecar now claims
            # the artifact was computed under dependencies that never existed,
            # and the tiered store's verification must refuse to trust it
            deps = meta.get("deps")
            if isinstance(deps, dict):
                meta = dict(meta)
                meta["deps"] = {key: "0" * 12 for key in deps}
        return meta

    def head(self, namespace: str, digest: str) -> bool:
        """Existence probe (no body transferred)."""
        status, _headers, _payload = self._call("HEAD", self._artifact_path(namespace, digest))
        return status == 200

    def publish(
        self,
        namespace: str,
        digest: str,
        value: Any,
        meta: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """PUT one artifact (+ sidecar) to the peer; ``True`` if it stored."""
        envelope: Dict[str, Any] = {"value": value}
        if meta is not None:
            envelope["meta"] = meta
        body = json.dumps(envelope, sort_keys=True).encode("utf-8")
        status, _headers, _payload = self._call(
            "PUT",
            self._artifact_path(namespace, digest),
            body=body,
            headers={
                "Content-Type": "application/json",
                CHECKSUM_HEADER: body_checksum(body),
            },
        )
        ok = status in (200, 201)
        if ok:
            REMOTE_STATS.puts += 1
        else:
            REMOTE_STATS.put_failures += 1
        return ok

    def remote_store_stats(self) -> Dict[str, Any]:
        """The peer's ``GET /store/stats`` payload (``cache stats --remote``)."""
        status, _headers, payload = self._call("GET", "/store/stats")
        if status != 200:
            raise RemoteStoreError(
                f"GET {self.base_url}/store/stats answered HTTP {status}"
            )
        try:
            return json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise RemoteStoreError(f"unparseable /store/stats payload: {exc}") from None

    def stats(self) -> Dict[str, Any]:
        """This client's local view: policy, breaker state, counters."""
        state, failures = self.breaker.snapshot()
        return {
            "url": self.base_url,
            "timeout_seconds": self.timeout,
            "retries": self.retries,
            "breaker": {
                "state": state,
                "consecutive_failures": failures,
                "threshold": self.breaker.threshold,
                "cooldown_seconds": self.breaker.cooldown,
            },
            "counters": REMOTE_STATS.snapshot(),
        }
