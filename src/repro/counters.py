"""Shared machinery for process-level observability counters.

The GEMM kernel engine (:data:`repro.arith.kernels.KERNEL_STATS`), the
attack query tracker (:data:`repro.attacks.base.QUERY_STATS`) and the
artifact store (:data:`repro.store.STORE_STATS`) expose the same counter
contract: a fixed field tuple, monotonic within a process, consumed via
snapshot/delta pairs by the run telemetry.  Pool workers keep their own
instances, but each worker shard returns its deltas to the parent, which
folds them into :class:`~repro.parallel.telemetry.RunTelemetry` -- so a
parallel run's telemetry reflects the whole run, not just the planning
process.  Counters are advisory only; every determinism guarantee excludes
them.
"""

from __future__ import annotations

from typing import Dict, Tuple


class ProcessCounters:
    """Base class of process-level counter singletons.

    Subclasses declare their integer fields in ``_FIELDS``; every field is
    zero-initialised and exposed as an attribute.  Consumers take a
    :meth:`snapshot` mark at scope start and read increments back with
    :meth:`delta`.
    """

    _FIELDS: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for name in self._FIELDS:
            setattr(self, name, 0)

    def snapshot(self) -> Dict[str, int]:
        return {name: int(getattr(self, name)) for name in self._FIELDS}

    def delta(self, mark: Dict[str, int]) -> Dict[str, int]:
        """Counter increments since ``mark`` (an earlier :meth:`snapshot`)."""
        return {name: int(getattr(self, name)) - int(mark.get(name, 0)) for name in self._FIELDS}
