"""Carlini & Wagner L2 attack (2017).

Optimises the change-of-variable formulation with Adam::

    minimise  ||x* - x||_2^2 + c * f(x*)
    where     x* = (tanh(w) + 1) / 2 * (clip_max - clip_min) + clip_min
              f(x*) = max(Z_true(x*) - max_{j != true} Z_j(x*), -kappa)

A small geometric search over ``c`` replaces the full binary search of the
original paper; it is sufficient to find low-norm adversarial examples on the
models used in this reproduction while keeping the attack affordable against
the (slow, gate-level emulated) approximate classifier.

Batched execution: the Adam optimisation was always vectorised over the
batch; the active set applies to the ``c`` escalation -- an example retires
as soon as one constant yields an adversarial example (matching the
per-example loop, where each victim stops escalating independently), so
later, more expensive constants only optimise the still-unsolved sub-batch.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, Classifier
from repro.attacks.batched import ActiveSet


class CarliniWagnerL2(Attack):
    """L2-minimising attack, the strongest gradient-based attack in Table 1."""

    name = "cw"

    def __init__(
        self,
        confidence: float = 0.0,
        learning_rate: float = 0.05,
        max_iterations: int = 100,
        initial_const: float = 0.5,
        const_factor: float = 5.0,
        num_const_steps: int = 3,
    ):
        self.confidence = float(confidence)
        self.learning_rate = float(learning_rate)
        self.max_iterations = int(max_iterations)
        self.initial_const = float(initial_const)
        self.const_factor = float(const_factor)
        self.num_const_steps = int(num_const_steps)

    # ------------------------------------------------------------------ core
    def perturb(self, classifier: Classifier, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        y = np.asarray(y, dtype=np.int64)
        best = x.copy()
        best_l2 = np.full(len(x), np.inf)

        active = ActiveSet(len(x))
        const = self.initial_const
        for _ in range(self.num_const_steps):
            rows = active.indices
            if not len(rows):
                break
            candidates = self._optimise(classifier, x[rows], y[rows], const)
            preds = classifier.predict(candidates)
            for pos, i in enumerate(rows):
                if preds[pos] != y[i]:
                    l2 = float(np.linalg.norm((candidates[pos] - x[i]).ravel()))
                    if l2 < best_l2[i]:
                        best_l2[i] = l2
                        best[i] = candidates[pos]
            # an example that found an adversarial point stops escalating c,
            # exactly as its standalone per-example run would
            active.retire(rows[np.isfinite(best_l2[rows])])
            const *= self.const_factor
        return best

    def _optimise(
        self, classifier: Classifier, x: np.ndarray, y: np.ndarray, const: float
    ) -> np.ndarray:
        lo, hi = classifier.clip_min, classifier.clip_max
        span = hi - lo
        # map x into tanh space (with a margin to keep arctanh finite)
        x_scaled = np.clip((x - lo) / span, 1e-6, 1.0 - 1e-6)
        w = np.arctanh(2.0 * x_scaled - 1.0).astype(np.float32)

        n = len(x)
        n_classes = classifier.num_classes
        one_hot = np.zeros((n, n_classes), dtype=np.float32)
        one_hot[np.arange(n), y] = 1.0

        # Adam state
        m = np.zeros_like(w)
        v = np.zeros_like(w)
        beta1, beta2, eps = 0.9, 0.999, 1e-8

        x_adv = x.copy()
        for t in range(1, self.max_iterations + 1):
            x_adv = (np.tanh(w) + 1.0) / 2.0 * span + lo
            logits = classifier.predict_logits(x_adv)
            forward_serial = classifier.forward_serial
            true_logit = (logits * one_hot).sum(axis=1)
            other_logit = (logits - 1e9 * one_hot).max(axis=1)
            margin = true_logit - other_logit + self.confidence
            attack_active = margin > 0  # keep pushing only while not yet adversarial

            # gradient of the logit-margin term (only where still active)
            grad_logits = np.zeros_like(logits)
            rows = np.arange(n)
            other_idx = (logits - 1e9 * one_hot).argmax(axis=1)
            grad_logits[rows, y] = 1.0
            grad_logits[rows, other_idx] -= 1.0
            grad_logits *= (const * attack_active)[:, np.newaxis]
            # the margin cotangent is built from this iteration's logits, so
            # the backward can ride the forward the prediction just paid for
            grad_from_margin = classifier.cached_logits_gradient(
                grad_logits, forward_serial=forward_serial
            )

            grad_from_l2 = 2.0 * (x_adv - x)
            grad_x = grad_from_l2 + grad_from_margin
            # chain rule through the tanh reparameterisation
            grad_w = grad_x * (1.0 - np.tanh(w) ** 2) * (span / 2.0)

            m = beta1 * m + (1 - beta1) * grad_w
            v = beta2 * v + (1 - beta2) * grad_w ** 2
            m_hat = m / (1 - beta1 ** t)
            v_hat = v / (1 - beta2 ** t)
            w = w - self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)

        return classifier.clip((np.tanh(w) + 1.0) / 2.0 * span + lo)
