"""DeepFool (Moosavi-Dezfooli et al., 2016): minimal L2 perturbation by
iterative linearisation of the decision boundary."""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, Classifier


class DeepFool(Attack):
    """Untargeted L2 attack that walks to the nearest (linearised) boundary.

    Parameters
    ----------
    max_iterations:
        Iteration budget per sample.
    overshoot:
        Multiplicative overshoot applied to the accumulated perturbation so the
        sample actually crosses the boundary.
    num_candidate_classes:
        Restrict the boundary search to the top-k classes by score (the classic
        speed/quality trade-off of DeepFool).
    """

    name = "deepfool"

    def __init__(
        self,
        max_iterations: int = 50,
        overshoot: float = 0.02,
        num_candidate_classes: int = 10,
    ):
        self.max_iterations = int(max_iterations)
        self.overshoot = float(overshoot)
        self.num_candidate_classes = int(num_candidate_classes)

    def perturb(self, classifier: Classifier, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        adversarial = np.empty_like(np.asarray(x, dtype=np.float32))
        for i in range(len(x)):
            adversarial[i] = self._attack_single(classifier, x[i], int(y[i]))
        return adversarial

    def _attack_single(self, classifier: Classifier, x: np.ndarray, label: int) -> np.ndarray:
        x0 = x[np.newaxis].astype(np.float32)
        logits = classifier.predict_logits(x0)[0]
        n_classes = logits.shape[0]
        k = min(self.num_candidate_classes, n_classes)
        candidates = np.argsort(logits)[::-1][:k]
        candidates = [c for c in candidates if c != label]

        x_adv = x0.copy()
        total_perturbation = np.zeros_like(x0)
        for _ in range(self.max_iterations):
            logits = classifier.predict_logits(x_adv)[0]
            if logits.argmax() != label:
                break
            grad_true = classifier.class_gradient(x_adv, np.array([label]))[0]
            best_ratio = np.inf
            best_direction = None
            for c in candidates:
                grad_c = classifier.class_gradient(x_adv, np.array([c]))[0]
                w = grad_c - grad_true
                f = logits[c] - logits[label]
                w_norm = np.linalg.norm(w.ravel()) + 1e-12
                ratio = abs(f) / w_norm
                if ratio < best_ratio:
                    best_ratio = ratio
                    best_direction = (abs(f) + 1e-6) * w / (w_norm ** 2)
            if best_direction is None:  # pragma: no cover - defensive
                break
            total_perturbation += best_direction
            x_adv = classifier.clip(x0 + (1.0 + self.overshoot) * total_perturbation)
        return x_adv[0]
