"""DeepFool (Moosavi-Dezfooli et al., 2016): minimal L2 perturbation by
iterative linearisation of the decision boundary.

Batched execution: the whole victim batch walks toward the boundary in
lockstep.  Each iteration issues one ``predict_logits`` call over the active
set plus one ``gradient_sweep`` -- a single shared forward pass and one
backward per needed class (true class + each candidate slot) -- instead of
``1 + (1 + k)`` full single-example round trips per example.  Per-example
candidate selection, ratio comparison and the perturbation update keep the
reference per-example expressions, so outputs and query/gradient counts are
bit-for-bit those of the per-example loop (see :mod:`repro.attacks.batched`).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, Classifier
from repro.attacks.batched import ActiveSet


class DeepFool(Attack):
    """Untargeted L2 attack that walks to the nearest (linearised) boundary.

    Parameters
    ----------
    max_iterations:
        Iteration budget per sample.
    overshoot:
        Multiplicative overshoot applied to the accumulated perturbation so the
        sample actually crosses the boundary.
    num_candidate_classes:
        Restrict the boundary search to the top-k classes by score (the classic
        speed/quality trade-off of DeepFool).
    """

    name = "deepfool"

    def __init__(
        self,
        max_iterations: int = 50,
        overshoot: float = 0.02,
        num_candidate_classes: int = 10,
    ):
        self.max_iterations = int(max_iterations)
        self.overshoot = float(overshoot)
        self.num_candidate_classes = int(num_candidate_classes)

    def perturb(self, classifier: Classifier, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x0 = np.asarray(x, dtype=np.float32)
        if not len(x0):  # empty victim slice: no-op (the model rejects N=0)
            return x0.copy()
        y = np.asarray(y, dtype=np.int64)
        n = len(x0)
        logits = classifier.predict_logits(x0)
        n_classes = logits.shape[1]
        k = min(self.num_candidate_classes, n_classes)
        top_k = np.argsort(logits, axis=1)[:, ::-1][:, :k]
        candidates = [
            np.array([c for c in top_k[i] if c != y[i]], dtype=np.int64) for i in range(n)
        ]

        x_adv = x0.copy()
        total_perturbation = np.zeros_like(x0)
        active = ActiveSet(n)
        for _ in range(self.max_iterations):
            rows = active.indices
            if not len(rows):
                break
            logits = classifier.predict_logits(x_adv[rows])
            crossed = logits.argmax(axis=1) != y[rows]
            active.retire(rows[crossed])
            rows, logits = rows[~crossed], logits[~crossed]
            if not len(rows):
                continue
            # every gradient an example needs this iteration -- its true
            # class plus each candidate class -- rides ONE forward pass
            # (gradient_sweep); rows are grouped by candidate count so the
            # gradient budget matches the per-example loop exactly
            counts = np.array([len(candidates[i]) for i in rows])
            grad_true: dict = {}
            slot_grads: dict = {i: [] for i in rows}
            for count in np.unique(counts):
                group = rows[counts == count]
                positions = np.arange(len(group))

                def group_cotangents(group=group, positions=positions, count=count):
                    buffer = np.zeros((len(group), n_classes), dtype=np.float32)
                    buffer[positions, y[group]] = 1.0
                    yield buffer
                    buffer[positions, y[group]] = 0.0
                    for j in range(int(count)):
                        classes = np.array([candidates[i][j] for i in group])
                        buffer[positions, classes] = 1.0
                        yield buffer
                        buffer[positions, classes] = 0.0

                sweep = classifier.gradient_sweep(x_adv[group], group_cotangents())
                for pos, i in enumerate(group):
                    grad_true[i] = sweep[0][pos]
                    for j in range(int(count)):
                        slot_grads[i].append(sweep[1 + j][pos])
            for ri, i in enumerate(rows):
                row_logits = logits[ri]
                best_ratio = np.inf
                best_direction = None
                for grad_c, c in zip(slot_grads[i], candidates[i]):
                    w = grad_c - grad_true[i]
                    f = row_logits[c] - row_logits[y[i]]
                    w_norm = np.linalg.norm(w.ravel()) + 1e-12
                    ratio = abs(f) / w_norm
                    if ratio < best_ratio:
                        best_ratio = ratio
                        best_direction = (abs(f) + 1e-6) * w / (w_norm ** 2)
                if best_direction is None:
                    active.retire([i])
                    continue
                total_perturbation[i] += best_direction
                x_adv[i] = classifier.clip(
                    x0[i] + (1.0 + self.overshoot) * total_perturbation[i]
                )
        return x_adv
