"""Active-set rollout machinery for the batched attack engine.

The iterative attacks historically advanced one victim example at a time, so
every classifier call -- a prediction probe, a BPDA gradient, a Monte-Carlo
boundary estimate -- ran at batch size 1 and paid the full per-call model
overhead (layer dispatch, im2col, approximate-kernel setup) per example.
The batched engine turns the loops inside out: each attack iteration advances
its *entire* still-active victim batch through one model call.

Design contract
---------------
The rewritten attacks (DeepFool, C&W, JSMA, LSA, Boundary, HopSkipJump) are
**bit-for-bit identical** to their per-example reference loops at every batch
size.  Three ingredients make that hold:

* the model facade is *batch-invariant*: a given example's logits and input
  gradients have the same bits whether it is evaluated alone or inside any
  batch (see the batch-invariance notes in :mod:`repro.nn.functional`);
* stochastic attacks draw **per-example RNG streams** spawned with
  ``np.random.SeedSequence(entropy=seed, spawn_key=(seed_offset + i,))``
  (see :meth:`repro.attacks.base.Attack.example_rng`), so an example's noise
  sequence is a function of its global victim index, never of the batch or
  shard it was processed in;
* per-example *control flow and scalar arithmetic* stay per-example: the
  attacks keep the reference implementation's row-level expressions (same
  dtypes, same operation order) and only the classifier calls are batched.
  An :class:`ActiveSet` tracks which examples are still being attacked --
  converged or successful examples retire and stop consuming queries, so
  query and gradient *counts* also match the per-example loops exactly.

Retiring examples keeps batches dense: the live sub-batch is gathered, one
``predict_logits`` / ``loss_gradient`` / ``logits_gradient`` call is issued
through the fused kernels, and the results are scattered back to their rows.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np


class ActiveSet:
    """Tracks which examples of a victim batch are still being attacked.

    The set starts with all ``n`` examples alive; attacks :meth:`retire`
    examples as they succeed, converge or exhaust their budget.  Iteration
    helpers return *global* row indices so per-row state arrays can be
    indexed directly.
    """

    def __init__(self, n: int):
        self._alive = np.ones(int(n), dtype=bool)

    @property
    def indices(self) -> np.ndarray:
        """Global indices of the still-active examples, in victim order."""
        return np.flatnonzero(self._alive)

    def retire(self, indices: Iterable[int]) -> None:
        """Remove examples from the active set (idempotent)."""
        self._alive[np.asarray(indices, dtype=np.int64)] = False

    def __len__(self) -> int:
        return int(self._alive.sum())

    def __bool__(self) -> bool:
        return bool(self._alive.any())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ActiveSet({len(self)}/{self._alive.size} active)"


def find_adversarial_starts(
    classifier,
    x: np.ndarray,
    y: np.ndarray,
    rngs: List[np.random.Generator],
    current: np.ndarray,
    init_trials: int,
) -> np.ndarray:
    """Lockstep random-restart search for adversarial starting points.

    Shared by the decision-based attacks (Boundary, HopSkipJump).  Each
    trial draws one uniform candidate per still-searching example -- from
    that example's own RNG stream, mirroring the per-example reference loop
    draw-for-draw -- and classifies all candidates in a single call.
    ``current`` receives the found starting points in place; the returned
    boolean mask marks which examples found one within ``init_trials``.
    """
    n = len(x)
    found = np.zeros(n, dtype=bool)
    searching = list(range(n))
    for _ in range(int(init_trials)):
        if not searching:
            break
        candidates = [
            rngs[i]
            .uniform(classifier.clip_min, classifier.clip_max, size=x[i].shape)
            .astype(np.float32)
            for i in searching
        ]
        predictions = classifier.predict(np.stack(candidates))
        still_searching = []
        for pos, i in enumerate(searching):
            if predictions[pos] != y[i]:
                current[i] = candidates[pos]
                found[i] = True
            else:
                still_searching.append(i)
        searching = still_searching
    return found
