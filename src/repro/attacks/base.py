"""Attack infrastructure: the classifier facade and the attack base class.

The :class:`Classifier` facade hides whether the underlying network is exact,
approximate (Defensive Approximation), quantised or bfloat16: attacks only use
its prediction and gradient entry points.  For approximate models the gradient
path is BPDA (backward through the exact layer at the activations cached by the
approximate forward), which is the strongest practical white-box attacker; see
:mod:`repro.nn.approx`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.counters import ProcessCounters
from repro.nn.functional import softmax
from repro.nn.layers import no_param_grads
from repro.nn.network import Sequential
from repro.obs.trace import TRACER


class QueryStats(ProcessCounters):
    """Process-level counters of classifier call batch sizes *during attacks*.

    The :class:`Classifier` prediction/gradient entry points report the
    batch size of each call issued while an attack is executing
    (:meth:`Attack.generate` opens the scope), so the pipeline can observe
    how well the batched attack engine is amortising model calls:
    ``*_calls_batch1`` counts degenerate single-example calls,
    ``*_samples / *_calls`` is the mean batch size.  Calls outside an
    attack -- victim-selection scans, transfer replays, accuracy sweeps --
    are deliberately excluded so the metric is not diluted by evaluation
    traffic.  Shares the GEMM kernel counters' per-process contract
    (:class:`repro.counters.ProcessCounters`): determinism guarantees
    exclude them, and each pool worker's deltas are returned with its shard
    results and folded into the run telemetry by the parent.
    """

    _FIELDS = (
        "query_calls",
        "query_samples",
        "query_calls_batch1",
        "gradient_calls",
        "gradient_samples",
        "gradient_calls_batch1",
    )

    def __init__(self) -> None:
        self._scope_depth = 0
        super().__init__()

    @contextmanager
    def attack_scope(self):
        """Mark the dynamic extent of one attack execution (reentrant)."""
        self._scope_depth += 1
        try:
            yield
        finally:
            self._scope_depth -= 1

    def record_query(self, batch: int) -> None:
        if not self._scope_depth:
            return
        self.query_calls += 1
        self.query_samples += int(batch)
        if batch == 1:
            self.query_calls_batch1 += 1

    def record_gradient(self, batch: int) -> None:
        if not self._scope_depth:
            return
        self.gradient_calls += 1
        self.gradient_samples += int(batch)
        if batch == 1:
            self.gradient_calls_batch1 += 1


#: process-wide classifier call-batch-size counters (reset never required;
#: consumers snapshot/delta like :data:`repro.arith.kernels.KERNEL_STATS`)
QUERY_STATS = QueryStats()


class Classifier:
    """Attack-facing facade around a :class:`~repro.nn.network.Sequential` model.

    Parameters
    ----------
    model:
        The wrapped network.
    clip_min, clip_max:
        Valid input range; adversarial examples are always clipped to it.
    """

    def __init__(self, model: Sequential, clip_min: float = 0.0, clip_max: float = 1.0):
        self.model = model
        self.clip_min = float(clip_min)
        self.clip_max = float(clip_max)
        self.query_count = 0
        self.gradient_count = 0
        # (serial, batch) stamp of the facade's most recent forward pass;
        # guards cached_logits_gradient against consuming another forward's
        # activations (see forward_serial)
        self._forward_serial = 0
        self._last_forward_batch: Optional[int] = None

    @property
    def forward_serial(self) -> int:
        """Monotonic id of the facade's most recent forward pass.

        Capture it right after a prediction and pass it to
        :meth:`cached_logits_gradient` to assert -- exactly, not just by
        batch size -- that no other forward overwrote the cached activations
        in between.
        """
        return self._forward_serial

    def _stamp_forward(self, batch: int) -> None:
        self._forward_serial += 1
        self._last_forward_batch = int(batch)

    # ------------------------------------------------------------ prediction
    def predict_logits(self, x: np.ndarray) -> np.ndarray:
        """Raw class scores; counts as one query per sample."""
        self.query_count += len(x)
        QUERY_STATS.record_query(len(x))
        self._stamp_forward(len(x))
        with TRACER.span("model.forward", cat="model", batch=len(x)):
            return self.model.predict_logits(np.asarray(x, dtype=np.float32))

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Softmax probabilities."""
        return softmax(self.predict_logits(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted labels."""
        return self.predict_logits(x).argmax(axis=1)

    @property
    def num_classes(self) -> int:
        """Number of output classes (inferred from the final linear layer)."""
        for layer in reversed(self.model.layers):
            if hasattr(layer, "out_features"):
                return int(layer.out_features)
        raise AttributeError("could not infer the number of classes from the model")

    # ------------------------------------------------------------- gradients
    def loss_gradient(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Gradient of the *unreduced* cross-entropy loss w.r.t. the input.

        The logit cotangent is built directly as ``softmax(logits) - onehot``
        rather than through the training criterion's batch-mean backward:
        dividing by the batch size and multiplying it back is not a
        floating-point identity, and would make a sample's gradient depend on
        how many neighbours shared its batch -- breaking the batched attack
        engine's bit-for-bit parity with per-example loops.
        """
        self.gradient_count += len(x)
        QUERY_STATS.record_gradient(len(x))
        x = np.asarray(x, dtype=np.float32)
        was_training = self.model.training
        self.model.set_training(False)
        try:
            with no_param_grads():  # attacks only consume the input gradient
                self._stamp_forward(len(x))
                with TRACER.span("model.loss_gradient", cat="model", batch=len(x)):
                    logits = self.model.forward(x)
                    grad_logits = softmax(logits)
                    grad_logits[np.arange(len(x)), np.asarray(y, dtype=np.int64)] -= 1.0
                    return self.model.backward(grad_logits)
        finally:
            self.model.set_training(was_training)

    def logits_gradient(self, x: np.ndarray, grad_logits: np.ndarray) -> np.ndarray:
        """Input gradient for an arbitrary cotangent on the logits (vector-Jacobian)."""
        (gradient,) = self.gradient_sweep(x, [grad_logits])
        return gradient

    def gradient_sweep(self, x: np.ndarray, cotangents) -> list:
        """Input gradients for several logit cotangents over **one** forward.

        The layer activation caches written by a forward pass stay valid
        across backward passes, so ``k`` vector-Jacobian products against the
        same input cost one forward plus ``k`` backwards instead of ``k``
        full round trips -- the forward is usually the expensive half (for
        approximate models it is the emulated datapath; the BPDA backward is
        exact BLAS).  Each cotangent counts as one gradient evaluation of
        ``len(x)`` samples, exactly as if issued through
        :meth:`logits_gradient`, and produces bit-identical gradients (the
        forward is deterministic, so re-running it per cotangent is pure
        waste).
        """
        x = np.asarray(x, dtype=np.float32)
        was_training = self.model.training
        self.model.set_training(False)
        try:
            with no_param_grads():
                self._stamp_forward(len(x))
                with TRACER.span(
                    "model.gradient_sweep", cat="model", batch=len(x)
                ) as span:
                    self.model.forward(x)
                    gradients = []
                    for cotangent in cotangents:
                        self.gradient_count += len(x)
                        QUERY_STATS.record_gradient(len(x))
                        gradients.append(
                            self.model.backward(np.asarray(cotangent, dtype=np.float32))
                        )
                    span["cotangents"] = len(gradients)
                    return gradients
        finally:
            self.model.set_training(was_training)

    def cached_logits_gradient(
        self, grad_logits: np.ndarray, forward_serial: Optional[int] = None
    ) -> np.ndarray:
        """Input gradient reusing the activations of the *last* forward pass.

        Must be called immediately after a prediction on the same batch (no
        other forward in between): the backward consumes the layer caches
        that prediction wrote.  Attacks that need the logits before they can
        build the cotangent (C&W's margin term) use this to avoid paying the
        forward twice; the result is bit-identical to
        :meth:`logits_gradient` on the same input and counts one gradient
        evaluation.

        Pass the :attr:`forward_serial` captured right after the prediction
        to assert the cached activations are exactly that forward's; without
        it only the cotangent/forward batch-size match is checked.  Either
        violation raises instead of silently corrupting gradients.
        """
        grad_logits = np.asarray(grad_logits, dtype=np.float32)
        if forward_serial is not None and forward_serial != self._forward_serial:
            raise RuntimeError(
                f"cached_logits_gradient: forward pass {forward_serial} is "
                f"stale (the facade is at {self._forward_serial}); another "
                "classifier call overwrote the cached activations"
            )
        if self._last_forward_batch != len(grad_logits):
            raise RuntimeError(
                "cached_logits_gradient: cotangent batch "
                f"({len(grad_logits)}) does not match the last forward pass "
                f"({self._last_forward_batch}); another classifier call "
                "overwrote the cached activations"
            )
        self.gradient_count += len(grad_logits)
        QUERY_STATS.record_gradient(len(grad_logits))
        was_training = self.model.training
        self.model.set_training(False)
        try:
            with no_param_grads():
                return self.model.backward(grad_logits)
        finally:
            self.model.set_training(was_training)

    def class_gradient(self, x: np.ndarray, class_index: np.ndarray) -> np.ndarray:
        """Gradient of the selected class logit w.r.t. the input, per sample.

        Counts as one gradient evaluation (inside :meth:`logits_gradient`) and
        zero prediction queries: the logit cotangent is built from
        :attr:`num_classes` instead of an uncounted forward pass, keeping the
        black-box budget bookkeeping exact.
        """
        grad = np.zeros((len(x), self.num_classes), dtype=np.float32)
        grad[np.arange(len(x)), np.asarray(class_index, dtype=np.int64)] = 1.0
        return self.logits_gradient(x, grad)

    def jacobian(self, x: np.ndarray) -> np.ndarray:
        """Full Jacobian of the logits w.r.t. the input: shape ``(N, classes, *input)``.

        Computed with one backward pass per class; intended for small models /
        small batches (JSMA, DeepFool).
        """
        n = len(x)
        n_classes = self.num_classes
        jac = np.zeros((n, n_classes) + x.shape[1:], dtype=np.float32)

        # one cotangent buffer reused across classes (set column k, backprop,
        # clear column k) instead of a fresh (N, n_classes) zero-fill per
        # class.  Safe because the sweep only *reads* each cotangent before
        # the next mutation.  Batched DeepFool and JSMA issue
        # jacobian-shaped call sequences per active set, so this buffer
        # discipline -- and the single shared forward of gradient_sweep --
        # is on their hot path.
        grad = np.zeros((n, n_classes), dtype=np.float32)

        def cotangents():
            for k in range(n_classes):
                grad[:, k] = 1.0
                yield grad
                grad[:, k] = 0.0

        for k, grad_k in enumerate(self.gradient_sweep(x, cotangents())):
            jac[:, k] = grad_k
        return jac

    # --------------------------------------------------------------- helpers
    def clip(self, x: np.ndarray) -> np.ndarray:
        """Clip to the valid input range."""
        return np.clip(x, self.clip_min, self.clip_max).astype(np.float32)

    def reset_counters(self) -> None:
        """Reset query and gradient counters (black-box budget bookkeeping)."""
        self.query_count = 0
        self.gradient_count = 0


@dataclass
class AttackResult:
    """Adversarial examples plus bookkeeping, returned by :meth:`Attack.generate`."""

    adversarial: np.ndarray
    original: np.ndarray
    labels: np.ndarray
    success: np.ndarray  # per-sample: prediction changed away from the true label

    @property
    def success_rate(self) -> float:
        return float(np.mean(self.success)) if len(self.success) else 0.0

    def l2_distances(self) -> np.ndarray:
        """Per-sample L2 distance between original and adversarial images."""
        diff = (self.adversarial - self.original).reshape(len(self.original), -1)
        return np.linalg.norm(diff, axis=1)


class Attack(ABC):
    """Base class of all evasion attacks (untargeted).

    Stochastic attacks draw *per-example* RNG streams: example ``i`` of a
    ``perturb`` call uses ``SeedSequence(entropy=seed,
    spawn_key=(seed_offset + i,))``.  Because the stream is keyed by the
    example's global position in the victim set -- not by the batch or shard
    it happened to be processed in -- results are bit-for-bit identical at
    every batch size and under any shard decomposition.
    """

    #: short identifier matching Table 1 of the paper
    name: str = "attack"

    #: global index of ``x[0]`` within the experiment's victim stream; the
    #: pipeline sets it to each shard's start offset so per-example RNG
    #: streams are invariant to the shard layout
    seed_offset: int = 0

    def example_rng(self, index: int) -> np.random.Generator:
        """The RNG stream of example ``index`` of the current ``perturb`` call.

        Requires the attack to expose a ``seed`` attribute (an integer or
        anything :class:`numpy.random.SeedSequence` accepts as entropy).
        """
        return np.random.default_rng(
            np.random.SeedSequence(
                entropy=getattr(self, "seed"), spawn_key=(self.seed_offset + int(index),)
            )
        )

    @abstractmethod
    def perturb(self, classifier: Classifier, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return adversarial versions of ``x`` (labels ``y`` are the true labels)."""

    def generate(self, classifier: Classifier, x: np.ndarray, y: np.ndarray) -> AttackResult:
        """Run the attack and evaluate its success against ``classifier`` itself."""
        x = np.asarray(x, dtype=np.float32)
        y = np.asarray(y, dtype=np.int64)
        with QUERY_STATS.attack_scope(), TRACER.span(
            "attack.generate", cat="attack", attack=self.name, n=len(x)
        ):
            adversarial = classifier.clip(self.perturb(classifier, x, y))
            predictions = classifier.predict(adversarial)
        return AttackResult(
            adversarial=adversarial, original=x, labels=y, success=predictions != y
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}()"
