"""Attack infrastructure: the classifier facade and the attack base class.

The :class:`Classifier` facade hides whether the underlying network is exact,
approximate (Defensive Approximation), quantised or bfloat16: attacks only use
its prediction and gradient entry points.  For approximate models the gradient
path is BPDA (backward through the exact layer at the activations cached by the
approximate forward), which is the strongest practical white-box attacker; see
:mod:`repro.nn.approx`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.nn.functional import softmax
from repro.nn.losses import CrossEntropyLoss
from repro.nn.network import Sequential


class Classifier:
    """Attack-facing facade around a :class:`~repro.nn.network.Sequential` model.

    Parameters
    ----------
    model:
        The wrapped network.
    clip_min, clip_max:
        Valid input range; adversarial examples are always clipped to it.
    """

    def __init__(self, model: Sequential, clip_min: float = 0.0, clip_max: float = 1.0):
        self.model = model
        self.clip_min = float(clip_min)
        self.clip_max = float(clip_max)
        self.query_count = 0
        self.gradient_count = 0

    # ------------------------------------------------------------ prediction
    def predict_logits(self, x: np.ndarray) -> np.ndarray:
        """Raw class scores; counts as one query per sample."""
        self.query_count += len(x)
        return self.model.predict_logits(np.asarray(x, dtype=np.float32))

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Softmax probabilities."""
        return softmax(self.predict_logits(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted labels."""
        return self.predict_logits(x).argmax(axis=1)

    @property
    def num_classes(self) -> int:
        """Number of output classes (inferred from the final linear layer)."""
        for layer in reversed(self.model.layers):
            if hasattr(layer, "out_features"):
                return int(layer.out_features)
        raise AttributeError("could not infer the number of classes from the model")

    # ------------------------------------------------------------- gradients
    def loss_gradient(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Gradient of the cross-entropy loss w.r.t. the input."""
        self.gradient_count += len(x)
        x = np.asarray(x, dtype=np.float32)
        was_training = self.model.training
        self.model.set_training(False)
        try:
            self.model.zero_grad()
            logits = self.model.forward(x)
            criterion = CrossEntropyLoss()
            criterion.forward(logits, y)
            grad_logits = criterion.backward() * len(x)  # undo the batch mean
            return self.model.backward(grad_logits)
        finally:
            self.model.set_training(was_training)

    def logits_gradient(self, x: np.ndarray, grad_logits: np.ndarray) -> np.ndarray:
        """Input gradient for an arbitrary cotangent on the logits (vector-Jacobian)."""
        self.gradient_count += len(x)
        x = np.asarray(x, dtype=np.float32)
        was_training = self.model.training
        self.model.set_training(False)
        try:
            self.model.zero_grad()
            self.model.forward(x)
            return self.model.backward(np.asarray(grad_logits, dtype=np.float32))
        finally:
            self.model.set_training(was_training)

    def class_gradient(self, x: np.ndarray, class_index: np.ndarray) -> np.ndarray:
        """Gradient of the selected class logit w.r.t. the input, per sample.

        Counts as one gradient evaluation (inside :meth:`logits_gradient`) and
        zero prediction queries: the logit cotangent is built from
        :attr:`num_classes` instead of an uncounted forward pass, keeping the
        black-box budget bookkeeping exact.
        """
        grad = np.zeros((len(x), self.num_classes), dtype=np.float32)
        grad[np.arange(len(x)), np.asarray(class_index, dtype=np.int64)] = 1.0
        return self.logits_gradient(x, grad)

    def jacobian(self, x: np.ndarray) -> np.ndarray:
        """Full Jacobian of the logits w.r.t. the input: shape ``(N, classes, *input)``.

        Computed with one backward pass per class; intended for small models /
        small batches (JSMA, DeepFool).
        """
        n = len(x)
        n_classes = self.num_classes
        jac = np.zeros((n, n_classes) + x.shape[1:], dtype=np.float32)
        for k in range(n_classes):
            grad = np.zeros((n, n_classes), dtype=np.float32)
            grad[:, k] = 1.0
            jac[:, k] = self.logits_gradient(x, grad)
        return jac

    # --------------------------------------------------------------- helpers
    def clip(self, x: np.ndarray) -> np.ndarray:
        """Clip to the valid input range."""
        return np.clip(x, self.clip_min, self.clip_max).astype(np.float32)

    def reset_counters(self) -> None:
        """Reset query and gradient counters (black-box budget bookkeeping)."""
        self.query_count = 0
        self.gradient_count = 0


@dataclass
class AttackResult:
    """Adversarial examples plus bookkeeping, returned by :meth:`Attack.generate`."""

    adversarial: np.ndarray
    original: np.ndarray
    labels: np.ndarray
    success: np.ndarray  # per-sample: prediction changed away from the true label

    @property
    def success_rate(self) -> float:
        return float(np.mean(self.success)) if len(self.success) else 0.0

    def l2_distances(self) -> np.ndarray:
        """Per-sample L2 distance between original and adversarial images."""
        diff = (self.adversarial - self.original).reshape(len(self.original), -1)
        return np.linalg.norm(diff, axis=1)


class Attack(ABC):
    """Base class of all evasion attacks (untargeted)."""

    #: short identifier matching Table 1 of the paper
    name: str = "attack"

    @abstractmethod
    def perturb(self, classifier: Classifier, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Return adversarial versions of ``x`` (labels ``y`` are the true labels)."""

    def generate(self, classifier: Classifier, x: np.ndarray, y: np.ndarray) -> AttackResult:
        """Run the attack and evaluate its success against ``classifier`` itself."""
        x = np.asarray(x, dtype=np.float32)
        y = np.asarray(y, dtype=np.int64)
        adversarial = classifier.clip(self.perturb(classifier, x, y))
        predictions = classifier.predict(adversarial)
        return AttackResult(
            adversarial=adversarial, original=x, labels=y, success=predictions != y
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}()"
