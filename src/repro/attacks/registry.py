"""Attack registry mirroring Table 1 of the paper.

Each entry records the attack's category (gradient / score / decision based),
the norm it minimises, whether it is one-shot or iterative, and the strength
rating the paper quotes from Akhtar & Mian (2018).  The entries live in the
unified ``"attack"`` registry (:mod:`repro.registry`); ``ATTACK_SPECS``,
:func:`create_attack` and :func:`list_attacks` are kept as the historical
entry points over it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Type

from repro.attacks.base import Attack
from repro.attacks.boundary import BoundaryAttack
from repro.attacks.carlini_wagner import CarliniWagnerL2
from repro.attacks.deepfool import DeepFool
from repro.attacks.fgsm import FGSM
from repro.attacks.hopskipjump import HopSkipJump
from repro.attacks.jsma import JSMA
from repro.attacks.lsa import LocalSearchAttack
from repro.attacks.pgd import PGD
from repro.registry import registry

#: unified registry of evasion attacks (namespace ``"attack"``)
ATTACKS = registry("attack")


@dataclass
class AttackSpec:
    """Metadata and default construction parameters for one attack method."""

    name: str
    attack_class: Type[Attack]
    category: str
    norm: str
    learning: str
    strength: int
    default_params: dict = field(default_factory=dict)

    def create(self, **overrides) -> Attack:
        """Instantiate the attack with default parameters plus ``overrides``."""
        params = dict(self.default_params)
        params.update(overrides)
        return self.attack_class(**params)


class _AttackSpecView(Dict[str, AttackSpec]):
    """Legacy dict view over the attack registry.

    :func:`register_attack` populates the dict storage itself, so every
    inherited dict method works; iteration and membership delegate to the
    registry so entries registered or removed directly on :data:`ATTACKS`
    are still observed.  Attacks registered directly on :data:`ATTACKS`
    without an :class:`AttackSpec` are usable through the registry API but
    have no spec to expose here -- register through :func:`register_attack`
    for full legacy-dict visibility.
    """

    def __missing__(self, name: str) -> AttackSpec:
        spec = ATTACKS.metadata(name).get("spec")
        if spec is None:
            raise KeyError(name)
        return spec

    def __iter__(self):
        return iter(ATTACKS.names())

    def __len__(self) -> int:
        return len(ATTACKS)

    def __contains__(self, name: object) -> bool:
        return name in ATTACKS


ATTACK_SPECS: Dict[str, AttackSpec] = _AttackSpecView()


def register_attack(spec: AttackSpec) -> AttackSpec:
    """Add an attack to the unified registry, keyed by its spec name."""
    ATTACKS.register(
        spec.name,
        spec.create,
        metadata={
            "spec": spec,
            "category": spec.category,
            "norm": spec.norm,
            "learning": spec.learning,
            "strength": spec.strength,
        },
    )
    # keep the legacy view's own storage in sync so inherited dict methods
    # (.copy(), ==, .items() ...) see the same entries as the registry
    dict.__setitem__(ATTACK_SPECS, spec.name, spec)
    return spec


# registration order follows the paper's Table 1
for _spec in (
    AttackSpec("fgsm", FGSM, "gradient-based", "Linf", "one-shot", 3),
    AttackSpec("pgd", PGD, "gradient-based", "Linf", "iterative", 4),
    AttackSpec("jsma", JSMA, "gradient-based", "L0", "iterative", 3),
    AttackSpec("cw", CarliniWagnerL2, "gradient-based", "L2", "iterative", 5),
    AttackSpec("deepfool", DeepFool, "gradient-based", "L2", "iterative", 4),
    AttackSpec("lsa", LocalSearchAttack, "score-based", "L2", "iterative", 3),
    AttackSpec("boundary", BoundaryAttack, "decision-based", "L2", "iterative", 3),
    AttackSpec("hsj", HopSkipJump, "decision-based", "L2", "iterative", 5),
):
    register_attack(_spec)
del _spec


def list_attacks() -> List[str]:
    """Names of all registered attacks, in the paper's Table 1 order."""
    return ATTACKS.names()


def create_attack(name: str, **overrides) -> Attack:
    """Instantiate an attack by name (shim over the ``"attack"`` registry)."""
    return ATTACKS.create(name, **overrides)
