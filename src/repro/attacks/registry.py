"""Attack registry mirroring Table 1 of the paper.

Each entry records the attack's category (gradient / score / decision based),
the norm it minimises, whether it is one-shot or iterative, and the strength
rating the paper quotes from Akhtar & Mian (2018).  The registry is what the
threat-model harnesses in :mod:`repro.core.evaluation` iterate over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Type

from repro.attacks.base import Attack
from repro.attacks.boundary import BoundaryAttack
from repro.attacks.carlini_wagner import CarliniWagnerL2
from repro.attacks.deepfool import DeepFool
from repro.attacks.fgsm import FGSM
from repro.attacks.hopskipjump import HopSkipJump
from repro.attacks.jsma import JSMA
from repro.attacks.lsa import LocalSearchAttack
from repro.attacks.pgd import PGD


@dataclass
class AttackSpec:
    """Metadata and default construction parameters for one attack method."""

    name: str
    attack_class: Type[Attack]
    category: str
    norm: str
    learning: str
    strength: int
    default_params: dict = field(default_factory=dict)

    def create(self, **overrides) -> Attack:
        """Instantiate the attack with default parameters plus ``overrides``."""
        params = dict(self.default_params)
        params.update(overrides)
        return self.attack_class(**params)


ATTACK_SPECS: Dict[str, AttackSpec] = {
    "fgsm": AttackSpec("fgsm", FGSM, "gradient-based", "Linf", "one-shot", 3),
    "pgd": AttackSpec("pgd", PGD, "gradient-based", "Linf", "iterative", 4),
    "jsma": AttackSpec("jsma", JSMA, "gradient-based", "L0", "iterative", 3),
    "cw": AttackSpec("cw", CarliniWagnerL2, "gradient-based", "L2", "iterative", 5),
    "deepfool": AttackSpec("deepfool", DeepFool, "gradient-based", "L2", "iterative", 4),
    "lsa": AttackSpec("lsa", LocalSearchAttack, "score-based", "L2", "iterative", 3),
    "boundary": AttackSpec("boundary", BoundaryAttack, "decision-based", "L2", "iterative", 3),
    "hsj": AttackSpec("hsj", HopSkipJump, "decision-based", "L2", "iterative", 5),
}


def list_attacks() -> List[str]:
    """Names of all registered attacks, in the paper's Table 1 order."""
    return list(ATTACK_SPECS)


def create_attack(name: str, **overrides) -> Attack:
    """Instantiate an attack by name with optional parameter overrides."""
    try:
        spec = ATTACK_SPECS[name]
    except KeyError as exc:
        raise KeyError(f"unknown attack {name!r}; available: {list_attacks()}") from exc
    return spec.create(**overrides)
