"""Projected Gradient Descent (Madry et al., 2018)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attacks.base import Attack, Classifier


class PGD(Attack):
    """Iterative L-infinity attack with projection onto the epsilon ball.

    Parameters
    ----------
    epsilon:
        Radius of the L-infinity ball around the clean input.
    step_size:
        Per-iteration step (defaults to ``2.5 * epsilon / steps``).
    steps:
        Number of gradient steps.
    random_start:
        Start from a uniformly random point inside the ball.  The start of
        example ``i`` is drawn from its own RNG stream
        (:meth:`~repro.attacks.base.Attack.example_rng`), so results are
        invariant to the batch/shard the example is processed in.
    """

    name = "pgd"

    def __init__(
        self,
        epsilon: float = 0.15,
        step_size: Optional[float] = None,
        steps: int = 20,
        random_start: bool = True,
        seed: int = 0,
    ):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        if steps < 1:
            raise ValueError("steps must be >= 1")
        self.epsilon = float(epsilon)
        self.steps = int(steps)
        self.step_size = float(step_size) if step_size is not None else 2.5 * epsilon / steps
        self.random_start = random_start
        self.seed = seed

    def perturb(self, classifier: Classifier, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if not len(x):  # empty victim slice: no-op (the model rejects N=0)
            return x.copy()
        if self.random_start:
            noise = np.stack(
                [
                    self.example_rng(i)
                    .uniform(-self.epsilon, self.epsilon, size=x[i].shape)
                    .astype(np.float32)
                    for i in range(len(x))
                ]
            )
            x_adv = classifier.clip(x + noise)
        else:
            x_adv = x.copy()
        for _ in range(self.steps):
            grad = classifier.loss_gradient(x_adv, y)
            x_adv = x_adv + self.step_size * np.sign(grad)
            x_adv = np.clip(x_adv, x - self.epsilon, x + self.epsilon)
            x_adv = classifier.clip(x_adv)
        return x_adv
