"""HopSkipJump / Boundary Attack++ (Chen & Jordan, 2019).

A decision-based attack that combines binary-search projection onto the
decision boundary with a Monte-Carlo estimate of the boundary normal, giving
much better query efficiency than the plain Boundary Attack.

Batched execution: every phase runs in lockstep over the active set --
initialisation trials, the binary-search bisections, the geometric step
search, and (the big one) the Monte-Carlo gradient estimate, whose
``num_samples`` probes are batched **per example and across examples** into
one classifier call per outer iteration.  Per-example noise comes from
per-example RNG streams and the per-example geometry keeps the reference
expressions, so trajectories are bit-for-bit those of the per-example loop
(:mod:`repro.attacks.batched`).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.attacks.base import Attack, Classifier
from repro.attacks.batched import ActiveSet, find_adversarial_starts


class HopSkipJump(Attack):
    """Decision-based attack with gradient-direction estimation at the boundary.

    Parameters
    ----------
    max_iterations:
        Number of outer iterations (each = boundary projection + gradient
        estimate + geometric step search).
    init_trials:
        Random restarts used to find an initial adversarial point.
    num_eval_samples:
        Monte-Carlo samples for the gradient-direction estimate (grows with the
        square root of the iteration, as in the original paper).
    binary_search_steps:
        Steps of the boundary binary search.
    seed:
        Entropy of the per-example RNG streams (see :class:`Attack`).
    """

    name = "hsj"

    def __init__(
        self,
        max_iterations: int = 10,
        init_trials: int = 50,
        num_eval_samples: int = 24,
        binary_search_steps: int = 8,
        seed: int = 0,
    ):
        self.max_iterations = int(max_iterations)
        self.init_trials = int(init_trials)
        self.num_eval_samples = int(num_eval_samples)
        self.binary_search_steps = int(binary_search_steps)
        self.seed = seed

    # ------------------------------------------------------------ internals
    def _binary_search_rows(
        self,
        classifier: Classifier,
        x: np.ndarray,
        y: np.ndarray,
        points: Dict[int, np.ndarray],
        rows: Sequence[int],
    ) -> Dict[int, np.ndarray]:
        """Project each row's adversarial point onto the boundary (lockstep).

        One prediction call per bisection step covers every row; the
        interpolation scalars stay per-example Python floats, mirroring the
        reference's single-example search.
        """
        low = {i: 0.0 for i in rows}
        high = {i: 1.0 for i in rows}
        for _ in range(self.binary_search_steps):
            mid = {i: (low[i] + high[i]) / 2.0 for i in rows}
            blended = np.stack([(1 - mid[i]) * x[i] + mid[i] * points[i] for i in rows])
            predictions = classifier.predict(blended)
            for pos, i in enumerate(rows):
                if predictions[pos] != y[i]:
                    high[i] = mid[i]
                else:
                    low[i] = mid[i]
        return {
            i: ((1 - high[i]) * x[i] + high[i] * points[i]).astype(np.float32) for i in rows
        }

    def perturb(self, classifier: Classifier, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        y = np.asarray(y, dtype=np.int64)
        n = len(x)
        rngs = [self.example_rng(i) for i in range(n)]
        current = x.copy()  # examples without a starting point stay clean

        found = find_adversarial_starts(classifier, x, y, rngs, current, self.init_trials)
        active = ActiveSet(n)
        active.retire(np.flatnonzero(~found))
        rows = active.indices
        if len(rows):
            projected = self._binary_search_rows(
                classifier, x, y, {i: current[i] for i in rows}, rows
            )
            for i in rows:
                current[i] = projected[i]

        for iteration in range(self.max_iterations):
            rows = active.indices
            if not len(rows):
                break
            # Monte-Carlo boundary-normal estimate: all rows' probe spheres
            # ride in one classifier call
            n_samples = int(self.num_eval_samples * np.sqrt(iteration + 1))
            noises = []
            probe_blocks = []
            for i in rows:
                boundary_point = current[i]
                delta = 0.1 / np.sqrt(np.prod(boundary_point.shape))
                noise = rngs[i].normal(size=(n_samples,) + boundary_point.shape).astype(
                    np.float32
                )
                norms = np.linalg.norm(noise.reshape(n_samples, -1), axis=1).reshape(
                    (-1,) + (1,) * boundary_point.ndim
                )
                noise /= norms + 1e-12
                probes = np.clip(
                    boundary_point[np.newaxis] + delta * noise,
                    classifier.clip_min,
                    classifier.clip_max,
                )
                noises.append(noise)
                probe_blocks.append(probes)
            predictions = classifier.predict(np.concatenate(probe_blocks))
            directions = {}
            for pos, i in enumerate(rows):
                is_adv = (
                    predictions[pos * n_samples : (pos + 1) * n_samples] != y[i]
                ).astype(np.float32) * 2.0 - 1.0
                # baseline subtraction (control variate) as in the original
                is_adv -= is_adv.mean()
                direction = (
                    is_adv.reshape((-1,) + (1,) * x[i].ndim) * noises[pos]
                ).mean(axis=0)
                norm = np.linalg.norm(direction.ravel())
                directions[i] = noises[pos][0] if norm < 1e-12 else direction / norm

            # geometric step-size search: each round proposes one candidate
            # per still-searching row, shrinking its step on failure
            step = {}
            for i in rows:
                dist = np.linalg.norm((current[i] - x[i]).ravel())
                step[i] = dist / np.sqrt(iteration + 1)
            searching = list(rows)
            landed: Dict[int, np.ndarray] = {}
            for _ in range(10):
                if not searching:
                    break
                candidates = [
                    classifier.clip(current[i] + step[i] * directions[i]) for i in searching
                ]
                predictions = classifier.predict(np.stack(candidates))
                still_searching = []
                for pos, i in enumerate(searching):
                    if predictions[pos] != y[i]:
                        landed[i] = candidates[pos]
                    else:
                        step[i] /= 2.0
                        still_searching.append(i)
                searching = still_searching
            landed_rows = [i for i in rows if i in landed]
            if landed_rows:
                projected = self._binary_search_rows(classifier, x, y, landed, landed_rows)
                for i in landed_rows:
                    current[i] = projected[i]
        return current
