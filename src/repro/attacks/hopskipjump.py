"""HopSkipJump / Boundary Attack++ (Chen & Jordan, 2019).

A decision-based attack that combines binary-search projection onto the
decision boundary with a Monte-Carlo estimate of the boundary normal, giving
much better query efficiency than the plain Boundary Attack.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attacks.base import Attack, Classifier


class HopSkipJump(Attack):
    """Decision-based attack with gradient-direction estimation at the boundary.

    Parameters
    ----------
    max_iterations:
        Number of outer iterations (each = boundary projection + gradient
        estimate + geometric step search).
    init_trials:
        Random restarts used to find an initial adversarial point.
    num_eval_samples:
        Monte-Carlo samples for the gradient-direction estimate (grows with the
        square root of the iteration, as in the original paper).
    binary_search_steps:
        Steps of the boundary binary search.
    """

    name = "hsj"

    def __init__(
        self,
        max_iterations: int = 10,
        init_trials: int = 50,
        num_eval_samples: int = 24,
        binary_search_steps: int = 8,
        seed: int = 0,
    ):
        self.max_iterations = int(max_iterations)
        self.init_trials = int(init_trials)
        self.num_eval_samples = int(num_eval_samples)
        self.binary_search_steps = int(binary_search_steps)
        self.rng = np.random.default_rng(seed)

    def perturb(self, classifier: Classifier, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        adversarial = np.empty_like(np.asarray(x, dtype=np.float32))
        for i in range(len(x)):
            adversarial[i] = self._attack_single(classifier, x[i], int(y[i]))
        return adversarial

    # ------------------------------------------------------------ internals
    def _is_adversarial(self, classifier: Classifier, x: np.ndarray, label: int) -> np.ndarray:
        x = np.atleast_2d(x.reshape((-1,) + x.shape[-3:])) if x.ndim == 3 else x
        return classifier.predict(x) != label

    def _find_start(self, classifier: Classifier, x: np.ndarray, label: int) -> Optional[np.ndarray]:
        for _ in range(self.init_trials):
            candidate = self.rng.uniform(
                classifier.clip_min, classifier.clip_max, size=x.shape
            ).astype(np.float32)
            if classifier.predict(candidate[np.newaxis])[0] != label:
                return candidate
        return None

    def _binary_search(
        self, classifier: Classifier, x: np.ndarray, adversarial: np.ndarray, label: int
    ) -> np.ndarray:
        """Project the adversarial point onto the boundary along the segment to x."""
        low, high = 0.0, 1.0  # interpolation coefficient towards the adversarial point
        for _ in range(self.binary_search_steps):
            mid = (low + high) / 2.0
            blended = (1 - mid) * x + mid * adversarial
            if classifier.predict(blended[np.newaxis])[0] != label:
                high = mid
            else:
                low = mid
        return ((1 - high) * x + high * adversarial).astype(np.float32)

    def _estimate_direction(
        self, classifier: Classifier, boundary_point: np.ndarray, label: int, iteration: int
    ) -> np.ndarray:
        n_samples = int(self.num_eval_samples * np.sqrt(iteration + 1))
        delta = 0.1 / np.sqrt(np.prod(boundary_point.shape))
        noise = self.rng.normal(size=(n_samples,) + boundary_point.shape).astype(np.float32)
        norms = np.linalg.norm(noise.reshape(n_samples, -1), axis=1).reshape(
            (-1,) + (1,) * boundary_point.ndim
        )
        noise /= norms + 1e-12
        probes = np.clip(
            boundary_point[np.newaxis] + delta * noise, classifier.clip_min, classifier.clip_max
        )
        is_adv = (classifier.predict(probes) != label).astype(np.float32) * 2.0 - 1.0
        # baseline subtraction (control variate) as in the original algorithm
        is_adv -= is_adv.mean()
        direction = (is_adv.reshape((-1,) + (1,) * boundary_point.ndim) * noise).mean(axis=0)
        norm = np.linalg.norm(direction.ravel())
        if norm < 1e-12:
            return noise[0]
        return direction / norm

    def _attack_single(self, classifier: Classifier, x: np.ndarray, label: int) -> np.ndarray:
        x = x.astype(np.float32)
        current = self._find_start(classifier, x, label)
        if current is None:
            return x.copy()
        current = self._binary_search(classifier, x, current, label)

        for iteration in range(self.max_iterations):
            direction = self._estimate_direction(classifier, current, label, iteration)
            dist = np.linalg.norm((current - x).ravel())
            step = dist / np.sqrt(iteration + 1)
            # geometric step-size search: shrink until still adversarial
            success = False
            for _ in range(10):
                candidate = classifier.clip(current + step * direction)
                if classifier.predict(candidate[np.newaxis])[0] != label:
                    success = True
                    break
                step /= 2.0
            if success:
                current = self._binary_search(classifier, x, candidate, label)
        return current
