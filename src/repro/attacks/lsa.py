"""Local Search Attack (Narodytska & Kasiviswanathan, 2017).

A score-based attack: it never uses gradients, only the predicted class
probabilities.  At each round a random working set of pixels is probed; the
pixels whose perturbation most decreases the true-class probability are kept.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, Classifier


class LocalSearchAttack(Attack):
    """Greedy score-based pixel search.

    Parameters
    ----------
    perturbation:
        Magnitude added/subtracted to probed pixels.
    candidates_per_round:
        Number of randomly selected pixels probed each round.
    pixels_per_round:
        Number of best candidates committed each round.
    max_rounds:
        Round budget.
    """

    name = "lsa"

    def __init__(
        self,
        perturbation: float = 0.5,
        candidates_per_round: int = 32,
        pixels_per_round: int = 4,
        max_rounds: int = 15,
        seed: int = 0,
    ):
        self.perturbation = float(perturbation)
        self.candidates_per_round = int(candidates_per_round)
        self.pixels_per_round = int(pixels_per_round)
        self.max_rounds = int(max_rounds)
        self.rng = np.random.default_rng(seed)

    def perturb(self, classifier: Classifier, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        adversarial = np.empty_like(np.asarray(x, dtype=np.float32))
        for i in range(len(x)):
            adversarial[i] = self._attack_single(classifier, x[i], int(y[i]))
        return adversarial

    def _attack_single(self, classifier: Classifier, x: np.ndarray, label: int) -> np.ndarray:
        x_adv = x.astype(np.float32).copy()
        n_features = x_adv.size
        for _ in range(self.max_rounds):
            if classifier.predict(x_adv[np.newaxis])[0] != label:
                break
            candidates = self.rng.choice(
                n_features, size=min(self.candidates_per_round, n_features), replace=False
            )
            # probe each candidate pixel in both directions in one batch
            probes = np.repeat(x_adv[np.newaxis], 2 * len(candidates), axis=0)
            flat = probes.reshape(2 * len(candidates), -1)
            for j, pixel in enumerate(candidates):
                flat[2 * j, pixel] = np.clip(
                    flat[2 * j, pixel] + self.perturbation, classifier.clip_min, classifier.clip_max
                )
                flat[2 * j + 1, pixel] = np.clip(
                    flat[2 * j + 1, pixel] - self.perturbation,
                    classifier.clip_min,
                    classifier.clip_max,
                )
            scores = classifier.predict_proba(probes)[:, label]
            order = np.argsort(scores)  # lowest true-class probability first
            flat_adv = x_adv.reshape(-1)
            for probe_idx in order[: self.pixels_per_round]:
                pixel = candidates[probe_idx // 2]
                flat_adv[pixel] = flat[probe_idx, pixel]
        return x_adv
