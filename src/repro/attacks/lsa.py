"""Local Search Attack (Narodytska & Kasiviswanathan, 2017).

A score-based attack: it never uses gradients, only the predicted class
probabilities.  At each round a random working set of pixels is probed; the
pixels whose perturbation most decreases the true-class probability are kept.

Batched execution: every round issues one prediction call over the active set
and one probability call over *all* active examples' pixel probes combined
(``2 * candidates_per_round`` probes per example), instead of two calls per
example per round.  Pixel draws come from per-example RNG streams
(:meth:`~repro.attacks.base.Attack.example_rng`), so results are bit-for-bit
those of the per-example loop at any batch size
(:mod:`repro.attacks.batched`).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, Classifier
from repro.attacks.batched import ActiveSet


class LocalSearchAttack(Attack):
    """Greedy score-based pixel search.

    Parameters
    ----------
    perturbation:
        Magnitude added/subtracted to probed pixels.
    candidates_per_round:
        Number of randomly selected pixels probed each round.
    pixels_per_round:
        Number of best candidates committed each round.
    max_rounds:
        Round budget.
    seed:
        Entropy of the per-example RNG streams (see :class:`Attack`).
    """

    name = "lsa"

    def __init__(
        self,
        perturbation: float = 0.5,
        candidates_per_round: int = 32,
        pixels_per_round: int = 4,
        max_rounds: int = 15,
        seed: int = 0,
    ):
        self.perturbation = float(perturbation)
        self.candidates_per_round = int(candidates_per_round)
        self.pixels_per_round = int(pixels_per_round)
        self.max_rounds = int(max_rounds)
        self.seed = seed

    def perturb(self, classifier: Classifier, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x_adv = np.asarray(x, dtype=np.float32).copy()
        if not len(x_adv):  # empty victim slice: no-op (the model rejects N=0)
            return x_adv
        y = np.asarray(y, dtype=np.int64)
        n = len(x_adv)
        n_features = x_adv[0].size
        rngs = [self.example_rng(i) for i in range(n)]

        active = ActiveSet(n)
        for _ in range(self.max_rounds):
            rows = active.indices
            if not len(rows):
                break
            crossed = classifier.predict(x_adv[rows]) != y[rows]
            active.retire(rows[crossed])
            rows = rows[~crossed]
            if not len(rows):
                continue
            # build every active example's probe block, then score them all
            # with a single model call
            probe_blocks = []
            candidate_sets = []
            for i in rows:
                candidates = rngs[i].choice(
                    n_features, size=min(self.candidates_per_round, n_features), replace=False
                )
                # probe each candidate pixel in both directions
                probes = np.repeat(x_adv[i][np.newaxis], 2 * len(candidates), axis=0)
                flat = probes.reshape(2 * len(candidates), -1)
                for j, pixel in enumerate(candidates):
                    flat[2 * j, pixel] = np.clip(
                        flat[2 * j, pixel] + self.perturbation,
                        classifier.clip_min,
                        classifier.clip_max,
                    )
                    flat[2 * j + 1, pixel] = np.clip(
                        flat[2 * j + 1, pixel] - self.perturbation,
                        classifier.clip_min,
                        classifier.clip_max,
                    )
                probe_blocks.append(probes)
                candidate_sets.append(candidates)
            probabilities = classifier.predict_proba(np.concatenate(probe_blocks))
            offset = 0
            for block, candidates, i in zip(probe_blocks, candidate_sets, rows):
                scores = probabilities[offset : offset + len(block), y[i]]
                offset += len(block)
                order = np.argsort(scores)  # lowest true-class probability first
                flat_probe = block.reshape(len(block), -1)
                flat_adv = x_adv[i].reshape(-1)
                for probe_idx in order[: self.pixels_per_round]:
                    pixel = candidates[probe_idx // 2]
                    flat_adv[pixel] = flat_probe[probe_idx, pixel]
        return x_adv
