"""Jacobian-based Saliency Map Attack (Papernot et al., 2016).

An L0 attack: a small number of input features are pushed to the upper clip
bound, chosen by a saliency map built from the Jacobian of the logits.  The
untargeted variant used here targets the runner-up class of each sample, which
is the standard choice when the paper's threat model does not name a target.

Batched execution: all victims extend their saliency maps in lockstep -- one
prediction call plus one Jacobian sweep (``n_classes`` gradient calls) per
iteration over the active set, instead of per example.  The per-example
saliency arithmetic is unchanged, so pixels, outputs and query counts are
bit-for-bit those of the per-example loop (:mod:`repro.attacks.batched`).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, Classifier
from repro.attacks.batched import ActiveSet


class JSMA(Attack):
    """Saliency-map driven L0 attack.

    Parameters
    ----------
    theta:
        Amount added to a selected feature at each step (features saturate at
        the clip bound).
    gamma:
        Maximum fraction of input features that may be modified.
    """

    name = "jsma"

    def __init__(self, theta: float = 0.6, gamma: float = 0.12):
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.theta = float(theta)
        self.gamma = float(gamma)

    def perturb(self, classifier: Classifier, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x_adv = np.asarray(x, dtype=np.float32).copy()
        if not len(x_adv):  # empty victim slice: no-op (the model rejects N=0)
            return x_adv
        y = np.asarray(y, dtype=np.int64)
        n = len(x_adv)
        n_features = x_adv[0].size
        max_modified = max(2, int(self.gamma * n_features))
        n_classes = classifier.num_classes
        modified = np.zeros((n, n_features), dtype=bool)

        logits = classifier.predict_logits(x_adv)
        targets = np.argsort(logits, axis=1)[:, ::-1][:, 1]  # runner-up classes

        active = ActiveSet(n)
        # one pixel is committed per example per iteration, so the modified
        # counts stay in lockstep and the budget is a shared iteration count
        for _ in range(max_modified):
            rows = active.indices
            if not len(rows):
                break
            logits = classifier.predict_logits(x_adv[rows])
            crossed = logits.argmax(axis=1) != y[rows]
            active.retire(rows[crossed])
            rows = rows[~crossed]
            if not len(rows):
                continue
            jac = classifier.jacobian(x_adv[rows]).reshape(len(rows), n_classes, n_features)
            for ri, i in enumerate(rows):
                grad_target = jac[ri, targets[i]]
                grad_others = jac[ri].sum(axis=0) - grad_target

                flat = x_adv[i].reshape(-1)
                saliency = np.where(
                    (grad_target > 0) & (grad_others < 0), grad_target * np.abs(grad_others), 0.0
                )
                saliency[flat >= classifier.clip_max] = 0.0
                saliency[modified[i]] = 0.0
                if saliency.max() <= 0:
                    # fall back to the largest target gradient among unmodified pixels
                    fallback = grad_target.copy()
                    fallback[flat >= classifier.clip_max] = -np.inf
                    fallback[modified[i]] = -np.inf
                    if not np.isfinite(fallback.max()):
                        active.retire([i])
                        continue
                    pixel = int(fallback.argmax())
                else:
                    pixel = int(saliency.argmax())
                flat[pixel] = min(classifier.clip_max, flat[pixel] + self.theta)
                modified[i, pixel] = True
        return x_adv
