"""Jacobian-based Saliency Map Attack (Papernot et al., 2016).

An L0 attack: a small number of input features are pushed to the upper clip
bound, chosen by a saliency map built from the Jacobian of the logits.  The
untargeted variant used here targets the runner-up class of each sample, which
is the standard choice when the paper's threat model does not name a target.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, Classifier


class JSMA(Attack):
    """Saliency-map driven L0 attack.

    Parameters
    ----------
    theta:
        Amount added to a selected feature at each step (features saturate at
        the clip bound).
    gamma:
        Maximum fraction of input features that may be modified.
    """

    name = "jsma"

    def __init__(self, theta: float = 0.6, gamma: float = 0.12):
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.theta = float(theta)
        self.gamma = float(gamma)

    def perturb(self, classifier: Classifier, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        adversarial = np.empty_like(np.asarray(x, dtype=np.float32))
        for i in range(len(x)):
            adversarial[i] = self._attack_single(classifier, x[i], int(y[i]))
        return adversarial

    def _attack_single(self, classifier: Classifier, x: np.ndarray, label: int) -> np.ndarray:
        x_adv = x[np.newaxis].astype(np.float32).copy()
        n_features = x_adv.size
        max_modified = max(2, int(self.gamma * n_features))
        modified: set[int] = set()

        logits = classifier.predict_logits(x_adv)[0]
        target = int(np.argsort(logits)[::-1][1])  # runner-up class

        while len(modified) < max_modified:
            logits = classifier.predict_logits(x_adv)[0]
            if logits.argmax() != label:
                break
            jac = classifier.jacobian(x_adv)[0].reshape(classifier.num_classes, -1)
            grad_target = jac[target]
            grad_others = jac.sum(axis=0) - grad_target

            flat = x_adv.reshape(-1)
            saliency = np.where(
                (grad_target > 0) & (grad_others < 0), grad_target * np.abs(grad_others), 0.0
            )
            saliency[flat >= classifier.clip_max] = 0.0
            for idx in modified:
                saliency[idx] = 0.0
            if saliency.max() <= 0:
                # fall back to the largest target gradient among unmodified pixels
                fallback = grad_target.copy()
                fallback[flat >= classifier.clip_max] = -np.inf
                for idx in modified:
                    fallback[idx] = -np.inf
                if not np.isfinite(fallback.max()):
                    break
                pixel = int(fallback.argmax())
            else:
                pixel = int(saliency.argmax())
            flat[pixel] = min(classifier.clip_max, flat[pixel] + self.theta)
            modified.add(pixel)
        return x_adv[0]
