"""Adversarial attack suite.

Implements the eight evasion attacks the paper evaluates (Table 1):

===========  ===============  ======  ==========
Attack       Category         Norm    Learning
===========  ===============  ======  ==========
FGSM         gradient-based   Linf    one-shot
PGD          gradient-based   Linf    iterative
JSMA         gradient-based   L0      iterative
C&W          gradient-based   L2      iterative
DeepFool     gradient-based   L2      iterative
LSA          score-based      L2      iterative
Boundary     decision-based   L2      iterative
HopSkipJump  decision-based   L2      iterative
===========  ===============  ======  ==========

Every attack operates on the :class:`~repro.attacks.base.Classifier` facade so
the same code runs against exact, approximate (DA), quantised and bfloat16
models.
"""

#: numerics version of the attack suite: bump when attack semantics change
#: (seeding scheme, rollout order, query accounting) so attack-evaluation
#: cells re-key.  Version 1: per-shard SeedSequence-spawned attack seeds
#: (the old ``CELL_CACHE_VERSION = 2``).  Version 2: the batched active-set
#: engine -- per-example RNG streams keyed by global victim index, loss
#: gradient without the ``/N * N`` roundtrip, per-example C&W constant
#: escalation (the old ``CELL_CACHE_VERSION = 4``; the parity suite in
#: ``tests/test_attack_parity.py`` pins these semantics).
ATTACK_NUMERICS_VERSION = 2

from repro.attacks.base import Attack, AttackResult, Classifier
from repro.attacks.boundary import BoundaryAttack
from repro.attacks.carlini_wagner import CarliniWagnerL2
from repro.attacks.deepfool import DeepFool
from repro.attacks.fgsm import FGSM
from repro.attacks.hopskipjump import HopSkipJump
from repro.attacks.jsma import JSMA
from repro.attacks.lsa import LocalSearchAttack
from repro.attacks.pgd import PGD
from repro.attacks.registry import ATTACK_SPECS, AttackSpec, create_attack, list_attacks

__all__ = [
    "Attack",
    "AttackResult",
    "Classifier",
    "FGSM",
    "PGD",
    "JSMA",
    "CarliniWagnerL2",
    "DeepFool",
    "LocalSearchAttack",
    "BoundaryAttack",
    "HopSkipJump",
    "AttackSpec",
    "ATTACK_SPECS",
    "create_attack",
    "list_attacks",
]
