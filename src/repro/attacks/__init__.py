"""Adversarial attack suite.

Implements the eight evasion attacks the paper evaluates (Table 1):

===========  ===============  ======  ==========
Attack       Category         Norm    Learning
===========  ===============  ======  ==========
FGSM         gradient-based   Linf    one-shot
PGD          gradient-based   Linf    iterative
JSMA         gradient-based   L0      iterative
C&W          gradient-based   L2      iterative
DeepFool     gradient-based   L2      iterative
LSA          score-based      L2      iterative
Boundary     decision-based   L2      iterative
HopSkipJump  decision-based   L2      iterative
===========  ===============  ======  ==========

Every attack operates on the :class:`~repro.attacks.base.Classifier` facade so
the same code runs against exact, approximate (DA), quantised and bfloat16
models.
"""

from repro.attacks.base import Attack, AttackResult, Classifier
from repro.attacks.boundary import BoundaryAttack
from repro.attacks.carlini_wagner import CarliniWagnerL2
from repro.attacks.deepfool import DeepFool
from repro.attacks.fgsm import FGSM
from repro.attacks.hopskipjump import HopSkipJump
from repro.attacks.jsma import JSMA
from repro.attacks.lsa import LocalSearchAttack
from repro.attacks.pgd import PGD
from repro.attacks.registry import ATTACK_SPECS, AttackSpec, create_attack, list_attacks

__all__ = [
    "Attack",
    "AttackResult",
    "Classifier",
    "FGSM",
    "PGD",
    "JSMA",
    "CarliniWagnerL2",
    "DeepFool",
    "LocalSearchAttack",
    "BoundaryAttack",
    "HopSkipJump",
    "AttackSpec",
    "ATTACK_SPECS",
    "create_attack",
    "list_attacks",
]
