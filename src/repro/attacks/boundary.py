"""Boundary Attack (Brendel et al., 2018).

A decision-based attack: it only observes the predicted label.  Starting from
an adversarial point (large random perturbation), it performs a random walk
along the decision boundary that gradually reduces the distance to the clean
input while remaining adversarial.

Batched execution: initialisation trials and walk steps run in lockstep --
every iteration draws one proposal per active example (from its own RNG
stream) and classifies all proposals in a single call.  Examples whose
initialisation failed, or whose walk converged onto the clean input, retire
and stop consuming queries.  The per-example proposal geometry and step-size
adaptation keep the reference expressions, so the walk is bit-for-bit that
of the per-example loop (:mod:`repro.attacks.batched`).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, Classifier
from repro.attacks.batched import ActiveSet, find_adversarial_starts


class BoundaryAttack(Attack):
    """Decision-based random-walk attack.

    Parameters
    ----------
    max_iterations:
        Number of walk steps.
    orthogonal_step, source_step:
        Initial relative step sizes; both adapt based on the success rate of
        recent proposals.
    init_trials:
        Number of random images tried when searching for an adversarial
        starting point.
    seed:
        Entropy of the per-example RNG streams (see :class:`Attack`).
    """

    name = "boundary"

    def __init__(
        self,
        max_iterations: int = 150,
        orthogonal_step: float = 0.1,
        source_step: float = 0.1,
        init_trials: int = 50,
        seed: int = 0,
    ):
        self.max_iterations = int(max_iterations)
        self.orthogonal_step = float(orthogonal_step)
        self.source_step = float(source_step)
        self.init_trials = int(init_trials)
        self.seed = seed

    def perturb(self, classifier: Classifier, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        y = np.asarray(y, dtype=np.int64)
        n = len(x)
        rngs = [self.example_rng(i) for i in range(n)]
        current = x.copy()  # examples without a starting point stay clean

        found = find_adversarial_starts(classifier, x, y, rngs, current, self.init_trials)
        active = ActiveSet(n)
        active.retire(np.flatnonzero(~found))

        ortho_step = [self.orthogonal_step] * n
        source_step = [self.source_step] * n
        for _ in range(self.max_iterations):
            rows = active.indices
            if not len(rows):
                break
            proposing = []
            proposals = []
            for i in rows:
                diff = x[i] - current[i]
                dist = np.linalg.norm(diff.ravel())
                if dist < 1e-6:
                    active.retire([i])
                    continue
                # orthogonal perturbation on the sphere around the clean image
                noise = rngs[i].normal(size=x[i].shape).astype(np.float32)
                noise *= ortho_step[i] * dist / (np.linalg.norm(noise.ravel()) + 1e-12)
                candidate = current[i] + noise
                # re-project to the sphere of the current distance
                cand_diff = x[i] - candidate
                cand_dist = np.linalg.norm(cand_diff.ravel()) + 1e-12
                candidate = x[i] - cand_diff * (dist / cand_dist)
                # step towards the clean image
                candidate = candidate + source_step[i] * (x[i] - candidate)
                proposing.append(i)
                proposals.append(classifier.clip(candidate))
            if not proposing:
                continue
            predictions = classifier.predict(np.stack(proposals))
            for pos, i in enumerate(proposing):
                if predictions[pos] != y[i]:
                    current[i] = proposals[pos]
                    ortho_step[i] = min(ortho_step[i] * 1.05, 0.5)
                    source_step[i] = min(source_step[i] * 1.05, 0.5)
                else:
                    ortho_step[i] *= 0.9
                    source_step[i] *= 0.9
        return current
