"""Boundary Attack (Brendel et al., 2018).

A decision-based attack: it only observes the predicted label.  Starting from
an adversarial point (large random perturbation), it performs a random walk
along the decision boundary that gradually reduces the distance to the clean
input while remaining adversarial.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.attacks.base import Attack, Classifier


class BoundaryAttack(Attack):
    """Decision-based random-walk attack.

    Parameters
    ----------
    max_iterations:
        Number of walk steps.
    orthogonal_step, source_step:
        Initial relative step sizes; both adapt based on the success rate of
        recent proposals.
    init_trials:
        Number of random images tried when searching for an adversarial
        starting point.
    """

    name = "boundary"

    def __init__(
        self,
        max_iterations: int = 150,
        orthogonal_step: float = 0.1,
        source_step: float = 0.1,
        init_trials: int = 50,
        seed: int = 0,
    ):
        self.max_iterations = int(max_iterations)
        self.orthogonal_step = float(orthogonal_step)
        self.source_step = float(source_step)
        self.init_trials = int(init_trials)
        self.rng = np.random.default_rng(seed)

    def perturb(self, classifier: Classifier, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        adversarial = np.empty_like(np.asarray(x, dtype=np.float32))
        for i in range(len(x)):
            adversarial[i] = self._attack_single(classifier, x[i], int(y[i]))
        return adversarial

    # ------------------------------------------------------------ internals
    def _find_start(self, classifier: Classifier, x: np.ndarray, label: int) -> Optional[np.ndarray]:
        for _ in range(self.init_trials):
            candidate = self.rng.uniform(
                classifier.clip_min, classifier.clip_max, size=x.shape
            ).astype(np.float32)
            if classifier.predict(candidate[np.newaxis])[0] != label:
                return candidate
        return None

    def _attack_single(self, classifier: Classifier, x: np.ndarray, label: int) -> np.ndarray:
        x = x.astype(np.float32)
        current = self._find_start(classifier, x, label)
        if current is None:
            return x.copy()

        ortho_step = self.orthogonal_step
        source_step = self.source_step
        for _ in range(self.max_iterations):
            diff = x - current
            dist = np.linalg.norm(diff.ravel())
            if dist < 1e-6:
                break
            # orthogonal perturbation on the sphere around the clean image
            noise = self.rng.normal(size=x.shape).astype(np.float32)
            noise *= ortho_step * dist / (np.linalg.norm(noise.ravel()) + 1e-12)
            candidate = current + noise
            # re-project to the sphere of the current distance
            cand_diff = x - candidate
            cand_dist = np.linalg.norm(cand_diff.ravel()) + 1e-12
            candidate = x - cand_diff * (dist / cand_dist)
            # step towards the clean image
            candidate = candidate + source_step * (x - candidate)
            candidate = classifier.clip(candidate)

            if classifier.predict(candidate[np.newaxis])[0] != label:
                current = candidate
                ortho_step = min(ortho_step * 1.05, 0.5)
                source_step = min(source_step * 1.05, 0.5)
            else:
                ortho_step *= 0.9
                source_step *= 0.9
        return current
