"""Fast Gradient Sign Method (Goodfellow et al., 2015)."""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, Classifier


class FGSM(Attack):
    """One-shot L-infinity attack: ``x* = x + eps * sign(grad_x loss)``."""

    name = "fgsm"

    def __init__(self, epsilon: float = 0.15):
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = float(epsilon)

    def perturb(self, classifier: Classifier, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        if not len(x):  # empty victim slice: no-op (the model rejects N=0)
            return x.copy()
        grad = classifier.loss_gradient(x, y)
        return classifier.clip(x + self.epsilon * np.sign(grad))
