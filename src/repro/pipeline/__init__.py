"""Declarative experiment pipeline.

The pipeline turns the repository's experiments into data:

* :mod:`repro.pipeline.spec` -- :class:`ExperimentSpec` /
  :class:`AttackGridEntry`, the declarative description of one experiment;
* :mod:`repro.pipeline.runner` -- the :class:`Runner` that resolves specs
  through the unified registries and executes them with per-cell artifact
  caching;
* :mod:`repro.pipeline.handlers` -- one execution strategy per experiment
  kind (transferability, blackbox, whitebox, accuracy, noise_profile, ...);
* :mod:`repro.pipeline.catalog` -- the named spec for every paper table and
  figure (what ``python -m repro list`` enumerates).

Quickstart::

    from repro.pipeline import Runner

    result = Runner(fast=True).run("table04_blackbox_mnist")
    print(result.table)
    result.write("results")          # results/<name>.txt + results/<name>.json
"""

from repro.pipeline.runner import (
    EXPERIMENT_KINDS,
    EXPERIMENTS,
    ExperimentResult,
    Runner,
    clear_model_caches,
    get_experiment,
    list_experiments,
)
from repro.pipeline.spec import AttackGridEntry, ExperimentSpec

# importing the handlers and the catalog populates the registries
import repro.pipeline.handlers  # noqa: E402,F401
import repro.pipeline.catalog  # noqa: E402,F401

__all__ = [
    "AttackGridEntry",
    "ExperimentSpec",
    "ExperimentResult",
    "Runner",
    "EXPERIMENTS",
    "EXPERIMENT_KINDS",
    "list_experiments",
    "get_experiment",
    "clear_model_caches",
]
