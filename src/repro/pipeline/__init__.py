"""Declarative experiment pipeline.

The pipeline turns the repository's experiments into data:

* :mod:`repro.pipeline.spec` -- :class:`ExperimentSpec` /
  :class:`AttackGridEntry`, the declarative description of one experiment;
* :mod:`repro.pipeline.cells` -- the grid-cell computations, keyed by
  ``(cell_kind, payload)`` and sharded over victim examples for the
  attack-evaluation kinds;
* :mod:`repro.pipeline.runner` -- the :class:`Runner` that resolves specs
  through the unified registries and executes them with per-cell artifact
  caching, serially or on the :mod:`repro.parallel` process pool
  (``jobs=N``, bit-for-bit identical to serial);
* :mod:`repro.pipeline.handlers` -- one plan/assemble strategy per
  experiment kind (transferability, blackbox, whitebox, accuracy, ...);
* :mod:`repro.pipeline.catalog` -- the named spec for every paper table and
  figure (what ``python -m repro list`` enumerates).

Quickstart::

    from repro.pipeline import Runner

    result = Runner(fast=True, jobs="auto").run("table04_blackbox_mnist")
    print(result.table)
    result.write("results")          # results/<name>.txt + results/<name>.json
"""

from repro.pipeline.cells import CELL_KINDS, CellKind, CellRequest, get_cell_kind
from repro.pipeline.runner import (
    EXPERIMENT_KINDS,
    EXPERIMENTS,
    NONDETERMINISTIC_RESULT_FIELDS,
    ExperimentResult,
    Runner,
    clear_model_caches,
    get_experiment,
    list_experiments,
)
from repro.pipeline.spec import AttackGridEntry, ExperimentSpec

# importing the handlers and the catalog populates the registries
import repro.pipeline.handlers  # noqa: E402,F401
import repro.pipeline.catalog  # noqa: E402,F401

from repro.pipeline.handlers import KindHandler, register_kind  # noqa: E402

__all__ = [
    "AttackGridEntry",
    "ExperimentSpec",
    "ExperimentResult",
    "Runner",
    "EXPERIMENTS",
    "EXPERIMENT_KINDS",
    "CELL_KINDS",
    "CellKind",
    "CellRequest",
    "KindHandler",
    "NONDETERMINISTIC_RESULT_FIELDS",
    "get_cell_kind",
    "register_kind",
    "list_experiments",
    "get_experiment",
    "clear_model_caches",
]
