"""Grid-cell computation, declaratively keyed by ``(cell_kind, payload)``.

Historically each experiment-kind handler computed its grid cells in inline
closures.  Closures cannot cross a process boundary, so this module turns
every cell kind into a registry entry (namespace ``"cell-kind"``) whose
computation is a plain function of ``(runner, payload)`` -- the payload alone
fully describes the work, which is also why it doubles as the cache key.
Workers of the :mod:`repro.parallel` engine receive nothing but the kind name
and the payload and resolve models/attacks through their own registries.

Sharding
--------
The expensive attack-evaluation kinds (``transferability``, ``blackbox``,
``whitebox``) are decomposed over victim examples into shards (see
:mod:`repro.parallel.sharding`).  Each shard instantiates its own attack --
seeded from the payload digest, with the shard's global start offset telling
the attack which per-example ``SeedSequence`` streams its victims own -- and
returns integer counts / per-sample statistics; :meth:`CellKind.merge` folds
the ordered shard results into the cell value.  Because attacks advance
whole shards as batched active-set rollouts with per-example RNG streams and
a batch-invariant model facade, the shard size is pure execution tuning: any
size (``Runner(shard_size=...)`` / ``REPRO_ATTACK_SHARD_SIZE``), like any
``--jobs`` value, produces bit-for-bit identical cell values.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.arith.error_metrics import ErrorProfile, profile_multiplier
from repro.arith.fpm import MULTIPLIERS
from repro.attacks.base import Attack, Classifier
from repro.attacks.registry import ATTACKS
from repro.core.confidence import compare_confidence
from repro.core.evaluation import select_correctly_classified
from repro.core.metrics import l2_distance, mse, psnr
from repro.nn.approx import ApproxConv2d, prime_gemm_kernels
from repro.nn.layers import Conv2d
from repro.nn.models import VARIANTS
from repro.nn.training import evaluate_accuracy
from repro.obs import TRACER
from repro.parallel.sharding import cell_seed
from repro.parallel.sharding import n_shards as _shard_count
from repro.parallel.sharding import shard_bounds
from repro.pipeline.fingerprints import ZOO_PREFIX, conservative_keys
from repro.pipeline.spec import ExperimentSpec
from repro.registry import RegistryError, registry

#: unified registry of cell computations (namespace ``"cell-kind"``)
CELL_KINDS = registry("cell-kind")


@dataclass(frozen=True)
class CellRequest:
    """One cell an experiment needs, tagged with the handler's assembly key."""

    key: Any  #: hashable key the kind's ``assemble`` looks the value up under
    kind: str  #: cell-kind registry name
    payload: Dict[str, Any]  #: JSON-able content; fully determines the cell


@dataclass(frozen=True)
class CellKind:
    """One cell kind: shard computation, merge, model warm-up and deps."""

    name: str
    shard_fn: Callable[[Any, Dict[str, Any], int], Dict[str, Any]]
    merge_fn: Callable[[Dict[str, Any], List[Dict[str, Any]]], Dict[str, Any]]
    shards_fn: Callable[[Any, Dict[str, Any]], int]
    warm_fn: Optional[Callable[[Any, Dict[str, Any]], None]] = None
    #: payload -> fingerprint surface keys the cell's value depends on
    #: (:mod:`repro.pipeline.fingerprints`); ``None`` falls back to the
    #: conservative every-surface set
    deps_fn: Optional[Callable[[Dict[str, Any]], Any]] = None

    def dependencies(self, payload: Dict[str, Any]) -> tuple:
        """The sorted, deduplicated surface keys this cell re-keys on.

        Declared per kind at registration (``deps=``) and usually
        payload-conditional: an ``accuracy`` cell over the ``exact`` variant
        has no ``kernels`` dependency, its ``da`` sibling does -- which is
        exactly why a kernel bump leaves clean-accuracy cells warm.
        """
        if self.deps_fn is None:
            return conservative_keys(payload)
        return tuple(sorted(set(self.deps_fn(payload))))

    def n_shards(self, runner, payload: Dict[str, Any]) -> int:
        """How many shards the cell decomposes into.

        Determined by the payload's sample budget and the runner's shard
        size -- an execution parameter, not cell content: every shard layout
        merges to the same value.
        """
        return max(1, int(self.shards_fn(runner, payload)))

    def compute_shard(self, runner, payload: Dict[str, Any], shard_index: int) -> Dict[str, Any]:
        """Compute one shard; safe to run in any process, in any order."""
        return self.shard_fn(runner, payload, shard_index)

    def merge(self, payload: Dict[str, Any], shards: List[Dict[str, Any]]) -> Dict[str, Any]:
        """Fold ordered shard results into the cell value."""
        return self.merge_fn(payload, shards)

    def compute(self, runner, payload: Dict[str, Any]) -> Dict[str, Any]:
        """The canonical (serial) cell computation: every shard, in order."""
        shards = [
            self.compute_shard(runner, payload, i)
            for i in range(self.n_shards(runner, payload))
        ]
        return self.merge(payload, shards)

    def warm(self, runner, payload: Dict[str, Any]) -> None:
        """Resolve the models/LUTs the cell needs (pre-fork warm-up)."""
        if self.warm_fn is not None:
            self.warm_fn(runner, payload)


def register_cell_kind(
    name: str,
    *,
    compute: Optional[Callable[[Any, Dict[str, Any]], Dict[str, Any]]] = None,
    shard: Optional[Callable[[Any, Dict[str, Any], int], Dict[str, Any]]] = None,
    merge: Optional[Callable[[Dict[str, Any], List[Dict[str, Any]]], Dict[str, Any]]] = None,
    shards: Optional[Callable[[Any, Dict[str, Any]], int]] = None,
    warm: Optional[Callable[[Any, Dict[str, Any]], None]] = None,
    deps: Any = None,
) -> CellKind:
    """Register a cell kind, either single-shot (``compute``) or sharded.

    ``deps`` declares the fingerprint surfaces the cell's value depends on
    (:mod:`repro.pipeline.fingerprints`): a static tuple of surface keys, or
    a callable ``payload -> keys`` for payload-conditional dependencies.
    Omitting it keys the cell on *every* surface -- safe, never sharper than
    the old global version knob, so new kinds should always declare.
    """
    deps_fn = deps if callable(deps) or deps is None else (lambda _payload, _d=tuple(deps): _d)
    if compute is not None:
        kind = CellKind(
            name=name,
            shard_fn=lambda runner, payload, _index, _fn=compute: _fn(runner, payload),
            merge_fn=lambda _payload, results: results[0],
            shards_fn=lambda _runner, _payload: 1,
            warm_fn=warm,
            deps_fn=deps_fn,
        )
    else:
        if shard is None or merge is None or shards is None:
            raise ValueError("sharded cell kinds need shard=, merge= and shards=")
        kind = CellKind(
            name=name, shard_fn=shard, merge_fn=merge, shards_fn=shards, warm_fn=warm,
            deps_fn=deps_fn,
        )
    CELL_KINDS.register(name, kind, metadata={"sharded": compute is None})
    return kind


def get_cell_kind(name: str) -> CellKind:
    """The :class:`CellKind` registered under ``name``."""
    return CELL_KINDS.get(name).factory


# --------------------------------------------------------------------- helpers
def variant_is_approx(name: str) -> bool:
    """Whether a hardware variant's forward pass runs on approximate arithmetic.

    ``dq_*`` variants are independently-trained quantised models evaluated in
    exact float32 (their zoo recipe surface covers them); everything else is
    answered by the variant registry's ``"approx"`` metadata.  Unknown
    variants are treated as approximate -- the conservative direction: a
    too-broad dependency recomputes a warm cell, a too-narrow one serves a
    stale value.
    """
    if name.startswith("dq_"):
        return False
    try:
        meta = VARIANTS.get(name).metadata
    except RegistryError:
        return True
    return bool(meta.get("approx", True))


def variant_surfaces(*variants: str) -> tuple:
    """``("arith", "kernels")`` if any named variant executes approximately."""
    if any(variant_is_approx(name) for name in variants):
        return ("arith", "kernels")
    return ()


def zoo_surfaces(payload: Dict[str, Any], *fields: str) -> tuple:
    """``zoo:<name>`` recipe surfaces for the zoo entries a payload names."""
    return tuple(
        ZOO_PREFIX + str(payload[field]) for field in fields if payload.get(field)
    )


#: surfaces every attack-evaluation cell shares: the attack numerics, the
#: model forward/backward numerics it queries, the dataset its victims come
#: from and the selection/success accounting of the evaluation harness
_ATTACK_SURFACES = ("attacks", "datasets", "evaluation", "models")


def _payload_spec(payload: Dict[str, Any]) -> ExperimentSpec:
    """A minimal spec carrying what model resolution needs from a payload."""
    params = {}
    if "dq_zoo" in payload:
        params["dq_zoo"] = payload["dq_zoo"]
    return ExperimentSpec(name="__cell__", kind="cell", model=payload.get("model", ""), params=params)


def _seeded_attack(payload: Dict[str, Any], victim_offset: int) -> Attack:
    """Instantiate the payload's attack for the shard starting at ``victim_offset``.

    Stochastic attacks get a *cell-level* seed (a pure function of the
    payload digest, identical for every shard) and the shard's global victim
    offset; from those they spawn one ``SeedSequence`` stream per example,
    keyed by the victim's global index -- so the same victim sees the same
    noise whichever shard, of whatever size, processes it, in whichever
    process.  An explicit ``seed`` in the grid entry's params becomes the
    stream entropy instead.
    """
    name = payload["attack"]
    params = dict(payload.get("params", {}))
    if "seed" not in params and _attack_accepts_seed(name):
        params["seed"] = cell_seed(payload)
    attack = ATTACKS.create(name, **params)
    attack.seed_offset = int(victim_offset)
    return attack


def _attack_accepts_seed(name: str) -> bool:
    meta = ATTACKS.get(name).metadata
    spec = meta.get("spec")
    target = spec.attack_class if spec is not None else ATTACKS.get(name).factory
    try:
        return "seed" in inspect.signature(target).parameters
    except (TypeError, ValueError):  # builtins / odd callables: assume no seed
        return False


#: per-process memo of victim-selection index sets.  Every shard of a cell
#: needs the same selection; without the memo each shard would re-run the
#: (expensive, emulated-hardware) prediction scan just to slice out its few
#: victims.  Keyed by the selection's full identity -- the resolved models
#: are fixed for a process lifetime, so the memo can never go stale.
_SELECTION_CACHE: Dict[Any, np.ndarray] = {}


def _shard_samples(
    runner,
    payload: Dict[str, Any],
    classifier: Classifier,
    shard_index: int,
    selector_key: Any,
):
    """The shard's victim examples: correctly-classified, budget-capped, sliced.

    The selection is identical in every shard (a deterministic prefix of the
    test stream) and memoised per process under ``selector_key`` -- the first
    shard a process computes pays for the capped prediction scan, its
    siblings reuse the indices.  Returns ``(images, labels, offset)`` where
    ``offset`` is the shard's start position in the victim stream (the
    per-example RNG spawn base).
    """
    spec = _payload_spec(payload)
    split = runner.split(spec)
    key = (payload.get("model"), payload["n_samples"], bool(runner.fast), selector_key)
    indices = _SELECTION_CACHE.get(key)
    if indices is None:
        with TRACER.span(
            "attack.select_victims",
            cat="attack",
            model=payload.get("model"),
            n_samples=payload["n_samples"],
        ):
            indices = _SELECTION_CACHE[key] = select_correctly_classified(
                classifier, split.test.images, split.test.labels, payload["n_samples"]
            )
    lo, hi = shard_bounds(len(indices), runner.shard_size, shard_index)
    picked = indices[lo:hi]
    return split.test.images[picked], split.test.labels[picked], lo


def _attack_shards(runner, payload: Dict[str, Any]) -> int:
    return _shard_count(payload["n_samples"], runner.shard_size)


def _ratio(numerator: int, denominator: int) -> float:
    return numerator / denominator if denominator else 0.0


def _mean(values: List[float]) -> float:
    return float(np.mean(np.asarray(values, dtype=np.float64))) if values else float("nan")


#: process-level memo of completed warm-ups.  A run's cell graph references
#: the same few models from many cells (and sibling experiments share whole
#: grids), so without the memo every planned cell re-primed the same variant
#: models and GEMM kernels; with it, one warm-up per distinct
#: (model, variants) signature covers every experiment of every run.
#: Cleared by :func:`repro.pipeline.runner.clear_model_caches` alongside the
#: model memos the signatures refer to.
_WARMED: set = set()


def _warm_model(runner, payload: Dict[str, Any], variants: List[str]) -> None:
    """Resolve (train or load) the zoo models a cell depends on.

    Also resolves the hardware variants and primes their fused GEMM kernels:
    warm-up runs in the parent before the worker pool forks, so the variant
    models, the mantissa LUTs *and* the kernels' precomposed signed-product
    tables are all inherited copy-on-write instead of being rebuilt once per
    worker.  Memoised per (model, variants, fast) signature -- experiments
    that share cells share one warm-up instead of re-priming per cell.
    """
    key = (
        payload.get("model"),
        bool(runner.fast),
        tuple(sorted(variants)),
        payload.get("dq_zoo"),
    )
    if key in _WARMED:
        return
    if payload.get("model"):
        runner.zoo(payload["model"])
        spec = _payload_spec(payload)
        for variant in variants:
            if variant.startswith("dq_"):
                continue  # resolved through the DQ zoo below
            prime_gemm_kernels(runner.resolve_variant(spec, variant))
    if "dq_zoo" in payload and any(v.startswith("dq_") for v in variants):
        runner.zoo(payload["dq_zoo"])
    _WARMED.add(key)


# ------------------------------------------------------------- transferability
def _transferability_shard(runner, payload: Dict[str, Any], shard_index: int) -> Dict[str, Any]:
    spec = _payload_spec(payload)
    source = runner.classifier(spec, payload["source"])
    selector = ("source", payload["source"], payload.get("dq_zoo"))
    x, y, offset = _shard_samples(runner, payload, source, shard_index, selector)
    out: Dict[str, Any] = {
        "n": int(len(x)),
        "n_fooled": 0,
        "targets": {name: 0 for name in payload["targets"]},
    }
    if not len(x):
        return out
    result = _seeded_attack(payload, offset).generate(source, x, y)
    adv = result.adversarial[result.success]
    adv_labels = y[result.success]
    out["n_fooled"] = int(result.success.sum())
    if len(adv):
        for name in payload["targets"]:
            preds = runner.classifier(spec, name).predict(adv)
            out["targets"][name] = int(np.sum(preds != adv_labels))
    return out


def _transferability_merge(payload: Dict[str, Any], shards: List[Dict[str, Any]]) -> Dict[str, Any]:
    n = sum(s["n"] for s in shards)
    fooled = sum(s["n_fooled"] for s in shards)
    return {
        "n_crafted": n,
        "n_source_success": fooled,
        "source_success_rate": _ratio(fooled, n),
        "targets": {
            name: _ratio(sum(s["targets"][name] for s in shards), fooled)
            for name in payload["targets"]
        },
    }


register_cell_kind(
    "transferability",
    shard=_transferability_shard,
    merge=_transferability_merge,
    shards=_attack_shards,
    warm=lambda runner, payload: _warm_model(runner, payload, list(payload["targets"])),
    # adversarial examples are crafted on the source variant and replayed on
    # every target, so approximate arithmetic matters iff any of them is
    # approximate; dq targets add their own training-recipe surface
    deps=lambda p: _ATTACK_SURFACES
    + variant_surfaces(p["source"], *p["targets"])
    + zoo_surfaces(p, "model", "dq_zoo"),
)


# ------------------------------------------------------------------- black box
def _blackbox_shard(runner, payload: Dict[str, Any], shard_index: int) -> Dict[str, Any]:
    spec = _payload_spec(payload)
    substitute = Classifier(runner.zoo(payload["substitute"], victim=payload["victim"]))
    selector = ("substitute", payload["substitute"], payload["victim"])
    x, y, offset = _shard_samples(runner, payload, substitute, shard_index, selector)
    out = {"n": int(len(x)), "n_fooled": 0, "n_victim_fooled": 0}
    if not len(x):
        return out
    result = _seeded_attack(payload, offset).generate(substitute, x, y)
    adv = result.adversarial[result.success]
    adv_labels = y[result.success]
    out["n_fooled"] = int(result.success.sum())
    if len(adv):
        victim = runner.classifier(spec, payload["victim"])
        out["n_victim_fooled"] = int(np.sum(victim.predict(adv) != adv_labels))
    return out


def _blackbox_merge(payload: Dict[str, Any], shards: List[Dict[str, Any]]) -> Dict[str, Any]:
    n = sum(s["n"] for s in shards)
    fooled = sum(s["n_fooled"] for s in shards)
    victim_fooled = sum(s["n_victim_fooled"] for s in shards)
    return {
        "n_crafted": n,
        "substitute_success_rate": _ratio(fooled, n),
        "victim_success_rate": _ratio(victim_fooled, fooled),
    }


def _blackbox_warm(runner, payload: Dict[str, Any]) -> None:
    _warm_model(runner, payload, [payload["victim"]])
    runner.zoo(payload["substitute"], victim=payload["victim"])


register_cell_kind(
    "blackbox",
    shard=_blackbox_shard,
    merge=_blackbox_merge,
    shards=_attack_shards,
    warm=_blackbox_warm,
    # the substitute is trained from the victim's query labels, so a victim
    # that runs approximately ("da") pulls in the kernel surfaces even though
    # the substitute itself is exact
    deps=lambda p: _ATTACK_SURFACES
    + variant_surfaces(p["victim"])
    + zoo_surfaces(p, "model", "substitute"),
)


# ------------------------------------------------------------------- white box
def _whitebox_shard(runner, payload: Dict[str, Any], shard_index: int) -> Dict[str, Any]:
    spec = _payload_spec(payload)
    victim = runner.classifier(spec, payload["victim"])
    selector = ("victim", payload["victim"], payload.get("dq_zoo"))
    x, y, offset = _shard_samples(runner, payload, victim, shard_index, selector)
    out: Dict[str, Any] = {"n": int(len(x)), "n_success": 0, "l2": [], "mse": [], "psnr": []}
    if not len(x):
        return out
    result = _seeded_attack(payload, offset).generate(victim, x, y)
    adv = result.adversarial[result.success]
    clean = x[result.success]
    out["n_success"] = int(result.success.sum())
    if len(adv):
        out["l2"] = [float(v) for v in l2_distance(clean, adv)]
        out["mse"] = [float(v) for v in mse(clean, adv)]
        out["psnr"] = [float(v) for v in psnr(clean, adv)]
    return out


def _whitebox_merge(payload: Dict[str, Any], shards: List[Dict[str, Any]]) -> Dict[str, Any]:
    n = sum(s["n"] for s in shards)
    successes = sum(s["n_success"] for s in shards)
    return {
        "n_samples": n,
        "success_rate": _ratio(successes, n),
        "mean_l2": _mean([v for s in shards for v in s["l2"]]),
        "mean_mse": _mean([v for s in shards for v in s["mse"]]),
        "mean_psnr": _mean([v for s in shards for v in s["psnr"]]),
    }


register_cell_kind(
    "whitebox",
    shard=_whitebox_shard,
    merge=_whitebox_merge,
    shards=_attack_shards,
    warm=lambda runner, payload: _warm_model(runner, payload, [payload["victim"]]),
    deps=lambda p: _ATTACK_SURFACES
    + variant_surfaces(p["victim"])
    + zoo_surfaces(p, "model", "dq_zoo"),
)


# -------------------------------------------------------------------- accuracy
def _accuracy_compute(runner, payload: Dict[str, Any]) -> Dict[str, Any]:
    spec = _payload_spec(payload)
    variant_model = runner.resolve_variant(spec, payload["variant"])
    _base, split = runner.zoo(payload["model"])
    n = payload["n_samples"]
    x, y = split.test.images[:n], split.test.labels[:n]
    return {"accuracy": float(evaluate_accuracy(variant_model, x, y)), "n": len(x)}


register_cell_kind(
    "accuracy",
    compute=_accuracy_compute,
    warm=lambda runner, payload: _warm_model(runner, payload, [payload["variant"]]),
    # clean accuracy of the *exact* variant has no kernel dependency at all --
    # the flagship case of fine-grained invalidation: a kernel-numerics bump
    # leaves these cells warm while their "da"/"heap"/"bfloat16" siblings
    # recompute
    deps=lambda p: ("datasets", "evaluation", "models")
    + variant_surfaces(p["variant"])
    + zoo_surfaces(p, "model", "dq_zoo"),
)


# --------------------------------------------------------------- noise profile
def _profile_dict(profile: ErrorProfile) -> Dict[str, Any]:
    """The JSON-able scalar fields of an :class:`ErrorProfile`."""
    return {
        "multiplier_name": profile.multiplier_name,
        "n_samples": profile.n_samples,
        "operand_low": profile.operand_low,
        "operand_high": profile.operand_high,
        "mred": profile.mred,
        "nmed": profile.nmed,
        "mean_error": profile.mean_error,
        "mean_abs_error": profile.mean_abs_error,
        "max_abs_error": profile.max_abs_error,
        "fraction_magnitude_inflated": profile.fraction_magnitude_inflated,
        "fraction_positive_error": profile.fraction_positive_error,
        "error_magnitude_correlation": profile.error_magnitude_correlation,
    }


def _noise_profile_compute(runner, payload: Dict[str, Any]) -> Dict[str, Any]:
    multiplier = MULTIPLIERS.create(payload["multiplier"], **payload.get("kwargs", {}))
    return _profile_dict(
        profile_multiplier(
            multiplier,
            n_samples=payload["n_samples"],
            operand_range=tuple(payload["operand_range"]),
        )
    )


# pure multiplier-substrate measurements: no model, dataset or kernel engine
register_cell_kind("noise_profile", compute=_noise_profile_compute, deps=("arith",))


# --------------------------------------------------------- bespoke experiments
def _conv_response_compute(runner, payload: Dict[str, Any]) -> Dict[str, Any]:
    rng = np.random.default_rng(payload["seed"])
    k = payload["kernel_size"]
    kernel = rng.uniform(0.2, 0.9, size=(1, 1, k, k)).astype(np.float32)
    exact = Conv2d(1, 1, k)
    exact.weight.value = kernel
    exact.bias.value = np.zeros(1, dtype=np.float32)
    approx = ApproxConv2d.from_exact(exact, multiplier=MULTIPLIERS.create(payload["multiplier"]))
    noise = rng.uniform(0.0, 1.0, size=(1, 1, k, k)).astype(np.float32)
    points = []
    for alpha in np.linspace(0.0, 1.0, payload["n_points"]):
        image = ((1 - alpha) * noise + alpha * (kernel / kernel.max())).astype(np.float32)
        exact_response = float(exact.forward(image)[0, 0, 0, 0])
        approx_response = float(approx.forward(image)[0, 0, 0, 0])
        points.append(
            {
                "similarity": float(alpha),
                "exact": exact_response,
                "approx": approx_response,
                "gap": approx_response - exact_response,
            }
        )
    return {"points": points}


# compares an exact Conv2d against its ApproxConv2d conversion on synthetic
# inputs: layer numerics + the approximate substrate + the GEMM engine
register_cell_kind(
    "conv_response", compute=_conv_response_compute, deps=("arith", "kernels", "models")
)


def _confidence_compute(runner, payload: Dict[str, Any]) -> Dict[str, Any]:
    spec = _payload_spec(payload)
    split = runner.split(spec)
    exact_model = runner.resolve_variant(spec, "exact")
    approx_model = runner.resolve_variant(spec, "da")
    subset = split.test.sample_per_class(payload["per_class"], rng=np.random.default_rng(0))
    images, labels = subset.images, subset.labels
    both_correct = np.flatnonzero(
        (exact_model.predict(images) == labels) & (approx_model.predict(images) == labels)
    )
    comparison = compare_confidence(
        exact_model, approx_model, images[both_correct], labels[both_correct]
    )
    exact_mean, approx_mean = comparison.mean_confidence()
    fractions = {}
    for threshold in payload["thresholds"]:
        exact_frac, approx_frac = comparison.fraction_above(threshold)
        fractions[str(threshold)] = [exact_frac, approx_frac]
    return {
        "n_samples": int(len(both_correct)),
        "exact_mean": exact_mean,
        "approx_mean": approx_mean,
        "fractions": fractions,
    }


register_cell_kind(
    "confidence",
    compute=_confidence_compute,
    warm=lambda runner, payload: _warm_model(runner, payload, ["exact", "da"]),
    # always compares the exact model against its "da" conversion
    deps=lambda p: ("datasets", "evaluation", "models")
    + variant_surfaces("exact", "da")
    + zoo_surfaces(p, "model"),
)


def _feature_maps_compute(runner, payload: Dict[str, Any]) -> Dict[str, Any]:
    spec = _payload_spec(payload)
    model = runner.resolve_variant(spec, payload["variant"])
    split = runner.split(spec)
    images = split.test.images[: payload["n_images"]]
    last_conv_index = max(i for i, layer in enumerate(model.layers) if isinstance(layer, Conv2d))
    out = images
    for layer in model.layers[: last_conv_index + 2]:  # include the following ReLU
        out = layer.forward(out)
    active = out[out > 0]
    return {
        "mean_active": float(active.mean()) if active.size else 0.0,
        "p90": float(np.percentile(out, 90)),
        "max": float(out.max()),
    }


register_cell_kind(
    "feature_maps",
    compute=_feature_maps_compute,
    warm=lambda runner, payload: _warm_model(runner, payload, [payload["variant"]]),
    deps=lambda p: ("datasets", "models")
    + variant_surfaces(p["variant"])
    + zoo_surfaces(p, "model", "dq_zoo"),
)


def _energy_compute(runner, payload: Dict[str, Any]) -> Dict[str, Any]:
    from repro.hw import energy_delay_table, mantissa_energy_delay_table

    table_fn = energy_delay_table if payload["table"] == "fpm" else mantissa_energy_delay_table
    return {"rows": [[name, energy, delay] for name, energy, delay in table_fn()]}


# analytical cost-model lookups: nothing but the hw model can move them
register_cell_kind("energy", compute=_energy_compute, deps=("hw",))
