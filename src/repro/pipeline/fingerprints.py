"""Dependency fingerprints: the code/numerics surfaces cell digests key on.

Historically every cached grid cell was keyed on one global
``CELL_CACHE_VERSION`` (and every trained-parameter file on one global
``ZOO_NUMERICS_VERSION``): any numerics change anywhere invalidated *every*
artifact.  This module replaces those knobs with named **surfaces** -- the
independently-versioned behaviours a cell's value can actually depend on --
and resolves each to a short fingerprint token:

=============  ==========================================================
surface key    what it versions
=============  ==========================================================
``kernels``    the fused GEMM kernel engine's bit patterns
               (:data:`repro.arith.kernels.KERNEL_NUMERICS_VERSION`)
``arith``      the multiplier/adder substrate and error metrics
               (:data:`repro.arith.ARITH_NUMERICS_VERSION`)
``attacks``    attack semantics: seeding, rollouts, query accounting
               (:data:`repro.attacks.ATTACK_NUMERICS_VERSION`)
``models``     model forward/backward numerics
               (:data:`repro.nn.MODEL_NUMERICS_VERSION`)
``datasets``   the procedural dataset generators
               (:data:`repro.datasets.DATASET_NUMERICS_VERSION`)
``evaluation`` victim selection / success accounting / distance metrics
               (:data:`repro.core.EVALUATION_NUMERICS_VERSION`)
``hw``         the analytical energy/delay cost model
               (:data:`repro.hw.HW_MODEL_VERSION`)
``zoo:<name>`` one zoo entry's full training recipe digest
               (:func:`repro.experiments.zoo.zoo_recipe_digest`)
=============  ==========================================================

Each cell kind declares which surfaces it depends on
(:func:`repro.pipeline.cells.register_cell_kind`'s ``deps=``), the
:class:`~repro.pipeline.runner.Runner` folds only those tokens into the
cell's cache digest, and the artifact store records them in a ``.meta.json``
sidecar -- so a kernel tweak invalidates approximate-conv cells while
clean-accuracy and dataset cells stay warm, and staleness is *checkable*:
compare a sidecar's recorded tokens against the live surfaces
(:func:`diff_fingerprints`, surfaced by ``python -m repro cache explain``).

Providers read their version constants through the owning module attribute
at call time (never cached here), so a monkeypatched bump in a test -- or a
real bump in a PR -- is observed immediately and by forked pool workers
alike.  See ``docs/caching.md`` for the full design and invalidation matrix.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.pipeline.spec import canonical_digest

#: prefix of per-model zoo recipe surfaces (``zoo:lenet_digits`` ...)
ZOO_PREFIX = "zoo:"

#: fingerprint tokens are digest prefixes of this length -- long enough that
#: collisions are out of the question for a handful of surfaces, short
#: enough to read in ``cache explain`` output
TOKEN_WIDTH = 12


def _kernels() -> Dict[str, Any]:
    from repro.arith import kernels

    return {"kernel_numerics": kernels.KERNEL_NUMERICS_VERSION}


def _arith() -> Dict[str, Any]:
    import repro.arith as arith

    return {"arith_numerics": arith.ARITH_NUMERICS_VERSION}


def _attacks() -> Dict[str, Any]:
    import repro.attacks as attacks

    return {"attack_numerics": attacks.ATTACK_NUMERICS_VERSION}


def _models() -> Dict[str, Any]:
    import repro.nn as nn

    return {"model_numerics": nn.MODEL_NUMERICS_VERSION}


def _datasets() -> Dict[str, Any]:
    import repro.datasets as datasets

    return {"dataset_numerics": datasets.DATASET_NUMERICS_VERSION}


def _evaluation() -> Dict[str, Any]:
    import repro.core as core

    return {"evaluation_numerics": core.EVALUATION_NUMERICS_VERSION}


def _hw() -> Dict[str, Any]:
    import repro.hw as hw

    return {"hw_model": hw.HW_MODEL_VERSION}


#: the static (non-``zoo:``) surfaces, key -> description provider
SURFACES: Dict[str, Callable[[], Dict[str, Any]]] = {
    "kernels": _kernels,
    "arith": _arith,
    "attacks": _attacks,
    "models": _models,
    "datasets": _datasets,
    "evaluation": _evaluation,
    "hw": _hw,
}


class UnknownSurfaceError(KeyError):
    """A fingerprint key that names no live surface (removed zoo entry...)."""


def describe_fingerprint(key: str) -> Dict[str, Any]:
    """The JSON-able description behind one surface key (for ``explain``)."""
    if key.startswith(ZOO_PREFIX):
        from repro.experiments.zoo import ZOO, zoo_recipe

        name = key[len(ZOO_PREFIX):]
        try:
            return {"recipe": zoo_recipe(name)}
        except KeyError:
            try:
                ZOO.get(name)
            except KeyError:
                raise UnknownSurfaceError(f"unknown zoo entry {name!r}") from None
            return {"recipe": {"undeclared": name}}  # registered, no recipe
    provider = SURFACES.get(key)
    if provider is None:
        raise UnknownSurfaceError(f"unknown fingerprint surface {key!r}")
    return provider()


def resolve_fingerprint(key: str) -> str:
    """One surface's live fingerprint token.

    Raises :class:`UnknownSurfaceError` when ``key`` names nothing in the
    running code (a removed zoo entry, a renamed surface) -- callers
    comparing recorded metadata treat that as "moved".
    """
    if key.startswith(ZOO_PREFIX):
        from repro.experiments.zoo import zoo_recipe_digest

        try:
            return zoo_recipe_digest(key[len(ZOO_PREFIX):])[:TOKEN_WIDTH]
        except KeyError:
            raise UnknownSurfaceError(f"unknown zoo entry {key[len(ZOO_PREFIX):]!r}")
    return canonical_digest(describe_fingerprint(key))[:TOKEN_WIDTH]


def fingerprint_map(keys: Iterable[str]) -> Dict[str, str]:
    """``{key: token}`` for a sorted, deduplicated set of surface keys."""
    return {key: resolve_fingerprint(key) for key in sorted(set(keys))}


def conservative_keys(payload: Dict[str, Any]) -> Tuple[str, ...]:
    """Every surface a payload *could* depend on (unregistered cell kinds).

    The legacy ``Runner.cell(kind, payload, compute=closure)`` protocol can
    name kinds with no registered dependency declaration; those fall back to
    depending on every static surface plus any zoo entries the payload
    visibly references -- exactly as conservative as the old global version.
    """
    keys: List[str] = list(SURFACES)
    for field in ("model", "substitute", "dq_zoo"):
        name = payload.get(field)
        if name:
            keys.append(ZOO_PREFIX + str(name))
    return tuple(sorted(set(keys)))


def content_key(cell_kind: str, fast: bool, payload: Any) -> str:
    """A cell's *logical* identity: what it computes, independent of deps.

    Two digests with the same content key are the same cell under different
    code fingerprints -- i.e. one supersedes the other.  Recorded in every
    artifact's meta sidecar; the warm/stale/cold plan outlook and
    ``cache gc --stale`` both pivot on it.
    """
    return canonical_digest({"cell_kind": cell_kind, "fast": bool(fast), "payload": payload})


# ------------------------------------------------------------- staleness
def diff_fingerprints(recorded: Dict[str, str]) -> Dict[str, Dict[str, Any]]:
    """Compare recorded dependency tokens against the live surfaces.

    Returns ``{key: {"recorded", "live", "moved"}}`` where ``live`` is
    ``None`` for keys that no longer resolve.  A cell is stale iff any
    entry moved.
    """
    out: Dict[str, Dict[str, Any]] = {}
    for key in sorted(recorded):
        try:
            live: Optional[str] = resolve_fingerprint(key)
        except UnknownSurfaceError:
            live = None
        out[key] = {
            "recorded": recorded[key],
            "live": live,
            "moved": live != recorded[key],
        }
    return out


def meta_status(meta: Optional[Dict[str, Any]]) -> str:
    """One artifact's staleness verdict from its meta sidecar.

    ``"fresh"`` (every recorded dependency still matches the live code),
    ``"stale"`` (at least one moved) or ``"unknown"`` (no sidecar -- an
    artifact written before per-cell fingerprints, or by a foreign tool).
    """
    if not isinstance(meta, dict) or not isinstance(meta.get("deps"), dict):
        return "unknown"
    diff = diff_fingerprints(meta["deps"])
    return "stale" if any(entry["moved"] for entry in diff.values()) else "fresh"


def store_staleness(store) -> Dict[str, Any]:
    """Staleness breakdown of every artifact in ``store`` (``cache stats``).

    Live fingerprints are resolved once per distinct surface key across the
    scan, so the cost is one sidecar read per artifact.
    """
    token_cache: Dict[str, Optional[str]] = {}

    def live(key: str) -> Optional[str]:
        if key not in token_cache:
            try:
                token_cache[key] = resolve_fingerprint(key)
            except UnknownSurfaceError:
                token_cache[key] = None
        return token_cache[key]

    totals = {"fresh": 0, "stale": 0, "unknown": 0}
    namespaces: Dict[str, Dict[str, int]] = {}
    stale_cells: List[Dict[str, str]] = []
    for namespace, digest, _path, _stat in store._artifacts():
        meta = store.get_meta(namespace, digest)
        if not isinstance(meta, dict) or not isinstance(meta.get("deps"), dict):
            status = "unknown"
        else:
            moved = [k for k, tok in meta["deps"].items() if live(k) != tok]
            status = "stale" if moved else "fresh"
            if moved:
                stale_cells.append(
                    {"namespace": namespace, "digest": digest, "moved": sorted(moved)}
                )
        totals[status] += 1
        entry = namespaces.setdefault(namespace, {"fresh": 0, "stale": 0, "unknown": 0})
        entry[status] += 1
    return {"totals": totals, "namespaces": namespaces, "stale": stale_cells}


def collect_stale(store) -> List[Tuple[str, str]]:
    """``(namespace, digest)`` of every artifact superseded by live code."""
    report = store_staleness(store)
    return [(cell["namespace"], cell["digest"]) for cell in report["stale"]]
