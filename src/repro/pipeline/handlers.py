"""Execution strategies for each experiment kind.

Every paper experiment shape is one handler registered in the
``"experiment-kind"`` registry.  A handler receives the
:class:`~repro.pipeline.runner.Runner` (for registry resolution, sample
budgets and cell caching) and the :class:`~repro.pipeline.spec.ExperimentSpec`
and returns ``(headers, rows, metrics)``: the paper-style table plus a
JSON-able metrics tree that the benchmarks assert against.

Grid cells are cached by *content* through :meth:`Runner.cell`, so sibling
experiments that share work (Figures 8/9 and 10/11 run the same white-box
grid) recompute nothing.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.arith.error_metrics import ErrorProfile, profile_multiplier
from repro.arith.fpm import MULTIPLIERS
from repro.core.confidence import compare_confidence
from repro.core.evaluation import (
    evaluate_black_box,
    evaluate_transferability,
    evaluate_white_box,
)
from repro.attacks.base import Classifier
from repro.nn.approx import ApproxConv2d
from repro.nn.layers import Conv2d
from repro.nn.training import evaluate_accuracy
from repro.pipeline.runner import (
    EXPERIMENT_KINDS,
    Runner,
    percentage,
    variant_labels,
)
from repro.pipeline.spec import ExperimentSpec

Handler = Tuple[List[str], List[List[Any]], Dict[str, Any]]


def _profile_dict(profile: ErrorProfile) -> Dict[str, Any]:
    """The JSON-able scalar fields of an :class:`ErrorProfile`."""
    return {
        "multiplier_name": profile.multiplier_name,
        "n_samples": profile.n_samples,
        "operand_low": profile.operand_low,
        "operand_high": profile.operand_high,
        "mred": profile.mred,
        "nmed": profile.nmed,
        "mean_error": profile.mean_error,
        "mean_abs_error": profile.mean_abs_error,
        "max_abs_error": profile.max_abs_error,
        "fraction_magnitude_inflated": profile.fraction_magnitude_inflated,
        "fraction_positive_error": profile.fraction_positive_error,
        "error_magnitude_correlation": profile.error_magnitude_correlation,
    }


# ------------------------------------------------------------ attack grids
@EXPERIMENT_KINDS.register("transferability")
def run_transferability(runner: Runner, spec: ExperimentSpec) -> Handler:
    """Craft on the source variant, replay on every target variant."""
    n = runner.sample_budget(spec)

    # models/splits resolve lazily inside the compute closures so a fully
    # cell-cached run never loads (or trains) them
    cells: Dict[str, Dict[str, Any]] = {}
    for entry in spec.attacks:
        payload = {
            "model": spec.model,
            "source": spec.source,
            "targets": list(spec.variants),
            "attack": entry.attack,
            "params": runner.attack_params(entry),
            "n_samples": n,
        }
        if any(v.startswith("dq_") for v in spec.variants):
            payload["dq_zoo"] = spec.params.get("dq_zoo", "dq_objects")

        def compute(entry=entry) -> Dict[str, Any]:
            split = runner.split(spec)
            source = runner.classifier(spec, spec.source)
            targets = {name: runner.classifier(spec, name) for name in spec.variants}
            evaluation = evaluate_transferability(
                source,
                targets,
                runner.attack(entry),
                split.test.images,
                split.test.labels,
                max_samples=n,
            )
            return {
                "n_crafted": evaluation.n_crafted,
                "n_source_success": evaluation.n_source_success,
                "source_success_rate": evaluation.source_success_rate,
                "targets": evaluation.target_success_rates,
            }

        cells[entry.label] = runner.cell("transferability", payload, compute)

    headers = list(
        spec.params.get("headers") or ["Attack method"] + variant_labels(spec, spec.variants)
    )
    rows = [
        [entry.label] + [percentage(cells[entry.label]["targets"][v]) for v in spec.variants]
        for entry in spec.attacks
    ]
    mean_success = {
        v: float(np.mean([cells[e.label]["targets"][v] for e in spec.attacks]))
        for v in spec.variants
    }
    return headers, rows, {"attacks": cells, "mean_target_success": mean_success}


@EXPERIMENT_KINDS.register("blackbox")
def run_blackbox(runner: Runner, spec: ExperimentSpec) -> Handler:
    """Craft on a query-trained substitute, replay on the victim variant."""
    n = runner.sample_budget(spec)
    substitute_zoo = spec.params.get("substitute", "substitute_digits")

    cells: Dict[str, Dict[str, Any]] = {}
    for entry in spec.attacks:
        per_victim: Dict[str, Any] = {}
        for victim_name in spec.variants:
            payload = {
                "model": spec.model,
                "victim": victim_name,
                "substitute": substitute_zoo,
                "attack": entry.attack,
                "params": runner.attack_params(entry),
                "n_samples": n,
            }

            def compute(entry=entry, victim_name=victim_name) -> Dict[str, Any]:
                split = runner.split(spec)
                victim = runner.classifier(spec, victim_name)
                substitute = runner.zoo(substitute_zoo, victim=victim_name)
                evaluation = evaluate_black_box(
                    victim,
                    Classifier(substitute),
                    runner.attack(entry),
                    split.test.images,
                    split.test.labels,
                    max_samples=n,
                )
                return {
                    "n_crafted": evaluation.n_crafted,
                    "substitute_success_rate": evaluation.substitute_success_rate,
                    "victim_success_rate": evaluation.victim_success_rate,
                }

            per_victim[victim_name] = runner.cell("blackbox", payload, compute)
        cells[entry.label] = per_victim

    headers = list(
        spec.params.get("headers") or ["Attack method"] + variant_labels(spec, spec.variants)
    )
    rows = [
        [entry.label]
        + [percentage(cells[entry.label][v]["victim_success_rate"]) for v in spec.variants]
        for entry in spec.attacks
    ]
    mean_success = {
        v: float(np.mean([cells[e.label][v]["victim_success_rate"] for e in spec.attacks]))
        for v in spec.variants
    }
    return headers, rows, {"attacks": cells, "mean_victim_success": mean_success}


_WHITEBOX_COLUMNS = {
    "success": ("Success", lambda cell: percentage(cell["success_rate"])),
    "l2": ("Mean L2", lambda cell: cell["mean_l2"]),
    "mse": ("Mean MSE", lambda cell: cell["mean_mse"]),
    "psnr": ("Mean PSNR (dB)", lambda cell: cell["mean_psnr"]),
}


@EXPERIMENT_KINDS.register("whitebox")
def run_whitebox(runner: Runner, spec: ExperimentSpec) -> Handler:
    """Attack each victim variant directly; report the noise budget needed."""
    n = runner.sample_budget(spec)
    columns = list(spec.params.get("columns", ("success", "l2")))

    cells: Dict[str, Dict[str, Any]] = {}
    for entry in spec.attacks:
        per_victim: Dict[str, Any] = {}
        for victim_name in spec.variants:
            payload = {
                "model": spec.model,
                "victim": victim_name,
                "attack": entry.attack,
                "params": runner.attack_params(entry),
                "n_samples": n,
            }

            def compute(entry=entry, victim_name=victim_name) -> Dict[str, Any]:
                split = runner.split(spec)
                evaluation = evaluate_white_box(
                    runner.classifier(spec, victim_name),
                    runner.attack(entry),
                    split.test.images,
                    split.test.labels,
                    max_samples=n,
                    victim_name=victim_name,
                )
                return {
                    "n_samples": evaluation.n_samples,
                    "success_rate": evaluation.success_rate,
                    "mean_l2": evaluation.mean_l2,
                    "mean_mse": evaluation.mean_mse,
                    "mean_psnr": evaluation.mean_psnr,
                }

            per_victim[victim_name] = runner.cell("whitebox", payload, compute)
        cells[entry.label] = per_victim

    labels = dict(zip(spec.variants, variant_labels(spec, spec.variants)))
    headers = ["Attack", "Victim"] + [_WHITEBOX_COLUMNS[c][0] for c in columns]
    rows = [
        [entry.label, labels[v]]
        + [_WHITEBOX_COLUMNS[c][1](cells[entry.label][v]) for c in columns]
        for entry in spec.attacks
        for v in spec.variants
    ]
    return headers, rows, {"attacks": cells}


# --------------------------------------------------------------- accuracies
def _accuracy_cell(runner: Runner, spec: ExperimentSpec, model_key: str, variant: str, n: int):
    payload = {"model": model_key, "variant": variant, "n_samples": n}
    if variant.startswith("dq_"):
        payload["dq_zoo"] = spec.params.get("dq_zoo", "dq_objects")

    def compute() -> Dict[str, Any]:
        model_spec = spec.replace(model=model_key)
        variant_model = runner.resolve_variant(model_spec, variant)
        _base, split = runner.zoo(model_key)
        x, y = split.test.images[:n], split.test.labels[:n]
        return {"accuracy": float(evaluate_accuracy(variant_model, x, y)), "n": len(x)}

    return runner.cell("accuracy", payload, compute)


@EXPERIMENT_KINDS.register("accuracy")
def run_accuracy(runner: Runner, spec: ExperimentSpec) -> Handler:
    """Clean accuracy of hardware variants across datasets (Table 6 shape).

    ``spec.params["columns"]``: list of ``{key, label, model, variants,
    n_samples}``; ``spec.params["rows"]``: list of ``{label, variant}``.
    """
    columns = spec.params["columns"]
    row_defs = spec.params["rows"]

    metrics: Dict[str, Dict[str, float]] = {}
    for col in columns:
        n = col["n_samples"] if not runner.fast else min(col["n_samples"], 50)
        per_variant: Dict[str, float] = {}
        for variant in col["variants"]:
            cell = _accuracy_cell(runner, spec, col["model"], variant, n)
            per_variant[variant] = cell["accuracy"]
        metrics[col.get("key", col["label"])] = per_variant

    headers = ["Used multiplier"] + [col["label"] for col in columns]
    rows = []
    for row_def in row_defs:
        row: List[Any] = [row_def["label"]]
        for col in columns:
            acc = metrics[col.get("key", col["label"])].get(row_def["variant"])
            row.append(f"{100 * acc:.1f}%" if acc is not None else "-")
        rows.append(row)
    return headers, rows, {"accuracy": metrics}


@EXPERIMENT_KINDS.register("multiplier_accuracy")
def run_multiplier_accuracy(runner: Runner, spec: ExperimentSpec) -> Handler:
    """Multiplier error metrics next to CNN clean accuracy (Table 8 shape).

    ``spec.params["rows"]``: list of ``{label, variant, profile}`` where
    ``profile`` is a multiplier registry name or ``None`` for the exact row.
    """
    n = spec.n_samples if not runner.fast else min(spec.n_samples, 50)
    profile_samples = spec.params.get("profile_samples", 100_000)
    if runner.fast:
        profile_samples = min(profile_samples, 20_000)

    accuracies: Dict[str, float] = {}
    profiles: Dict[str, Dict[str, Any]] = {}
    rows: List[List[Any]] = []
    for row_def in spec.params["rows"]:
        label, variant, mult = row_def["label"], row_def["variant"], row_def.get("profile")
        acc = _accuracy_cell(runner, spec, spec.model, variant, n)["accuracy"]
        accuracies[label] = acc
        if mult is None:
            rows.append([label, f"{100 * acc:.2f}%", 0.0, 0.0])
            continue
        payload = {"multiplier": mult, "n_samples": profile_samples, "operand_range": [-1.0, 1.0]}

        def compute(mult=mult) -> Dict[str, Any]:
            return _profile_dict(
                profile_multiplier(MULTIPLIERS.create(mult), n_samples=profile_samples)
            )

        profile = runner.cell("noise_profile", payload, compute)
        profiles[label] = profile
        rows.append([label, f"{100 * acc:.2f}%", profile["mred"], profile["nmed"]])

    headers = ["Multiplier", "CNN Accuracy", "MRED", "NMED"]
    return headers, rows, {"accuracy": accuracies, "profiles": profiles}


# ------------------------------------------------------------ noise profiles
@EXPERIMENT_KINDS.register("noise_profile")
def run_noise_profile(runner: Runner, spec: ExperimentSpec) -> Handler:
    """Operand-sampled multiplier noise characterisation (Figures 3/13/15).

    ``spec.params["multipliers"]``: list of ``{label, name, kwargs}``;
    ``spec.params["n_samples"]`` and ``spec.params["operand_range"]`` select
    the sampling protocol.
    """
    n_samples = spec.params.get("n_samples", 100_000)
    if runner.fast:
        n_samples = min(n_samples, 20_000)
    operand_range = tuple(spec.params.get("operand_range", (-1.0, 1.0)))

    profiles: Dict[str, Dict[str, Any]] = {}
    for mult_def in spec.params["multipliers"]:
        kwargs = dict(mult_def.get("kwargs", {}))
        payload = {
            "multiplier": mult_def["name"],
            "kwargs": kwargs,
            "n_samples": n_samples,
            "operand_range": list(operand_range),
        }

        def compute(mult_def=mult_def, kwargs=kwargs) -> Dict[str, Any]:
            multiplier = MULTIPLIERS.create(mult_def["name"], **kwargs)
            return _profile_dict(
                profile_multiplier(multiplier, n_samples=n_samples, operand_range=operand_range)
            )

        profiles[mult_def["label"]] = runner.cell("noise_profile", payload, compute)

    if len(profiles) == 1:
        (label, profile), = profiles.items()
        headers = ["quantity", "value"]
        rows = [
            ["samples", profile["n_samples"]],
            ["MRED", profile["mred"]],
            ["NMED", profile["nmed"]],
            ["mean error", profile["mean_error"]],
            ["mean |error|", profile["mean_abs_error"]],
            ["max |error|", profile["max_abs_error"]],
            ["% products inflated", 100.0 * profile["fraction_magnitude_inflated"]],
            ["% positive errors", 100.0 * profile["fraction_positive_error"]],
            ["corr(|x*y|, |error|)", profile["error_magnitude_correlation"]],
        ]
    else:
        headers = ["multiplier", "MRED", "NMED", "% inflated", "% positive", "max |error|"]
        rows = [
            [
                label,
                p["mred"],
                p["nmed"],
                100.0 * p["fraction_magnitude_inflated"],
                100.0 * p["fraction_positive_error"],
                p["max_abs_error"],
            ]
            for label, p in profiles.items()
        ]
    return headers, rows, {"profiles": profiles}


# ------------------------------------------------------- bespoke experiments
@EXPERIMENT_KINDS.register("conv_response")
def run_conv_response(runner: Runner, spec: ExperimentSpec) -> Handler:
    """Exact vs approximate convolution response vs input/filter similarity
    (Figure 4)."""
    params = {
        "multiplier": spec.params.get("multiplier", "axfpm"),
        "kernel_size": spec.params.get("kernel_size", 4),
        "n_points": spec.params.get("n_points", 6),
        "seed": spec.params.get("seed", 0),
    }

    def compute() -> Dict[str, Any]:
        rng = np.random.default_rng(params["seed"])
        k = params["kernel_size"]
        kernel = rng.uniform(0.2, 0.9, size=(1, 1, k, k)).astype(np.float32)
        exact = Conv2d(1, 1, k)
        exact.weight.value = kernel
        exact.bias.value = np.zeros(1, dtype=np.float32)
        approx = ApproxConv2d.from_exact(
            exact, multiplier=MULTIPLIERS.create(params["multiplier"])
        )
        noise = rng.uniform(0.0, 1.0, size=(1, 1, k, k)).astype(np.float32)
        points = []
        for alpha in np.linspace(0.0, 1.0, params["n_points"]):
            image = ((1 - alpha) * noise + alpha * (kernel / kernel.max())).astype(np.float32)
            exact_response = float(exact.forward(image)[0, 0, 0, 0])
            approx_response = float(approx.forward(image)[0, 0, 0, 0])
            points.append(
                {
                    "similarity": float(alpha),
                    "exact": exact_response,
                    "approx": approx_response,
                    "gap": approx_response - exact_response,
                }
            )
        return {"points": points}

    cell = runner.cell("conv_response", params, compute)
    headers = ["input", "exact conv", "approx conv", "gap"]
    rows = [
        [
            f"image {i} (similarity {p['similarity']:.1f})",
            p["exact"],
            p["approx"],
            p["gap"],
        ]
        for i, p in enumerate(cell["points"], start=1)
    ]
    gaps = [p["gap"] for p in cell["points"]]
    return headers, rows, {"points": cell["points"], "gaps": gaps}


@EXPERIMENT_KINDS.register("confidence")
def run_confidence(runner: Runner, spec: ExperimentSpec) -> Handler:
    """Classification-confidence comparison, exact vs DA (Figure 12)."""
    per_class = spec.params.get("per_class", 10)
    if runner.fast:
        per_class = min(per_class, 4)
    thresholds = list(spec.params.get("thresholds", (0.5, 0.8, 0.9, 0.95)))
    payload = {"model": spec.model, "per_class": per_class, "thresholds": thresholds}

    def compute() -> Dict[str, Any]:
        split = runner.split(spec)
        exact_model = runner.resolve_variant(spec, "exact")
        approx_model = runner.resolve_variant(spec, "da")
        subset = split.test.sample_per_class(per_class, rng=np.random.default_rng(0))
        images, labels = subset.images, subset.labels
        both_correct = np.flatnonzero(
            (exact_model.predict(images) == labels) & (approx_model.predict(images) == labels)
        )
        comparison = compare_confidence(
            exact_model, approx_model, images[both_correct], labels[both_correct]
        )
        exact_mean, approx_mean = comparison.mean_confidence()
        fractions = {}
        for threshold in thresholds:
            exact_frac, approx_frac = comparison.fraction_above(threshold)
            fractions[str(threshold)] = [exact_frac, approx_frac]
        return {
            "n_samples": int(len(both_correct)),
            "exact_mean": exact_mean,
            "approx_mean": approx_mean,
            "fractions": fractions,
        }

    cell = runner.cell("confidence", payload, compute)
    headers = ["quantity", "exact classifier", "approximate classifier"]
    rows: List[List[Any]] = [["mean confidence", cell["exact_mean"], cell["approx_mean"]]]
    for threshold in thresholds:
        exact_frac, approx_frac = cell["fractions"][str(threshold)]
        rows.append([f"fraction above {threshold}", exact_frac, approx_frac])
    return headers, rows, cell


@EXPERIMENT_KINDS.register("feature_maps")
def run_feature_maps(runner: Runner, spec: ExperimentSpec) -> Handler:
    """Final convolution-layer feature-map statistics per variant (Figure 16)."""
    n_images = spec.params.get("n_images", 16)
    if runner.fast:
        n_images = min(n_images, 4)

    def feature_stats(variant: str) -> Dict[str, Any]:
        model = runner.resolve_variant(spec, variant)
        split = runner.split(spec)
        images = split.test.images[:n_images]
        last_conv_index = max(
            i for i, layer in enumerate(model.layers) if isinstance(layer, Conv2d)
        )
        out = images
        for layer in model.layers[: last_conv_index + 2]:  # include the following ReLU
            out = layer.forward(out)
        active = out[out > 0]
        return {
            "mean_active": float(active.mean()) if active.size else 0.0,
            "p90": float(np.percentile(out, 90)),
            "max": float(out.max()),
        }

    labels = dict(zip(spec.variants, variant_labels(spec, spec.variants)))
    stats: Dict[str, Dict[str, Any]] = {}
    rows = []
    for variant in spec.variants:
        payload = {"model": spec.model, "variant": variant, "n_images": n_images}
        cell = runner.cell("feature_maps", payload, lambda variant=variant: feature_stats(variant))
        stats[variant] = cell
        rows.append([labels[variant], cell["mean_active"], cell["p90"], cell["max"]])
    headers = ["Multiplier", "Mean active response", "90th percentile", "Max"]
    return headers, rows, {"stats": stats}


@EXPERIMENT_KINDS.register("energy")
def run_energy(runner: Runner, spec: ExperimentSpec) -> Handler:
    """Analytical energy/delay cost tables (Tables 7 and 9)."""
    which = spec.params.get("table", "fpm")

    def compute() -> Dict[str, Any]:
        from repro.hw import energy_delay_table, mantissa_energy_delay_table

        table_fn = energy_delay_table if which == "fpm" else mantissa_energy_delay_table
        return {"rows": [[name, energy, delay] for name, energy, delay in table_fn()]}

    cell = runner.cell("energy", {"table": which}, compute)
    headers = ["Multiplier", "Average energy", "Average delay"]
    rows = [list(row) for row in cell["rows"]]
    by_name = {name: {"energy": energy, "delay": delay} for name, energy, delay in cell["rows"]}
    return headers, rows, {"by_name": by_name}
