"""Execution strategies for each experiment kind.

Every paper experiment shape is one :class:`KindHandler` registered in the
``"experiment-kind"`` registry.  A handler is a *plan/assemble* pair:

* ``plan(runner, spec)`` enumerates the grid cells the experiment needs as
  :class:`~repro.pipeline.cells.CellRequest` entries -- pure payload
  construction, no model is resolved and nothing is computed;
* ``assemble(runner, spec, cells)`` turns the materialised cell values back
  into ``(headers, rows, metrics)``: the paper-style table plus a JSON-able
  metrics tree that the benchmarks assert against.

The split is what the :mod:`repro.parallel` engine schedules against: all
experiments' cells are planned up front, deduplicated by content digest
(Figures 8/9 and 10/11 run the same white-box grid and recompute nothing) and
computed serially or on the worker pool; the actual cell computations live in
:mod:`repro.pipeline.cells`.  A plain function registered as an experiment
kind (the historical protocol) still works -- it executes serially through
:meth:`Runner.cell`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from repro.pipeline.cells import CellRequest
from repro.pipeline.runner import (
    EXPERIMENT_KINDS,
    Runner,
    percentage,
    variant_labels,
)
from repro.pipeline.spec import ExperimentSpec

Handler = Tuple[List[str], List[List[Any]], Dict[str, Any]]
PlanFn = Callable[[Runner, ExperimentSpec], List[CellRequest]]
AssembleFn = Callable[[Runner, ExperimentSpec, Dict[Any, Any]], Handler]


@dataclass(frozen=True)
class KindHandler:
    """Plan/assemble pair for one experiment kind.

    Calling the handler directly executes the experiment serially (plan,
    compute each cell through :meth:`Runner.cell`, assemble) -- the
    compatibility path for code that invokes a kind's factory by hand.
    """

    plan: PlanFn
    assemble: AssembleFn

    def __call__(self, runner: Runner, spec: ExperimentSpec) -> Handler:
        cells = {req.key: runner.cell(req.kind, req.payload) for req in self.plan(runner, spec)}
        return self.assemble(runner, spec, cells)


def register_kind(name: str, plan: PlanFn, assemble: AssembleFn) -> KindHandler:
    """Register an experiment kind from its plan/assemble pair."""
    handler = KindHandler(plan=plan, assemble=assemble)
    EXPERIMENT_KINDS.register(name, handler, metadata={"planned": True})
    return handler


# ------------------------------------------------------------ attack grids
def _attack_payload(runner: Runner, spec: ExperimentSpec, entry) -> Dict[str, Any]:
    """The payload fields shared by all attack-evaluation cells.

    Deliberately excludes the shard size: since the batched attack engine,
    sharding is pure execution tuning (per-example RNG streams are keyed by
    global victim index), so it is no longer cell content and must not
    invalidate cached artifacts.
    """
    return {
        "model": spec.model,
        "attack": entry.attack,
        "params": runner.attack_params(entry),
        "n_samples": runner.sample_budget(spec),
    }


def plan_transferability(runner: Runner, spec: ExperimentSpec) -> List[CellRequest]:
    """One cell per attack: craft on the source, replay on every target."""
    requests = []
    for entry in spec.attacks:
        payload = _attack_payload(runner, spec, entry)
        payload["source"] = spec.source
        payload["targets"] = list(spec.variants)
        if any(v.startswith("dq_") for v in spec.variants):
            payload["dq_zoo"] = spec.params.get("dq_zoo", "dq_objects")
        requests.append(CellRequest(entry.label, "transferability", payload))
    return requests


def assemble_transferability(
    runner: Runner, spec: ExperimentSpec, cells: Dict[Any, Any]
) -> Handler:
    headers = list(
        spec.params.get("headers") or ["Attack method"] + variant_labels(spec, spec.variants)
    )
    rows = [
        [entry.label] + [percentage(cells[entry.label]["targets"][v]) for v in spec.variants]
        for entry in spec.attacks
    ]
    mean_success = {
        v: float(np.mean([cells[e.label]["targets"][v] for e in spec.attacks]))
        for v in spec.variants
    }
    named_cells = {e.label: cells[e.label] for e in spec.attacks}
    return headers, rows, {"attacks": named_cells, "mean_target_success": mean_success}


register_kind("transferability", plan_transferability, assemble_transferability)


def plan_blackbox(runner: Runner, spec: ExperimentSpec) -> List[CellRequest]:
    """One cell per attack x victim: craft on a substitute, replay on the victim."""
    substitute_zoo = spec.params.get("substitute", "substitute_digits")
    requests = []
    for entry in spec.attacks:
        for victim_name in spec.variants:
            payload = _attack_payload(runner, spec, entry)
            payload["victim"] = victim_name
            payload["substitute"] = substitute_zoo
            requests.append(CellRequest((entry.label, victim_name), "blackbox", payload))
    return requests


def assemble_blackbox(runner: Runner, spec: ExperimentSpec, cells: Dict[Any, Any]) -> Handler:
    nested = {
        entry.label: {v: cells[(entry.label, v)] for v in spec.variants}
        for entry in spec.attacks
    }
    headers = list(
        spec.params.get("headers") or ["Attack method"] + variant_labels(spec, spec.variants)
    )
    rows = [
        [entry.label]
        + [percentage(nested[entry.label][v]["victim_success_rate"]) for v in spec.variants]
        for entry in spec.attacks
    ]
    mean_success = {
        v: float(np.mean([nested[e.label][v]["victim_success_rate"] for e in spec.attacks]))
        for v in spec.variants
    }
    return headers, rows, {"attacks": nested, "mean_victim_success": mean_success}


register_kind("blackbox", plan_blackbox, assemble_blackbox)


_WHITEBOX_COLUMNS = {
    "success": ("Success", lambda cell: percentage(cell["success_rate"])),
    "l2": ("Mean L2", lambda cell: cell["mean_l2"]),
    "mse": ("Mean MSE", lambda cell: cell["mean_mse"]),
    "psnr": ("Mean PSNR (dB)", lambda cell: cell["mean_psnr"]),
}


def plan_whitebox(runner: Runner, spec: ExperimentSpec) -> List[CellRequest]:
    """One cell per attack x victim: attack the victim directly."""
    requests = []
    for entry in spec.attacks:
        for victim_name in spec.variants:
            payload = _attack_payload(runner, spec, entry)
            payload["victim"] = victim_name
            requests.append(CellRequest((entry.label, victim_name), "whitebox", payload))
    return requests


def assemble_whitebox(runner: Runner, spec: ExperimentSpec, cells: Dict[Any, Any]) -> Handler:
    columns = list(spec.params.get("columns", ("success", "l2")))
    nested = {
        entry.label: {v: cells[(entry.label, v)] for v in spec.variants}
        for entry in spec.attacks
    }
    labels = dict(zip(spec.variants, variant_labels(spec, spec.variants)))
    headers = ["Attack", "Victim"] + [_WHITEBOX_COLUMNS[c][0] for c in columns]
    rows = [
        [entry.label, labels[v]]
        + [_WHITEBOX_COLUMNS[c][1](nested[entry.label][v]) for c in columns]
        for entry in spec.attacks
        for v in spec.variants
    ]
    return headers, rows, {"attacks": nested}


register_kind("whitebox", plan_whitebox, assemble_whitebox)


# --------------------------------------------------------------- accuracies
def _accuracy_request(
    spec: ExperimentSpec, key: Any, model_key: str, variant: str, n: int
) -> CellRequest:
    payload: Dict[str, Any] = {"model": model_key, "variant": variant, "n_samples": n}
    if variant.startswith("dq_"):
        payload["dq_zoo"] = spec.params.get("dq_zoo", "dq_objects")
    return CellRequest(key, "accuracy", payload)


def plan_accuracy(runner: Runner, spec: ExperimentSpec) -> List[CellRequest]:
    """Clean accuracy of hardware variants across datasets (Table 6 shape).

    ``spec.params["columns"]``: list of ``{key, label, model, variants,
    n_samples}``; ``spec.params["rows"]``: list of ``{label, variant}``.
    """
    requests = []
    for col in spec.params["columns"]:
        n = col["n_samples"] if not runner.fast else min(col["n_samples"], 50)
        for variant in col["variants"]:
            key = (col.get("key", col["label"]), variant)
            requests.append(_accuracy_request(spec, key, col["model"], variant, n))
    return requests


def assemble_accuracy(runner: Runner, spec: ExperimentSpec, cells: Dict[Any, Any]) -> Handler:
    columns = spec.params["columns"]
    metrics: Dict[str, Dict[str, float]] = {}
    for col in columns:
        col_key = col.get("key", col["label"])
        metrics[col_key] = {
            variant: cells[(col_key, variant)]["accuracy"] for variant in col["variants"]
        }
    headers = ["Used multiplier"] + [col["label"] for col in columns]
    rows = []
    for row_def in spec.params["rows"]:
        row: List[Any] = [row_def["label"]]
        for col in columns:
            acc = metrics[col.get("key", col["label"])].get(row_def["variant"])
            row.append(f"{100 * acc:.1f}%" if acc is not None else "-")
        rows.append(row)
    return headers, rows, {"accuracy": metrics}


register_kind("accuracy", plan_accuracy, assemble_accuracy)


def plan_multiplier_accuracy(runner: Runner, spec: ExperimentSpec) -> List[CellRequest]:
    """Multiplier error metrics next to CNN clean accuracy (Table 8 shape).

    ``spec.params["rows"]``: list of ``{label, variant, profile}`` where
    ``profile`` is a multiplier registry name or ``None`` for the exact row.
    """
    n = spec.n_samples if not runner.fast else min(spec.n_samples, 50)
    profile_samples = spec.params.get("profile_samples", 100_000)
    if runner.fast:
        profile_samples = min(profile_samples, 20_000)
    requests = []
    for row_def in spec.params["rows"]:
        label, variant, mult = row_def["label"], row_def["variant"], row_def.get("profile")
        requests.append(_accuracy_request(spec, ("acc", label), spec.model, variant, n))
        if mult is not None:
            payload = {
                "multiplier": mult,
                "n_samples": profile_samples,
                "operand_range": [-1.0, 1.0],
            }
            requests.append(CellRequest(("profile", label), "noise_profile", payload))
    return requests


def assemble_multiplier_accuracy(
    runner: Runner, spec: ExperimentSpec, cells: Dict[Any, Any]
) -> Handler:
    accuracies: Dict[str, float] = {}
    profiles: Dict[str, Dict[str, Any]] = {}
    rows: List[List[Any]] = []
    for row_def in spec.params["rows"]:
        label = row_def["label"]
        acc = cells[("acc", label)]["accuracy"]
        accuracies[label] = acc
        if row_def.get("profile") is None:
            rows.append([label, f"{100 * acc:.2f}%", 0.0, 0.0])
            continue
        profile = cells[("profile", label)]
        profiles[label] = profile
        rows.append([label, f"{100 * acc:.2f}%", profile["mred"], profile["nmed"]])
    headers = ["Multiplier", "CNN Accuracy", "MRED", "NMED"]
    return headers, rows, {"accuracy": accuracies, "profiles": profiles}


register_kind("multiplier_accuracy", plan_multiplier_accuracy, assemble_multiplier_accuracy)


# ------------------------------------------------------------ noise profiles
def plan_noise_profile(runner: Runner, spec: ExperimentSpec) -> List[CellRequest]:
    """Operand-sampled multiplier noise characterisation (Figures 3/13/15).

    ``spec.params["multipliers"]``: list of ``{label, name, kwargs}``;
    ``spec.params["n_samples"]`` and ``spec.params["operand_range"]`` select
    the sampling protocol.
    """
    n_samples = spec.params.get("n_samples", 100_000)
    if runner.fast:
        n_samples = min(n_samples, 20_000)
    operand_range = list(spec.params.get("operand_range", (-1.0, 1.0)))
    requests = []
    for mult_def in spec.params["multipliers"]:
        payload = {
            "multiplier": mult_def["name"],
            "kwargs": dict(mult_def.get("kwargs", {})),
            "n_samples": n_samples,
            "operand_range": operand_range,
        }
        requests.append(CellRequest(mult_def["label"], "noise_profile", payload))
    return requests


def assemble_noise_profile(runner: Runner, spec: ExperimentSpec, cells: Dict[Any, Any]) -> Handler:
    profiles = {mult_def["label"]: cells[mult_def["label"]] for mult_def in spec.params["multipliers"]}
    if len(profiles) == 1:
        (label, profile), = profiles.items()
        headers = ["quantity", "value"]
        rows = [
            ["samples", profile["n_samples"]],
            ["MRED", profile["mred"]],
            ["NMED", profile["nmed"]],
            ["mean error", profile["mean_error"]],
            ["mean |error|", profile["mean_abs_error"]],
            ["max |error|", profile["max_abs_error"]],
            ["% products inflated", 100.0 * profile["fraction_magnitude_inflated"]],
            ["% positive errors", 100.0 * profile["fraction_positive_error"]],
            ["corr(|x*y|, |error|)", profile["error_magnitude_correlation"]],
        ]
    else:
        headers = ["multiplier", "MRED", "NMED", "% inflated", "% positive", "max |error|"]
        rows = [
            [
                label,
                p["mred"],
                p["nmed"],
                100.0 * p["fraction_magnitude_inflated"],
                100.0 * p["fraction_positive_error"],
                p["max_abs_error"],
            ]
            for label, p in profiles.items()
        ]
    return headers, rows, {"profiles": profiles}


register_kind("noise_profile", plan_noise_profile, assemble_noise_profile)


# ------------------------------------------------------- bespoke experiments
def plan_conv_response(runner: Runner, spec: ExperimentSpec) -> List[CellRequest]:
    """Exact vs approximate convolution response vs input/filter similarity
    (Figure 4)."""
    payload = {
        "multiplier": spec.params.get("multiplier", "axfpm"),
        "kernel_size": spec.params.get("kernel_size", 4),
        "n_points": spec.params.get("n_points", 6),
        "seed": spec.params.get("seed", 0),
    }
    return [CellRequest("cell", "conv_response", payload)]


def assemble_conv_response(runner: Runner, spec: ExperimentSpec, cells: Dict[Any, Any]) -> Handler:
    cell = cells["cell"]
    headers = ["input", "exact conv", "approx conv", "gap"]
    rows = [
        [
            f"image {i} (similarity {p['similarity']:.1f})",
            p["exact"],
            p["approx"],
            p["gap"],
        ]
        for i, p in enumerate(cell["points"], start=1)
    ]
    gaps = [p["gap"] for p in cell["points"]]
    return headers, rows, {"points": cell["points"], "gaps": gaps}


register_kind("conv_response", plan_conv_response, assemble_conv_response)


def plan_confidence(runner: Runner, spec: ExperimentSpec) -> List[CellRequest]:
    """Classification-confidence comparison, exact vs DA (Figure 12)."""
    per_class = spec.params.get("per_class", 10)
    if runner.fast:
        per_class = min(per_class, 4)
    thresholds = list(spec.params.get("thresholds", (0.5, 0.8, 0.9, 0.95)))
    payload = {"model": spec.model, "per_class": per_class, "thresholds": thresholds}
    return [CellRequest("cell", "confidence", payload)]


def assemble_confidence(runner: Runner, spec: ExperimentSpec, cells: Dict[Any, Any]) -> Handler:
    cell = cells["cell"]
    thresholds = list(spec.params.get("thresholds", (0.5, 0.8, 0.9, 0.95)))
    headers = ["quantity", "exact classifier", "approximate classifier"]
    rows: List[List[Any]] = [["mean confidence", cell["exact_mean"], cell["approx_mean"]]]
    for threshold in thresholds:
        exact_frac, approx_frac = cell["fractions"][str(threshold)]
        rows.append([f"fraction above {threshold}", exact_frac, approx_frac])
    return headers, rows, cell


register_kind("confidence", plan_confidence, assemble_confidence)


def plan_feature_maps(runner: Runner, spec: ExperimentSpec) -> List[CellRequest]:
    """Final convolution-layer feature-map statistics per variant (Figure 16)."""
    n_images = spec.params.get("n_images", 16)
    if runner.fast:
        n_images = min(n_images, 4)
    return [
        CellRequest(
            variant,
            "feature_maps",
            {"model": spec.model, "variant": variant, "n_images": n_images},
        )
        for variant in spec.variants
    ]


def assemble_feature_maps(runner: Runner, spec: ExperimentSpec, cells: Dict[Any, Any]) -> Handler:
    labels = dict(zip(spec.variants, variant_labels(spec, spec.variants)))
    stats = {variant: cells[variant] for variant in spec.variants}
    rows = [
        [labels[variant], cells[variant]["mean_active"], cells[variant]["p90"], cells[variant]["max"]]
        for variant in spec.variants
    ]
    headers = ["Multiplier", "Mean active response", "90th percentile", "Max"]
    return headers, rows, {"stats": stats}


register_kind("feature_maps", plan_feature_maps, assemble_feature_maps)


def plan_energy(runner: Runner, spec: ExperimentSpec) -> List[CellRequest]:
    """Analytical energy/delay cost tables (Tables 7 and 9)."""
    return [CellRequest("cell", "energy", {"table": spec.params.get("table", "fpm")})]


def assemble_energy(runner: Runner, spec: ExperimentSpec, cells: Dict[Any, Any]) -> Handler:
    cell = cells["cell"]
    headers = ["Multiplier", "Average energy", "Average delay"]
    rows = [list(row) for row in cell["rows"]]
    by_name = {name: {"energy": energy, "delay": delay} for name, energy, delay in cell["rows"]}
    return headers, rows, {"by_name": by_name}


register_kind("energy", plan_energy, assemble_energy)
