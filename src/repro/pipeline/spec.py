"""Declarative experiment specifications.

An :class:`ExperimentSpec` is a complete, serialisable description of one
paper experiment: which zoo model it uses, which hardware variants it
compares, which attacks it runs, and how many samples it attacks.  The
:class:`~repro.pipeline.runner.Runner` resolves every string in a spec through
the unified registries (:mod:`repro.registry`) and executes it; nothing in a
spec is executable by itself.

Adding a new scenario therefore means adding one spec to
:mod:`repro.pipeline.catalog` (or registering one at runtime in the
``"experiment"`` registry) instead of writing a new harness script.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Mapping, Tuple


@dataclass(frozen=True)
class AttackGridEntry:
    """One attack column/row of an experiment's attack grid."""

    label: str  #: display label used in the emitted table (e.g. ``"C&W"``)
    attack: str  #: name in the ``"attack"`` registry (e.g. ``"cw"``)
    params: Mapping[str, Any] = field(default_factory=dict)

    @staticmethod
    def of(entry) -> "AttackGridEntry":
        """Coerce ``(label, attack, params)`` tuples or JSON dicts into entries.

        The dict form is what :meth:`ExperimentSpec.to_dict` emits and what
        the HTTP API accepts for inline specs.
        """
        if isinstance(entry, AttackGridEntry):
            return entry
        if isinstance(entry, Mapping):
            return AttackGridEntry(
                entry["label"], entry["attack"], dict(entry.get("params", {}))
            )
        label, attack, params = entry
        return AttackGridEntry(label, attack, dict(params))


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one table/figure experiment.

    Parameters
    ----------
    name:
        Unique experiment identifier (``table04_blackbox_mnist``, ...); also
        the stem of the emitted result files.
    kind:
        Execution strategy, resolved through the ``"experiment-kind"``
        registry (``transferability``, ``blackbox``, ``whitebox``,
        ``accuracy``, ``noise_profile``, ...).
    title:
        Human-readable one-liner shown by ``python -m repro list``.
    model:
        Name of the trained-model provider in the ``"zoo"`` registry.
    dataset:
        Informative dataset tag (``digits`` / ``objects``).
    source:
        Hardware variant adversarial examples are crafted on
        (transferability experiments).
    variants:
        Hardware variants evaluated as targets / victims, resolved through
        the ``"variant"`` registry (``dq_*`` names resolve through the DQ
        zoo entry instead).
    attacks:
        The attack grid, one :class:`AttackGridEntry` per attack.
    n_samples:
        Per-experiment attack sample budget (paper-scale; ``--fast`` shrinks
        it).
    params:
        Kind-specific extras (table headers, thresholds, multiplier lists...).
    """

    name: str
    kind: str
    title: str = ""
    model: str = ""
    dataset: str = ""
    source: str = "exact"
    variants: Tuple[str, ...] = ()
    attacks: Tuple[AttackGridEntry, ...] = ()
    n_samples: int = 0
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "variants", tuple(self.variants))
        object.__setattr__(
            self, "attacks", tuple(AttackGridEntry.of(a) for a in self.attacks)
        )
        object.__setattr__(self, "params", dict(self.params))

    # ------------------------------------------------------------- utilities
    def to_dict(self) -> Dict[str, Any]:
        """JSON-able canonical form (also what cache keys are derived from)."""
        return asdict(self)

    def replace(self, **changes) -> "ExperimentSpec":
        """A copy of this spec with ``changes`` applied."""
        return replace(self, **changes)

    @staticmethod
    def from_dict(payload: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from its :meth:`to_dict` / JSON form.

        This is the wire format: ``python -m repro info <name> --json`` emits
        it and the service's ``POST /jobs`` accepts it inline.  Round-trips
        exactly -- JSON encodes tuples and lists identically, so the rebuilt
        spec's :meth:`digest` (and therefore every cell cache key) matches
        the original's.  Unknown fields are rejected rather than silently
        dropped, so a typo cannot change which cells a submission means.
        """
        known = {f for f in ExperimentSpec.__dataclass_fields__}
        extra = set(payload) - known
        if extra:
            raise ValueError(
                f"unknown experiment-spec fields {sorted(extra)} "
                f"(expected a subset of {sorted(known)})"
            )
        if "name" not in payload or "kind" not in payload:
            raise ValueError("an experiment spec requires at least 'name' and 'kind'")
        return ExperimentSpec(**dict(payload))

    def digest(self) -> str:
        """Stable content hash of the spec (used in cache keys)."""
        return canonical_digest(self.to_dict())


def canonical_digest(payload: Any) -> str:
    """SHA-1 over the canonical JSON encoding of ``payload``."""
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha1(encoded.encode("utf-8")).hexdigest()
