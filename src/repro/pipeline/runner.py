"""The experiment runner: resolves declarative specs and executes them.

The :class:`Runner` is the single execution engine behind every benchmark and
behind ``python -m repro run``.  It

* resolves every string in an :class:`~repro.pipeline.spec.ExperimentSpec`
  through the unified registries (zoo models, hardware variants, attacks,
  experiment kinds),
* memoises trained models in-process (the zoo already caches parameters on
  disk, so across processes only the first run trains),
* plans each run as a deduplicated graph of grid cells
  (:mod:`repro.parallel.plan`): sibling experiments that share cells
  (Figures 8/9 and 10/11 share their white-box runs) compute each cell
  exactly once per run and hit its cached JSON artifact forever after,
* executes the cells serially or -- with ``jobs > 1`` -- on the sharded
  process pool of :mod:`repro.parallel.engine`, bit-for-bit identically
  (per-shard RNG seeds are spawned from cell content, never from the worker
  layout),
* emits an :class:`ExperimentResult` carrying the paper-style text table,
  machine-readable metrics and the run's cell telemetry, and can persist both
  as ``results/<name>.txt`` / ``results/<name>.json`` (written atomically).

Experiment *kinds* (transferability, blackbox, whitebox, accuracy, ...) are
themselves registry entries, so a new scenario shape can be plugged in without
touching this module (see :mod:`repro.pipeline.handlers`); the cell
computations they schedule live in :mod:`repro.pipeline.cells`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.attacks.base import Attack, Classifier
from repro.attacks.registry import ATTACKS
from repro.core.results import format_table
from repro.experiments.zoo import CACHE_DIR, ZOO
from repro.faults import RunManifest, backoff_seconds, shard_retries
from repro.nn.models import VARIANTS
from repro.obs import TRACER
from repro.parallel.locks import atomic_write_text
from repro.parallel.sharding import attack_shard_size, resolve_jobs
from repro.parallel.telemetry import CellEvent, RunTelemetry
from repro.pipeline.cells import get_cell_kind
from repro.pipeline.spec import AttackGridEntry, ExperimentSpec, canonical_digest
from repro.registry import registry
from repro.store import ArtifactStore

#: named experiment specs -- the catalog (namespace ``"experiment"``)
EXPERIMENTS = registry("experiment")

#: execution strategies, one per spec ``kind`` (namespace ``"experiment-kind"``)
EXPERIMENT_KINDS = registry("experiment-kind")

# Cell cache invalidation is *per dependency surface*, not global: each cell
# kind declares the numerics surfaces its value depends on (``deps=`` in
# :mod:`repro.pipeline.cells`) and the digest folds in only those surfaces'
# fingerprint tokens (:mod:`repro.pipeline.fingerprints`).  The retired
# global ``CELL_CACHE_VERSION`` knob's history -- and the migration story --
# lives in ``docs/caching.md``; the per-surface version constants now carry
# that history (e.g. :data:`repro.attacks.ATTACK_NUMERICS_VERSION`).  Within
# a development cycle, ``use_cache=False`` / ``--no-cache`` /
# ``REPRO_PIPELINE_NO_CACHE=1`` still forces recomputation wholesale.

#: attack sample budget applied by ``--fast``
FAST_MAX_SAMPLES = 4

#: iteration-style attack parameters scaled down by ``--fast`` (value // 4,
#: floored at the minimum that keeps the attack functional)
_FAST_PARAM_FLOORS = {
    "steps": 1,
    "max_iterations": 1,
    "max_rounds": 1,
    "init_trials": 10,
    "num_eval_samples": 4,
}


@dataclass
class ExperimentResult:
    """Structured outcome of one pipeline experiment."""

    name: str
    title: str
    kind: str
    fast: bool
    headers: List[str]
    rows: List[List[Any]]
    metrics: Dict[str, Any]
    spec: Dict[str, Any] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_seconds: float = 0.0
    telemetry: Dict[str, Any] = field(default_factory=dict)

    @property
    def table(self) -> str:
        """The paper-style plain-text table."""
        return format_table(self.headers, self.rows)

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "title": self.title,
            "kind": self.kind,
            "fast": self.fast,
            "headers": self.headers,
            "rows": [[_jsonable(cell) for cell in row] for row in self.rows],
            "metrics": _jsonable(self.metrics),
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "telemetry": _jsonable(self.telemetry),
            "spec": _jsonable(self.spec),
        }

    def write(self, results_dir: Union[str, Path]) -> Tuple[Path, Path]:
        """Persist ``<name>.txt`` (table) and ``<name>.json`` (full result).

        Both files are written atomically (tmp + rename), so concurrent runs
        sharing a results directory never expose truncated artifacts.
        """
        results_dir = Path(results_dir)
        txt_path = results_dir / f"{self.name}.txt"
        json_path = results_dir / f"{self.name}.json"
        atomic_write_text(txt_path, self.table + "\n")
        atomic_write_text(
            json_path, json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"
        )
        return txt_path, json_path


#: the result fields that may legitimately differ between two executions of
#: the same experiment (observability data); everything else is covered by
#: the ``--jobs N`` == ``--jobs 1`` determinism guarantee
NONDETERMINISTIC_RESULT_FIELDS = ("cache", "elapsed_seconds", "telemetry")


def _jsonable(value: Any) -> Any:
    """Best-effort conversion to JSON-encodable structures."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):  # numpy scalars
        try:
            return value.item()
        except (TypeError, ValueError):
            pass
    if hasattr(value, "tolist"):
        return value.tolist()
    return value


# in-process memoisation shared by all Runner instances: trained models are
# immutable-by-convention here (their parameters are only read), and the zoo's
# disk cache already guarantees cross-process reuse.  The lock serialises
# resolution across threads (the service tier runs concurrent jobs on a
# thread pool; without it two jobs could train the same model twice).  It is
# reentrant because resolve_variant resolves its base model through zoo().
_ZOO_CACHE: Dict[Any, Any] = {}
_VARIANT_CACHE: Dict[Any, Any] = {}
_MODEL_CACHE_LOCK = threading.RLock()


def clear_model_caches() -> None:
    """Drop the in-process model memos (tests / memory pressure)."""
    from repro.pipeline.cells import _SELECTION_CACHE, _WARMED

    _ZOO_CACHE.clear()
    _VARIANT_CACHE.clear()
    _SELECTION_CACHE.clear()  # victim selections are tied to the memoised models
    _WARMED.clear()  # warm-up signatures reference the memoised models too


class Runner:
    """Executes :class:`ExperimentSpec` instances.

    Parameters
    ----------
    fast:
        Smoke-test mode: fast zoo profiles, ``FAST_MAX_SAMPLES`` attack
        samples, scaled-down attack iteration counts.
    results_dir:
        When set, :meth:`run` writes ``<name>.txt`` and ``<name>.json`` here.
    cache_dir:
        Grid-cell artifact cache location (default: ``<zoo cache>/pipeline``).
    use_cache:
        Disable to force recomputation of every grid cell.
    progress:
        Optional callable receiving human-readable progress lines.
    jobs:
        Worker processes for cell execution: an integer, or ``"auto"`` for
        the CPU count.  ``jobs=1`` (the default) executes serially in this
        process; any value produces bit-for-bit identical results.
    shard_size:
        Victim examples per shard (= per batched attack rollout) of the
        attack-evaluation cells.  Execution tuning only: results are
        bit-for-bit identical for every value, exactly like ``jobs``.
        Defaults to the ``REPRO_ATTACK_SHARD_SIZE`` policy.
    resume:
        Resume an interrupted run: the previous run manifest
        (``results/<label>.manifest.json``, written incrementally as cells
        complete) names every finished cell, and each one still published in
        the store is counted as *resumed* in the run telemetry instead of an
        anonymous cache hit.  Requires ``results_dir`` and the cache; value
        bits are unaffected either way.
    remote:
        Base URL of a ``serve --share-store`` peer.  The cell cache becomes
        a :class:`~repro.store.TieredStore`: local misses fill through from
        the peer (after integrity + fingerprint verification) and computed
        cells publish back asynchronously.  Purely an execution accelerator:
        a dead, flapping or lying peer degrades to local-only compute with
        byte-identical results (the degradation is counted in the run
        telemetry, never raised).
    """

    def __init__(
        self,
        fast: bool = False,
        results_dir: Optional[Union[str, Path]] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        use_cache: bool = True,
        progress: Optional[Callable[[str], None]] = None,
        jobs: Union[int, str, None] = 1,
        shard_size: Optional[int] = None,
        resume: bool = False,
        remote: Optional[str] = None,
    ):
        self.fast = bool(fast)
        self.results_dir = Path(results_dir) if results_dir is not None else None
        self.cache_dir = Path(cache_dir) if cache_dir is not None else CACHE_DIR / "pipeline"
        if os.environ.get("REPRO_PIPELINE_NO_CACHE", "").lower() not in ("", "0", "false"):
            use_cache = False
        self.use_cache = bool(use_cache)
        self.progress = progress
        self.jobs = resolve_jobs(jobs)
        self.shard_size = attack_shard_size() if shard_size is None else max(1, int(shard_size))
        #: the multi-tenant artifact store backing the cell cache (namespace =
        #: cell kind); budget / lease TTL come from ``REPRO_STORE_BUDGET`` /
        #: ``REPRO_STORE_LEASE_TTL``.  With a remote peer configured the
        #: local store becomes the L1 tier of a TieredStore; pool workers
        #: stay local-only (the remote tier lives in the planning process).
        self.remote = str(remote) if remote else None
        local_store = ArtifactStore(self.cache_dir)
        if self.remote is not None:
            from repro.store import RemoteStoreClient, TieredStore

            tiered = TieredStore(local_store, RemoteStoreClient(self.remote))
            # late-bound through self: each run() swaps in a fresh telemetry
            tiered.on_fault = lambda name, n=1: self.telemetry.count_fault(name, n)
            self.store = tiered
        else:
            self.store = local_store
        #: optional observer invoked with each :class:`CellEvent` as cells
        #: complete -- the service tier streams these to HTTP clients
        self.on_cell: Optional[Callable[[CellEvent], None]] = None
        # per-run counters; reset at the start of every run()/run_many()
        self.cache_hits = 0
        self.cache_misses = 0
        self.telemetry = RunTelemetry(jobs=self.jobs)
        #: the last run's pre-compute warm/stale/cold plan outlook
        #: (:func:`repro.parallel.plan.cache_outlook`), for observability
        self.last_outlook: Optional[Dict[str, Any]] = None
        self.resume = bool(resume)
        # per-run crash-resume state: the active manifest and the digests the
        # previous (interrupted) run's manifest proved complete
        self._manifest: Optional[RunManifest] = None
        self._resume_digests: set = set()

    # ------------------------------------------------------------------- run
    def run(self, experiment: Union[str, ExperimentSpec]) -> ExperimentResult:
        """Execute one experiment (by catalog name or as an explicit spec)."""
        return self.run_many([experiment])[0]

    def run_many(
        self,
        experiments: Sequence[Union[str, ExperimentSpec]],
        on_result: Optional[Callable[[ExperimentResult], None]] = None,
    ) -> List[ExperimentResult]:
        """Execute several experiments as one planned run.

        All experiments' grid cells are planned and deduplicated up front, so
        cells shared between experiments are computed exactly once; with
        ``jobs > 1`` the unique cells (and their shards) spread across the
        worker pool.  ``on_result`` is invoked as each experiment's result is
        assembled (catalog order).
        """
        from repro.parallel.plan import build_plan

        specs = [self._resolve_spec(e) for e in experiments]
        self.telemetry = RunTelemetry(jobs=self.jobs)
        self.cache_hits = 0
        self.cache_misses = 0
        label = specs[0].name + (f"+{len(specs) - 1}" if len(specs) > 1 else "")
        scope = TRACER.begin_run(label)
        try:
            with TRACER.span(
                "run", cat="runner", experiments=[s.name for s in specs], jobs=self.jobs
            ):
                with TRACER.span("plan", cat="runner", experiments=len(specs)):
                    plan = build_plan(self, specs)
                self.telemetry.cells_total = len(plan.tasks)
                self._prepare_manifest(label, specs, len(plan.tasks))
                for eplan in plan.experiments:
                    self._log(
                        f"[{eplan.spec.name}] kind={eplan.spec.kind} fast={self.fast} "
                        f"cells={len(eplan.requests)} jobs={self.jobs}"
                    )
                if self.use_cache and plan.tasks:
                    from repro.parallel.plan import cache_outlook

                    outlook = cache_outlook(self, plan)
                    self.last_outlook = outlook
                    self._log(
                        f"  cache outlook: {outlook['warm']} warm / "
                        f"{outlook['stale']} stale / {outlook['cold']} cold "
                        f"of {len(plan.tasks)} cells"
                    )
                outcomes = self._compute_cells(plan)
                # cell compute is shared across the run's experiments, so
                # kernel and query activity cannot be attributed per
                # experiment: every result carries the same run-scoped counter
                # totals (pool workers folded in), marked as such
                kernel_delta = {"scope": "run", **self.telemetry.kernel_totals()}
                query_delta = {"scope": "run", **self.telemetry.attack_queries()}
                remote_delta = None
                if self.remote is not None:
                    # drain pending publications first so the recorded totals
                    # cover the whole run, not a race with the publisher
                    self.store.flush()
                    remote_delta = {
                        "scope": "run",
                        "url": self.remote,
                        **self.telemetry.remote_totals(),
                    }
                    self._log(
                        f"  remote: {remote_delta['hits']} hit(s) / "
                        f"{remote_delta['misses']} miss(es) / "
                        f"{remote_delta['puts']} published via {self.remote}"
                    )
                results = []
                for eplan in plan.experiments:
                    with TRACER.span("assemble", cat="runner", experiment=eplan.spec.name):
                        result = self._assemble(eplan, plan, outcomes)
                        result.telemetry["kernels"] = dict(kernel_delta)
                        result.telemetry["attack_queries"] = dict(query_delta)
                        if remote_delta is not None:
                            result.telemetry["remote"] = dict(remote_delta)
                            result.telemetry["faults"] = dict(self.telemetry.faults)
                        if self.results_dir is not None:
                            result.write(self.results_dir)
                    if on_result is not None:
                        on_result(result)
                    results.append(result)
                if self._manifest is not None:
                    self._manifest.finish()
        finally:
            if self.remote is not None:
                # a failed run still drains its publish queue (best effort):
                # cells computed before the failure stay shareable
                self.store.flush()
            merged = None
            if scope is not None and self.results_dir is not None:
                merged = self.results_dir / f"{label}.trace.ndjson"
            trace = TRACER.end_run(scope, merged)
            if trace is not None:
                self.telemetry.trace = trace
                self._log(
                    f"  trace: {trace['spans']} spans from "
                    f"{len(trace['pids'])} process(es) -> {trace['path']}"
                )
        return results

    def _prepare_manifest(self, label: str, specs, cells_total: int) -> None:
        """Arm this run's crash-resume manifest (requires a results dir).

        With ``resume=True`` the previous manifest's completed digests are
        loaded first; cells that hit the cache *and* appear there are counted
        as ``cells_resumed`` in the telemetry -- the auditable proof that a
        resumed run recomputed only unfinished work.
        """
        self._manifest = None
        self._resume_digests = set()
        if self.results_dir is None:
            if self.resume:
                self._log("  resume: no results dir, nothing to resume from")
            return
        path = self.results_dir / f"{label}.manifest.json"
        if self.resume:
            if not self.use_cache:
                self._log("  resume: cache disabled; recomputing every cell")
            else:
                previous = RunManifest.load(path)
                if previous is None:
                    self._log("  resume: no usable manifest; running from scratch")
                else:
                    self._resume_digests = set(previous.completed)
                    self._log(
                        f"  resume: previous run completed "
                        f"{len(self._resume_digests)} cell(s)"
                    )
        self._manifest = RunManifest(
            path, label=label, experiments=[s.name for s in specs], cells_total=cells_total
        )

    # ------------------------------------------------------- plan execution
    def kind_handler(self, kind: str):
        """The registered handler for an experiment kind (plan/assemble pair)."""
        return EXPERIMENT_KINDS.get(kind).factory

    def _compute_cells(self, plan) -> Dict[str, Any]:
        """Materialise every unique planned cell; returns digest -> outcome."""
        from repro.parallel.plan import CellOutcome  # noqa: F401 (typing aid)

        tasks = plan.scheduled()
        outcomes: Dict[str, Any] = {}

        def record(task, outcome) -> None:
            event = self.telemetry.record(
                CellEvent(
                    kind=task.kind,
                    digest=task.digest,
                    status=outcome.status,
                    seconds=outcome.seconds,
                    shards=outcome.shards,
                    experiment=task.owner,
                )
            )
            if outcome.status == "hit" and task.digest in self._resume_digests:
                # the interrupted run finished this cell and its artifact is
                # still published -- the resume actually saved the work
                self.telemetry.count_fault("cells_resumed")
            if self._manifest is not None:
                self._manifest.record(task.digest, task.kind, outcome.status, outcome.seconds)
            self._log(self.telemetry.progress_line(event))
            if self.on_cell is not None:
                self.on_cell(event)

        if not tasks:
            return outcomes
        if self.jobs > 1:
            from repro.parallel.engine import ParallelEngine

            outcomes = ParallelEngine(self).execute(tasks, on_cell=record)
        else:
            from repro.parallel.telemetry import DIGEST_WIDTH

            for task in tasks:
                with TRACER.span(
                    "cell",
                    cat="runner",
                    kind=task.kind,
                    digest=task.digest[:DIGEST_WIDTH],
                    experiment=task.owner,
                ) as span:
                    outcome = self._execute_cell(task.kind, task.payload, task.digest)
                    span["status"] = outcome.status
                    span["shards"] = outcome.shards
                outcomes[task.digest] = outcome
                record(task, outcome)
        self.cache_hits += sum(1 for o in outcomes.values() if o.status == "hit")
        self.cache_misses += sum(1 for o in outcomes.values() if o.status == "computed")
        return outcomes

    def _assemble(self, eplan, plan, outcomes) -> ExperimentResult:
        """Build one experiment's result from its materialised cells."""
        spec = eplan.spec
        start = time.perf_counter()
        if eplan.legacy:
            # pre-plan handler protocol: a plain function computing its own
            # cells through Runner.cell (which updates the run counters)
            hits_before, misses_before = self.cache_hits, self.cache_misses
            headers, rows, metrics = eplan.handler(self, spec)
            hits = self.cache_hits - hits_before
            misses = self.cache_misses - misses_before
            compute_seconds = 0.0
            events = []
        else:
            cells = {
                request.key: outcomes[digest].value
                for request, digest in zip(eplan.requests, eplan.digests)
            }
            headers, rows, metrics = eplan.handler.assemble(self, spec, cells)
            hits, misses, compute_seconds = self._attribute(eplan, plan, outcomes)
            referenced = set(eplan.digests)
            events = [e.to_dict() for e in self.telemetry.events if e.digest in referenced]
        elapsed = (time.perf_counter() - start) + compute_seconds
        return ExperimentResult(
            name=spec.name,
            title=spec.title,
            kind=spec.kind,
            fast=self.fast,
            headers=list(headers),
            rows=[list(row) for row in rows],
            metrics=metrics,
            spec=spec.to_dict(),
            cache_hits=hits,
            cache_misses=misses,
            elapsed_seconds=elapsed,
            telemetry={"jobs": self.jobs, "cells": events},
        )

    def _attribute(self, eplan, plan, outcomes) -> Tuple[int, int, float]:
        """Per-experiment cache accounting over the run's shared cell graph.

        A cell computed this run counts as a miss only for the experiment
        that owns it (first referencing experiment, once); every other
        reference -- later experiments, repeated requests -- is a hit, which
        matches what a serial unshared execution would have observed.
        """
        hits = misses = 0
        compute_seconds = 0.0
        counted = set()
        for digest in eplan.digests:
            task, result = plan.tasks[digest], outcomes[digest]
            first = digest not in counted
            counted.add(digest)
            if result.status == "computed" and task.owner == eplan.spec.name and first:
                misses += 1
                compute_seconds += result.seconds
            else:
                hits += 1
        return hits, misses, compute_seconds

    @staticmethod
    def _resolve_spec(experiment: Union[str, ExperimentSpec]) -> ExperimentSpec:
        if isinstance(experiment, ExperimentSpec):
            return experiment
        import repro.pipeline.catalog  # noqa: F401  (populates EXPERIMENTS)

        return EXPERIMENTS.create(experiment)

    def _log(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    # -------------------------------------------------------- model resolution
    def zoo(self, name: str, **kwargs) -> Any:
        """Resolve a trained-model provider, memoised in-process (thread-safe)."""
        key = (name, self.fast, tuple(sorted(kwargs.items())))
        if key not in _ZOO_CACHE:
            with _MODEL_CACHE_LOCK:
                if key not in _ZOO_CACHE:
                    self._log(f"  zoo: resolving {name} {kwargs or ''}")
                    _ZOO_CACHE[key] = ZOO.create(name, fast=self.fast, **kwargs)
        return _ZOO_CACHE[key]

    def resolve_variant(self, spec: ExperimentSpec, variant: str):
        """A hardware variant of the spec's base model.

        ``dq_full`` / ``dq_weight`` resolve through a Defensive Quantization
        zoo entry (independently trained models) -- by default ``dq_objects``,
        overridable per spec via ``params["dq_zoo"]`` so a future digits DQ
        comparison binds its own dataset; everything else converts the spec's
        trained base model through the ``"variant"`` registry.
        """
        if variant.startswith("dq_"):
            models, _ = self.zoo(spec.params.get("dq_zoo", "dq_objects"))
            return models[variant[len("dq_") :]]
        key = (spec.model, self.fast, variant)
        if key not in _VARIANT_CACHE:
            with _MODEL_CACHE_LOCK:
                if key not in _VARIANT_CACHE:
                    base, _split = self.zoo(spec.model)
                    _VARIANT_CACHE[key] = VARIANTS.create(variant, model=base)
        return _VARIANT_CACHE[key]

    def classifier(self, spec: ExperimentSpec, variant: str) -> Classifier:
        """A fresh attack facade over a resolved variant model."""
        return Classifier(self.resolve_variant(spec, variant))

    def split(self, spec: ExperimentSpec):
        """The spec model's train/test split."""
        _model, split = self.zoo(spec.model)
        return split

    # ------------------------------------------------------------- attacks
    def attack_params(self, entry: AttackGridEntry) -> Dict[str, Any]:
        """The entry's constructor parameters, scaled down in fast mode."""
        params = dict(entry.params)
        if self.fast:
            for key, floor in _FAST_PARAM_FLOORS.items():
                if key in params:
                    params[key] = max(floor, int(params[key]) // 4)
        return params

    def attack(self, entry: AttackGridEntry) -> Attack:
        """Instantiate one attack-grid entry through the attack registry."""
        return ATTACKS.create(entry.attack, **self.attack_params(entry))

    def sample_budget(self, spec: ExperimentSpec) -> int:
        """Attack sample budget, shrunk by fast mode."""
        n = int(spec.n_samples)
        return min(n, FAST_MAX_SAMPLES) if self.fast else n

    # ------------------------------------------------------- cell artifacts
    def cell_dependencies(self, cell_kind: str, payload: Dict[str, Any]) -> Tuple[str, ...]:
        """The fingerprint surface keys this cell's digest re-keys on.

        Registered kinds answer from their ``deps=`` declaration; unknown
        kinds (the legacy explicit-closure protocol) fall back to every
        surface -- exactly as conservative as the retired global version.
        """
        from repro.pipeline.fingerprints import conservative_keys
        from repro.registry import RegistryError

        try:
            kind = get_cell_kind(cell_kind)
        except RegistryError:
            return conservative_keys(payload)
        return kind.dependencies(payload)

    def cell_fingerprints(self, cell_kind: str, payload: Dict[str, Any]) -> Dict[str, str]:
        """``{surface key: live fingerprint token}`` for this cell."""
        from repro.pipeline.fingerprints import fingerprint_map

        return fingerprint_map(self.cell_dependencies(cell_kind, payload))

    def cell_digest(self, cell_kind: str, payload: Dict[str, Any]) -> str:
        """The cell's content-derived cache key.

        ``payload`` must fully determine the cell's result: it is hashed
        together with the cell kind, the fast flag and the fingerprint
        tokens of the dependency surfaces the kind declares
        (:mod:`repro.pipeline.fingerprints`) -- so a numerics bump moves
        exactly the digests of the cells that depend on it.  Cells are keyed
        by *content*, not by experiment name, so experiments that share work
        share artifacts; fingerprints are pure functions of module-level
        version constants, so parent and forked worker always agree.
        """
        return canonical_digest(
            {
                "cell_kind": cell_kind,
                "fast": self.fast,
                "deps": self.cell_fingerprints(cell_kind, payload),
                "payload": _jsonable(payload),
            }
        )

    def cell_meta(self, cell_kind: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        """The provenance sidecar written next to the cell's artifact.

        ``content_key`` identifies *what* the cell computes (kind + fast +
        payload, no fingerprints); ``deps`` records the fingerprint tokens
        it was computed under.  Together they let the store answer "is this
        artifact stale, and which dependency moved?" without re-planning
        (``cache stats`` / ``cache gc --stale`` / ``cache explain``).
        """
        from repro.pipeline.fingerprints import content_key

        return {
            "kind": cell_kind,
            "fast": self.fast,
            "content_key": content_key(cell_kind, self.fast, _jsonable(payload)),
            "deps": self.cell_fingerprints(cell_kind, payload),
        }

    def cell_path(self, cell_kind: str, digest: str) -> Path:
        """Where the cell's JSON artifact lives."""
        return self.store.path(cell_kind, digest)

    def read_cell(self, cell_kind: str, payload: Dict[str, Any], digest: str) -> Optional[Any]:
        """The cached cell value, or ``None`` (cache off / absent / corrupt).

        A lock-free optimistic read: atomic publication makes torn artifacts
        impossible, so the warm path costs one ``open`` and no coordination.
        """
        if not self.use_cache:
            return None
        return self.store.get(cell_kind, digest)

    def write_cell(
        self,
        cell_kind: str,
        digest: str,
        value: Any,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Publish a computed cell value atomically (no-op with cache off).

        When the payload is known, a provenance sidecar (:meth:`cell_meta`)
        is published alongside so the artifact's staleness stays checkable.
        """
        if self.use_cache:
            meta = self.cell_meta(cell_kind, payload) if payload is not None else None
            self.store.put(cell_kind, digest, value, meta=meta)

    def compute_cell(self, cell_kind: str, payload: Dict[str, Any]) -> Any:
        """Compute a cell in-process through its registered kind (no cache IO)."""
        return _jsonable(get_cell_kind(cell_kind).compute(self, payload))

    def merge_cell(self, cell_kind: str, payload: Dict[str, Any], shards: List[Any]) -> Any:
        """Fold ordered shard results into the published cell value."""
        return _jsonable(get_cell_kind(cell_kind).merge(payload, shards))

    def _execute_cell(self, cell_kind: str, payload: Dict[str, Any], digest: str, compute=None):
        """Materialise one cell under its writer lease (serial path).

        The store's lease protocol makes concurrent clients sharing the cache
        directory cooperate: whoever claims the lease computes, everyone else
        polls and reads the published artifact lock-free; a writer that dies
        mid-computation is taken over instead of wedging the cell.
        """
        from repro.parallel.plan import CellOutcome

        kind = None if compute is not None else get_cell_kind(cell_kind)
        shards = 1 if kind is None else kind.n_shards(self, payload)
        value = self.read_cell(cell_kind, payload, digest)
        if value is not None:
            return CellOutcome(value, "hit", 0.0, shards)

        def produce_once() -> Any:
            self._log(f"  cell: computing {cell_kind} {digest[:10]}")
            if compute is not None:
                return _jsonable(compute())
            return self.compute_cell(cell_kind, payload)

        def produce() -> Any:
            # bounded retry with backoff -- the serial twin of the pool
            # engine's shard retries.  Transient failures (an injected
            # kernel.build_fail, a flaky IO error) get REPRO_SHARD_RETRIES
            # fresh attempts; a deterministic bug exhausts the budget and
            # surfaces as CellExecutionError with the cell's identity.
            from repro.parallel.engine import CellExecutionError

            budget = shard_retries()
            attempt = 0
            while True:
                try:
                    return produce_once()
                except Exception as exc:
                    if attempt >= budget:
                        raise CellExecutionError(
                            f"{cell_kind} cell {digest[:10]} failed after "
                            f"{attempt + 1} attempt(s): {exc}",
                            kind=cell_kind,
                            digest=digest,
                        ) from exc
                    attempt += 1
                    self.telemetry.count_fault("shard_retries")
                    self._log(
                        f"  cell: {cell_kind} {digest[:10]} failed ({exc}); "
                        f"retry {attempt}/{budget}"
                    )
                    time.sleep(backoff_seconds(attempt))

        start = time.perf_counter()
        if not self.use_cache:
            return CellOutcome(produce(), "computed", time.perf_counter() - start, shards)
        lease = self.store.try_lease(cell_kind, digest)
        if lease is None:  # a foreign writer is computing this cell right now
            value, lease = self.store.wait_for(cell_kind, digest)
            if value is not None:
                return CellOutcome(value, "hit", time.perf_counter() - start, shards)
            # the writer vanished without publishing; we hold its lease now
        try:
            value = self.store.get(cell_kind, digest)
            if value is not None:  # published between the read and the claim
                return CellOutcome(value, "hit", time.perf_counter() - start, shards)
            value = produce()
            self.write_cell(cell_kind, digest, value, payload)
        finally:
            lease.release()
        return CellOutcome(value, "computed", time.perf_counter() - start, shards)

    def cell(
        self,
        cell_kind: str,
        payload: Dict[str, Any],
        compute: Optional[Callable[[], Dict[str, Any]]] = None,
    ) -> Dict[str, Any]:
        """Compute one grid cell, caching its JSON artifact on disk.

        With ``compute=None`` the computation is resolved from the
        ``"cell-kind"`` registry (:mod:`repro.pipeline.cells`); passing an
        explicit closure is the legacy protocol still used by plain-function
        experiment kinds.
        """
        digest = self.cell_digest(cell_kind, payload)
        outcome = self._execute_cell(cell_kind, payload, digest, compute)
        if outcome.status == "hit":
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        return outcome.value


# ------------------------------------------------------------------ helpers
def percentage(value: float) -> str:
    """``0.42 -> "42%"`` (paper-table formatting)."""
    return f"{100.0 * float(value):.0f}%"


def variant_labels(spec: ExperimentSpec, names: Sequence[str]) -> List[str]:
    """Display labels for variant names (spec.params['variant_labels'] wins)."""
    labels = dict(spec.params.get("variant_labels", {}))
    return [labels.get(name, name) for name in names]


def list_experiments() -> List[str]:
    """Catalog experiment names, in registration (paper) order."""
    import repro.pipeline.catalog  # noqa: F401

    return EXPERIMENTS.names()


def get_experiment(name: str) -> ExperimentSpec:
    """Fetch one catalog spec by name."""
    import repro.pipeline.catalog  # noqa: F401

    return EXPERIMENTS.create(name)
