"""The experiment runner: resolves declarative specs and executes them.

The :class:`Runner` is the single execution engine behind every benchmark and
behind ``python -m repro run``.  It

* resolves every string in an :class:`~repro.pipeline.spec.ExperimentSpec`
  through the unified registries (zoo models, hardware variants, attacks,
  experiment kinds),
* memoises trained models in-process (the zoo already caches parameters on
  disk, so across processes only the first run trains),
* caches every grid cell (one attack evaluated against one set of victims) as
  a JSON artifact under the zoo cache directory, keyed by the cell's resolved
  content -- re-running an experiment, or a sibling experiment that shares
  cells (Figures 8/9 and 10/11 share their white-box runs), is a cache hit,
* emits an :class:`ExperimentResult` carrying the paper-style text table plus
  machine-readable metrics, and can persist both as
  ``results/<name>.txt`` / ``results/<name>.json``.

Experiment *kinds* (transferability, blackbox, whitebox, accuracy, ...) are
themselves registry entries, so a new scenario shape can be plugged in without
touching this module (see :mod:`repro.pipeline.handlers`).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.attacks.base import Attack, Classifier
from repro.attacks.registry import ATTACKS
from repro.core.results import format_table
from repro.experiments.zoo import CACHE_DIR, ZOO
from repro.nn.models import VARIANTS
from repro.pipeline.spec import AttackGridEntry, ExperimentSpec, canonical_digest
from repro.registry import registry

#: named experiment specs -- the catalog (namespace ``"experiment"``)
EXPERIMENTS = registry("experiment")

#: execution strategies, one per spec ``kind`` (namespace ``"experiment-kind"``)
EXPERIMENT_KINDS = registry("experiment-kind")

#: bump to invalidate all cached grid-cell artifacts.  Cell keys also include
#: the package version, so a release that changes attack/evaluation behaviour
#: invalidates stale artifacts automatically; within a development cycle, use
#: ``use_cache=False`` / ``--no-cache`` / ``REPRO_PIPELINE_NO_CACHE=1`` after
#: behavioural changes.
CELL_CACHE_VERSION = 1

#: attack sample budget applied by ``--fast``
FAST_MAX_SAMPLES = 4

#: iteration-style attack parameters scaled down by ``--fast`` (value // 4,
#: floored at the minimum that keeps the attack functional)
_FAST_PARAM_FLOORS = {
    "steps": 1,
    "max_iterations": 1,
    "max_rounds": 1,
    "init_trials": 10,
    "num_eval_samples": 4,
}


@dataclass
class ExperimentResult:
    """Structured outcome of one pipeline experiment."""

    name: str
    title: str
    kind: str
    fast: bool
    headers: List[str]
    rows: List[List[Any]]
    metrics: Dict[str, Any]
    spec: Dict[str, Any] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_seconds: float = 0.0

    @property
    def table(self) -> str:
        """The paper-style plain-text table."""
        return format_table(self.headers, self.rows)

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "title": self.title,
            "kind": self.kind,
            "fast": self.fast,
            "headers": self.headers,
            "rows": [[_jsonable(cell) for cell in row] for row in self.rows],
            "metrics": _jsonable(self.metrics),
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "spec": _jsonable(self.spec),
        }

    def write(self, results_dir: Union[str, Path]) -> Tuple[Path, Path]:
        """Persist ``<name>.txt`` (table) and ``<name>.json`` (full result)."""
        results_dir = Path(results_dir)
        results_dir.mkdir(parents=True, exist_ok=True)
        txt_path = results_dir / f"{self.name}.txt"
        json_path = results_dir / f"{self.name}.json"
        txt_path.write_text(self.table + "\n")
        json_path.write_text(json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n")
        return txt_path, json_path


def _jsonable(value: Any) -> Any:
    """Best-effort conversion to JSON-encodable structures."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):  # numpy scalars
        try:
            return value.item()
        except (TypeError, ValueError):
            pass
    if hasattr(value, "tolist"):
        return value.tolist()
    return value


# in-process memoisation shared by all Runner instances: trained models are
# immutable-by-convention here (their parameters are only read), and the zoo's
# disk cache already guarantees cross-process reuse.
_ZOO_CACHE: Dict[Any, Any] = {}
_VARIANT_CACHE: Dict[Any, Any] = {}


def clear_model_caches() -> None:
    """Drop the in-process model memos (tests / memory pressure)."""
    _ZOO_CACHE.clear()
    _VARIANT_CACHE.clear()


class Runner:
    """Executes :class:`ExperimentSpec` instances.

    Parameters
    ----------
    fast:
        Smoke-test mode: fast zoo profiles, ``FAST_MAX_SAMPLES`` attack
        samples, scaled-down attack iteration counts.
    results_dir:
        When set, :meth:`run` writes ``<name>.txt`` and ``<name>.json`` here.
    cache_dir:
        Grid-cell artifact cache location (default: ``<zoo cache>/pipeline``).
    use_cache:
        Disable to force recomputation of every grid cell.
    progress:
        Optional callable receiving human-readable progress lines.
    """

    def __init__(
        self,
        fast: bool = False,
        results_dir: Optional[Union[str, Path]] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        use_cache: bool = True,
        progress: Optional[Callable[[str], None]] = None,
    ):
        self.fast = bool(fast)
        self.results_dir = Path(results_dir) if results_dir is not None else None
        self.cache_dir = Path(cache_dir) if cache_dir is not None else CACHE_DIR / "pipeline"
        if os.environ.get("REPRO_PIPELINE_NO_CACHE", "").lower() not in ("", "0", "false"):
            use_cache = False
        self.use_cache = bool(use_cache)
        self.progress = progress
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------- run
    def run(self, experiment: Union[str, ExperimentSpec]) -> ExperimentResult:
        """Execute one experiment (by catalog name or as an explicit spec)."""
        spec = self._resolve_spec(experiment)
        handler_entry = EXPERIMENT_KINDS.get(spec.kind)
        self._log(f"[{spec.name}] kind={spec.kind} fast={self.fast}")
        hits_before, misses_before = self.cache_hits, self.cache_misses
        start = time.perf_counter()
        headers, rows, metrics = handler_entry.factory(self, spec)
        elapsed = time.perf_counter() - start
        result = ExperimentResult(
            name=spec.name,
            title=spec.title,
            kind=spec.kind,
            fast=self.fast,
            headers=list(headers),
            rows=[list(row) for row in rows],
            metrics=metrics,
            spec=spec.to_dict(),
            cache_hits=self.cache_hits - hits_before,
            cache_misses=self.cache_misses - misses_before,
            elapsed_seconds=elapsed,
        )
        if self.results_dir is not None:
            result.write(self.results_dir)
        return result

    @staticmethod
    def _resolve_spec(experiment: Union[str, ExperimentSpec]) -> ExperimentSpec:
        if isinstance(experiment, ExperimentSpec):
            return experiment
        import repro.pipeline.catalog  # noqa: F401  (populates EXPERIMENTS)

        return EXPERIMENTS.create(experiment)

    def _log(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    # -------------------------------------------------------- model resolution
    def zoo(self, name: str, **kwargs) -> Any:
        """Resolve a trained-model provider, memoised in-process."""
        key = (name, self.fast, tuple(sorted(kwargs.items())))
        if key not in _ZOO_CACHE:
            self._log(f"  zoo: resolving {name} {kwargs or ''}")
            _ZOO_CACHE[key] = ZOO.create(name, fast=self.fast, **kwargs)
        return _ZOO_CACHE[key]

    def resolve_variant(self, spec: ExperimentSpec, variant: str):
        """A hardware variant of the spec's base model.

        ``dq_full`` / ``dq_weight`` resolve through a Defensive Quantization
        zoo entry (independently trained models) -- by default ``dq_objects``,
        overridable per spec via ``params["dq_zoo"]`` so a future digits DQ
        comparison binds its own dataset; everything else converts the spec's
        trained base model through the ``"variant"`` registry.
        """
        if variant.startswith("dq_"):
            models, _ = self.zoo(spec.params.get("dq_zoo", "dq_objects"))
            return models[variant[len("dq_") :]]
        key = (spec.model, self.fast, variant)
        if key not in _VARIANT_CACHE:
            base, _split = self.zoo(spec.model)
            _VARIANT_CACHE[key] = VARIANTS.create(variant, model=base)
        return _VARIANT_CACHE[key]

    def classifier(self, spec: ExperimentSpec, variant: str) -> Classifier:
        """A fresh attack facade over a resolved variant model."""
        return Classifier(self.resolve_variant(spec, variant))

    def split(self, spec: ExperimentSpec):
        """The spec model's train/test split."""
        _model, split = self.zoo(spec.model)
        return split

    # ------------------------------------------------------------- attacks
    def attack_params(self, entry: AttackGridEntry) -> Dict[str, Any]:
        """The entry's constructor parameters, scaled down in fast mode."""
        params = dict(entry.params)
        if self.fast:
            for key, floor in _FAST_PARAM_FLOORS.items():
                if key in params:
                    params[key] = max(floor, int(params[key]) // 4)
        return params

    def attack(self, entry: AttackGridEntry) -> Attack:
        """Instantiate one attack-grid entry through the attack registry."""
        return ATTACKS.create(entry.attack, **self.attack_params(entry))

    def sample_budget(self, spec: ExperimentSpec) -> int:
        """Attack sample budget, shrunk by fast mode."""
        n = int(spec.n_samples)
        return min(n, FAST_MAX_SAMPLES) if self.fast else n

    # ------------------------------------------------------- cell artifacts
    def cell(
        self,
        cell_kind: str,
        payload: Dict[str, Any],
        compute: Callable[[], Dict[str, Any]],
    ) -> Dict[str, Any]:
        """Compute one grid cell, caching its JSON artifact on disk.

        ``payload`` must fully determine the cell's result: it is hashed into
        the cache key together with the cell kind, the fast flag and
        :data:`CELL_CACHE_VERSION`.  Cells are keyed by *content*, not by
        experiment name, so experiments that share work share artifacts.
        """
        import repro

        digest = canonical_digest(
            {
                "cell_kind": cell_kind,
                "fast": self.fast,
                "version": CELL_CACHE_VERSION,
                "package_version": repro.__version__,
                "payload": _jsonable(payload),
            }
        )
        path = self.cache_dir / cell_kind / f"{digest}.json"
        if self.use_cache and path.exists():
            try:
                value = json.loads(path.read_text())
                self.cache_hits += 1
                return value
            except (ValueError, OSError):
                path.unlink()
        self._log(f"  cell: computing {cell_kind} {digest[:10]}")
        value = _jsonable(compute())
        if self.use_cache:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(value, sort_keys=True))
        self.cache_misses += 1
        return value


# ------------------------------------------------------------------ helpers
def percentage(value: float) -> str:
    """``0.42 -> "42%"`` (paper-table formatting)."""
    return f"{100.0 * float(value):.0f}%"


def variant_labels(spec: ExperimentSpec, names: Sequence[str]) -> List[str]:
    """Display labels for variant names (spec.params['variant_labels'] wins)."""
    labels = dict(spec.params.get("variant_labels", {}))
    return [labels.get(name, name) for name in names]


def list_experiments() -> List[str]:
    """Catalog experiment names, in registration (paper) order."""
    import repro.pipeline.catalog  # noqa: F401

    return EXPERIMENTS.names()


def get_experiment(name: str) -> ExperimentSpec:
    """Fetch one catalog spec by name."""
    import repro.pipeline.catalog  # noqa: F401

    return EXPERIMENTS.create(name)
