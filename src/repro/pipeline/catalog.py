"""The experiment catalog: one declarative spec per paper table / figure.

Importing this module populates the ``"experiment"`` registry.  Every spec
mirrors the protocol of the corresponding benchmark harness (and of the
paper's experiment); the benchmarks under ``benchmarks/`` and the
``python -m repro`` CLI both execute these specs through the
:class:`~repro.pipeline.runner.Runner`.
"""

from __future__ import annotations

from typing import Tuple

from repro.pipeline.runner import EXPERIMENTS
from repro.pipeline.spec import AttackGridEntry, ExperimentSpec

#: how many correctly-classified test samples each attack gets to work with.
#: The paper uses larger pools; this keeps a full run in minutes on a laptop
#: while leaving the result *shapes* intact.
N_ATTACK_SAMPLES_DIGITS = 20
N_ATTACK_SAMPLES_OBJECTS = 10
N_WHITEBOX_SAMPLES = 6

#: attack parameterisation for the digit (LeNet) experiments
DIGIT_ATTACKS: Tuple[AttackGridEntry, ...] = (
    AttackGridEntry("FGSM", "fgsm", {"epsilon": 0.1}),
    AttackGridEntry("PGD", "pgd", {"epsilon": 0.1, "steps": 15}),
    AttackGridEntry("JSMA", "jsma", {"theta": 0.8, "gamma": 0.08}),
    AttackGridEntry("C&W", "cw", {"max_iterations": 80}),
    AttackGridEntry("DF", "deepfool", {"max_iterations": 30}),
    AttackGridEntry("LSA", "lsa", {"max_rounds": 12}),
    AttackGridEntry("BA", "boundary", {"max_iterations": 80, "init_trials": 30}),
    AttackGridEntry("HSJ", "hsj", {"max_iterations": 5, "num_eval_samples": 16}),
)

#: attack parameterisation for the object (AlexNet) experiments
OBJECT_ATTACKS: Tuple[AttackGridEntry, ...] = (
    AttackGridEntry("FGSM", "fgsm", {"epsilon": 0.05}),
    AttackGridEntry("PGD", "pgd", {"epsilon": 0.05, "steps": 12}),
    AttackGridEntry("JSMA", "jsma", {"theta": 0.6, "gamma": 0.03}),
    AttackGridEntry("C&W", "cw", {"max_iterations": 60}),
    AttackGridEntry("DF", "deepfool", {"max_iterations": 25}),
    AttackGridEntry("LSA", "lsa", {"max_rounds": 10}),
    AttackGridEntry("BA", "boundary", {"max_iterations": 60, "init_trials": 30}),
    AttackGridEntry("HSJ", "hsj", {"max_iterations": 4, "num_eval_samples": 12}),
)


def _entries(grid: Tuple[AttackGridEntry, ...], *labels: str) -> Tuple[AttackGridEntry, ...]:
    by_label = {entry.label: entry for entry in grid}
    return tuple(by_label[label] for label in labels)


def register_experiment(spec: ExperimentSpec) -> ExperimentSpec:
    """Add a spec to the catalog (``"experiment"`` registry).

    The metadata records a rough *cell count* (attack grid entries x victim
    variants) so tooling -- the CLI listing, the perf benchmark -- can reason
    about an experiment's parallelisable width without resolving it.
    """
    width = max(1, len(spec.attacks)) * max(1, len(spec.variants))
    EXPERIMENTS.register(
        spec.name,
        lambda spec=spec: spec,
        metadata={"title": spec.title, "kind": spec.kind, "cells": width},
    )
    return spec


#: a cheap multi-cell workload for pipeline performance measurements: 12
#: unique, independent grid cells under ``--fast`` (4 white-box + 6
#: transferability + 2 noise profiles), nothing heavier than the fast digit
#: model, and the two white-box experiments share their whole grid --
#: exercising exactly the sharding, dedup and caching paths
#: ``benchmarks/perf_pipeline.py`` times.
FAST_PERF_SUBSET = (
    "fig08_09_whitebox_l2",
    "fig10_11_whitebox_psnr_mse",
    "fig13_bfloat16_noise",
    "table10_heap_transferability",
)


_SPECS = (
    # ------------------------------------------------------------ figures 3-4
    ExperimentSpec(
        name="fig03_axfpm_noise",
        kind="noise_profile",
        title="Fig. 3: Ax-FPM noise profile over operands in [-1, 1]",
        params={
            "multipliers": [{"label": "Ax-FPM", "name": "axfpm"}],
            "n_samples": 200_000,
            "operand_range": (-1.0, 1.0),
        },
    ),
    ExperimentSpec(
        name="fig04_approx_convolution",
        kind="conv_response",
        title="Fig. 4: exact vs approximate convolution response vs similarity",
        params={"multiplier": "axfpm", "kernel_size": 4, "n_points": 6, "seed": 0},
    ),
    # ----------------------------------------------------------- white box
    ExperimentSpec(
        name="fig08_09_whitebox_l2",
        kind="whitebox",
        title="Figs. 8-9: white-box DeepFool / C&W L2 budget, exact vs DA LeNet",
        model="lenet_digits",
        dataset="digits",
        variants=("exact", "da"),
        attacks=(
            AttackGridEntry("DeepFool (Fig. 8)", "deepfool", {"max_iterations": 30}),
            AttackGridEntry("C&W (Fig. 9)", "cw", {"max_iterations": 80}),
        ),
        n_samples=N_WHITEBOX_SAMPLES,
        params={"columns": ("success", "l2"), "variant_labels": {"da": "approximate"}},
    ),
    ExperimentSpec(
        name="fig10_11_whitebox_psnr_mse",
        kind="whitebox",
        title="Figs. 10-11: white-box adversarial MSE / PSNR, exact vs DA LeNet",
        model="lenet_digits",
        dataset="digits",
        variants=("exact", "da"),
        attacks=(
            AttackGridEntry("DeepFool (Fig. 10)", "deepfool", {"max_iterations": 30}),
            AttackGridEntry("C&W (Fig. 11)", "cw", {"max_iterations": 80}),
        ),
        n_samples=N_WHITEBOX_SAMPLES,
        params={"columns": ("mse", "psnr"), "variant_labels": {"da": "approximate"}},
    ),
    # -------------------------------------------------------- figures 12-16
    ExperimentSpec(
        name="fig12_confidence_cdf",
        kind="confidence",
        title="Fig. 12: classification-confidence distribution, exact vs DA",
        model="lenet_digits",
        dataset="digits",
        params={"per_class": 10, "thresholds": (0.5, 0.8, 0.9, 0.95)},
    ),
    ExperimentSpec(
        name="fig13_bfloat16_noise",
        kind="noise_profile",
        title="Fig. 13: bfloat16 vs Ax-FPM noise over operands in [0, 1]",
        params={
            "multipliers": [
                {"label": "Bfloat16", "name": "bfloat16"},
                {"label": "Ax-FPM", "name": "axfpm"},
            ],
            "n_samples": 200_000,
            "operand_range": (0.0, 1.0),
        },
    ),
    ExperimentSpec(
        name="fig15_heap_noise",
        kind="noise_profile",
        title="Fig. 15: Ax-FPM vs HEAP noise over operands in [0, 1]",
        params={
            "multipliers": [
                {"label": "Ax-FPM", "name": "axfpm"},
                {"label": "HEAP", "name": "heap"},
            ],
            "n_samples": 150_000,
            "operand_range": (0.0, 1.0),
        },
    ),
    ExperimentSpec(
        name="fig16_heatmaps",
        kind="feature_maps",
        title="Fig. 16: last-conv feature-map statistics, exact vs Ax-FPM vs HEAP",
        model="lenet_digits",
        dataset="digits",
        variants=("exact", "da", "heap"),
        params={
            "n_images": 16,
            "variant_labels": {"exact": "Exact", "da": "Ax-FPM", "heap": "HEAP"},
        },
    ),
    # ------------------------------------------------------ transferability
    ExperimentSpec(
        name="table02_transferability_mnist",
        kind="transferability",
        title="Table 2: transferability to the DA LeNet on the digit dataset",
        model="lenet_digits",
        dataset="digits",
        source="exact",
        variants=("exact", "da"),
        attacks=DIGIT_ATTACKS,
        n_samples=N_ATTACK_SAMPLES_DIGITS,
        params={"headers": ["Attack method", "Exact LeNet-5", "Approximate LeNet-5"]},
    ),
    ExperimentSpec(
        name="table03_transferability_cifar",
        kind="transferability",
        title="Table 3: transferability to the DA AlexNet on the object dataset",
        model="alexnet_objects",
        dataset="objects",
        source="exact",
        variants=("exact", "da"),
        attacks=OBJECT_ATTACKS,
        n_samples=N_ATTACK_SAMPLES_OBJECTS,
        params={"headers": ["Attack method", "Exact AlexNet", "Approximate AlexNet"]},
    ),
    # ------------------------------------------------------------ black box
    ExperimentSpec(
        name="table04_blackbox_mnist",
        kind="blackbox",
        title="Table 4: black-box (substitute-model) attacks on the digit dataset",
        model="lenet_digits",
        dataset="digits",
        variants=("exact", "da"),
        attacks=_entries(DIGIT_ATTACKS, "FGSM", "PGD", "JSMA", "C&W", "DF", "LSA"),
        n_samples=N_ATTACK_SAMPLES_DIGITS,
        params={
            "substitute": "substitute_digits",
            "headers": ["Attack method", "Exact LeNet-5", "Approximate LeNet-5"],
        },
    ),
    # ------------------------------------------------------------- DA vs DQ
    ExperimentSpec(
        name="table05_da_vs_dq",
        kind="transferability",
        title="Table 5: DA vs Defensive Quantization under transferability",
        model="alexnet_objects",
        dataset="objects",
        source="exact",
        variants=("exact", "da", "dq_full", "dq_weight"),
        attacks=_entries(OBJECT_ATTACKS, "FGSM", "PGD", "C&W"),
        n_samples=N_ATTACK_SAMPLES_OBJECTS,
        params={"headers": ["Attack method", "Exact", "DA", "DQ: Full", "DQ: Weight-only"]},
    ),
    # ------------------------------------------------------------- accuracy
    ExperimentSpec(
        name="table06_accuracy",
        kind="accuracy",
        title="Table 6: clean accuracy of all hardware variants on both datasets",
        params={
            "columns": [
                {
                    "key": "digits",
                    "label": "Digits (MNIST sub.)",
                    "model": "lenet_digits",
                    "variants": ["exact", "da", "bfloat16"],
                    "n_samples": 200,
                },
                {
                    "key": "objects",
                    "label": "Objects (CIFAR-10 sub.)",
                    "model": "alexnet_objects",
                    "variants": ["exact", "da", "dq_full", "dq_weight", "bfloat16"],
                    "n_samples": 150,
                },
            ],
            "rows": [
                {"label": "Float32", "variant": "exact"},
                {"label": "Approximate (DA)", "variant": "da"},
                {"label": "Fully quantized", "variant": "dq_full"},
                {"label": "Weight-only quantized", "variant": "dq_weight"},
                {"label": "Bfloat16", "variant": "bfloat16"},
            ],
        },
    ),
    # ------------------------------------------------------- hardware costs
    ExperimentSpec(
        name="table07_energy_delay",
        kind="energy",
        title="Table 7: normalised energy / delay of the floating point multipliers",
        params={"table": "fpm"},
    ),
    ExperimentSpec(
        name="table08_multiplier_accuracy",
        kind="multiplier_accuracy",
        title="Table 8: multiplier error metrics and LeNet clean accuracy",
        model="lenet_digits",
        dataset="digits",
        n_samples=200,
        params={
            "profile_samples": 100_000,
            "rows": [
                {"label": "Exact multiplier", "variant": "exact", "profile": None},
                {"label": "HEAP", "variant": "heap", "profile": "heap"},
                {"label": "Ax-FPM", "variant": "da", "profile": "axfpm"},
            ],
        },
    ),
    ExperimentSpec(
        name="table09_mantissa_energy",
        kind="energy",
        title="Table 9: normalised energy / delay of the bare mantissa multipliers",
        params={"table": "mantissa"},
    ),
    # ------------------------------------------------------------- ablation
    ExperimentSpec(
        name="table10_heap_transferability",
        kind="transferability",
        title="Table 10: transferability against HEAP-based vs Ax-FPM-based DA",
        model="lenet_digits",
        dataset="digits",
        source="exact",
        variants=("exact", "heap", "da"),
        attacks=_entries(DIGIT_ATTACKS, "FGSM", "PGD", "JSMA", "C&W", "DF", "LSA"),
        n_samples=N_ATTACK_SAMPLES_DIGITS,
        params={"headers": ["Attack", "Exact-based", "HEAP-based", "Ax-FPM-based"]},
    ),
)

for _spec in _SPECS:
    register_experiment(_spec)
del _spec
