"""Unified component registry.

Every pluggable component of the reproduction -- hardware multipliers, adder
cells, attacks, model builders, datasets, trained-model zoo entries, hardware
variants and experiment kinds -- is registered in a namespaced
:class:`Registry`.  The registries give the experiment pipeline
(:mod:`repro.pipeline`) a single resolution mechanism: an
:class:`~repro.pipeline.spec.ExperimentSpec` names components as strings and
the :class:`~repro.pipeline.runner.Runner` instantiates them from here.

The historical entry points (:func:`repro.arith.fpm.get_multiplier`,
:func:`repro.arith.adders.get_cell`, :func:`repro.attacks.create_attack`) are
thin shims over these registries, so existing code keeps working.

Usage::

    from repro.registry import registry

    MULTIPLIERS = registry("multiplier")

    @MULTIPLIERS.register("exact")
    class ExactMultiplier:
        ...

    MULTIPLIERS.create("exact")        # -> ExactMultiplier()
    MULTIPLIERS.names()                # -> ["exact", ...]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional


class RegistryError(KeyError):
    """Unknown component name (subclasses ``KeyError`` for backwards compat)."""


@dataclass
class RegistryEntry:
    """One registered component: a factory plus free-form metadata."""

    name: str
    factory: Callable[..., Any]
    metadata: Dict[str, Any] = field(default_factory=dict)

    def create(self, **kwargs) -> Any:
        return self.factory(**kwargs)


class Registry:
    """A namespaced name -> factory mapping with decorator support.

    Entries keep registration order (``names()`` is deterministic), lookups of
    unknown names raise :class:`RegistryError` listing the available entries,
    and double registration is an error unless ``overwrite=True``.
    """

    def __init__(self, namespace: str):
        self.namespace = str(namespace)
        self._entries: Dict[str, RegistryEntry] = {}

    # ---------------------------------------------------------- registration
    def register(
        self,
        name: Optional[str] = None,
        factory: Optional[Callable[..., Any]] = None,
        *,
        metadata: Optional[Mapping[str, Any]] = None,
        overwrite: bool = False,
    ):
        """Register a component, directly or as a (class/function) decorator.

        Forms::

            REG.register("name", factory)            # direct
            @REG.register("name")                    # decorator with a name
            @REG.register                            # decorator; infers the name

        The inferred name is the object's ``name`` attribute if it is a
        string (the convention of :class:`Multiplier`, :class:`AdderCell` and
        :class:`Attack`), else ``__name__`` lowercased.
        """
        if callable(name) and factory is None:
            # bare decorator: @REG.register
            return self.register(None, name, metadata=metadata, overwrite=overwrite)

        def _do_register(fn: Callable[..., Any]) -> Callable[..., Any]:
            key = name if name is not None else _infer_name(fn)
            if key in self._entries and not overwrite:
                raise ValueError(
                    f"{self.namespace} registry already has an entry named {key!r}"
                )
            self._entries[key] = RegistryEntry(key, fn, dict(metadata or {}))
            return fn

        if factory is not None:
            return _do_register(factory)
        return _do_register

    def unregister(self, name: str) -> None:
        """Remove an entry (mainly for tests of pluggability)."""
        self._entries.pop(name, None)

    # --------------------------------------------------------------- lookups
    def get(self, name: str) -> RegistryEntry:
        """The raw entry for ``name``; raises :class:`RegistryError` if absent."""
        try:
            return self._entries[name]
        except KeyError:
            raise RegistryError(
                f"unknown {self.namespace} {name!r}; available: {self.names()}"
            ) from None

    def create(self, name: str, **kwargs) -> Any:
        """Instantiate the named component with ``kwargs``."""
        return self.get(name).create(**kwargs)

    def metadata(self, name: str) -> Dict[str, Any]:
        """Metadata dict attached at registration time."""
        return self.get(name).metadata

    def names(self) -> List[str]:
        """Registered names, in registration order."""
        return list(self._entries)

    # ------------------------------------------------------------- protocol
    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Registry({self.namespace!r}, {self.names()})"


def _infer_name(fn: Callable[..., Any]) -> str:
    name = getattr(fn, "name", None)
    if isinstance(name, str) and name:
        return name
    return fn.__name__.lower()


# ------------------------------------------------------------------ the hub
_REGISTRIES: Dict[str, Registry] = {}


def registry(namespace: str) -> Registry:
    """The global registry for ``namespace`` (created on first use)."""
    try:
        return _REGISTRIES[namespace]
    except KeyError:
        _REGISTRIES[namespace] = Registry(namespace)
        return _REGISTRIES[namespace]


def namespaces() -> List[str]:
    """All namespaces that have a registry."""
    return sorted(_REGISTRIES)
