"""repro.obs -- stdlib-only observability: tracing, metrics, timelines.

* :data:`TRACER` / :class:`Tracer` (:mod:`repro.obs.trace`): cross-process
  spans behind ``REPRO_TRACE``, spooled per process and merged per run;
* :class:`Histogram` / :class:`MetricsRenderer` (:mod:`repro.obs.metrics`):
  Prometheus text exposition for the service's ``/metrics``;
* :mod:`repro.obs.timeline`: the ``python -m repro trace`` renderer and
  Chrome trace-event (Perfetto) export.
"""

from repro.obs.metrics import Histogram, MetricsRenderer
from repro.obs.trace import TRACER, RunScope, Tracer

__all__ = ["TRACER", "Tracer", "RunScope", "Histogram", "MetricsRenderer"]
