"""Trace rendering behind ``python -m repro trace``.

Accepts either artifact of a traced run:

* a merged ``*.trace.ndjson`` span file (what :meth:`Tracer.end_run` writes,
  one span per line) -- summarised per category/name and per process, with a
  per-cell timeline built from the ``cell`` / ``shard`` spans;
* a ``results/<name>.json`` experiment result -- no spans needed: a
  synthetic sequential timeline is reconstructed from the telemetry's
  per-cell events, so even an untraced run can be inspected after the fact.

Either form exports Chrome trace-event JSON (``--chrome out.json``): open it
at https://ui.perfetto.dev (or ``chrome://tracing``) for the interactive
flame view.  Timestamps are rebased so the trace starts at zero.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple


def load_spans(path: Path) -> Tuple[List[Dict[str, Any]], str]:
    """Spans from either input form; returns ``(spans, source_kind)``.

    ``source_kind`` is ``"trace"`` for real NDJSON spans and ``"result"``
    for a synthetic timeline reconstructed from a result's telemetry.
    """
    path = Path(path)
    text = path.read_text()
    stripped = text.lstrip()
    if stripped.startswith("{") and "\n{" not in stripped.rstrip():
        return _spans_from_result(json.loads(text)), "result"
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if isinstance(record, dict) and "name" in record:
            spans.append(record)
    return spans, "trace"


def _spans_from_result(result: Dict[str, Any]) -> List[Dict[str, Any]]:
    """A sequential per-cell timeline from a result JSON's telemetry."""
    telemetry = result.get("telemetry", {}) or {}
    cells = telemetry.get("cells", []) or []
    spans: List[Dict[str, Any]] = []
    cursor = 0.0
    for cell in cells:
        dur_us = max(float(cell.get("seconds", 0.0)), 0.0) * 1e6
        spans.append(
            {
                "name": "cell",
                "cat": "runner",
                "pid": 0,
                "tid": 0,
                "ts": cursor,
                "dur": dur_us,
                "args": {
                    "kind": cell.get("kind"),
                    "digest": cell.get("digest"),
                    "status": cell.get("status"),
                    "shards": cell.get("shards"),
                    "experiment": cell.get("experiment"),
                },
            }
        )
        cursor += dur_us
    return spans


def chrome_trace(spans: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The spans as Chrome trace-event JSON (complete ``"X"`` events)."""
    base = min((float(s.get("ts", 0.0)) for s in spans), default=0.0)
    events = []
    for span in spans:
        events.append(
            {
                "name": str(span.get("name", "span")),
                "cat": str(span.get("cat", "repro")),
                "ph": "X",
                "ts": round(float(span.get("ts", 0.0)) - base, 1),
                "dur": round(float(span.get("dur", 0.0)), 1),
                "pid": int(span.get("pid", 0)),
                "tid": int(span.get("tid", 0)),
                "args": span.get("args", {}) or {},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _aggregate(spans: List[Dict[str, Any]]) -> List[Tuple[str, str, int, float]]:
    """Per ``(cat, name)``: span count and total self-reported duration (ms)."""
    totals: Dict[Tuple[str, str], List[float]] = {}
    for span in spans:
        key = (str(span.get("cat", "repro")), str(span.get("name", "span")))
        entry = totals.setdefault(key, [0, 0.0])
        entry[0] += 1
        entry[1] += float(span.get("dur", 0.0)) / 1000.0
    rows = [(cat, name, int(n), ms) for (cat, name), (n, ms) in totals.items()]
    rows.sort(key=lambda r: -r[3])
    return rows


def summarize(spans: List[Dict[str, Any]], source: str) -> str:
    """The human-readable report ``python -m repro trace`` prints."""
    if not spans:
        return "no spans (empty trace)"
    pids = sorted({int(s.get("pid", 0)) for s in spans})
    t0 = min(float(s.get("ts", 0.0)) for s in spans)
    t1 = max(float(s.get("ts", 0.0)) + float(s.get("dur", 0.0)) for s in spans)
    lines = [
        f"{len(spans)} spans from {len(pids)} process(es), "
        f"{(t1 - t0) / 1e6:.3f}s wall"
        + (" (synthetic timeline from result telemetry)" if source == "result" else ""),
        "",
        f"  {'category':<10} {'span':<26} {'count':>7} {'total ms':>10}",
    ]
    for cat, name, count, ms in _aggregate(spans):
        lines.append(f"  {cat:<10} {name:<26} {count:>7} {ms:>10.1f}")
    cell_spans = [
        s for s in spans if s.get("name") in ("cell", "shard") and s.get("args")
    ]
    if cell_spans:
        lines += ["", "  cell timeline (offset from trace start):"]
        for span in sorted(cell_spans, key=lambda s: float(s.get("ts", 0.0))):
            args = span.get("args", {})
            offset = (float(span.get("ts", 0.0)) - t0) / 1e6
            dur = float(span.get("dur", 0.0)) / 1e6
            detail = " ".join(
                f"{key}={args[key]}"
                for key in ("kind", "digest", "status", "shard", "experiment")
                if args.get(key) not in (None, "")
            )
            lines.append(
                f"  +{offset:8.3f}s {dur:8.3f}s pid {span.get('pid', 0):>7} "
                f"{span.get('name'):<6} {detail}"
            )
    return "\n".join(lines)
