"""Lightweight cross-process tracing for the pipeline (``REPRO_TRACE``).

Spans are the observability primitive threaded through every execution tier:
the runner wraps each grid cell, the parallel engine wraps each worker
shard, the kernel engine marks its strategy decisions (bake vs shared table
vs reference fallback), attacks mark their phases (victim selection,
forward, gradient sweep, rollout) and the artifact store marks lease
traffic and eviction.  Everything is stdlib and **off by default**: with
``REPRO_TRACE`` unset, :meth:`Tracer.span` returns a shared no-op context
manager -- one attribute read and one ``if`` per call site, cheap enough to
leave in the hottest instrumented paths (per-GEMM-call spans are still
deliberately avoided; strategy decisions are per *layer*, not per call).

Enabled (``REPRO_TRACE=1`` or ``REPRO_TRACE=/path/to/dir``), each process
appends finished spans to its own NDJSON spool file -- one line per span::

    {"name": "shard", "cat": "engine", "pid": 123, "tid": 7,
     "ts": 1722440000000000.0, "dur": 15234.5, "args": {...}}

``ts`` is wall-clock microseconds since the epoch (comparable across
processes), ``dur`` is measured with the monotonic ``perf_counter`` clock
(immune to clock steps).  Per-process spool files mean workers never
contend on a shared file; :meth:`Tracer.end_run` merges every spool of a
run scope into one time-sorted ``*.trace.ndjson`` that the ``trace`` CLI
(:mod:`repro.obs.timeline`) summarises or exports as Chrome trace-event
JSON for Perfetto.

Fork safety: a forked worker inherits the parent tracer's state, but the
spool file handle is re-opened on first emit under a new pid, so parent and
child never interleave writes in one file.  Tracing never raises into the
traced workload -- spool IO failures silently disable emission.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

_FALSEY = ("", "0", "false", "no", "off")


class _NullSpan:
    """The shared disabled span: a no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def __setitem__(self, key: str, value: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    """One live span; finished (and spooled) when its ``with`` block exits."""

    __slots__ = ("_tracer", "name", "cat", "args", "_ts_us", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._ts_us = 0.0
        self._start_ns = 0

    def __enter__(self) -> "_Span":
        self._ts_us = time.time() * 1e6
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur_us = (time.perf_counter_ns() - self._start_ns) / 1000.0
        if exc_type is not None:
            self.args["error"] = exc_type.__name__
        self._tracer._emit(
            {
                "name": self.name,
                "cat": self.cat,
                "pid": os.getpid(),
                "tid": threading.get_ident() % 100000,
                "ts": round(self._ts_us, 1),
                "dur": round(dur_us, 1),
                "args": self.args,
            }
        )
        return False

    def __setitem__(self, key: str, value: Any) -> None:
        """Attach an argument discovered mid-span (e.g. the chosen strategy)."""
        self.args[key] = value


class RunScope:
    """Handle for one run's spool directory (returned by :meth:`Tracer.begin_run`)."""

    __slots__ = ("directory", "label")

    def __init__(self, directory: Path, label: str):
        self.directory = directory
        self.label = label


class Tracer:
    """Process-global span collector (see the module docstring).

    Configuration is lazy: the first :attr:`enabled` read consults
    ``REPRO_TRACE``.  :meth:`configure` overrides (or, with no arguments,
    re-reads) it -- tests and benchmarks use that to toggle tracing without
    touching the environment of the whole process tree.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._configured = False
        self._enabled = False
        self._base_dir: Optional[Path] = None
        self._scope_dir: Optional[Path] = None
        self._file = None
        self._file_pid: Optional[int] = None
        self._counter = 0

    # ------------------------------------------------------------- config
    def _ensure_configured(self) -> None:
        if self._configured:
            return
        with self._lock:
            if self._configured:
                return
            raw = os.environ.get("REPRO_TRACE", "")
            if raw.strip().lower() in _FALSEY:
                self._enabled = False
                self._base_dir = None
            else:
                self._enabled = True
                # a path-like value names the spool/merge directory; a bare
                # truthy flag spools under the system temp directory
                if os.sep in raw or raw.startswith("."):
                    self._base_dir = Path(raw)
                else:
                    self._base_dir = Path(tempfile.gettempdir()) / "repro-trace"
            self._configured = True

    def configure(
        self, enabled: Optional[bool] = None, directory: Optional[Path] = None
    ) -> None:
        """Override (or with no args: re-read ``REPRO_TRACE``) the config."""
        with self._lock:
            self._close_file_locked()
            self._configured = False
            self._scope_dir = None
        if enabled is not None:
            with self._lock:
                self._enabled = bool(enabled)
                self._base_dir = Path(directory) if directory is not None else (
                    Path(tempfile.gettempdir()) / "repro-trace"
                )
                self._configured = True

    @property
    def enabled(self) -> bool:
        self._ensure_configured()
        return self._enabled

    # --------------------------------------------------------------- spans
    def span(self, name: str, cat: str = "repro", **args: Any):
        """A context manager timing one operation; no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, cat, args)

    def _emit(self, record: Dict[str, Any]) -> None:
        try:
            with self._lock:
                handle = self._open_file_locked()
                if handle is None:
                    return
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        except (OSError, ValueError, TypeError):
            pass  # tracing must never take down the traced workload

    def _open_file_locked(self):
        pid = os.getpid()
        if self._file is not None and self._file_pid == pid:
            return self._file
        # first emit in this process (or first after a fork): open a fresh
        # per-pid spool file so processes never share a file handle
        self._file = None
        directory = self._scope_dir or self._base_dir
        if directory is None:
            return None
        directory.mkdir(parents=True, exist_ok=True)
        self._counter += 1
        name = f"spans-{pid}-{self._counter}-{os.urandom(3).hex()}.ndjson"
        # line-buffered: every span line is flushed, so the merge (and any
        # reader of a crashed worker's spool) sees only complete records
        self._file = open(directory / name, "a", buffering=1, encoding="utf-8")
        self._file_pid = pid
        return self._file

    def _close_file_locked(self) -> None:
        if self._file is not None and self._file_pid == os.getpid():
            try:
                self._file.close()
            except OSError:
                pass
        self._file = None
        self._file_pid = None

    # ---------------------------------------------------------- run scopes
    def begin_run(self, label: str = "run") -> Optional[RunScope]:
        """Open a fresh spool directory for one run's spans.

        Returns ``None`` when tracing is disabled *or* another scope is
        already active in this process (concurrent service jobs): the nested
        run's spans then land in the active scope and are merged by its
        owner.
        """
        if not self.enabled:
            return None
        with self._lock:
            if self._scope_dir is not None:
                return None
            self._counter += 1
            directory = (
                self._base_dir
                / f"run-{os.getpid()}-{self._counter}-{os.urandom(3).hex()}"
            )
            try:
                directory.mkdir(parents=True, exist_ok=True)
            except OSError:
                return None
            self._close_file_locked()
            self._scope_dir = directory
        return RunScope(directory, label)

    def worker_spool_dir(self) -> Optional[str]:
        """The directory pool workers should spool into (initargs payload)."""
        if not self.enabled:
            return None
        directory = self._scope_dir or self._base_dir
        return str(directory) if directory is not None else None

    def attach(self, directory: str) -> None:
        """Worker-side: force-enable spooling into the parent's scope dir."""
        with self._lock:
            self._enabled = True
            self._configured = True
            self._scope_dir = Path(directory)
            if self._base_dir is None:
                self._base_dir = self._scope_dir
            self._close_file_locked()

    def end_run(
        self, scope: Optional[RunScope], merged_path: Optional[Path] = None
    ) -> Optional[Dict[str, Any]]:
        """Close ``scope``, merge every spool file, return a trace summary.

        The merged NDJSON (time-sorted across all pids) is written to
        ``merged_path`` (default: ``<base>/<label>.trace.ndjson``); the spool
        directory is removed.  Returns ``{"path", "spans", "pids"}`` or
        ``None`` when ``scope`` is ``None``.
        """
        if scope is None:
            return None
        with self._lock:
            self._close_file_locked()
            if self._scope_dir == scope.directory:
                self._scope_dir = None
        spans = _read_spool_dir(scope.directory)
        spans.sort(key=lambda s: (s.get("ts", 0.0), s.get("pid", 0)))
        if merged_path is None:
            merged_path = scope.directory.parent / f"{scope.label}.trace.ndjson"
        merged_path = Path(merged_path)
        try:
            merged_path.parent.mkdir(parents=True, exist_ok=True)
            with open(merged_path, "w", encoding="utf-8") as handle:
                for span in spans:
                    handle.write(json.dumps(span, separators=(",", ":")) + "\n")
        except OSError:
            return None
        _remove_dir(scope.directory)
        return {
            "path": str(merged_path),
            "spans": len(spans),
            "pids": sorted({int(s.get("pid", 0)) for s in spans}),
        }


def _read_spool_dir(directory: Path) -> List[Dict[str, Any]]:
    spans: List[Dict[str, Any]] = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return spans
    for name in names:
        if not name.endswith(".ndjson"):
            continue
        try:
            with open(directory / name, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue  # a worker died mid-line; keep the rest
                    if isinstance(record, dict):
                        spans.append(record)
        except OSError:
            continue
    return spans


def _remove_dir(directory: Path) -> None:
    try:
        for name in os.listdir(directory):
            try:
                os.unlink(directory / name)
            except OSError:
                pass
        os.rmdir(directory)
    except OSError:
        pass


#: the process-global tracer every instrumented call site imports
TRACER = Tracer()
