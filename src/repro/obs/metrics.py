"""Prometheus text-exposition rendering for the service's ``/metrics``.

Stdlib-only: just enough of the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ for the
service to be scraped -- ``# HELP`` / ``# TYPE`` comments, counters, gauges
and cumulative histograms.  Metric *sources* stay where the data lives (the
job queue, the artifact store, the process counters); this module only
formats.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: request-latency bucket bounds (seconds); chosen for a service whose fast
#: path is sub-millisecond (catalog/health) and whose slow path is a poll
#: against a running job, never the job itself (jobs run on worker threads)
DEFAULT_LATENCY_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)


class Histogram:
    """A fixed-bucket cumulative histogram (Prometheus semantics)."""

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        self.bounds: Tuple[float, ...] = tuple(sorted(float(b) for b in buckets))
        self.counts: List[int] = [0] * (len(self.bounds) + 1)  # last = +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(value)


def _escape_label(value: Any) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(labels: Optional[Dict[str, Any]]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in labels.items())
    return "{" + inner + "}"


class MetricsRenderer:
    """Accumulates metric families and renders the exposition text."""

    def __init__(self) -> None:
        self._lines: List[str] = []

    def _header(self, name: str, kind: str, help_text: str) -> None:
        self._lines.append(f"# HELP {name} {help_text}")
        self._lines.append(f"# TYPE {name} {kind}")

    def counter(
        self,
        name: str,
        help_text: str,
        value: Any = None,
        samples: Optional[Iterable[Tuple[Optional[Dict[str, Any]], Any]]] = None,
    ) -> None:
        self._header(name, "counter", help_text)
        if samples is None:
            samples = [(None, value)]
        for labels, sample in samples:
            self._lines.append(f"{name}{_labels(labels)} {_format_value(sample)}")

    def gauge(
        self,
        name: str,
        help_text: str,
        value: Any = None,
        samples: Optional[Iterable[Tuple[Optional[Dict[str, Any]], Any]]] = None,
    ) -> None:
        self._header(name, "gauge", help_text)
        if samples is None:
            samples = [(None, value)]
        for labels, sample in samples:
            self._lines.append(f"{name}{_labels(labels)} {_format_value(sample)}")

    def histogram(self, name: str, help_text: str, hist: Histogram) -> None:
        self._header(name, "histogram", help_text)
        cumulative = 0
        for bound, count in zip(hist.bounds, hist.counts):
            cumulative += count
            self._lines.append(
                f'{name}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
            )
        self._lines.append(f'{name}_bucket{{le="+Inf"}} {hist.count}')
        self._lines.append(f"{name}_sum {_format_value(hist.total)}")
        self._lines.append(f"{name}_count {hist.count}")

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"
