"""Synthetic handwritten-digit dataset (MNIST substitute).

Each sample is a grayscale rendering of a 5x7 digit glyph with randomised
position, rotation, scale, stroke thickness, blur and pixel noise, normalised
to ``[0, 1]``.  The generator is fully deterministic given a seed.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import ndimage

from repro.datasets.loader import Dataset

# 5x7 glyph bitmaps for the ten digits (rows are strings of '.'/'#')
_GLYPHS = {
    0: ["#####", "#...#", "#...#", "#...#", "#...#", "#...#", "#####"],
    1: ["..#..", ".##..", "..#..", "..#..", "..#..", "..#..", ".###."],
    2: ["#####", "....#", "....#", "#####", "#....", "#....", "#####"],
    3: ["#####", "....#", "....#", ".####", "....#", "....#", "#####"],
    4: ["#...#", "#...#", "#...#", "#####", "....#", "....#", "....#"],
    5: ["#####", "#....", "#....", "#####", "....#", "....#", "#####"],
    6: ["#####", "#....", "#....", "#####", "#...#", "#...#", "#####"],
    7: ["#####", "....#", "...#.", "..#..", "..#..", ".#...", ".#..."],
    8: ["#####", "#...#", "#...#", "#####", "#...#", "#...#", "#####"],
    9: ["#####", "#...#", "#...#", "#####", "....#", "....#", "#####"],
}


def _glyph_array(digit: int) -> np.ndarray:
    rows = _GLYPHS[digit]
    return np.array([[1.0 if ch == "#" else 0.0 for ch in row] for row in rows], dtype=np.float32)


def render_digit(
    digit: int,
    size: int = 16,
    rng: Optional[np.random.Generator] = None,
    jitter: bool = True,
) -> np.ndarray:
    """Render one digit as a ``(1, size, size)`` float32 image in [0, 1].

    Parameters
    ----------
    digit:
        Class label, 0..9.
    size:
        Output image side length (>= 12 recommended).
    jitter:
        Apply random rotation, scaling, translation, thickness and noise.  With
        ``jitter=False`` a canonical centred rendering is produced.
    """
    if digit not in _GLYPHS:
        raise ValueError(f"digit must be in 0..9, got {digit}")
    if size < 10:
        raise ValueError("size must be >= 10")
    rng = rng or np.random.default_rng(0)
    glyph = _glyph_array(digit)

    # scale the 5x7 glyph up to roughly 60-80 % of the canvas height
    target_h = size * (rng.uniform(0.6, 0.8) if jitter else 0.7)
    zoom = target_h / glyph.shape[0]
    zoom_w = zoom * (rng.uniform(0.85, 1.15) if jitter else 1.0)
    rendered = ndimage.zoom(glyph, (zoom, zoom_w), order=1, prefilter=False)
    rendered = np.clip(rendered, 0.0, 1.0)

    if jitter:
        angle = rng.uniform(-12.0, 12.0)
        rendered = ndimage.rotate(rendered, angle, reshape=True, order=1, mode="constant", cval=0.0)
        rendered = np.clip(rendered, 0.0, 1.0)
        if rng.random() < 0.5:
            rendered = ndimage.grey_dilation(rendered, size=(2, 2))

    canvas = np.zeros((size, size), dtype=np.float32)
    gh, gw = rendered.shape
    gh, gw = min(gh, size), min(gw, size)
    rendered = rendered[:gh, :gw]
    max_r = size - gh
    max_c = size - gw
    if jitter:
        r0 = int(rng.integers(0, max_r + 1)) if max_r > 0 else 0
        c0 = int(rng.integers(0, max_c + 1)) if max_c > 0 else 0
    else:
        r0, c0 = max_r // 2, max_c // 2
    canvas[r0 : r0 + gh, c0 : c0 + gw] = rendered

    if jitter:
        canvas = ndimage.gaussian_filter(canvas, sigma=rng.uniform(0.3, 0.7))
        canvas *= rng.uniform(0.85, 1.0)
        canvas += rng.normal(0.0, 0.03, size=canvas.shape)
    else:
        canvas = ndimage.gaussian_filter(canvas, sigma=0.5)
    return np.clip(canvas, 0.0, 1.0).astype(np.float32)[np.newaxis, :, :]


def generate_digits(
    n_samples: int = 2000,
    size: int = 16,
    seed: int = 0,
    jitter: bool = True,
    name: str = "synthetic-digits",
) -> Dataset:
    """Generate a balanced synthetic digit dataset.

    Returns a :class:`~repro.datasets.loader.Dataset` with ``n_samples`` images
    of shape ``(1, size, size)`` and labels 0..9 in round-robin order (shuffle
    happens at split time).
    """
    rng = np.random.default_rng(seed)
    images = np.empty((n_samples, 1, size, size), dtype=np.float32)
    labels = np.empty(n_samples, dtype=np.int64)
    for i in range(n_samples):
        digit = i % 10
        images[i] = render_digit(digit, size=size, rng=rng, jitter=jitter)
        labels[i] = digit
    return Dataset(images, labels, name=name)
