"""Dataset containers and split helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np


@dataclass
class Dataset:
    """A labelled image dataset in ``(N, C, H, W)`` layout with float32 pixels in [0, 1]."""

    images: np.ndarray
    labels: np.ndarray
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=np.float32)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.images.ndim != 4:
            raise ValueError("images must have shape (N, C, H, W)")
        if len(self.images) != len(self.labels):
            raise ValueError("images and labels must have the same length")

    def __len__(self) -> int:
        return len(self.images)

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self.labels) else 0

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        return tuple(self.images.shape[1:])  # type: ignore[return-value]

    def subset(self, indices: np.ndarray, name: Optional[str] = None) -> "Dataset":
        """Select a subset of samples by index."""
        return Dataset(self.images[indices], self.labels[indices], name or self.name)

    def sample_per_class(
        self, per_class: int, rng: Optional[np.random.Generator] = None
    ) -> "Dataset":
        """Draw ``per_class`` random samples from each class (Figure 12 style selection)."""
        rng = rng or np.random.default_rng(0)
        chosen = []
        for label in np.unique(self.labels):
            candidates = np.flatnonzero(self.labels == label)
            take = min(per_class, len(candidates))
            chosen.append(rng.choice(candidates, size=take, replace=False))
        indices = np.concatenate(chosen) if chosen else np.array([], dtype=int)
        return self.subset(indices, name=f"{self.name}_balanced")

    def batches(
        self, batch_size: int, shuffle: bool = False, rng: Optional[np.random.Generator] = None
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Iterate over minibatches."""
        indices = np.arange(len(self))
        if shuffle:
            rng = rng or np.random.default_rng(0)
            rng.shuffle(indices)
        for start in range(0, len(self), batch_size):
            batch = indices[start : start + batch_size]
            yield self.images[batch], self.labels[batch]


@dataclass
class DataSplit:
    """A train/test pair of datasets."""

    train: Dataset
    test: Dataset


def train_test_split(
    dataset: Dataset, test_fraction: float = 0.2, rng: Optional[np.random.Generator] = None
) -> DataSplit:
    """Shuffle and split a dataset into train and test partitions."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = rng or np.random.default_rng(0)
    indices = rng.permutation(len(dataset))
    n_test = max(1, int(round(len(dataset) * test_fraction)))
    test_idx = indices[:n_test]
    train_idx = indices[n_test:]
    return DataSplit(
        train=dataset.subset(train_idx, name=f"{dataset.name}_train"),
        test=dataset.subset(test_idx, name=f"{dataset.name}_test"),
    )
