"""Synthetic 3-channel object dataset (CIFAR-10 substitute).

Ten procedurally generated classes of coloured shapes and textures on noisy
backgrounds.  Classes differ in global structure (shape vs. texture vs.
gradient) so that a small AlexNet-style CNN learns genuinely convolutional
features, which is what the Defensive Approximation experiments need.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import ndimage

from repro.datasets.loader import Dataset

OBJECT_CLASS_NAMES = (
    "disk",
    "square",
    "triangle",
    "ring",
    "cross",
    "h-stripes",
    "v-stripes",
    "checker",
    "gradient",
    "blobs",
)


def _coordinate_grids(size: int) -> Tuple[np.ndarray, np.ndarray]:
    axis = np.linspace(-1.0, 1.0, size, dtype=np.float32)
    yy, xx = np.meshgrid(axis, axis, indexing="ij")
    return yy, xx


def _shape_mask(class_id: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Binary-ish mask of the foreground structure for the given class."""
    yy, xx = _coordinate_grids(size)
    cy, cx = rng.uniform(-0.25, 0.25, size=2)
    scale = rng.uniform(0.45, 0.7)
    y = (yy - cy) / scale
    x = (xx - cx) / scale
    r = np.sqrt(x ** 2 + y ** 2)

    name = OBJECT_CLASS_NAMES[class_id]
    if name == "disk":
        mask = (r < 1.0).astype(np.float32)
    elif name == "square":
        mask = ((np.abs(x) < 0.9) & (np.abs(y) < 0.9)).astype(np.float32)
    elif name == "triangle":
        mask = ((y > -0.8) & (y < 0.9) & (np.abs(x) < (0.9 - 0.5 * (y + 0.8)))).astype(np.float32)
    elif name == "ring":
        mask = ((r < 1.0) & (r > 0.55)).astype(np.float32)
    elif name == "cross":
        mask = ((np.abs(x) < 0.3) | (np.abs(y) < 0.3)).astype(np.float32)
        mask *= ((np.abs(x) < 1.0) & (np.abs(y) < 1.0)).astype(np.float32)
    elif name == "h-stripes":
        freq = rng.uniform(3.0, 5.0)
        mask = (np.sin(freq * np.pi * yy) > 0).astype(np.float32)
    elif name == "v-stripes":
        freq = rng.uniform(3.0, 5.0)
        mask = (np.sin(freq * np.pi * xx) > 0).astype(np.float32)
    elif name == "checker":
        freq = rng.uniform(2.0, 4.0)
        mask = ((np.sin(freq * np.pi * xx) > 0) ^ (np.sin(freq * np.pi * yy) > 0)).astype(np.float32)
    elif name == "gradient":
        angle = rng.uniform(0, 2 * np.pi)
        mask = 0.5 + 0.5 * (np.cos(angle) * xx + np.sin(angle) * yy)
        mask = np.clip(mask, 0.0, 1.0)
    elif name == "blobs":
        mask = np.zeros((size, size), dtype=np.float32)
        for _ in range(rng.integers(3, 6)):
            by, bx = rng.uniform(-0.7, 0.7, size=2)
            br = rng.uniform(0.15, 0.3)
            mask += np.exp(-(((yy - by) ** 2 + (xx - bx) ** 2) / (2 * br ** 2)))
        mask = np.clip(mask, 0.0, 1.0)
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown class id {class_id}")
    return mask


def render_object(
    class_id: int, size: int = 32, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Render one sample of ``class_id`` as a ``(3, size, size)`` float32 image."""
    if not 0 <= class_id < len(OBJECT_CLASS_NAMES):
        raise ValueError(f"class_id must be in 0..{len(OBJECT_CLASS_NAMES) - 1}")
    if size < 12:
        raise ValueError("size must be >= 12")
    rng = rng or np.random.default_rng(0)

    mask = _shape_mask(class_id, size, rng)
    mask = ndimage.gaussian_filter(mask, sigma=rng.uniform(0.4, 0.9))

    fg_color = rng.uniform(0.55, 1.0, size=3).astype(np.float32)
    bg_color = rng.uniform(0.0, 0.35, size=3).astype(np.float32)
    image = np.empty((3, size, size), dtype=np.float32)
    for ch in range(3):
        image[ch] = bg_color[ch] + (fg_color[ch] - bg_color[ch]) * mask
    image += rng.normal(0.0, 0.04, size=image.shape)
    return np.clip(image, 0.0, 1.0).astype(np.float32)


def generate_objects(
    n_samples: int = 2000,
    size: int = 32,
    seed: int = 0,
    name: str = "synthetic-objects",
) -> Dataset:
    """Generate a balanced synthetic object dataset with 10 classes."""
    rng = np.random.default_rng(seed)
    images = np.empty((n_samples, 3, size, size), dtype=np.float32)
    labels = np.empty(n_samples, dtype=np.int64)
    for i in range(n_samples):
        class_id = i % len(OBJECT_CLASS_NAMES)
        images[i] = render_object(class_id, size=size, rng=rng)
        labels[i] = class_id
    return Dataset(images, labels, name=name)
