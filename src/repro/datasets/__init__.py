"""Synthetic image classification datasets.

The paper evaluates on MNIST (LeNet-5) and CIFAR-10 (AlexNet).  Neither corpus
is available in this offline environment, so this package procedurally
generates two datasets with the same structure -- 10-class image
classification, pixel intensities normalised to ``[0, 1]``:

* :mod:`repro.datasets.digits` -- grayscale digit glyphs with random geometric
  jitter, stroke-thickness variation, blur and noise (the MNIST substitute).
* :mod:`repro.datasets.objects` -- 3-channel procedural shape/texture images
  (the CIFAR-10 substitute).

The defense under study depends only on convolution/filter correlation
statistics, not on the particular natural-image corpus, so these substitutes
exercise the same code paths end to end (see DESIGN.md, "Substitutions").
"""

#: numerics version of the procedural dataset generators.  Bump when the
#: generated pixels change (glyph rendering, jitter distributions, split
#: logic); cells that consume dataset samples declare a ``"datasets"``
#: dependency and re-key on it.
DATASET_NUMERICS_VERSION = 1

from repro.datasets.digits import generate_digits, render_digit
from repro.datasets.loader import Dataset, DataSplit, train_test_split
from repro.datasets.objects import OBJECT_CLASS_NAMES, generate_objects, render_object
from repro.registry import registry

#: unified registry of dataset generators (namespace ``"dataset"``)
DATASETS = registry("dataset")
DATASETS.register(
    "digits", generate_digits, metadata={"summary": "grayscale digit glyphs (MNIST substitute)"}
)
DATASETS.register(
    "objects",
    generate_objects,
    metadata={"summary": "3-channel shape/texture images (CIFAR-10 substitute)"},
)

__all__ = [
    "DATASETS",
    "Dataset",
    "DataSplit",
    "train_test_split",
    "generate_digits",
    "render_digit",
    "generate_objects",
    "render_object",
    "OBJECT_CLASS_NAMES",
]
