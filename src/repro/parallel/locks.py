"""Advisory file locks and atomic file writes.

Every artifact the pipeline persists -- grid-cell JSON, zoo ``.npz``
parameter files, ``results/<name>.{txt,json}`` -- can be written concurrently
by pool workers of one run *and* by independent CLI invocations sharing the
same cache directory.  Two primitives keep that safe:

* :func:`atomic_path` / :func:`atomic_write_text`: write to a same-directory
  ``*.tmp`` file and ``os.replace`` it into place, so readers only ever see
  absent or complete files (never truncated ones), independent of any lock.
* :class:`FileLock`: a ``flock(2)``-based advisory lock.  Holding the lock for
  a cell digest (or a zoo cache file) while computing it means a second
  process wanting the same artifact blocks until the first finishes, then
  finds the artifact on disk instead of recomputing it.  ``flock`` locks die
  with their process, so a crashed run never leaves a stale lock behind.

On platforms without ``fcntl`` the lock degrades to a no-op: atomic writes
still prevent corruption, only cross-process work deduplication is lost.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Optional, Union

try:  # POSIX advisory locks
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]


class LockUnavailable(Exception):
    """Raised by :meth:`FileLock.acquire` (non-blocking) when already held."""


class FileLock:
    """Advisory exclusive lock on a path, usable as a context manager.

    Parameters
    ----------
    path:
        The lock file (created if missing; its content is irrelevant).
    blocking:
        Default acquisition mode of the context-manager form.
    """

    def __init__(self, path: Union[str, Path], blocking: bool = True):
        self.path = Path(path)
        self.blocking = bool(blocking)
        self._fd: Optional[int] = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self, blocking: Optional[bool] = None) -> "FileLock":
        """Take the lock; raises :class:`LockUnavailable` when non-blocking fails."""
        if self._fd is not None:
            return self
        blocking = self.blocking if blocking is None else blocking
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            self._fd = fd
            return self
        flags = fcntl.LOCK_EX | (0 if blocking else fcntl.LOCK_NB)
        try:
            fcntl.flock(fd, flags)
        except OSError:
            os.close(fd)
            raise LockUnavailable(str(self.path)) from None
        self._fd = fd
        return self

    def release(self) -> None:
        if self._fd is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
        finally:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()


@contextmanager
def atomic_path(path: Union[str, Path], suffix: str = "") -> Iterator[Path]:
    """Yield a same-directory temporary path, then ``os.replace`` it onto ``path``.

    ``suffix`` is appended to the temporary name (``np.savez`` appends
    ``.npz`` unless the target already ends with it, so ``.npz`` writers pass
    ``suffix=".npz"``).  On error the temporary file is removed and nothing is
    published.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp{suffix}"
    try:
        yield tmp
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Atomically replace ``path`` with ``text``."""
    with atomic_path(path) as tmp:
        tmp.write_text(text)


def atomic_write_json(path: Union[str, Path], payload: Any, **dump_kwargs) -> None:
    """Atomically replace ``path`` with the JSON encoding of ``payload``."""
    atomic_write_text(path, json.dumps(payload, **dump_kwargs))
