"""``repro.parallel`` -- sharded multi-process execution for the pipeline.

The subsystem sits between spec resolution and execution:

* :mod:`repro.parallel.plan` -- resolves experiments into a deduplicated
  graph of :class:`~repro.parallel.plan.CellTask` (sibling experiments that
  share cells compute each cell exactly once per run);
* :mod:`repro.parallel.sharding` -- decomposition of a cell over victim
  examples; attacks draw per-example ``np.random.SeedSequence`` streams
  keyed by global victim index, so ``--jobs N`` *and* any shard size are
  bit-for-bit ``--jobs 1``;
* :mod:`repro.parallel.engine` -- the process pool that executes shards and
  merges them, with pre-fork model warm-up and per-process worker runners;
* :mod:`repro.parallel.locks` -- advisory file locks and atomic tmp+rename
  writes that make the cell cache and the zoo ``.npz`` cache safe under
  concurrent workers and concurrent CLI invocations;
* :mod:`repro.parallel.telemetry` -- per-run counters and the per-cell
  progress events the CLI surfaces.

Entry point: ``Runner(jobs=N)`` / ``python -m repro run <experiment> --jobs N``
(the engine itself is an implementation detail behind the runner).

This package ``__init__`` only imports the stdlib-level pieces (locks,
telemetry); everything touching :mod:`repro.pipeline` -- sharding, plan,
engine -- is exposed lazily, because the pipeline (and the zoo it trains)
imports the lock primitives from here and the dependency must stay one-way at
import time.
"""

from repro.parallel.locks import (
    FileLock,
    LockUnavailable,
    atomic_path,
    atomic_write_json,
    atomic_write_text,
)
from repro.parallel.telemetry import CellEvent, RunTelemetry

__all__ = [
    "FileLock",
    "LockUnavailable",
    "atomic_path",
    "atomic_write_json",
    "atomic_write_text",
    "CellEvent",
    "RunTelemetry",
    # lazy (see __getattr__)
    "DEFAULT_SHARD_SIZE",
    "attack_shard_size",
    "cell_seed",
    "cell_seed_sequence",
    "n_shards",
    "resolve_jobs",
    "shard_bounds",
    "ParallelEngine",
    "CellExecutionError",
    "CellTask",
    "CellOutcome",
    "ExperimentPlan",
    "ExecutionPlan",
    "build_plan",
]

_LAZY = {
    "DEFAULT_SHARD_SIZE": "repro.parallel.sharding",
    "attack_shard_size": "repro.parallel.sharding",
    "cell_seed": "repro.parallel.sharding",
    "cell_seed_sequence": "repro.parallel.sharding",
    "n_shards": "repro.parallel.sharding",
    "resolve_jobs": "repro.parallel.sharding",
    "shard_bounds": "repro.parallel.sharding",
    "ParallelEngine": "repro.parallel.engine",
    "CellExecutionError": "repro.parallel.engine",
    "CellTask": "repro.parallel.plan",
    "CellOutcome": "repro.parallel.plan",
    "ExperimentPlan": "repro.parallel.plan",
    "ExecutionPlan": "repro.parallel.plan",
    "build_plan": "repro.parallel.plan",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
