"""Deterministic sharding of a cell's victim samples.

The expensive attack-evaluation cells (transferability / blackbox / whitebox)
are decomposed into fixed-size *shards* of victim examples.  Since the
batched attack engine, the shard size is **pure execution tuning**: attacks
draw per-example RNG streams keyed by each victim's *global* index
(``SeedSequence(entropy=cell_seed(payload), spawn_key=(victim_index,))``,
see :class:`repro.attacks.base.Attack`), and the model facade is
batch-invariant, so any shard size -- like any ``--jobs`` value -- produces
bit-for-bit identical cell values.  The shard size is therefore *not* part
of the cell payload/cache key; pick it for throughput
(``REPRO_ATTACK_SHARD_SIZE``), not for reproducibility.

Historically (PR 2) each shard re-seeded its attack from the payload digest
and the shard index; that made ``--jobs N`` match ``--jobs 1`` but baked the
shard size into the results.  The per-example spawning beneath
:func:`cell_seed` replaces that scheme.
"""

from __future__ import annotations

import math
import os
from typing import Any, Tuple

import numpy as np


def resolve_jobs(jobs: Any) -> int:
    """Normalise a ``--jobs`` value: ``"auto"``/``None``/``0`` -> CPU count.

    The CPU count honours scheduler affinity (cgroup/container limits) where
    the platform exposes it.
    """
    if jobs in (None, "auto", "", 0, "0"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux
            return max(1, os.cpu_count() or 1)
    return max(1, int(jobs))

#: default victim examples per shard of an attack-evaluation cell.  Raised
#: from 4 to 8 when the attacks became batched active-set rollouts: a bigger
#: shard now amortises per-call model overhead instead of just lowering the
#: shard count.  Results are invariant to the value (see module docstring).
DEFAULT_SHARD_SIZE = 8


def attack_shard_size() -> int:
    """The configured attack shard size (env ``REPRO_ATTACK_SHARD_SIZE``).

    Execution policy only -- results are bit-for-bit identical for every
    value.  Smaller shards expose more parallelism to ``--jobs``; larger
    shards amortise per-call model overhead harder within each worker.
    Invalid or unset values fall back to :data:`DEFAULT_SHARD_SIZE`.
    """
    raw = os.environ.get("REPRO_ATTACK_SHARD_SIZE", "")
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_SHARD_SIZE
    return value if value >= 1 else DEFAULT_SHARD_SIZE


def n_shards(n_samples: int, shard_size: int) -> int:
    """Number of shards covering a budget of ``n_samples`` victim examples.

    Computed from the *budget*, not from how many samples survive the
    correctly-classified filter, so the shard layout is known at plan time
    without resolving any model.  Trailing shards may come up empty; merges
    treat them as zero-sample contributions.
    """
    if n_samples <= 0:
        return 1
    return max(1, math.ceil(n_samples / max(1, int(shard_size))))


def shard_bounds(n_available: int, shard_size: int, shard_index: int) -> Tuple[int, int]:
    """Half-open ``[lo, hi)`` sample range of one shard, clipped to availability."""
    size = max(1, int(shard_size))
    lo = min(n_available, shard_index * size)
    hi = min(n_available, lo + size) if lo < n_available else lo
    return lo, hi


def cell_seed_sequence(payload: dict) -> np.random.SeedSequence:
    """The cell-level RNG root: a pure function of the payload, shard-free.

    Attacks spawn per-example streams beneath it
    (``spawn_key=(victim_index,)``), so the stream of victim ``j`` is the
    same whichever shard -- of whatever size -- processes it.
    """
    # imported lazily: this module must stay importable while repro.pipeline
    # (whose spec module owns the canonical digest) is still initialising
    from repro.pipeline.spec import canonical_digest

    return np.random.SeedSequence(entropy=int(canonical_digest(payload)[:32], 16))


def cell_seed(payload: dict) -> int:
    """Integer entropy for a cell's attack (fed to the attack's ``seed=``)."""
    return int(cell_seed_sequence(payload).generate_state(1)[0])
