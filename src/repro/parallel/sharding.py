"""Deterministic sharding of a cell's victim samples.

The expensive attack-evaluation cells (transferability / blackbox / whitebox)
are decomposed into fixed-size *shards* of victim examples.  The shard layout
and every shard's RNG seed depend only on the cell payload -- never on how
many worker processes execute them -- so running the shards serially
(``--jobs 1``) or spread over a pool (``--jobs N``) is bit-for-bit identical:
the sharded decomposition *is* the canonical definition of the cell.

Per-shard RNG seeds are spawned from the payload digest with
``np.random.SeedSequence``: shard ``i`` uses ``SeedSequence(entropy,
spawn_key=(i,))``, which is exactly the ``i``-th child
``SeedSequence(entropy).spawn(n)`` would produce -- but constructible without
knowing ``n``, so a shard's seed never depends on its siblings.
"""

from __future__ import annotations

import math
import os
from typing import Any, Tuple

import numpy as np


def resolve_jobs(jobs: Any) -> int:
    """Normalise a ``--jobs`` value: ``"auto"``/``None``/``0`` -> CPU count.

    The CPU count honours scheduler affinity (cgroup/container limits) where
    the platform exposes it.
    """
    if jobs in (None, "auto", "", 0, "0"):
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux
            return max(1, os.cpu_count() or 1)
    return max(1, int(jobs))

#: victim examples per shard of an attack-evaluation cell.  Part of the cell
#: protocol: changing it changes shard RNG streams (and therefore stochastic
#: attack results), which is why the value is recorded in each cell payload.
DEFAULT_SHARD_SIZE = 4


def n_shards(n_samples: int, shard_size: int) -> int:
    """Number of shards covering a budget of ``n_samples`` victim examples.

    Computed from the *budget*, not from how many samples survive the
    correctly-classified filter, so the shard layout is known at plan time
    without resolving any model.  Trailing shards may come up empty; merges
    treat them as zero-sample contributions.
    """
    if n_samples <= 0:
        return 1
    return max(1, math.ceil(n_samples / max(1, int(shard_size))))


def shard_bounds(n_available: int, shard_size: int, shard_index: int) -> Tuple[int, int]:
    """Half-open ``[lo, hi)`` sample range of one shard, clipped to availability."""
    size = max(1, int(shard_size))
    lo = min(n_available, shard_index * size)
    hi = min(n_available, lo + size) if lo < n_available else lo
    return lo, hi


def shard_seed_sequence(payload: dict, shard_index: int) -> np.random.SeedSequence:
    """The RNG root for shard ``shard_index`` of the cell described by ``payload``.

    The entropy is derived from the canonical payload digest, so equal cells
    get equal streams and any payload change (attack params, sample budget,
    shard size) re-randomises every shard.
    """
    # imported lazily: this module must stay importable while repro.pipeline
    # (whose spec module owns the canonical digest) is still initialising
    from repro.pipeline.spec import canonical_digest

    entropy = int(canonical_digest(payload)[:32], 16)
    return np.random.SeedSequence(entropy=entropy, spawn_key=(int(shard_index),))


def shard_seed(payload: dict, shard_index: int) -> int:
    """A 32-bit integer seed for shard ``shard_index`` (fed to attack ``seed=``)."""
    return int(shard_seed_sequence(payload, shard_index).generate_state(1)[0])
