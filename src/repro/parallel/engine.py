"""The process-pool execution engine behind ``Runner(jobs=N)``.

Planned cell tasks (see :mod:`repro.parallel.plan`) are expanded into their
shard subtasks and scheduled onto a ``ProcessPoolExecutor``; the parent
process merges each cell's ordered shard results, writes the artifact
atomically and streams a progress event.  Because shard decomposition and
per-shard RNG seeding are pure functions of cell content
(:mod:`repro.parallel.sharding`), the pool produces bit-for-bit the same
values as the serial path.

Coordination with *other* processes -- pool workers of a second CLI
invocation or service job sharing the cache directory -- uses the writer
leases of :mod:`repro.store`: each cell is computed under its digest lease
(refreshed as shards complete, so long cells never look abandoned), and a
cell being computed elsewhere is *deferred* here and collected from the
cache once the foreign writer publishes it, instead of being recomputed.  A
foreign writer that crashes mid-cell loses its lease and the cell is
computed here -- a wedged cache cannot outlive its writer.

Fault tolerance (see ``docs/faults.md``): each shard runs under an optional
wall-clock budget (``REPRO_SHARD_TIMEOUT``) and a bounded retry budget
(``REPRO_SHARD_RETRIES``).  A worker that dies (segfault, OOM kill,
injected ``worker.crash``) breaks the pool -- the engine respawns it and
resubmits the lost shards with exponential backoff; a worker that wedges
(injected ``shard.hang``, a stuck syscall) blows its shard's deadline, and
since a running future cannot be cancelled the pool is killed outright and
rebuilt.  After :data:`~repro.faults.policy.POOL_RESPAWN_LIMIT` rebuilds
the engine stops trusting process isolation and degrades to computing the
remaining shards serially in the parent -- slower, but the run completes
with identical bits.  Every recovery action lands in the run telemetry's
``faults`` counters, so a chaos run can *prove* what it survived.

Worker processes are started with an initialiser that imports the pipeline
registries and builds a per-process serial :class:`Runner`; zoo models and
multiplier LUTs are resolved once per process (and, under the default
``fork`` start method, models the parent warmed up before the pool was
created are inherited copy-on-write and never rebuilt at all).

Start-method caveat: ``fork`` also carries *runtime* registry registrations
(custom zoo entries, specs registered from a script) into the workers.  On
platforms without ``fork`` the ``spawn`` fallback re-imports the package
fresh, so only registrations performed at import time (the catalog, or
modules imported by your entry point) are visible to workers -- register
custom components in an importable module, or run with ``jobs=1``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from time import monotonic, perf_counter
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.arith.kernels import KERNEL_STATS
from repro.attacks.base import QUERY_STATS
from repro.faults import FAULTS, POOL_RESPAWN_LIMIT, backoff_seconds, shard_retries, shard_timeout
from repro.obs import TRACER
from repro.parallel.plan import CellOutcome, CellTask
from repro.parallel.telemetry import DIGEST_WIDTH
from repro.pipeline.cells import get_cell_kind
from repro.store import Lease

#: called with (task, outcome) as each cell completes
OnCell = Callable[[CellTask, CellOutcome], None]


class CellExecutionError(RuntimeError):
    """A cell failed permanently (retry budget exhausted or fatal error).

    Carries the failing cell's identity -- kind, digest, shard index and
    owning experiment -- so the CLI and the service can report *which* cell
    of *which* experiment died without parsing the message.
    """

    def __init__(
        self,
        message: str,
        kind: str = "",
        digest: str = "",
        shard: Optional[int] = None,
        owner: str = "",
    ):
        super().__init__(message)
        self.kind = kind
        self.digest = digest
        self.shard = shard
        self.owner = owner


# ----------------------------------------------------------- worker side
_WORKER_RUNNER = None


def _worker_init(
    fast: bool,
    cache_dir: str,
    use_cache: bool,
    shard_size: int,
    trace_dir: Optional[str] = None,
) -> None:
    """Build the per-process runner; resolves registries exactly once.

    ``trace_dir`` (set when the parent run is traced) points the worker's
    tracer at the run's spool directory, so worker spans land next to the
    parent's and are merged at run end.
    """
    global _WORKER_RUNNER
    import repro.pipeline  # populates kind/cell/zoo/attack registries

    if trace_dir is not None:
        TRACER.attach(trace_dir)
    _WORKER_RUNNER = repro.pipeline.Runner(
        fast=fast, cache_dir=cache_dir, use_cache=use_cache, jobs=1, shard_size=shard_size
    )


def _run_shard(
    kind_name: str,
    payload: Dict[str, Any],
    shard_index: int,
    digest: str = "",
    attempt: int = 0,
) -> Tuple[Any, float, Dict[str, Any]]:
    """Compute one shard in a worker; returns ``(value, seconds, stats)``.

    ``stats`` carries the worker's pid and the shard's kernel/query counter
    deltas -- the parent folds them into :class:`RunTelemetry`, closing the
    per-process counter gap of parallel runs.

    The ``worker.crash`` / ``shard.hang`` injection points live here, keyed
    ``digest:shard:attempt`` -- folding the attempt in is what lets a chaos
    run converge: the doomed first attempt dies deterministically, its retry
    draws a fresh coin.
    """
    fault_key = f"{digest}:{shard_index}:{attempt}"
    FAULTS.maybe_crash(fault_key)
    FAULTS.maybe_hang(fault_key)
    kernel_mark = KERNEL_STATS.snapshot()
    query_mark = QUERY_STATS.snapshot()
    start = perf_counter()
    with TRACER.span(
        "shard",
        cat="engine",
        kind=kind_name,
        digest=digest[:DIGEST_WIDTH],
        shard=shard_index,
    ):
        value = get_cell_kind(kind_name).compute_shard(_WORKER_RUNNER, payload, shard_index)
    stats = {
        "pid": os.getpid(),
        "kernels": KERNEL_STATS.delta(kernel_mark),
        "queries": QUERY_STATS.delta(query_mark),
    }
    return value, perf_counter() - start, stats


@dataclass
class _ShardRun:
    """One shard attempt in flight: identity, retry count, wall deadline."""

    task: CellTask
    index: int
    attempt: int = 0
    deadline: Optional[float] = None  # monotonic, None when untimed


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even when some of its workers are wedged.

    ``shutdown()`` alone would join workers that will never return from a
    hung shard, so the processes are terminated first (escalating to kill)
    and only then is the executor's bookkeeping shut down.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    for proc in processes:
        proc.terminate()
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in processes:
        proc.join(timeout=1.0)
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=1.0)


# ----------------------------------------------------------- parent side
class ParallelEngine:
    """Executes a run's unique cell tasks on ``runner.jobs`` worker processes."""

    def __init__(self, runner):
        self.runner = runner

    def execute(self, tasks: List[CellTask], on_cell: Optional[OnCell] = None) -> Dict[str, CellOutcome]:
        """Materialise every task; returns ``digest -> CellOutcome``."""
        on_cell = on_cell or (lambda task, outcome: None)
        outcomes: Dict[str, CellOutcome] = {}

        def finish(task: CellTask, outcome: CellOutcome) -> None:
            outcomes[task.digest] = outcome
            on_cell(task, outcome)

        pending: List[CellTask] = []
        for task in tasks:
            value = self.runner.read_cell(task.kind, task.payload, task.digest)
            if value is not None:
                finish(task, CellOutcome(value, "hit", 0.0, task.n_shards))
            else:
                pending.append(task)
        if not pending:
            return outcomes

        # claim each missing cell's writer lease; cells already being computed
        # by another process are deferred and harvested from its artifact
        owned: List[CellTask] = []
        deferred: List[CellTask] = []
        leases: Dict[str, Lease] = {}
        for task in pending:
            if not self.runner.use_cache:
                owned.append(task)
                continue
            lease = self.runner.store.try_lease(task.kind, task.digest)
            if lease is None:
                deferred.append(task)
                continue
            value = self.runner.read_cell(task.kind, task.payload, task.digest)
            if value is not None:  # published while we were acquiring
                lease.release()
                finish(task, CellOutcome(value, "hit", 0.0, task.n_shards))
            else:
                leases[task.digest] = lease
                owned.append(task)
        try:
            if owned:
                self._compute_owned(owned, leases, finish)
        finally:
            for lease in leases.values():
                lease.release()
        for task in deferred:
            finish(task, self._collect_foreign(task))
        return outcomes

    # ------------------------------------------------------------ internals
    def _compute_owned(
        self, tasks: List[CellTask], leases: Dict[str, Lease], finish: OnCell
    ) -> None:
        runner = self.runner
        for task in tasks:  # resolve shared models once, before the fork
            get_cell_kind(task.kind).warm(runner, task.payload)
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        shard_values: Dict[str, List[Any]] = {t.digest: [None] * t.n_shards for t in tasks}
        shard_left: Dict[str, int] = {t.digest: t.n_shards for t in tasks}
        shard_seconds: Dict[str, float] = {t.digest: 0.0 for t in tasks}
        done_shards: Set[Tuple[str, int]] = set()
        total_shards = sum(t.n_shards for t in tasks)
        retries = shard_retries()
        timeout = shard_timeout()
        workers = min(runner.jobs, total_shards)
        initargs = (
            runner.fast,
            str(runner.cache_dir),
            runner.use_cache,
            runner.shard_size,
            TRACER.worker_spool_dir(),
        )

        def spawn_pool() -> ProcessPoolExecutor:
            return ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_worker_init,
                initargs=initargs,
            )

        def complete_shard(
            task: CellTask,
            index: int,
            value: Any,
            seconds: float,
            stats: Optional[Dict[str, Any]],
        ) -> None:
            key = (task.digest, index)
            if key in done_shards:  # resubmission raced its original
                return
            done_shards.add(key)
            runner.telemetry.fold_worker(stats)
            digest = task.digest
            shard_values[digest][index] = value
            shard_seconds[digest] += seconds
            shard_left[digest] -= 1
            if shard_left[digest] == 0:
                with TRACER.span(
                    "cell.merge",
                    cat="engine",
                    kind=task.kind,
                    digest=digest[:DIGEST_WIDTH],
                    shards=task.n_shards,
                ):
                    merged = runner.merge_cell(task.kind, task.payload, shard_values.pop(digest))
                    runner.write_cell(task.kind, digest, merged, task.payload)
                lease = leases.pop(digest, None)
                if lease is not None:
                    lease.release()
                finish(task, CellOutcome(merged, "computed", shard_seconds[digest], task.n_shards))
            else:
                # a long multi-shard cell keeps proving its writer is alive,
                # so the lease TTL bounds shard time, not cell time, before a
                # waiter may take over.  A refresh that fails (TTL blown
                # while the pool was being rebuilt, or an injected
                # ``store.lease_steal``) re-claims the digest so the eventual
                # publication is still announced to waiters.
                lease = leases.get(digest)
                if lease is not None and not lease.refresh():
                    leases.pop(digest, None)
                    fresh = runner.store.try_lease(task.kind, digest)
                    if fresh is not None:
                        leases[digest] = fresh
                        runner.telemetry.count_fault("lease_reacquired")

        def exhausted(run: _ShardRun, cause: str, exc: Optional[BaseException]) -> CellExecutionError:
            return CellExecutionError(
                f"{run.task.kind} cell {run.task.digest[:10]} shard {run.index} "
                f"(owner {run.task.owner}) {cause} after {run.attempt + 1} attempt(s)"
                + (f": {exc}" if exc is not None else ""),
                kind=run.task.kind,
                digest=run.task.digest,
                shard=run.index,
                owner=run.task.owner,
            )

        pool: Optional[ProcessPoolExecutor] = spawn_pool()
        inflight: Dict[Future, _ShardRun] = {}
        respawns = 0

        def submit(run: _ShardRun) -> None:
            future = pool.submit(
                _run_shard, run.task.kind, run.task.payload, run.index, run.task.digest, run.attempt
            )
            run.deadline = monotonic() + timeout if timeout is not None else None
            inflight[future] = run

        def retry(run: _ShardRun, cause: str, exc: Optional[BaseException]) -> None:
            if run.attempt >= retries:
                raise exhausted(run, cause, exc) from exc
            run.attempt += 1
            runner.telemetry.count_fault("shard_retries")
            submit(run)

        try:
            for task in tasks:  # already cost-ordered by ExecutionPlan.scheduled
                for index in range(task.n_shards):
                    submit(_ShardRun(task, index))
            while len(done_shards) < total_shards and pool is not None:
                if not inflight:  # defensive: nothing running, nothing queued
                    break
                poll: Optional[float] = None
                if timeout is not None:
                    deadlines = [r.deadline for r in inflight.values() if r.deadline is not None]
                    if deadlines:
                        poll = max(0.01, min(deadlines) - monotonic())
                done, _ = wait(set(inflight), timeout=poll, return_when=FIRST_COMPLETED)
                crashed: List[_ShardRun] = []
                failed: List[Tuple[_ShardRun, BaseException]] = []
                pool_broken = False
                for future in done:
                    run = inflight.pop(future)
                    if (run.task.digest, run.index) in done_shards:
                        continue
                    try:
                        value, seconds, stats = future.result()
                    except BrokenProcessPool:
                        # a worker died abruptly; every pending future in the
                        # pool fails with this, guilty shard and bystanders
                        # alike -- all are retried on the rebuilt pool
                        pool_broken = True
                        crashed.append(run)
                        continue
                    except Exception as exc:
                        failed.append((run, exc))
                        continue
                    complete_shard(run.task, run.index, value, seconds, stats)
                expired: List[_ShardRun] = []
                if timeout is not None:
                    now = monotonic()
                    for future, run in list(inflight.items()):
                        if run.deadline is not None and now >= run.deadline and not future.done():
                            expired.append(run)
                            del inflight[future]
                    if expired:
                        runner.telemetry.count_fault("shard_timeouts", len(expired))
                if pool_broken or expired:
                    if pool_broken:
                        runner.telemetry.count_fault("worker_crashes")
                    # a broken pool is unusable; a blown deadline means a
                    # wedged worker, and running futures can't be cancelled:
                    # either way the pool dies.  Innocent inflight shards
                    # lose their partial work and rerun at the same attempt.
                    survivors = list(inflight.values())
                    inflight.clear()
                    _kill_pool(pool)
                    pool = None
                    respawns += 1
                    if respawns > POOL_RESPAWN_LIMIT:
                        runner.telemetry.count_fault("degraded_serial")
                        warnings.warn(
                            f"worker pool died {respawns} times; computing the remaining "
                            f"{total_shards - len(done_shards)} shard(s) serially in-process",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        break
                    runner.telemetry.count_fault("pool_respawns")
                    time.sleep(backoff_seconds(respawns))
                    pool = spawn_pool()
                    for run in expired:
                        retry(run, "timed out", None)
                    for run in crashed:
                        retry(run, "crashed", None)
                    for run in survivors:
                        submit(run)
                elif failed:
                    for run, exc in failed:
                        time.sleep(backoff_seconds(run.attempt + 1))
                        retry(run, "failed", exc)
        except BaseException:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            if pool is not None:
                pool.shutdown(wait=True)

        # graceful degradation: the pool kept dying, so the parent computes
        # whatever is left itself.  compute_shard here has no crash/hang
        # injection sites (those live in the worker-side _run_shard), so a
        # chaos schedule cannot take the parent down with the workers.
        if len(done_shards) < total_shards:
            for task in tasks:
                for index in range(task.n_shards):
                    if (task.digest, index) in done_shards:
                        continue
                    start = perf_counter()
                    with TRACER.span(
                        "shard",
                        cat="engine",
                        kind=task.kind,
                        digest=task.digest[:DIGEST_WIDTH],
                        shard=index,
                    ):
                        value = get_cell_kind(task.kind).compute_shard(runner, task.payload, index)
                    complete_shard(task, index, value, perf_counter() - start, None)

    def _collect_foreign(self, task: CellTask) -> CellOutcome:
        """Wait out another process computing ``task``, then read its artifact.

        Polls the artifact optimistically (we hold no leases by now, so this
        cannot deadlock).  If the foreign writer died without publishing, its
        lease falls to us and the cell is computed serially here.
        """
        start = perf_counter()
        value, lease = self.runner.store.wait_for(task.kind, task.digest)
        if value is not None:
            return CellOutcome(value, "hit", 0.0, task.n_shards)
        with lease:
            value = self.runner.read_cell(task.kind, task.payload, task.digest)
            if value is not None:
                return CellOutcome(value, "hit", 0.0, task.n_shards)
            value = self.runner.compute_cell(task.kind, task.payload)
            self.runner.write_cell(task.kind, task.digest, value, task.payload)
            return CellOutcome(value, "computed", perf_counter() - start, task.n_shards)
