"""The process-pool execution engine behind ``Runner(jobs=N)``.

Planned cell tasks (see :mod:`repro.parallel.plan`) are expanded into their
shard subtasks and scheduled onto a ``ProcessPoolExecutor``; the parent
process merges each cell's ordered shard results, writes the artifact
atomically and streams a progress event.  Because shard decomposition and
per-shard RNG seeding are pure functions of cell content
(:mod:`repro.parallel.sharding`), the pool produces bit-for-bit the same
values as the serial path.

Coordination with *other* processes -- pool workers of a second CLI
invocation or service job sharing the cache directory -- uses the writer
leases of :mod:`repro.store`: each cell is computed under its digest lease
(refreshed as shards complete, so long cells never look abandoned), and a
cell being computed elsewhere is *deferred* here and collected from the
cache once the foreign writer publishes it, instead of being recomputed.  A
foreign writer that crashes mid-cell loses its lease and the cell is
computed here -- a wedged cache cannot outlive its writer.

Worker processes are started with an initialiser that imports the pipeline
registries and builds a per-process serial :class:`Runner`; zoo models and
multiplier LUTs are resolved once per process (and, under the default
``fork`` start method, models the parent warmed up before the pool was
created are inherited copy-on-write and never rebuilt at all).

Start-method caveat: ``fork`` also carries *runtime* registry registrations
(custom zoo entries, specs registered from a script) into the workers.  On
platforms without ``fork`` the ``spawn`` fallback re-imports the package
fresh, so only registrations performed at import time (the catalog, or
modules imported by your entry point) are visible to workers -- register
custom components in an importable module, or run with ``jobs=1``.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.arith.kernels import KERNEL_STATS
from repro.attacks.base import QUERY_STATS
from repro.obs import TRACER
from repro.parallel.plan import CellOutcome, CellTask
from repro.parallel.telemetry import DIGEST_WIDTH
from repro.pipeline.cells import get_cell_kind
from repro.store import Lease

#: called with (task, outcome) as each cell completes
OnCell = Callable[[CellTask, CellOutcome], None]


class CellExecutionError(RuntimeError):
    """A cell shard raised in a worker; carries the failing cell's identity."""


# ----------------------------------------------------------- worker side
_WORKER_RUNNER = None


def _worker_init(
    fast: bool,
    cache_dir: str,
    use_cache: bool,
    shard_size: int,
    trace_dir: Optional[str] = None,
) -> None:
    """Build the per-process runner; resolves registries exactly once.

    ``trace_dir`` (set when the parent run is traced) points the worker's
    tracer at the run's spool directory, so worker spans land next to the
    parent's and are merged at run end.
    """
    global _WORKER_RUNNER
    import repro.pipeline  # populates kind/cell/zoo/attack registries

    if trace_dir is not None:
        TRACER.attach(trace_dir)
    _WORKER_RUNNER = repro.pipeline.Runner(
        fast=fast, cache_dir=cache_dir, use_cache=use_cache, jobs=1, shard_size=shard_size
    )


def _run_shard(
    kind_name: str, payload: Dict[str, Any], shard_index: int, digest: str = ""
) -> Tuple[Any, float, Dict[str, Any]]:
    """Compute one shard in a worker; returns ``(value, seconds, stats)``.

    ``stats`` carries the worker's pid and the shard's kernel/query counter
    deltas -- the parent folds them into :class:`RunTelemetry`, closing the
    per-process counter gap of parallel runs.
    """
    kernel_mark = KERNEL_STATS.snapshot()
    query_mark = QUERY_STATS.snapshot()
    start = perf_counter()
    with TRACER.span(
        "shard",
        cat="engine",
        kind=kind_name,
        digest=digest[:DIGEST_WIDTH],
        shard=shard_index,
    ):
        value = get_cell_kind(kind_name).compute_shard(_WORKER_RUNNER, payload, shard_index)
    stats = {
        "pid": os.getpid(),
        "kernels": KERNEL_STATS.delta(kernel_mark),
        "queries": QUERY_STATS.delta(query_mark),
    }
    return value, perf_counter() - start, stats


# ----------------------------------------------------------- parent side
class ParallelEngine:
    """Executes a run's unique cell tasks on ``runner.jobs`` worker processes."""

    def __init__(self, runner):
        self.runner = runner

    def execute(self, tasks: List[CellTask], on_cell: Optional[OnCell] = None) -> Dict[str, CellOutcome]:
        """Materialise every task; returns ``digest -> CellOutcome``."""
        on_cell = on_cell or (lambda task, outcome: None)
        outcomes: Dict[str, CellOutcome] = {}

        def finish(task: CellTask, outcome: CellOutcome) -> None:
            outcomes[task.digest] = outcome
            on_cell(task, outcome)

        pending: List[CellTask] = []
        for task in tasks:
            value = self.runner.read_cell(task.kind, task.payload, task.digest)
            if value is not None:
                finish(task, CellOutcome(value, "hit", 0.0, task.n_shards))
            else:
                pending.append(task)
        if not pending:
            return outcomes

        # claim each missing cell's writer lease; cells already being computed
        # by another process are deferred and harvested from its artifact
        owned: List[CellTask] = []
        deferred: List[CellTask] = []
        leases: Dict[str, Lease] = {}
        for task in pending:
            if not self.runner.use_cache:
                owned.append(task)
                continue
            lease = self.runner.store.try_lease(task.kind, task.digest)
            if lease is None:
                deferred.append(task)
                continue
            value = self.runner.read_cell(task.kind, task.payload, task.digest)
            if value is not None:  # published while we were acquiring
                lease.release()
                finish(task, CellOutcome(value, "hit", 0.0, task.n_shards))
            else:
                leases[task.digest] = lease
                owned.append(task)
        try:
            if owned:
                self._compute_owned(owned, leases, finish)
        finally:
            for lease in leases.values():
                lease.release()
        for task in deferred:
            finish(task, self._collect_foreign(task))
        return outcomes

    # ------------------------------------------------------------ internals
    def _compute_owned(
        self, tasks: List[CellTask], leases: Dict[str, Lease], finish: OnCell
    ) -> None:
        runner = self.runner
        for task in tasks:  # resolve shared models once, before the fork
            get_cell_kind(task.kind).warm(runner, task.payload)
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        shard_values: Dict[str, List[Any]] = {t.digest: [None] * t.n_shards for t in tasks}
        shard_left: Dict[str, int] = {t.digest: t.n_shards for t in tasks}
        shard_seconds: Dict[str, float] = {t.digest: 0.0 for t in tasks}
        by_digest = {t.digest: t for t in tasks}
        workers = min(runner.jobs, sum(t.n_shards for t in tasks))
        pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_worker_init,
            initargs=(
                runner.fast,
                str(runner.cache_dir),
                runner.use_cache,
                runner.shard_size,
                TRACER.worker_spool_dir(),
            ),
        )
        try:
            futures: Dict[Future, Tuple[CellTask, int]] = {}
            for task in tasks:  # already cost-ordered by ExecutionPlan.scheduled
                for index in range(task.n_shards):
                    futures[
                        pool.submit(_run_shard, task.kind, task.payload, index, task.digest)
                    ] = (task, index)
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    task, index = futures[future]
                    try:
                        value, seconds, stats = future.result()
                    except Exception as exc:
                        raise CellExecutionError(
                            f"{task.kind} cell {task.digest[:10]} shard {index} "
                            f"(owner {task.owner}) failed: {exc}"
                        ) from exc
                    runner.telemetry.fold_worker(stats)
                    digest = task.digest
                    shard_values[digest][index] = value
                    shard_seconds[digest] += seconds
                    shard_left[digest] -= 1
                    if shard_left[digest] == 0:
                        with TRACER.span(
                            "cell.merge",
                            cat="engine",
                            kind=task.kind,
                            digest=digest[:DIGEST_WIDTH],
                            shards=task.n_shards,
                        ):
                            merged = runner.merge_cell(
                                task.kind, task.payload, shard_values.pop(digest)
                            )
                            runner.write_cell(task.kind, digest, merged, task.payload)
                        lease = leases.pop(digest, None)
                        if lease is not None:
                            lease.release()
                        finish(
                            by_digest[digest],
                            CellOutcome(merged, "computed", shard_seconds[digest], task.n_shards),
                        )
                    else:
                        # a long multi-shard cell keeps proving its writer is
                        # alive, so the lease TTL bounds shard time, not cell
                        # time, before a waiter may take over
                        lease = leases.get(digest)
                        if lease is not None:
                            lease.refresh()
        except BaseException:
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            pool.shutdown(wait=True)

    def _collect_foreign(self, task: CellTask) -> CellOutcome:
        """Wait out another process computing ``task``, then read its artifact.

        Polls the artifact optimistically (we hold no leases by now, so this
        cannot deadlock).  If the foreign writer died without publishing, its
        lease falls to us and the cell is computed serially here.
        """
        start = perf_counter()
        value, lease = self.runner.store.wait_for(task.kind, task.digest)
        if value is not None:
            return CellOutcome(value, "hit", 0.0, task.n_shards)
        with lease:
            value = self.runner.read_cell(task.kind, task.payload, task.digest)
            if value is not None:
                return CellOutcome(value, "hit", 0.0, task.n_shards)
            value = self.runner.compute_cell(task.kind, task.payload)
            self.runner.write_cell(task.kind, task.digest, value, task.payload)
            return CellOutcome(value, "computed", perf_counter() - start, task.n_shards)
