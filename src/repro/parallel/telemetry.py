"""Per-run execution telemetry for the pipeline.

One :class:`RunTelemetry` instance is created per :meth:`Runner.run` /
:meth:`Runner.run_many` call (counters never accumulate across runs) and is
fed one event per grid cell: cache hit or computed, wall time, shard count.
The CLI renders the stream as progress lines and prints the summary; every
:class:`~repro.pipeline.runner.ExperimentResult` embeds a snapshot under its
``telemetry`` key.  All fields here are observability data -- determinism
guarantees explicitly exclude them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.arith.kernels import KERNEL_STATS


@dataclass
class CellEvent:
    """One grid cell's execution record."""

    kind: str
    digest: str
    status: str  # "hit" (artifact reused) or "computed"
    seconds: float = 0.0
    shards: int = 1
    experiment: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "digest": self.digest[:12],
            "status": self.status,
            "seconds": round(self.seconds, 4),
            "shards": self.shards,
            "experiment": self.experiment,
        }


@dataclass
class RunTelemetry:
    """Counters and per-cell events for one pipeline run."""

    jobs: int = 1
    cells_total: int = 0
    events: List[CellEvent] = field(default_factory=list)
    #: GEMM kernel-engine counters at run start; :meth:`snapshot` reports the
    #: delta, i.e. this run's kernel activity.  Counters are per-process:
    #: with ``jobs > 1`` the pool workers' activity is not folded in (each
    #: worker keeps its own), so parallel runs mostly show planning-side use.
    kernel_mark: Dict[str, int] = field(default_factory=KERNEL_STATS.snapshot)

    def record(self, event: CellEvent) -> CellEvent:
        self.events.append(event)
        return event

    # ------------------------------------------------------------- counters
    @property
    def cells_done(self) -> int:
        return len(self.events)

    @property
    def cache_hits(self) -> int:
        return sum(1 for e in self.events if e.status == "hit")

    @property
    def cache_misses(self) -> int:
        return sum(1 for e in self.events if e.status == "computed")

    @property
    def compute_seconds(self) -> float:
        return sum(e.seconds for e in self.events if e.status == "computed")

    def progress_line(self, event: Optional[CellEvent] = None) -> str:
        """Human-readable progress for one event against the run totals."""
        event = event or (self.events[-1] if self.events else None)
        total = self.cells_total or self.cells_done
        if event is None:
            return f"  cells: 0/{total}"
        detail = (
            f"{event.seconds:.2f}s" + (f", {event.shards} shards" if event.shards > 1 else "")
            if event.status == "computed"
            else "cached"
        )
        return (
            f"  cell {self.cells_done}/{total} {event.kind} "
            f"{event.digest[:10]}: {detail}"
        )

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able summary embedded in experiment results."""
        return {
            "jobs": self.jobs,
            "cells_total": self.cells_total,
            "cells_done": self.cells_done,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "compute_seconds": round(self.compute_seconds, 4),
            "kernels": KERNEL_STATS.delta(self.kernel_mark),
            "cells": [e.to_dict() for e in self.events],
        }
