"""Per-run execution telemetry for the pipeline.

One :class:`RunTelemetry` instance is created per :meth:`Runner.run` /
:meth:`Runner.run_many` call (counters never accumulate across runs) and is
fed one event per grid cell: cache hit or computed, wall time, shard count.
The CLI renders the stream as progress lines and prints the summary; every
:class:`~repro.pipeline.runner.ExperimentResult` embeds a snapshot under its
``telemetry`` key.  All fields here are observability data -- determinism
guarantees explicitly exclude them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.arith.kernels import KERNEL_STATS
from repro.attacks.base import QUERY_STATS


@dataclass
class CellEvent:
    """One grid cell's execution record."""

    kind: str
    digest: str
    status: str  # "hit" (artifact reused) or "computed"
    seconds: float = 0.0
    shards: int = 1
    experiment: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "digest": self.digest[:12],
            "status": self.status,
            "seconds": round(self.seconds, 4),
            "shards": self.shards,
            "experiment": self.experiment,
        }


@dataclass
class RunTelemetry:
    """Counters and per-cell events for one pipeline run."""

    jobs: int = 1
    cells_total: int = 0
    events: List[CellEvent] = field(default_factory=list)
    #: GEMM kernel-engine counters at run start; :meth:`snapshot` reports the
    #: delta, i.e. this run's kernel activity.  Counters are per-process:
    #: with ``jobs > 1`` the pool workers' activity is not folded in (each
    #: worker keeps its own), so parallel runs mostly show planning-side use.
    kernel_mark: Dict[str, int] = field(default_factory=KERNEL_STATS.snapshot)
    #: classifier call-batch-size counters at run start (same per-process
    #: caveat).  The delta shows how well the batched attack engine amortised
    #: model calls -- calls at batch 1 vs batched, mean query batch -- and
    #: covers only calls issued during attack execution (evaluation traffic
    #: such as victim-selection scans is excluded by the counter's scope).
    query_mark: Dict[str, int] = field(default_factory=QUERY_STATS.snapshot)

    def record(self, event: CellEvent) -> CellEvent:
        self.events.append(event)
        return event

    # ------------------------------------------------------------- counters
    @property
    def cells_done(self) -> int:
        return len(self.events)

    @property
    def cache_hits(self) -> int:
        return sum(1 for e in self.events if e.status == "hit")

    @property
    def cache_misses(self) -> int:
        return sum(1 for e in self.events if e.status == "computed")

    @property
    def compute_seconds(self) -> float:
        return sum(e.seconds for e in self.events if e.status == "computed")

    def progress_line(self, event: Optional[CellEvent] = None) -> str:
        """Human-readable progress for one event against the run totals."""
        event = event or (self.events[-1] if self.events else None)
        total = self.cells_total or self.cells_done
        if event is None:
            return f"  cells: 0/{total}"
        detail = (
            f"{event.seconds:.2f}s" + (f", {event.shards} shards" if event.shards > 1 else "")
            if event.status == "computed"
            else "cached"
        )
        return (
            f"  cell {self.cells_done}/{total} {event.kind} "
            f"{event.digest[:10]}: {detail}"
        )

    def attack_queries(self) -> Dict[str, Any]:
        """This run's classifier call batch-size histogram (process-local).

        ``query_calls_batch1`` / ``query_calls_batched`` split prediction
        calls into degenerate single-example calls and genuinely batched
        ones; ``mean_query_batch`` / ``mean_gradient_batch`` are the mean
        samples advanced per model call.
        """
        delta = QUERY_STATS.delta(self.query_mark)
        delta["query_calls_batched"] = delta["query_calls"] - delta["query_calls_batch1"]
        delta["gradient_calls_batched"] = (
            delta["gradient_calls"] - delta["gradient_calls_batch1"]
        )
        delta["mean_query_batch"] = round(
            delta["query_samples"] / delta["query_calls"], 2
        ) if delta["query_calls"] else 0.0
        delta["mean_gradient_batch"] = round(
            delta["gradient_samples"] / delta["gradient_calls"], 2
        ) if delta["gradient_calls"] else 0.0
        return delta

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able summary embedded in experiment results."""
        return {
            "jobs": self.jobs,
            "cells_total": self.cells_total,
            "cells_done": self.cells_done,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "compute_seconds": round(self.compute_seconds, 4),
            "kernels": KERNEL_STATS.delta(self.kernel_mark),
            "attack_queries": self.attack_queries(),
            "cells": [e.to_dict() for e in self.events],
        }
