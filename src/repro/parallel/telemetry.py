"""Per-run execution telemetry for the pipeline.

One :class:`RunTelemetry` instance is created per :meth:`Runner.run` /
:meth:`Runner.run_many` call (counters never accumulate across runs) and is
fed one event per grid cell: cache hit or computed, wall time, shard count.
The CLI renders the stream as progress lines and prints the summary; every
:class:`~repro.pipeline.runner.ExperimentResult` embeds a snapshot under its
``telemetry`` key.  All fields here are observability data -- determinism
guarantees explicitly exclude them.

Kernel and attack-query counters are process-level singletons
(:data:`~repro.arith.kernels.KERNEL_STATS` /
:data:`~repro.attacks.base.QUERY_STATS`): the planning process's activity is
read as a snapshot/delta pair, and with ``jobs > 1`` every pool worker
returns its own counter deltas alongside each shard value, folded in through
:meth:`fold_worker` -- so :meth:`kernel_totals` / :meth:`query_totals` are
truthful whole-run sums regardless of where the work ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.arith.kernels import KERNEL_STATS
from repro.attacks.base import QUERY_STATS

#: digest prefix length used everywhere telemetry abbreviates cell digests
#: (progress lines, event dicts, span labels)
DIGEST_WIDTH = 12


def _remote_mark() -> Dict[str, int]:
    # lazy: repro.store imports repro.parallel.locks, so a top-level import
    # here would close an import cycle through this package's __init__
    from repro.store.remote import REMOTE_STATS

    return REMOTE_STATS.snapshot()


@dataclass
class CellEvent:
    """One grid cell's execution record."""

    kind: str
    digest: str
    status: str  # "hit" (artifact reused) or "computed"
    seconds: float = 0.0
    shards: int = 1
    experiment: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "digest": self.digest[:DIGEST_WIDTH],
            "status": self.status,
            "seconds": round(self.seconds, 4),
            "shards": self.shards,
            "experiment": self.experiment,
        }


@dataclass
class RunTelemetry:
    """Counters and per-cell events for one pipeline run."""

    jobs: int = 1
    cells_total: int = 0
    events: List[CellEvent] = field(default_factory=list)
    #: GEMM kernel-engine counters at run start; :meth:`kernel_totals`
    #: reports the delta plus every folded worker contribution
    kernel_mark: Dict[str, int] = field(default_factory=KERNEL_STATS.snapshot)
    #: classifier call-batch-size counters at run start.  The totals show how
    #: well the batched attack engine amortised model calls -- calls at batch
    #: 1 vs batched, mean query batch -- and cover only calls issued during
    #: attack execution (evaluation traffic such as victim-selection scans is
    #: excluded by the counter's scope).
    query_mark: Dict[str, int] = field(default_factory=QUERY_STATS.snapshot)
    #: remote artifact-tier counters at run start; :meth:`remote_totals`
    #: reports the delta (all zeros on a local-only run)
    remote_mark: Dict[str, int] = field(default_factory=_remote_mark)
    #: summed counter deltas returned by pool-worker shards
    worker_kernels: Dict[str, int] = field(default_factory=dict)
    worker_queries: Dict[str, int] = field(default_factory=dict)
    #: pids of every worker that contributed a shard to this run
    worker_pids: List[int] = field(default_factory=list)
    #: merged-trace summary ({"path", "spans", "pids"}) when the run was
    #: traced (``REPRO_TRACE``); ``None`` otherwise
    trace: Optional[Dict[str, Any]] = None
    #: fault-tolerance event counts for this run: shard retries, timeouts,
    #: worker crashes, pool respawns, serial degradation, lease re-acquires,
    #: manifest-resumed cells, and remote-tier degradation (calls that fell
    #: back to local compute / foreign artifacts refused by the trust rules).
    #: Zero across the board on a healthy run.
    faults: Dict[str, int] = field(
        default_factory=lambda: {
            "shard_retries": 0,
            "shard_timeouts": 0,
            "worker_crashes": 0,
            "pool_respawns": 0,
            "degraded_serial": 0,
            "lease_reacquired": 0,
            "cells_resumed": 0,
            "remote_fallbacks": 0,
            "remote_rejects": 0,
        }
    )

    def record(self, event: CellEvent) -> CellEvent:
        self.events.append(event)
        return event

    def count_fault(self, name: str, n: int = 1) -> None:
        """Bump one fault-tolerance counter (e.g. ``shard_retries``)."""
        self.faults[name] = self.faults.get(name, 0) + n

    def fold_worker(self, stats: Optional[Dict[str, Any]]) -> None:
        """Merge one worker shard's counter deltas into the run totals."""
        if not stats:
            return
        pid = stats.get("pid")
        if pid and pid not in self.worker_pids:
            self.worker_pids.append(int(pid))
        for bucket, totals in (
            ("kernels", self.worker_kernels),
            ("queries", self.worker_queries),
        ):
            for name, value in (stats.get(bucket) or {}).items():
                totals[name] = totals.get(name, 0) + int(value)

    # ------------------------------------------------------------- counters
    @property
    def cells_done(self) -> int:
        return len(self.events)

    @property
    def cache_hits(self) -> int:
        return sum(1 for e in self.events if e.status == "hit")

    @property
    def cache_misses(self) -> int:
        return sum(1 for e in self.events if e.status == "computed")

    @property
    def compute_seconds(self) -> float:
        return sum(e.seconds for e in self.events if e.status == "computed")

    def kernel_totals(self) -> Dict[str, int]:
        """This run's kernel-engine activity, local delta plus worker folds."""
        totals = KERNEL_STATS.delta(self.kernel_mark)
        for name, value in self.worker_kernels.items():
            totals[name] = totals.get(name, 0) + value
        return totals

    def query_totals(self) -> Dict[str, int]:
        """This run's attack-scoped classifier calls, workers folded in."""
        totals = QUERY_STATS.delta(self.query_mark)
        for name, value in self.worker_queries.items():
            totals[name] = totals.get(name, 0) + value
        return totals

    def remote_totals(self) -> Dict[str, int]:
        """This run's remote artifact-tier activity (process-local delta).

        The remote tier lives in the planning process only -- pool workers
        never talk to the peer -- so no worker folding is needed.
        """
        from repro.store.remote import REMOTE_STATS

        return REMOTE_STATS.delta(self.remote_mark)

    def progress_line(self, event: Optional[CellEvent] = None) -> str:
        """Human-readable progress for one event against the run totals."""
        event = event or (self.events[-1] if self.events else None)
        total = self.cells_total or self.cells_done
        if event is None:
            return f"  cells: 0/{total}"
        detail = (
            f"{event.seconds:.2f}s" + (f", {event.shards} shards" if event.shards > 1 else "")
            if event.status == "computed"
            else "cached"
        )
        return (
            f"  cell {self.cells_done}/{total} {event.kind} "
            f"{event.digest[:DIGEST_WIDTH]}: {detail}"
        )

    def attack_queries(self) -> Dict[str, Any]:
        """This run's classifier call batch-size histogram (workers folded).

        ``query_calls_batch1`` / ``query_calls_batched`` split prediction
        calls into degenerate single-example calls and genuinely batched
        ones; ``mean_query_batch`` / ``mean_gradient_batch`` are the mean
        samples advanced per model call.
        """
        delta = self.query_totals()
        delta["query_calls_batched"] = delta["query_calls"] - delta["query_calls_batch1"]
        delta["gradient_calls_batched"] = (
            delta["gradient_calls"] - delta["gradient_calls_batch1"]
        )
        delta["mean_query_batch"] = round(
            delta["query_samples"] / delta["query_calls"], 2
        ) if delta["query_calls"] else 0.0
        delta["mean_gradient_batch"] = round(
            delta["gradient_samples"] / delta["gradient_calls"], 2
        ) if delta["gradient_calls"] else 0.0
        return delta

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able summary embedded in experiment results."""
        out = {
            "jobs": self.jobs,
            "cells_total": self.cells_total,
            "cells_done": self.cells_done,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "compute_seconds": round(self.compute_seconds, 4),
            "kernels": self.kernel_totals(),
            "attack_queries": self.attack_queries(),
            "remote": self.remote_totals(),
            "worker_pids": sorted(self.worker_pids),
            "faults": dict(self.faults),
            "cells": [e.to_dict() for e in self.events],
        }
        if self.trace is not None:
            out["trace"] = dict(self.trace)
        return out
