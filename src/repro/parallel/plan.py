"""Execution planning: resolve experiments into a deduplicated cell graph.

Before anything runs, :func:`build_plan` walks every requested experiment's
kind handler in *plan* mode and collects each grid cell it will need as a
:class:`CellTask` keyed by the cell's content digest.  Sibling experiments
that share cells (Figures 8/9 and 10/11 run the same white-box grid) collapse
onto the same task, so each cell is computed exactly once per run no matter
how many experiments reference it; the first referencing experiment *owns*
the task for cache-accounting purposes.

The plan is what both execution paths consume: the serial loop in
:meth:`Runner.run_many` and the process pool in
:class:`repro.parallel.engine.ParallelEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.pipeline.cells import CellRequest, get_cell_kind


@dataclass(frozen=True)
class CellTask:
    """One unique grid cell to materialise (computed or loaded from cache)."""

    kind: str
    payload: Dict[str, Any]
    digest: str
    n_shards: int
    owner: str  #: name of the first experiment referencing this cell
    cost: float  #: scheduling weight; bigger tasks are dispatched first


@dataclass
class CellOutcome:
    """How one cell was materialised."""

    value: Any
    status: str  # "hit" (cache) or "computed"
    seconds: float = 0.0  # compute seconds (0 for hits); summed over shards
    shards: int = 1


@dataclass
class ExperimentPlan:
    """One experiment's slice of the run: its spec, handler and cell requests."""

    spec: Any
    handler: Any
    requests: List[CellRequest] = field(default_factory=list)
    digests: List[str] = field(default_factory=list)
    legacy: bool = False  #: plain-function handler; executed cell-by-cell


@dataclass
class ExecutionPlan:
    """The whole run: experiments in order plus the deduplicated task set."""

    experiments: List[ExperimentPlan]
    tasks: Dict[str, CellTask]  # digest -> task, insertion-ordered

    def scheduled(self) -> List[CellTask]:
        """Tasks in dispatch order: most expensive first (stable tie-break).

        Long-pole cells start first so a pool is never left waiting on a
        heavyweight straggler that was submitted last.
        """
        return sorted(self.tasks.values(), key=lambda task: -task.cost)


def build_plan(runner, specs: List[Any]) -> ExecutionPlan:
    """Plan ``specs`` against ``runner``'s configuration (fast flag, sharding).

    Experiment kinds registered as plain functions (the pre-plan handler
    protocol) are kept as *legacy* entries: they contribute no tasks and are
    executed serially, cell by cell, at assembly time.
    """
    experiments: List[ExperimentPlan] = []
    tasks: Dict[str, CellTask] = {}
    for spec in specs:
        handler = runner.kind_handler(spec.kind)
        if not hasattr(handler, "plan"):
            experiments.append(ExperimentPlan(spec=spec, handler=handler, legacy=True))
            continue
        requests = list(handler.plan(runner, spec))
        digests = []
        for request in requests:
            digest = runner.cell_digest(request.kind, request.payload)
            digests.append(digest)
            if digest not in tasks:
                kind = get_cell_kind(request.kind)
                n_shards = kind.n_shards(runner, request.payload)
                tasks[digest] = CellTask(
                    kind=request.kind,
                    payload=request.payload,
                    digest=digest,
                    n_shards=n_shards,
                    owner=spec.name,
                    cost=float(n_shards),
                )
        experiments.append(
            ExperimentPlan(spec=spec, handler=handler, requests=requests, digests=digests)
        )
    return ExecutionPlan(experiments=experiments, tasks=tasks)
