"""Execution planning: resolve experiments into a deduplicated cell graph.

Before anything runs, :func:`build_plan` walks every requested experiment's
kind handler in *plan* mode and collects each grid cell it will need as a
:class:`CellTask` keyed by the cell's content digest.  Sibling experiments
that share cells (Figures 8/9 and 10/11 run the same white-box grid) collapse
onto the same task, so each cell is computed exactly once per run no matter
how many experiments reference it; the first referencing experiment *owns*
the task for cache-accounting purposes.

The plan is what both execution paths consume: the serial loop in
:meth:`Runner.run_many` and the process pool in
:class:`repro.parallel.engine.ParallelEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.pipeline.cells import CellRequest, get_cell_kind


@dataclass(frozen=True)
class CellTask:
    """One unique grid cell to materialise (computed or loaded from cache)."""

    kind: str
    payload: Dict[str, Any]
    digest: str
    n_shards: int
    owner: str  #: name of the first experiment referencing this cell
    cost: float  #: scheduling weight; bigger tasks are dispatched first


@dataclass
class CellOutcome:
    """How one cell was materialised."""

    value: Any
    status: str  # "hit" (cache) or "computed"
    seconds: float = 0.0  # compute seconds (0 for hits); summed over shards
    shards: int = 1


@dataclass
class ExperimentPlan:
    """One experiment's slice of the run: its spec, handler and cell requests."""

    spec: Any
    handler: Any
    requests: List[CellRequest] = field(default_factory=list)
    digests: List[str] = field(default_factory=list)
    legacy: bool = False  #: plain-function handler; executed cell-by-cell


@dataclass
class ExecutionPlan:
    """The whole run: experiments in order plus the deduplicated task set."""

    experiments: List[ExperimentPlan]
    tasks: Dict[str, CellTask]  # digest -> task, insertion-ordered

    def scheduled(self) -> List[CellTask]:
        """Tasks in dispatch order: most expensive first (stable tie-break).

        Long-pole cells start first so a pool is never left waiting on a
        heavyweight straggler that was submitted last.
        """
        return sorted(self.tasks.values(), key=lambda task: -task.cost)


def cache_outlook(runner, plan: ExecutionPlan) -> Dict[str, Any]:
    """Classify every planned cell as warm, stale or cold -- before computing.

    * **warm** -- the artifact exists under the planned digest: a pure cache
      hit.
    * **stale** -- no artifact under the planned digest, but the namespace
      holds one with the same *content key* (same kind + fast + payload)
      recorded under different dependency fingerprints: the same cell
      computed by superseded code.  It will be recomputed; ``cache gc
      --stale`` reclaims the old bytes.
    * **cold** -- never computed here at all.

    Costs one ``exists`` per cell plus one sidecar scan per referenced
    namespace; no model is resolved and nothing is computed, so the service
    tier runs this at submit time and ``python -m repro info`` on every
    invocation.
    """
    from repro.pipeline.fingerprints import content_key
    from repro.pipeline.runner import _jsonable

    store = runner.store
    indexes: Dict[str, Dict[str, list]] = {}
    counts = {"warm": 0, "stale": 0, "cold": 0}
    cells: List[Dict[str, Any]] = []
    for digest, task in plan.tasks.items():
        entry: Dict[str, Any] = {
            "kind": task.kind,
            "digest": digest,
            "experiment": task.owner,
        }
        if store.contains(task.kind, digest):
            entry["status"] = "warm"
        else:
            if task.kind not in indexes:
                indexes[task.kind] = store.meta_index(task.kind)
            key = content_key(task.kind, runner.fast, _jsonable(task.payload))
            superseded = [d for d in indexes[task.kind].get(key, []) if d != digest]
            if superseded:
                entry["status"] = "stale"
                entry["superseded"] = superseded
            else:
                entry["status"] = "cold"
        counts[entry["status"]] += 1
        cells.append(entry)
    return {**counts, "cells": cells}


def build_plan(runner, specs: List[Any]) -> ExecutionPlan:
    """Plan ``specs`` against ``runner``'s configuration (fast flag, sharding).

    Experiment kinds registered as plain functions (the pre-plan handler
    protocol) are kept as *legacy* entries: they contribute no tasks and are
    executed serially, cell by cell, at assembly time.
    """
    experiments: List[ExperimentPlan] = []
    tasks: Dict[str, CellTask] = {}
    for spec in specs:
        handler = runner.kind_handler(spec.kind)
        if not hasattr(handler, "plan"):
            experiments.append(ExperimentPlan(spec=spec, handler=handler, legacy=True))
            continue
        requests = list(handler.plan(runner, spec))
        digests = []
        for request in requests:
            digest = runner.cell_digest(request.kind, request.payload)
            digests.append(digest)
            if digest not in tasks:
                kind = get_cell_kind(request.kind)
                n_shards = kind.n_shards(runner, request.payload)
                tasks[digest] = CellTask(
                    kind=request.kind,
                    payload=request.payload,
                    digest=digest,
                    n_shards=n_shards,
                    owner=spec.name,
                    cost=float(n_shards),
                )
        experiments.append(
            ExperimentPlan(spec=spec, handler=handler, requests=requests, digests=digests)
        )
    return ExecutionPlan(experiments=experiments, tasks=tasks)
