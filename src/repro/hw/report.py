"""Energy/delay report builders for Tables 7 and 9."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.arith.array_multiplier import ArrayMultiplier
from repro.arith.fpm import AxFPM, Bfloat16Multiplier, ExactMultiplier, HEAPMultiplier
from repro.hw.energy_model import (
    FULL_MANTISSA_BITS,
    MultiplierCost,
    estimate_array_multiplier_cost,
    estimate_fpm_cost,
)


def energy_delay_table() -> List[Tuple[str, float, float]]:
    """Table 7: normalised energy and delay of complete floating point multipliers.

    Rows: exact multiplier, Ax-FPM, Bfloat16, each normalised to the exact
    design.
    """
    exact = estimate_fpm_cost(ExactMultiplier(), name="Exact multiplier")
    designs = [
        exact,
        estimate_fpm_cost(AxFPM(), name="Ax-FPM"),
        estimate_fpm_cost(Bfloat16Multiplier(), name="Bfloat16"),
    ]
    return [
        (cost.name, cost.normalised_to(exact).energy, cost.normalised_to(exact).delay)
        for cost in designs
    ]


def mantissa_energy_delay_table() -> List[Tuple[str, float, float]]:
    """Table 9: normalised energy and delay of the bare 24x24 mantissa multipliers.

    Rows: exact array, HEAP array, Ax-FPM (AMA5) array.
    """
    exact_cost = estimate_array_multiplier_cost(
        ArrayMultiplier(FULL_MANTISSA_BITS, "exact"), name="Exact multiplier"
    )
    heap = HEAPMultiplier()
    heap_cost = estimate_array_multiplier_cost(
        ArrayMultiplier(FULL_MANTISSA_BITS, heap.mantissa_multiplier.policy), name="HEAP"
    )
    ax = AxFPM()
    ax_cost = estimate_array_multiplier_cost(
        ArrayMultiplier(FULL_MANTISSA_BITS, ax.mantissa_multiplier.policy), name="Ax-FPM"
    )
    return [
        (cost.name, cost.normalised_to(exact_cost).energy, cost.normalised_to(exact_cost).delay)
        for cost in (exact_cost, heap_cost, ax_cost)
    ]


def cost_summary() -> Dict[str, MultiplierCost]:
    """Absolute model-unit costs of all designs (useful for ablations)."""
    return {
        "exact": estimate_fpm_cost(ExactMultiplier()),
        "axfpm": estimate_fpm_cost(AxFPM()),
        "heap": estimate_fpm_cost(HEAPMultiplier()),
        "bfloat16": estimate_fpm_cost(Bfloat16Multiplier()),
    }
