"""Hardware cost model.

The paper reports normalised energy and delay of the exact multiplier, the
Ax-FPM and the Bfloat16 multiplier (Table 7) and of the bare mantissa
multipliers (Table 9), measured with 45 nm PTM transistor models in Keysight
ADS.  No circuit simulator is available offline, so this package provides an
analytical gate-count model: every adder cell contributes energy proportional
to its transistor count and delay along the array's critical path proportional
to its relative cell delay.  The model reproduces the *normalised ratios* the
paper reports (see DESIGN.md, "Substitutions").
"""

#: version of the analytical gate-count cost model.  Bump when transistor
#: counts, cell delays or the normalisation change; energy cells declare an
#: ``"hw"`` dependency and re-key on it.
HW_MODEL_VERSION = 1

from repro.hw.energy_model import (
    CellCost,
    MultiplierCost,
    estimate_array_multiplier_cost,
    estimate_fpm_cost,
)
from repro.hw.report import energy_delay_table, mantissa_energy_delay_table

__all__ = [
    "CellCost",
    "MultiplierCost",
    "estimate_array_multiplier_cost",
    "estimate_fpm_cost",
    "energy_delay_table",
    "mantissa_energy_delay_table",
]
