"""Analytical gate-count energy and delay model for the multipliers.

Model assumptions (documented substitutions for the paper's 45 nm PTM / ADS
circuit simulations):

* every adder cell consumes switching energy proportional to its transistor
  count (exact mirror adder: 24 transistors, AMA5: 8, see
  :mod:`repro.arith.adders`);
* every partial-product AND gate costs a fixed 6 transistors;
* the array multiplier's critical path traverses one full row and one full
  column of cells (the classic ``2n - 2`` cell-delays path); each cell
  contributes its relative sum-path delay;
* a complete floating point multiplier spends :data:`MANTISSA_POWER_FRACTION`
  of its energy in the mantissa multiplier (the paper cites 81 %), with the
  remaining energy (exponent adder, normalisation, rounding) unaffected by the
  approximation;
* the mantissa multiplier similarly dominates the delay with the same fraction.

Only *normalised* ratios are meaningful, which is also all the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arith.array_multiplier import ArrayMultiplier
from repro.arith.fpm import ApproxFPM, Bfloat16Multiplier, ExactMultiplier, Multiplier

#: transistor cost of one partial-product AND gate
AND_GATE_TRANSISTORS = 6
#: fraction of a floating point multiplier's energy spent in the mantissa
#: multiplier (Tong et al., 2000, cited by the paper)
MANTISSA_POWER_FRACTION = 0.81
#: fraction of the FPM critical path spent in the mantissa multiplier (the
#: exponent adder works in parallel, so only normalisation/rounding adds delay)
MANTISSA_DELAY_FRACTION = 0.95
#: mantissa width (including the implicit bit) of a full IEEE-754 single FPM
FULL_MANTISSA_BITS = 24
#: mantissa width (including the implicit bit) of a bfloat16 multiplier
BFLOAT16_MANTISSA_BITS = 8


@dataclass
class CellCost:
    """Energy and delay contribution of one adder cell."""

    name: str
    energy: float
    delay: float


@dataclass
class MultiplierCost:
    """Absolute (model-unit) energy and delay of a multiplier datapath."""

    name: str
    energy: float
    delay: float

    def normalised_to(self, reference: "MultiplierCost") -> "MultiplierCost":
        """Express this cost relative to a reference design."""
        return MultiplierCost(
            name=self.name,
            energy=self.energy / reference.energy,
            delay=self.delay / reference.delay,
        )


def estimate_array_multiplier_cost(array: ArrayMultiplier, name: str = "") -> MultiplierCost:
    """Energy/delay of a (possibly heterogeneous, approximate) mantissa array."""
    n = array.n_bits
    energy = float(n * n * AND_GATE_TRANSISTORS)  # partial product generation
    for row in range(1, n):
        for col in range(n):
            energy += array.policy.cell_at(row, col, n).transistor_count

    # critical path: down the last column, then across the last row
    delay = 0.0
    for row in range(1, n):
        delay += array.policy.cell_at(row, n - 1, n).relative_delay
    last_row = n - 1
    if last_row >= 1:
        for col in range(n - 1):
            delay += array.policy.cell_at(last_row, col, n).relative_delay
    delay = max(delay, 1e-9)
    return MultiplierCost(name=name or repr(array), energy=energy, delay=delay)


def _exact_array(n_bits: int) -> ArrayMultiplier:
    return ArrayMultiplier(n_bits, "exact")


def estimate_fpm_cost(multiplier: Multiplier, name: str = "") -> MultiplierCost:
    """Energy/delay of a complete floating point multiplier datapath.

    The mantissa multiplier is costed with :func:`estimate_array_multiplier_cost`;
    the remaining FPM logic (exponent adder, normalisation, rounding) is charged
    as the fixed non-mantissa fraction of an exact single-precision FPM.
    """
    exact_mantissa = estimate_array_multiplier_cost(_exact_array(FULL_MANTISSA_BITS))
    overhead_energy = exact_mantissa.energy * (1.0 - MANTISSA_POWER_FRACTION) / MANTISSA_POWER_FRACTION
    overhead_delay = exact_mantissa.delay * (1.0 - MANTISSA_DELAY_FRACTION) / MANTISSA_DELAY_FRACTION

    if isinstance(multiplier, ApproxFPM):
        # cost the approximate array at full mantissa width so designs of
        # different emulation widths are compared on equal footing
        scaled = ArrayMultiplier(
            FULL_MANTISSA_BITS,
            multiplier.mantissa_multiplier.policy,
            port_a=multiplier.mantissa_multiplier.port_a,
        )
        mantissa = estimate_array_multiplier_cost(scaled)
    elif isinstance(multiplier, Bfloat16Multiplier):
        mantissa = estimate_array_multiplier_cost(_exact_array(BFLOAT16_MANTISSA_BITS))
    elif isinstance(multiplier, ExactMultiplier):
        mantissa = exact_mantissa
    else:
        raise TypeError(f"no hardware cost model for multiplier type {type(multiplier).__name__}")

    return MultiplierCost(
        name=name or multiplier.name,
        energy=mantissa.energy + overhead_energy,
        delay=mantissa.delay + overhead_delay,
    )
