"""Approximate arithmetic substrate.

This package implements the hardware layer of Defensive Approximation from the
gate level up:

* :mod:`repro.arith.adders` -- a library of full-adder cells, including the
  exact mirror adder and the approximate mirror adders (AMA1..AMA5) used by the
  paper.  AMA5 (``Sum = B``, ``Cout = A``) is the cell the Ax-FPM is built from.
* :mod:`repro.arith.array_multiplier` -- a gate-level, cell-by-cell array
  multiplier with pluggable adder cells, vectorised over numpy arrays.
* :mod:`repro.arith.float_format` -- IEEE-754 single precision field
  manipulation plus bfloat16 truncation helpers.
* :mod:`repro.arith.fpm` -- floating point multipliers built on the above:
  the exact reference, the paper's Ax-FPM, the HEAP comparison design and a
  Bfloat16 multiplier.
* :mod:`repro.arith.error_metrics` -- MRED / NMED and noise-profile utilities
  used by Figures 3, 13, 15 and Table 8.
* :mod:`repro.arith.kernels` -- fused approximate-GEMM kernels: precomposed
  signed-significand product tables, cached weight decompositions and
  K-blocked in-place accumulation behind
  :meth:`~repro.arith.fpm.Multiplier.make_gemm_kernel`, the engine of the
  approximate layers' forward passes.
"""

#: numerics version of the multiplier/adder substrate itself (gate-level
#: behaviour, error-metric definitions).  Distinct from the GEMM *engine*
#: version (:data:`repro.arith.kernels.KERNEL_NUMERICS_VERSION`): a faster
#: engine with identical bit patterns bumps neither; a change to what a
#: multiplier *returns* bumps this.  Cells declaring an ``"arith"``
#: dependency re-key on it (see :mod:`repro.pipeline.fingerprints`).
ARITH_NUMERICS_VERSION = 1

from repro.arith.adders import (
    AMA1,
    AMA2,
    AMA3,
    AMA4,
    AMA5,
    AdderCell,
    ExactFullAdder,
    get_cell,
    list_cells,
)
from repro.arith.array_multiplier import ArrayMultiplier, HeterogeneousCellPolicy, UniformCellPolicy
from repro.arith.error_metrics import ErrorProfile, mred, nmed, profile_multiplier
from repro.arith.float_format import (
    FloatFields,
    bfloat16_truncate,
    compose_float32,
    decompose_float32,
    operand_codes,
)
from repro.arith.kernels import (
    KERNEL_STATS,
    FallbackGemmKernel,
    FusedLutGemmKernel,
    GemmKernel,
    signed_product_table,
)
from repro.arith.fpm import (
    AxFPM,
    Bfloat16Multiplier,
    ExactMultiplier,
    HEAPMultiplier,
    Multiplier,
    get_multiplier,
)

__all__ = [
    "AMA1",
    "AMA2",
    "AMA3",
    "AMA4",
    "AMA5",
    "AdderCell",
    "ExactFullAdder",
    "get_cell",
    "list_cells",
    "ArrayMultiplier",
    "UniformCellPolicy",
    "HeterogeneousCellPolicy",
    "ErrorProfile",
    "mred",
    "nmed",
    "profile_multiplier",
    "FloatFields",
    "decompose_float32",
    "compose_float32",
    "bfloat16_truncate",
    "operand_codes",
    "GemmKernel",
    "FallbackGemmKernel",
    "FusedLutGemmKernel",
    "KERNEL_STATS",
    "signed_product_table",
    "Multiplier",
    "ExactMultiplier",
    "AxFPM",
    "HEAPMultiplier",
    "Bfloat16Multiplier",
    "get_multiplier",
]
