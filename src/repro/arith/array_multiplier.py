"""Gate-level array multiplier with pluggable adder cells.

The paper builds the Ax-FPM mantissa multiplier as an *array multiplier*
(Figure 1): partial products ``pp[i][j] = a_j & b_i`` are generated with AND
gates and accumulated row by row through full-adder cells.  Replacing the exact
full adders with approximate ones (AMA5 for Ax-FPM) injects data-dependent
noise into the product.

The simulator here mirrors that structure cell by cell so that the exact same
hardware error model is applied, but every cell evaluation is vectorised over a
numpy batch of operand pairs, which keeps whole-network emulation tractable.

Structure
---------
For ``n``-bit unsigned operands the accumulator starts as partial-product row 0.
Each subsequent row ``i`` (``1 <= i < n``) is added to the accumulator through a
ripple row of ``n`` adder cells covering output weights ``i .. i+n-1``; the
row's final carry lands on weight ``i+n``.  With exact cells this computes the
exact product for any cell-port wiring; with approximate cells the result -- and
in particular the *sign and magnitude of the error* -- depends on which operand
of each cell is wired to the ``A`` and ``B`` ports.  The default wiring
(``port_a="partial_product"``) is the one that reproduces the error behaviour
reported in the paper (Figure 3): the approximate product exceeds the exact
product in magnitude for the overwhelming majority of operand pairs, and the
error grows with the operand magnitude.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Union

import numpy as np

from repro.arith.adders import AdderCell, ExactFullAdder, get_cell


class CellPolicy(ABC):
    """Chooses which adder cell sits at each position of the array."""

    @abstractmethod
    def cell_at(self, row: int, col: int, n_bits: int) -> AdderCell:
        """Return the adder cell used for row ``row`` (1-based from the second
        partial-product row) and column ``col`` (bit position within the row)."""

    def describe(self) -> str:
        """Human readable description used in hardware reports."""
        return type(self).__name__


class UniformCellPolicy(CellPolicy):
    """Every cell of the array uses the same adder."""

    def __init__(self, cell: Union[str, AdderCell]):
        self.cell = get_cell(cell) if isinstance(cell, str) else cell

    def cell_at(self, row: int, col: int, n_bits: int) -> AdderCell:
        return self.cell

    def describe(self) -> str:
        return f"uniform({self.cell.name})"


class HeterogeneousCellPolicy(CellPolicy):
    """Approximate cells below a significance threshold, exact cells above.

    This models HEAP-style heterogeneous designs where only the
    low-significance part of the array is approximated, keeping the error
    magnitude small (Table 8 / Figure 15 of the paper).

    Parameters
    ----------
    approx_cell:
        Cell used when the output weight of the position (``row + col``) is
        strictly below ``exact_above_weight``.
    exact_above_weight:
        Output weight from which exact cells are used.  Expressed as a
        fraction of ``2 * n_bits`` when ``relative=True``.
    """

    def __init__(
        self,
        approx_cell: Union[str, AdderCell] = "ama1",
        exact_cell: Union[str, AdderCell] = "exact",
        exact_above_weight: float = 0.5,
        relative: bool = True,
    ):
        self.approx_cell = get_cell(approx_cell) if isinstance(approx_cell, str) else approx_cell
        self.exact_cell = get_cell(exact_cell) if isinstance(exact_cell, str) else exact_cell
        self.exact_above_weight = exact_above_weight
        self.relative = relative

    def _threshold(self, n_bits: int) -> float:
        if self.relative:
            return self.exact_above_weight * (2 * n_bits)
        return self.exact_above_weight

    def cell_at(self, row: int, col: int, n_bits: int) -> AdderCell:
        weight = row + col
        if weight < self._threshold(n_bits):
            return self.approx_cell
        return self.exact_cell

    def describe(self) -> str:
        return (
            f"heterogeneous(approx={self.approx_cell.name}, exact={self.exact_cell.name}, "
            f"threshold={self.exact_above_weight}{'*2n' if self.relative else ''})"
        )


class ArrayMultiplier:
    """Unsigned ``n_bits x n_bits`` array multiplier simulated at the cell level.

    Parameters
    ----------
    n_bits:
        Width of both operands.
    cells:
        Either a single adder cell (or its name), applied uniformly, or a
        :class:`CellPolicy`.
    port_a:
        Wiring of cell inputs.  Each cell receives the running accumulator bit,
        the freshly generated partial-product bit, and the ripple carry.  With
        ``"partial_product"`` the partial-product bit drives the cell's ``A``
        port and the accumulator bit drives ``B``; with ``"accumulator"`` the
        roles are swapped.  The carry always drives ``Cin``.  Exact cells are
        insensitive to the wiring; approximate cells are not.
    """

    def __init__(
        self,
        n_bits: int,
        cells: Union[str, AdderCell, CellPolicy] = "exact",
        port_a: str = "partial_product",
    ):
        if n_bits < 1:
            raise ValueError("n_bits must be >= 1")
        if port_a not in ("partial_product", "accumulator"):
            raise ValueError("port_a must be 'partial_product' or 'accumulator'")
        self.n_bits = n_bits
        if isinstance(cells, CellPolicy):
            self.policy: CellPolicy = cells
        else:
            self.policy = UniformCellPolicy(cells)
        self.port_a = port_a

    # ------------------------------------------------------------------ API
    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Multiply unsigned integer arrays ``a`` and ``b`` (values < 2**n_bits).

        Returns the (possibly approximate) products as ``uint64``.
        """
        a = np.asarray(a, dtype=np.uint64)
        b = np.asarray(b, dtype=np.uint64)
        a, b = np.broadcast_arrays(a, b)
        shape = a.shape
        a = a.ravel()
        b = b.ravel()
        limit = np.uint64(1) << np.uint64(self.n_bits)
        if a.size and (a.max(initial=np.uint64(0)) >= limit or b.max(initial=np.uint64(0)) >= limit):
            raise ValueError(f"operands must be < 2**{self.n_bits}")

        n = self.n_bits
        out_bits = 2 * n + 1
        # accumulator bit-plane: accum[:, w] is the bit of weight w
        accum = np.zeros((a.size, out_bits), dtype=np.uint8)

        a_bits = self._bits_of(a, n)  # (batch, n)
        b_bits = self._bits_of(b, n)

        # row 0: the first partial product is simply placed in the accumulator.
        accum[:, :n] = a_bits * b_bits[:, 0:1]

        for row in range(1, n):
            pp_row = a_bits * b_bits[:, row : row + 1]  # (batch, n)
            carry = np.zeros(a.size, dtype=np.uint8)
            for col in range(n):
                weight = row + col
                acc_bit = accum[:, weight]
                pp_bit = pp_row[:, col]
                cell = self.policy.cell_at(row, col, n)
                if self.port_a == "partial_product":
                    s, carry = cell.compute(pp_bit, acc_bit, carry)
                else:
                    s, carry = cell.compute(acc_bit, pp_bit, carry)
                accum[:, weight] = s
            accum[:, row + n] |= carry

        weights = (np.uint64(1) << np.arange(out_bits, dtype=np.uint64))[np.newaxis, :]
        product = (accum.astype(np.uint64) * weights).sum(axis=1, dtype=np.uint64)
        return product.reshape(shape)

    def lut_dtype(self) -> np.dtype:
        """Smallest unsigned dtype that can hold any product of this array.

        Products carry at most ``2 * n_bits + 1`` bits (the paper's array
        leaves one extra carry weight), so the exhaustive LUT never needs the
        ``uint64`` the cell-level simulator computes in: ``uint16`` suffices
        up to 7-bit operands and ``uint32`` covers everything a LUT is built
        for (``n_bits <= 12``), halving (or quartering) both the table's
        resident size and the gather bandwidth of LUT-accelerated emulation.
        """
        if 2 * self.n_bits + 1 <= 16:
            return np.dtype(np.uint16)
        if 2 * self.n_bits + 1 <= 32:
            return np.dtype(np.uint32)
        return np.dtype(np.uint64)

    def build_lut(self) -> np.ndarray:
        """Exhaustively tabulate the multiplier as a ``(2**n, 2**n)`` table.

        The table is indexed as ``lut[a, b]`` and is what
        :class:`repro.arith.fpm.AxFPM` uses to accelerate whole-network
        emulation.  Only practical for small widths (``n_bits <= 12``).
        Stored in the smallest sufficient unsigned dtype (:meth:`lut_dtype`).
        """
        if self.n_bits > 12:
            raise ValueError(
                "refusing to build a LUT for n_bits > 12; use direct simulation instead"
            )
        size = 1 << self.n_bits
        aa, bb = np.meshgrid(
            np.arange(size, dtype=np.uint64), np.arange(size, dtype=np.uint64), indexing="ij"
        )
        products = self.multiply(aa.ravel(), bb.ravel()).reshape(size, size)
        return products.astype(self.lut_dtype(), copy=False)

    # ------------------------------------------------------------ internals
    @staticmethod
    def _bits_of(values: np.ndarray, n_bits: int) -> np.ndarray:
        shifts = np.arange(n_bits, dtype=np.uint64)[np.newaxis, :]
        return ((values[:, np.newaxis] >> shifts) & np.uint64(1)).astype(np.uint8)

    # ------------------------------------------------------------ reporting
    def cell_census(self) -> dict:
        """Count how many cells of each type the array instantiates."""
        census: dict = {}
        for row in range(1, self.n_bits):
            for col in range(self.n_bits):
                cell = self.policy.cell_at(row, col, self.n_bits)
                census[cell.name] = census.get(cell.name, 0) + 1
        return census

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ArrayMultiplier(n_bits={self.n_bits}, cells={self.policy.describe()}, "
            f"port_a={self.port_a!r})"
        )
