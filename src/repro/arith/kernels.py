"""Fused approximate-GEMM kernels: the hot loop of the emulated Ax-FPM datapath.

Every attack experiment funnels through one computation: the contraction

    ``out[n, f, l] = sum_k  M(cols[n, k, l], weight[f, k])``

where ``M`` is a hardware multiplier model (:class:`repro.arith.fpm.Multiplier`)
and the sum is the layer's exact accumulation.  The historical path decomposed
both float32 operands on every call, gathered the mantissa LUT through
broadcast int64 fancy-indexing over a materialised ``(chunk, F, K, L)`` tensor
and re-composed with ``np.ldexp`` plus two ``np.where`` passes -- the same
"emulation is the bottleneck" problem that limited the paper's authors to
multi-day white-box runs.

This module recasts that datapath as a handful of dense table-driven kernels:

* a **signed-significand product table** is precomposed once per multiplier
  design: sign and significand are packed into a single operand code
  (:func:`repro.arith.float_format.operand_codes`) so that *one* float32
  gather returns the already-signed mantissa product, pre-scaled by
  ``2**-2*frac_bits``;
* **exponents** are applied through a small power-of-two multiply table
  instead of ``np.ldexp`` -- one int32 add and one gather (or, when the weight
  matrix is small enough, the weight's exponent is baked into a per-layer
  product table and only the activation's power of two remains);
* the **weight operand decomposition is cached per kernel**, keyed by the
  layer parameter's version counter (:class:`repro.nn.layers.Parameter`), so
  the constant operand of a conv/dense layer is decomposed once per attack
  run instead of once per forward chunk;
* accumulation is **K-blocked and in place**: flat int32 indices are formed
  with ``np.add(..., out=)`` into reused buffers, gathered with ``np.take``
  and folded into a preallocated ``(chunk, F, L)`` output -- the full
  ``(chunk, F, K, L)`` int64/float intermediates of the old path are never
  materialised.

Bit-exactness contract
----------------------
Kernels compute a **strict identity-seeded left fold** over ``k``:
``((0.0 + p[0]) + p[1]) + ...`` in float32, which is exactly what
``products.sum(axis=2, dtype=float32)`` performs over a strided reduction
axis (the pre-existing convolution path), signed zeros included.  The fused LUT kernel is bit-for-bit
identical to :class:`FallbackGemmKernel` (decompose + gather + ``ldexp``
+ left fold) for every input: the product table entries are exact by
construction (integers below ``2**24`` scaled by powers of two) and the final
scaling multiply is a single correctly-rounded float32 operation, so it agrees
with ``np.ldexp`` even for results that overflow, underflow or denormalise.
Inputs whose exponents could fall outside the provably-safe window (non-finite
activations, sums beyond float32's scaling range) route the affected call
through the reference path -- parity is never sacrificed for speed.

Obtain kernels through the capability API
:meth:`repro.arith.fpm.Multiplier.make_gemm_kernel`; multipliers without a
fused implementation (``frac_bits=23`` gate-level simulation, bfloat16,
custom models) transparently receive the generic fallback.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.arith.float_format import operand_code_side, operand_codes
from repro.counters import ProcessCounters
from repro.obs.trace import TRACER

#: numerics version of the fused GEMM kernel engine.  Bump whenever the
#: *bit patterns* this engine produces change (fold order, rounding window,
#: table composition); cells whose payloads execute through approximate
#: convolutions declare a ``"kernels"`` dependency and re-key on this value
#: (see :mod:`repro.pipeline.fingerprints` and ``docs/caching.md``).
#: Version 1: the fused engine as introduced in PR 3 -- strict left-fold
#: accumulation, signed-significand product tables, baked weight tables.
KERNEL_NUMERICS_VERSION = 1

#: bias applied to exponent sums when indexing the power-of-two table; large
#: enough that the sum of two biased float32 exponents (plus the inf/NaN
#: sentinel 128) can never index below zero
POW2_BIAS = 300

#: float32 exponent-sum window inside which ``product_table[codes] * 2**e`` is
#: provably a single correctly-rounded operation (2**e exactly representable,
#: down to the smallest subnormal power)
_SAFE_EXP_MIN = -149
_SAFE_EXP_MAX = 127

#: upper bound, in bytes, for baking a layer's weight operands into a
#: per-layer ``(K, side, F)`` product table; larger weight matrices use the
#: shared two-gather path instead (override: ``REPRO_KERNEL_BAKE_BUDGET``).
#: The hot loop only ever touches one ``(side, F)`` slice per k, so the
#: budget bounds resident memory, not the working set
DEFAULT_BAKE_BUDGET = 32 << 20

#: K-extent of one accumulation block; also bounds the reused gather buffers
#: at roughly ``chunk * F * K_BLOCK * L`` elements per dtype
DEFAULT_K_BLOCK = 16

#: soft cap on gather-buffer elements; the K-block shrinks to respect it so
#: huge spatial extents do not blow the cache the blocking exists to protect
_BLOCK_ELEMENT_TARGET = 2_000_000


def _bake_budget() -> int:
    raw = os.environ.get("REPRO_KERNEL_BAKE_BUDGET", "")
    try:
        return int(raw) if raw else DEFAULT_BAKE_BUDGET
    except ValueError:
        return DEFAULT_BAKE_BUDGET


# --------------------------------------------------------------------- stats
class KernelStats(ProcessCounters):
    """Process-level observability counters for the GEMM kernel engine.

    Monotonic within a process; the pipeline telemetry embeds per-run deltas.
    Counters are advisory only (pool workers keep their own) and are excluded
    from every determinism guarantee.
    """

    _FIELDS = (
        "fused_calls",
        "fallback_calls",
        "unsafe_calls",
        "fused_macs",
        "fallback_macs",
        "weight_cache_hits",
        "weight_cache_misses",
        "weight_tables_baked",
    )


#: the process-wide counter instance
KERNEL_STATS = KernelStats()


# -------------------------------------------------------------- shared tables
_POW2_TABLE: Optional[np.ndarray] = None

#: signed-significand product tables shared across kernel instances, keyed by
#: the multiplier's LUT cache key (same identity as ``fpm._LUT_CACHE``) plus
#: the fraction width; tables are read-only
_PRODUCT_TABLES: Dict[Tuple[Any, int], np.ndarray] = {}


def pow2_table() -> np.ndarray:
    """Flat float32 table ``t[e + POW2_BIAS] = 2.0**e`` for ``|e| <= POW2_BIAS``.

    Entries outside float32's range saturate to ``0.0`` / ``inf``; kernels only
    multiply by entries inside the provably-exact window (the rest are reached
    exclusively by calls already routed to the reference path).
    """
    global _POW2_TABLE
    if _POW2_TABLE is None:
        exponents = np.arange(-POW2_BIAS, POW2_BIAS + 1, dtype=np.float64)
        with np.errstate(over="ignore", under="ignore"):
            table = np.exp2(exponents).astype(np.float32)
        table.setflags(write=False)
        _POW2_TABLE = table
    return _POW2_TABLE


def signed_product_table(mantissa_lut: np.ndarray, frac_bits: int) -> np.ndarray:
    """Precompose the signed float32 mantissa-product table for one design.

    ``table[ca, cb]`` is the float32 value ``(-1)**(sa ^ sb) *
    mantissa_lut[sig_a, sig_b] * 2**(-2*frac_bits)`` for the operand codes of
    :func:`operand_codes`; rows and columns of the zero code are ``+0.0``
    (the hardware model's unsigned zero flush).  Every entry is exact: LUT
    products carry at most ``2*frac_bits + 3 <= 23`` bits and the scaling is a
    power of two, so the fused kernel's later single multiply by ``2**e``
    rounds exactly once -- precisely like the reference ``np.ldexp``.
    """
    half = 1 << frac_bits
    side = operand_code_side(frac_bits)
    sigs = np.arange(half, 2 * half)
    magnitude = (
        mantissa_lut[np.ix_(sigs, sigs)].astype(np.float64) * 2.0 ** (-2 * frac_bits)
    ).astype(np.float32)
    table = np.zeros((side, side), dtype=np.float32)
    table[0:half, 0:half] = magnitude  # (+, +)
    table[0:half, half : 2 * half] = -magnitude  # (+, -) -> negative product
    table[half : 2 * half, 0:half] = -magnitude
    table[half : 2 * half, half : 2 * half] = magnitude
    table.setflags(write=False)
    return table


def _resolve_product_table(multiplier) -> np.ndarray:
    """The multiplier's shared signed product table (built once per design)."""
    frac_bits = multiplier.frac_bits
    cache_key = multiplier._lut_cache_key()
    if cache_key is not None:
        key = (cache_key, frac_bits)
        table = _PRODUCT_TABLES.get(key)
        if table is None:
            with TRACER.span(
                "kernel.product_table",
                cat="kernel",
                multiplier=getattr(multiplier, "name", "?"),
                frac_bits=frac_bits,
            ):
                table = _PRODUCT_TABLES[key] = signed_product_table(
                    multiplier._get_lut(), frac_bits
                )
        return table
    return signed_product_table(multiplier._get_lut(), frac_bits)


# ------------------------------------------------------------------- kernels
class GemmKernel:
    """One layer's approximate-GEMM engine.

    Calling the kernel contracts ``cols`` of shape ``(N, K, L)`` with
    ``weight`` of shape ``(F, K)`` into ``(N, F, L)`` float32: every
    elementwise product runs through the owning hardware multiplier model and
    the K axis is accumulated as a strict float32 left fold.

    ``weight_version`` is an opaque token identifying the weight *content*
    (pass :attr:`repro.nn.layers.Parameter.version`); while it is unchanged
    the kernel may reuse any per-weight precomputation.  ``weight_key``
    additionally distinguishes slices of the same parameter (out-feature
    chunks of a dense layer).
    """

    #: whether this kernel uses the fused LUT datapath
    fused = False

    def __init__(self, multiplier) -> None:
        self.multiplier = multiplier

    def __call__(
        self,
        cols: np.ndarray,
        weight: np.ndarray,
        weight_version: Optional[Any] = None,
        weight_key: Optional[Any] = None,
    ) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}({getattr(self.multiplier, 'name', self.multiplier)!r})"


def _left_fold_k(products: np.ndarray) -> np.ndarray:
    """Strict sequential float32 fold of ``(N, F, K, L)`` products over K.

    Seeded with the additive identity ``+0.0`` -- exactly how numpy's reduce
    machinery folds a strided axis (``+0.0 + -0.0`` is ``+0.0``, so an
    all-negative-zero lane comes out positive there too).
    """
    out = np.zeros(
        (products.shape[0], products.shape[1], products.shape[3]), dtype=np.float32
    )
    for k in range(products.shape[2]):
        np.add(out, products[:, :, k, :], out=out)
    return out


class FallbackGemmKernel(GemmKernel):
    """Reference engine wrapping ``Multiplier.multiply`` -- the pre-kernel path.

    Used for multipliers without a fused implementation (gate-level
    ``frac_bits=23`` simulation, bfloat16, exact, custom models) and as the
    parity-preserving escape hatch of the fused kernel.  For spatial extents
    ``L > 1`` the reduction defers to ``products.sum(axis=2)`` -- numpy's
    strided-axis reduce is the same sequential fold, at C speed.
    """

    def __call__(
        self,
        cols: np.ndarray,
        weight: np.ndarray,
        weight_version: Optional[Any] = None,
        weight_key: Optional[Any] = None,
    ) -> np.ndarray:
        KERNEL_STATS.fallback_calls += 1
        n, k, l = cols.shape
        KERNEL_STATS.fallback_macs += n * weight.shape[0] * k * l
        products = self.multiplier.multiply(
            cols[:, np.newaxis, :, :], weight[np.newaxis, :, :, np.newaxis]
        )
        if products.shape[3] > 1:
            return products.sum(axis=2, dtype=np.float32)
        return _left_fold_k(products)


class _PreparedWeights:
    """Cached per-weight precomputation of :class:`FusedLutGemmKernel`."""

    __slots__ = (
        "shape",
        "codes",
        "codes_t",
        "exp_biased",
        "exp_biased_t",
        "exp_min",
        "exp_max",
        "baked",
    )

    def __init__(self, shape, codes, codes_t, exp_biased, exp_biased_t, exp_min, exp_max, baked):
        self.shape = shape
        self.codes = codes  #: (F, K) int32 -- operand codes (shared path)
        self.codes_t = codes_t  #: (K, F) int32, contiguous (shared path, L == 1)
        self.exp_biased = exp_biased  #: (F, K) int32 -- exponent + POW2_BIAS
        self.exp_biased_t = exp_biased_t  #: (K, F) int32, contiguous
        self.exp_min = exp_min
        self.exp_max = exp_max
        self.baked = baked  #: (K, side, F) float32 or None


class FusedLutGemmKernel(GemmKernel):
    """Fused LUT engine for :class:`repro.arith.fpm.ApproxFPM` multipliers.

    Two strategies, chosen per weight matrix:

    * **baked** (weights within the bake budget): codes *and* exponents of
      the weight operand are precomposed into a per-layer ``(K, side, F)``
      float32 table whose per-``k`` slice is a dense ``(side, F)`` matrix of
      ready-made signed products.  The hot loop gathers whole ``F``-rows with
      one ``np.take`` per ``k`` (the activation code selects the row), scales
      by the activation's power of two and folds in place -- three
      cache-friendly passes per element, and the per-``k`` working set is a
      single ``side * F`` slice;
    * **shared** (large weights): the design-wide ``(side, side)`` product
      table is gathered K-block by K-block through flat int32 indices
      (``code_a * side + code_w``) formed with ``np.add(..., out=)`` into
      reused buffers, and the exponent sum is resolved through the
      power-of-two table.  Dense layers (``L == 1``) run a transposed block
      layout so the contiguous inner axis is ``F``, not the singleton.

    Both accumulate into a preallocated output with the identity-seeded left
    fold and are bit-identical to :class:`FallbackGemmKernel`.
    """

    fused = True

    def __init__(
        self,
        multiplier,
        k_block: int = DEFAULT_K_BLOCK,
        bake_budget: Optional[int] = None,
    ) -> None:
        super().__init__(multiplier)
        # chaos point: a kernel whose table bake dies (OOM, bad codegen in a
        # real accelerator stack) raises here once per process -- the
        # runner's retry loop recovers it (the injector's once-per-key guard
        # lets the retry through)
        from repro.faults import FAULTS

        FAULTS.maybe_raise("kernel.build_fail", getattr(multiplier, "name", "?"))
        self.frac_bits = int(multiplier.frac_bits)
        self.side = operand_code_side(self.frac_bits)
        self.k_block = max(1, int(k_block))
        self.bake_budget = _bake_budget() if bake_budget is None else int(bake_budget)
        self._product_table = _resolve_product_table(multiplier)
        self._product_flat = self._product_table.ravel()
        self._pow2 = pow2_table()
        self._fallback = FallbackGemmKernel(multiplier)
        self._weight_version: Any = object()  # never equal to a caller token
        self._prepared: Dict[Any, _PreparedWeights] = {}
        self._buffers: Dict[str, Tuple[Tuple[int, ...], list]] = {}

    # ------------------------------------------------------------- weights
    def _prepare_weights(
        self, weight: np.ndarray, version: Optional[Any], key: Optional[Any]
    ) -> _PreparedWeights:
        if version is None or version != self._weight_version:
            # unknown or changed content: drop everything derived from it
            self._prepared.clear()
            self._weight_version = version if version is not None else object()
        cache_key = key if key is not None else "__weight__"
        prepared = self._prepared.get(cache_key)
        if prepared is not None and prepared.shape == weight.shape:
            KERNEL_STATS.weight_cache_hits += 1
            return prepared
        KERNEL_STATS.weight_cache_misses += 1
        with TRACER.span(
            "kernel.prepare_weights",
            cat="kernel",
            multiplier=getattr(self.multiplier, "name", "?"),
            shape=list(weight.shape),
        ) as span:
            codes, exponents = operand_codes(weight, self.frac_bits)
            f, k = weight.shape
            exp_min = int(exponents.min()) if exponents.size else 0
            exp_max = int(exponents.max()) if exponents.size else 0
            baked = None
            if self._can_bake(f * k, exp_min, exp_max):
                baked = self._bake(codes, exponents)
                KERNEL_STATS.weight_tables_baked += 1
            # the strategy decision is the span's payload: baked per-layer
            # tables vs the design-wide shared product table
            span["strategy"] = "baked" if baked is not None else "shared"
            exp_biased = (exponents + np.int32(POW2_BIAS)).astype(np.int32)
            prepared = _PreparedWeights(
                shape=weight.shape,
                codes=codes,
                codes_t=np.ascontiguousarray(codes.T),
                exp_biased=exp_biased,
                exp_biased_t=np.ascontiguousarray(exp_biased.T),
                exp_min=exp_min,
                exp_max=exp_max,
                baked=baked,
            )
            self._prepared[cache_key] = prepared
            return prepared

    def _can_bake(self, n_weights: int, exp_min: int, exp_max: int) -> bool:
        """Whether baking the weight exponents keeps every table entry exact.

        Exactness needs ``sig * 2**(e - 2*frac_bits)`` representable as a
        normal float32 for every weight exponent ``e`` (sig can be as small
        as 1 and carries up to ``2*frac_bits + 3`` bits), and the table must
        fit the memory budget.
        """
        if self.side * n_weights * 4 > self.bake_budget:
            return False
        return exp_min >= 2 * self.frac_bits - 126 and exp_max <= 124

    def _bake(self, codes: np.ndarray, exponents: np.ndarray) -> np.ndarray:
        """Fold codes and exponents into a per-``k`` ``(K, side, F)`` table.

        Built in float64 (exact for <= 23-bit integers times powers of two)
        and downcast only once representability is guaranteed by
        :meth:`_can_bake`, so every entry equals the real-valued intermediate
        and the kernel's final multiply stays a single rounding.
        """
        f, k = codes.shape
        table = np.empty((k, self.side, f), dtype=np.float32)
        for col in range(k):
            slab = self._product_table[:, codes[:, col]].astype(np.float64)
            slab *= np.exp2(exponents[:, col].astype(np.float64))[np.newaxis, :]
            table[col] = slab.astype(np.float32)
        return table

    # ------------------------------------------------------------- buffers
    def _scratch(self, name: str, shape: Tuple[int, ...], dtypes: Tuple) -> list:
        """Reused per-kernel work buffers, re-allocated only on shape change."""
        cached = self._buffers.get(name)
        if cached is None or cached[0] != shape:
            cached = (shape, [np.empty(shape, dtype=dt) for dt in dtypes])
            self._buffers[name] = cached
        return cached[1]

    def _block_extent(self, n: int, f: int, k: int, l: int) -> int:
        """K-block width: configured cap, shrunk so buffers stay cache-sized."""
        per_k = max(1, n * f * l)
        return max(1, min(self.k_block, k, _BLOCK_ELEMENT_TARGET // per_k))

    # ---------------------------------------------------------------- call
    def __call__(
        self,
        cols: np.ndarray,
        weight: np.ndarray,
        weight_version: Optional[Any] = None,
        weight_key: Optional[Any] = None,
    ) -> np.ndarray:
        cols = np.ascontiguousarray(cols, dtype=np.float32)
        weight = np.ascontiguousarray(weight, dtype=np.float32)
        n, k, l = cols.shape
        f = weight.shape[0]
        if n == 0 or f == 0 or l == 0:
            return np.zeros((n, f, l), dtype=np.float32)
        prepared = self._prepare_weights(weight, weight_version, weight_key)

        codes_a, exp_a = operand_codes(cols, self.frac_bits)
        exp_a_min = int(exp_a.min())
        exp_a_max = int(exp_a.max())
        if prepared.baked is not None:
            # the baked multiply is exact for every finite activation
            # exponent; only inf/NaN activations (exponent 128) escape
            safe = exp_a_max <= _SAFE_EXP_MAX
        else:
            safe = (
                exp_a_min + prepared.exp_min >= _SAFE_EXP_MIN
                and exp_a_max + prepared.exp_max <= _SAFE_EXP_MAX
            )
        if not safe:
            KERNEL_STATS.unsafe_calls += 1
            return self._fallback(cols, weight)

        KERNEL_STATS.fused_calls += 1
        KERNEL_STATS.fused_macs += n * f * k * l
        if prepared.baked is not None:
            return self._run_baked(prepared, codes_a, exp_a)
        if l == 1:
            return self._run_shared_dense(prepared, codes_a, exp_a)
        return self._run_shared_blocked(prepared, codes_a, exp_a)

    # ------------------------------------------------------------ strategies
    def _run_baked(self, prepared, codes_a, exp_a) -> np.ndarray:
        """Per-``k`` row gather from the baked ``(K, side, F)`` table."""
        n, k, l = codes_a.shape
        table = prepared.baked
        f = table.shape[2]
        scale_a = np.take(self._pow2, exp_a + np.int32(POW2_BIAS))  # exact 2**e
        # (N, L, F) working layout: gathered rows land contiguously
        (buf,) = self._scratch("baked", (n, l, f), (np.float32,))
        acc = np.zeros((n, l, f), dtype=np.float32)  # identity-seeded fold
        for col in range(k):
            np.take(table[col], codes_a[:, col, :], axis=0, out=buf)
            np.multiply(buf, scale_a[:, col, :, np.newaxis], out=buf)
            np.add(acc, buf, out=acc)
        return np.ascontiguousarray(acc.transpose(0, 2, 1))

    def _run_shared_dense(self, prepared, codes_a, exp_a) -> np.ndarray:
        """Shared-table path for ``L == 1``: transposed ``(N, kb, F)`` blocks."""
        n, k, _ = codes_a.shape
        f = prepared.shape[0]
        a_idx = codes_a[:, :, 0] * np.int32(self.side)  # (N, K)
        exp_a2 = exp_a[:, :, 0]
        kb = self._block_extent(n, f, k, 1)
        idx, prod, scale = self._scratch(
            "shared_t", (n, kb, f), (np.int32, np.float32, np.float32)
        )
        out = np.zeros((n, f), dtype=np.float32)
        for k0 in range(0, k, kb):
            k1 = min(k, k0 + kb)
            width = k1 - k0
            i = idx[:, :width, :]
            p = prod[:, :width, :]
            s = scale[:, :width, :]
            np.add(a_idx[:, k0:k1, np.newaxis], prepared.codes_t[np.newaxis, k0:k1, :], out=i)
            np.take(self._product_flat, i, out=p, mode="clip")
            np.add(
                exp_a2[:, k0:k1, np.newaxis],
                prepared.exp_biased_t[np.newaxis, k0:k1, :],
                out=i,
            )
            np.take(self._pow2, i, out=s, mode="clip")
            np.multiply(p, s, out=p)
            for j in range(width):
                np.add(out, p[:, j, :], out=out)
        return out[:, :, np.newaxis]

    def _run_shared_blocked(self, prepared, codes_a, exp_a) -> np.ndarray:
        """Shared-table path: K-blocked flat-int32 gathers into ``(N, F, L)``."""
        n, k, l = codes_a.shape
        f = prepared.shape[0]
        a_idx = codes_a * np.int32(self.side)
        kb = self._block_extent(n, f, k, l)
        idx, prod, scale = self._scratch(
            "shared", (n, f, kb, l), (np.int32, np.float32, np.float32)
        )
        # identity-seeded like numpy's reduce: +0.0 + -0.0 == +0.0
        out = np.zeros((n, f, l), dtype=np.float32)
        for k0 in range(0, k, kb):
            k1 = min(k, k0 + kb)
            width = k1 - k0
            i = idx[:, :, :width, :]
            p = prod[:, :, :width, :]
            s = scale[:, :, :width, :]
            np.add(
                a_idx[:, np.newaxis, k0:k1, :],
                prepared.codes[np.newaxis, :, k0:k1, np.newaxis],
                out=i,
            )
            np.take(self._product_flat, i, out=p, mode="clip")
            np.add(
                exp_a[:, np.newaxis, k0:k1, :],
                prepared.exp_biased[np.newaxis, :, k0:k1, np.newaxis],
                out=i,
            )
            np.take(self._pow2, i, out=s, mode="clip")
            np.multiply(p, s, out=p)
            for j in range(width):
                np.add(out, p[:, :, j, :], out=out)
        return out
