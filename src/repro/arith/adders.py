"""Full-adder cell library.

The Ax-FPM of the paper replaces the mantissa multiplier of a floating point
multiplier with an array multiplier whose full adders are *approximate mirror
adders* (Gupta et al., "Low-Power Digital Signal Processing Using Approximate
Adders", TCAD 2013).  The paper uses the most aggressive variant, AMA5, whose
entire logic collapses to two buffers::

    Sum  = B
    Cout = A

Every cell in this module operates element-wise on numpy integer arrays whose
values are 0 or 1, so that a whole batch of multiplications can be simulated
through the gate-level structure at once.

The exact truth table of a full adder, for reference::

    A B Cin | Sum Cout
    0 0  0  |  0   0
    0 0  1  |  1   0
    0 1  0  |  1   0
    0 1  1  |  0   1
    1 0  0  |  1   0
    1 0  1  |  0   1
    1 1  0  |  0   1
    1 1  1  |  1   1
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Tuple

import numpy as np

from repro.registry import registry

Bits = np.ndarray

#: unified registry of full-adder cells (namespace ``"adder-cell"``).  Cells
#: are stateless, so each entry's factory returns a shared singleton instance.
ADDER_CELLS = registry("adder-cell")


class AdderCell(ABC):
    """A single-bit adder cell evaluated element-wise over numpy bit arrays."""

    #: short identifier used in registries and reports
    name: str = "adder"

    #: number of transistors in a CMOS (mirror-adder style) implementation,
    #: used by the hardware cost model (:mod:`repro.hw.energy_model`).
    transistor_count: int = 24

    #: relative switching delay of the Sum path, normalised to the exact cell.
    relative_delay: float = 1.0

    @abstractmethod
    def compute(self, a: Bits, b: Bits, cin: Bits) -> Tuple[Bits, Bits]:
        """Return ``(sum, cout)`` for the given input bits."""

    def truth_table(self) -> List[Tuple[int, int, int, int, int]]:
        """Enumerate the cell's behaviour as ``(a, b, cin, sum, cout)`` rows."""
        rows = []
        for a in (0, 1):
            for b in (0, 1):
                for cin in (0, 1):
                    s, c = self.compute(np.array([a]), np.array([b]), np.array([cin]))
                    rows.append((a, b, cin, int(s[0]), int(c[0])))
        return rows

    def error_count(self) -> Tuple[int, int]:
        """Number of erroneous (sum, cout) entries out of the 8 input combos."""
        exact = ExactFullAdder()
        sum_errors = 0
        cout_errors = 0
        for a, b, cin, s, c in self.truth_table():
            es, ec = exact.compute(np.array([a]), np.array([b]), np.array([cin]))
            sum_errors += int(s != int(es[0]))
            cout_errors += int(c != int(ec[0]))
        return sum_errors, cout_errors

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}()"


class ExactFullAdder(AdderCell):
    """The exact mirror adder: ``Sum = A ^ B ^ Cin``, ``Cout = majority``."""

    name = "exact"
    transistor_count = 24
    relative_delay = 1.0

    def compute(self, a: Bits, b: Bits, cin: Bits) -> Tuple[Bits, Bits]:
        s = a ^ b ^ cin
        cout = (a & b) | (cin & (a ^ b))
        return s, cout


class AMA1(AdderCell):
    """Approximate mirror adder 1: exact carry, ``Sum = ~Cout``.

    The sum output is wrong for the two input combinations ``000`` and ``111``.
    """

    name = "ama1"
    transistor_count = 20
    relative_delay = 0.85

    def compute(self, a: Bits, b: Bits, cin: Bits) -> Tuple[Bits, Bits]:
        cout = (a & b) | (cin & (a ^ b))
        s = 1 - cout
        return s, cout


class AMA2(AdderCell):
    """Approximate mirror adder 2: exact carry, ``Sum = A``.

    The sum output is wrong for four of the eight input combinations.
    """

    name = "ama2"
    transistor_count = 14
    relative_delay = 0.7

    def compute(self, a: Bits, b: Bits, cin: Bits) -> Tuple[Bits, Bits]:
        cout = (a & b) | (cin & (a ^ b))
        s = a.copy()
        return s, cout


class AMA3(AdderCell):
    """Approximate mirror adder 3: ``Cout = (A & B) | (A & Cin)``, ``Sum = ~Cout``.

    Both outputs carry errors; cheaper than AMA1/AMA2.
    """

    name = "ama3"
    transistor_count = 11
    relative_delay = 0.6

    def compute(self, a: Bits, b: Bits, cin: Bits) -> Tuple[Bits, Bits]:
        cout = (a & b) | (a & cin)
        s = 1 - cout
        return s, cout


class AMA4(AdderCell):
    """Approximate mirror adder 4: ``Cout = A``, ``Sum = A ^ B ^ Cin`` kept exact."""

    name = "ama4"
    transistor_count = 15
    relative_delay = 0.75

    def compute(self, a: Bits, b: Bits, cin: Bits) -> Tuple[Bits, Bits]:
        cout = a.copy()
        s = a ^ b ^ cin
        return s, cout


class AMA5(AdderCell):
    """Approximate mirror adder 5 -- the cell used by the paper's Ax-FPM.

    The whole adder degenerates to two buffers::

        Sum  = B
        Cout = A

    The carry input is ignored entirely, which makes the injected error
    strongly data dependent: it appears only for specific combinations of the
    operand bits and is therefore hard to model or predict, which is exactly
    the property Defensive Approximation exploits.
    """

    name = "ama5"
    transistor_count = 5
    relative_delay = 0.25

    def compute(self, a: Bits, b: Bits, cin: Bits) -> Tuple[Bits, Bits]:
        return b.copy(), a.copy()


for _cell in (ExactFullAdder(), AMA1(), AMA2(), AMA3(), AMA4(), AMA5()):
    ADDER_CELLS.register(
        _cell.name,
        (lambda cell: lambda: cell)(_cell),
        metadata={
            "transistor_count": _cell.transistor_count,
            "relative_delay": _cell.relative_delay,
        },
    )
del _cell


def list_cells() -> List[str]:
    """Names of all registered adder cells."""
    return sorted(ADDER_CELLS.names())


def get_cell(name: str) -> AdderCell:
    """Look up an adder cell by name (shim over the ``"adder-cell"`` registry)."""
    return ADDER_CELLS.create(name)
