"""IEEE-754 single precision field manipulation and bfloat16 helpers.

The floating point multipliers in :mod:`repro.arith.fpm` decompose float32
operands into sign / exponent / significand fields, run the (approximate)
significand multiplication through the gate-level array multiplier, and
re-assemble the result.  This module provides the field codec.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: number of explicit fraction bits in IEEE-754 single precision
FLOAT32_FRACTION_BITS = 23
#: exponent bias of IEEE-754 single precision
FLOAT32_BIAS = 127


@dataclass
class FloatFields:
    """Decomposed float32 values.

    Attributes
    ----------
    sign:
        0 for positive, 1 for negative (``int8``).
    exponent:
        Unbiased exponent (``int32``).  Zeros and subnormals are reported with
        the exponent they would have after flushing to zero (see ``is_zero``).
    significand:
        Integer significand including the implicit leading one, i.e. a value in
        ``[2**frac_bits, 2**(frac_bits+1))`` for normal numbers and 0 for
        zeros/subnormals (``uint64``).
    frac_bits:
        Number of fraction bits retained in ``significand``.
    is_zero:
        Boolean mask of values treated as zero (true zeros and subnormals,
        which the hardware model flushes to zero).
    """

    sign: np.ndarray
    exponent: np.ndarray
    significand: np.ndarray
    frac_bits: int
    is_zero: np.ndarray


def decompose_float32(x: np.ndarray, frac_bits: int = FLOAT32_FRACTION_BITS) -> FloatFields:
    """Split float32 values into sign / exponent / significand fields.

    Parameters
    ----------
    x:
        Input array (converted to float32).
    frac_bits:
        How many fraction bits to keep in the significand.  Values below 23
        model a reduced-precision mantissa datapath: the fraction is truncated
        (as the hardware would do by simply not wiring the low bits).
    """
    if not 1 <= frac_bits <= FLOAT32_FRACTION_BITS:
        raise ValueError("frac_bits must be in [1, 23]")
    x32 = np.ascontiguousarray(x, dtype=np.float32)
    bits = x32.view(np.uint32)
    sign = ((bits >> np.uint32(31)) & np.uint32(1)).astype(np.int8)
    raw_exp = ((bits >> np.uint32(23)) & np.uint32(0xFF)).astype(np.int32)
    fraction = (bits & np.uint32(0x7FFFFF)).astype(np.uint64)

    is_zero = raw_exp == 0  # true zeros and subnormals are flushed to zero
    exponent = raw_exp - FLOAT32_BIAS

    drop = FLOAT32_FRACTION_BITS - frac_bits
    fraction_trunc = fraction >> np.uint64(drop)
    implicit_one = np.uint64(1) << np.uint64(frac_bits)
    significand = np.where(is_zero, np.uint64(0), fraction_trunc | implicit_one)
    exponent = np.where(is_zero, 0, exponent)
    return FloatFields(
        sign=sign,
        exponent=exponent.astype(np.int32),
        significand=significand.astype(np.uint64),
        frac_bits=frac_bits,
        is_zero=is_zero,
    )


def compose_float32(
    sign: np.ndarray,
    exponent: np.ndarray,
    significand: np.ndarray,
    frac_bits: int,
    is_zero: np.ndarray,
) -> np.ndarray:
    """Re-assemble float32 values from fields produced by a multiplier datapath.

    ``significand`` is interpreted as an integer scaled by ``2**-frac_bits``
    (so normal values lie in ``[1, 2)`` after scaling).  Values flagged in
    ``is_zero`` come out as (signed) zero.  Exponent overflow saturates to
    +/-inf and underflow flushes to zero, mirroring a simple hardware datapath
    without subnormal support.
    """
    sig = significand.astype(np.float64) * (2.0 ** -frac_bits)
    value = sig * np.exp2(exponent.astype(np.float64))
    value = np.where(sign.astype(bool), -value, value)
    value = np.where(is_zero, 0.0, value)
    return value.astype(np.float32)


def operand_code_side(frac_bits: int) -> int:
    """Number of distinct operand codes produced by :func:`operand_codes`."""
    return 2 * (1 << frac_bits) + 1


def operand_codes(x: np.ndarray, frac_bits: int) -> "tuple[np.ndarray, np.ndarray]":
    """Pack sign and significand into a single per-operand gather code.

    The fused GEMM kernels (:mod:`repro.arith.kernels`) index their
    precomposed signed-significand product tables with these codes, so one
    gather returns the already-signed float32 mantissa product.  The layout
    for ``frac_bits = f`` (``H = 2**f``):

    * ``[0, H)``      -- positive normals, ``significand - H``;
    * ``[H, 2*H)``    -- negative normals, ``(significand - H) | H``;
    * ``2*H``         -- all zeros (and flushed subnormals), sign discarded,
      matching the hardware model's unsigned zero flush.

    Returns ``(codes, exponents)`` as ``int32`` arrays of ``x``'s shape;
    exponents are the unbiased values from :func:`decompose_float32` (0 for
    zeros, 128 for inf/NaN encodings).
    """
    fields = decompose_float32(x, frac_bits=frac_bits)
    half = np.int32(1 << frac_bits)
    codes = (fields.significand.astype(np.int32) - half) | (
        fields.sign.astype(np.int32) << np.int32(frac_bits)
    )
    codes = np.where(fields.is_zero, np.int32(2) * half, codes)
    return codes.astype(np.int32, copy=False), fields.exponent.astype(np.int32, copy=False)


def bfloat16_truncate(x: np.ndarray) -> np.ndarray:
    """Truncate float32 values to the bfloat16 format (1 sign, 8 exp, 7 frac).

    The low 16 bits of the float32 encoding are simply dropped, which is the
    cheapest hardware realisation and the one the paper contrasts against
    (Figure 13: the resulting noise is small, mostly negative and
    input-independent).  The result is returned as float32 for convenience.
    """
    x32 = np.ascontiguousarray(x, dtype=np.float32)
    bits = x32.view(np.uint32)
    truncated = bits & np.uint32(0xFFFF0000)
    return truncated.view(np.float32).copy()
