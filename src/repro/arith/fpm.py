"""Floating point multipliers: exact, Ax-FPM, HEAP and Bfloat16.

The central hardware artefact of the paper is the **Ax-FPM**: an IEEE-754
single precision multiplier whose mantissa multiplier is an array multiplier
built entirely from AMA5 approximate full adders.  The exponent adder and the
sign logic stay exact -- errors in the exponent would destroy the network (the
paper cites reliability studies to justify confining the approximation to the
mantissa).

All multipliers expose a single vectorised entry point,
``multiply(a, b) -> float32 ndarray``, so that convolution and dense layers can
be re-targeted to any of them by dependency injection
(:class:`repro.nn.approx.ApproxConv2d`, :class:`repro.core.defense.DefensiveApproximation`).

Emulation precision
-------------------
Simulating the full 23-bit mantissa datapath gate-by-gate for every
multiply-accumulate of a CNN is what limited the original authors to multi-day
white-box runs.  We keep the gate-level model but make the *emulated fraction
width* a parameter (default 8 bits).  For widths up to
:data:`LUT_MAX_FRAC_BITS` the gate-level array is exhaustively tabulated once
and the emulation becomes a table lookup, which preserves the exact cell-level
error behaviour at that width while making end-to-end attack experiments run in
minutes.  ``frac_bits=23`` recovers the paper's full-width datapath (no LUT).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Tuple

import numpy as np

from repro.arith.adders import AdderCell
from repro.arith.array_multiplier import (
    ArrayMultiplier,
    CellPolicy,
    HeterogeneousCellPolicy,
    UniformCellPolicy,
)
from repro.arith.float_format import bfloat16_truncate, compose_float32, decompose_float32
from repro.registry import registry

#: unified registry of multiplier hardware models (namespace ``"multiplier"``)
MULTIPLIERS = registry("multiplier")

#: widest fraction for which an exhaustive mantissa LUT is built automatically
LUT_MAX_FRAC_BITS = 10

#: process-level LUT memo, keyed by the mantissa array's configuration.
#: Every multiplier instance of the same design shares one table, so the
#: exhaustive gate-level tabulation runs once per process -- pipeline workers
#: rebuild it on first use (or inherit it copy-on-write under ``fork``)
#: instead of once per resolved variant / noise-profile cell.
_LUT_CACHE: Dict[Tuple[str, int, str], np.ndarray] = {}


class Multiplier(ABC):
    """Common interface of all scalar-multiplier hardware models."""

    #: short identifier used in registries, reports and benchmark tables
    name: str = "multiplier"

    @abstractmethod
    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise product of ``a`` and ``b`` under this hardware model."""

    def make_gemm_kernel(self):
        """A fresh GEMM engine for one layer (see :mod:`repro.arith.kernels`).

        The base implementation wraps :meth:`multiply` in the generic
        :class:`~repro.arith.kernels.FallbackGemmKernel`, so every multiplier
        -- including custom ones -- supports the capability; designs with an
        exhaustive mantissa LUT override this with the fused engine.
        """
        from repro.arith.kernels import FallbackGemmKernel
        from repro.obs.trace import TRACER

        with TRACER.span(
            "kernel.build", cat="kernel", strategy="reference-fallback", multiplier=self.name
        ):
            return FallbackGemmKernel(self)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.multiply(a, b)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}()"


@MULTIPLIERS.register("exact", metadata={"summary": "IEEE-754 float32 reference"})
class ExactMultiplier(Multiplier):
    """Reference IEEE-754 single precision multiplier (what PyTorch would do)."""

    name = "exact"

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return (np.asarray(a, dtype=np.float32) * np.asarray(b, dtype=np.float32)).astype(
            np.float32
        )


@MULTIPLIERS.register("bfloat16", metadata={"summary": "bfloat16-truncated operands"})
class Bfloat16Multiplier(Multiplier):
    """Multiplier operating on bfloat16-truncated operands (Section 7.2).

    Both operands are truncated to bfloat16 (1 sign, 8 exponent, 7 fraction
    bits) before an exact multiplication.  The resulting noise is small, mostly
    negative and input-independent (Figure 13), which is why it provides no
    robustness benefit.
    """

    name = "bfloat16"

    def __init__(self, truncate_output: bool = False):
        self.truncate_output = truncate_output

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        product = bfloat16_truncate(a) * bfloat16_truncate(b)
        if self.truncate_output:
            product = bfloat16_truncate(product)
        return product.astype(np.float32)


class ApproxFPM(Multiplier):
    """Floating point multiplier with a gate-level (approximate) mantissa array.

    Parameters
    ----------
    cells:
        Adder cell (name or instance) used uniformly in the mantissa array, or
        a :class:`~repro.arith.array_multiplier.CellPolicy` for heterogeneous
        designs.
    frac_bits:
        Number of fraction bits of the emulated mantissa datapath (1..23).
    port_a:
        Cell port wiring, forwarded to :class:`ArrayMultiplier`.
    use_lut:
        Force LUT acceleration on/off.  Defaults to on for
        ``frac_bits <= LUT_MAX_FRAC_BITS``.
    """

    name = "approx-fpm"

    def __init__(
        self,
        cells="ama5",
        frac_bits: int = 8,
        port_a: str = "partial_product",
        use_lut: Optional[bool] = None,
    ):
        self.frac_bits = int(frac_bits)
        if not 1 <= self.frac_bits <= 23:
            raise ValueError("frac_bits must be in [1, 23]")
        self.mantissa_multiplier = ArrayMultiplier(
            n_bits=self.frac_bits + 1, cells=cells, port_a=port_a
        )
        if use_lut is None:
            use_lut = self.frac_bits <= LUT_MAX_FRAC_BITS
        self.use_lut = bool(use_lut)
        self._lut: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ API
    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.float32)
        b = np.asarray(b, dtype=np.float32)
        # Decompose the operands in their *own* (possibly smaller, broadcastable)
        # shapes; the LUT fancy-indexing / the gate-level simulator broadcast the
        # significand pair, so the full-size operand tensors are never
        # materialised.  This matters because the approximate convolution feeds
        # a (1, F, K, 1) weight tensor against a (N, 1, K, L) patch tensor.
        fa = decompose_float32(a, frac_bits=self.frac_bits)
        fb = decompose_float32(b, frac_bits=self.frac_bits)

        sig_product = self._mantissa_product(fa.significand, fb.significand)
        sign = fa.sign ^ fb.sign
        exponent = fa.exponent + fb.exponent - 2 * self.frac_bits
        is_zero = fa.is_zero | fb.is_zero

        # assemble: value = +/- significand_product * 2**exponent, flushing
        # zero-operand products (and exponent underflow) to zero.
        magnitude = np.ldexp(sig_product.astype(np.float32), exponent)
        result = np.where(sign.astype(bool), -magnitude, magnitude)
        result = np.where(is_zero, np.float32(0.0), result)
        return result.astype(np.float32)

    def make_gemm_kernel(self):
        """The fused LUT-driven GEMM engine when this design is tabulated.

        Falls back to the generic multiply-wrapping kernel for widths beyond
        :data:`LUT_MAX_FRAC_BITS` (gate-level simulation stays authoritative).
        """
        if not self.use_lut:
            return super().make_gemm_kernel()
        from repro.arith.kernels import FusedLutGemmKernel
        from repro.obs.trace import TRACER

        with TRACER.span(
            "kernel.build", cat="kernel", strategy="fused-lut", multiplier=self.name
        ):
            return FusedLutGemmKernel(self)

    # ------------------------------------------------------------ internals
    def _mantissa_product(self, sa: np.ndarray, sb: np.ndarray) -> np.ndarray:
        if self.use_lut:
            lut = self._get_lut()
            return lut[sa.astype(np.intp), sb.astype(np.intp)]
        sa_b, sb_b = np.broadcast_arrays(sa, sb)
        return self.mantissa_multiplier.multiply(sa_b, sb_b)

    def _lut_cache_key(self) -> Optional[Tuple[str, int, str]]:
        """Process-wide identity of this design's exhaustive mantissa LUT.

        ``None`` for custom :class:`CellPolicy` subclasses: only the built-in
        policies have parameter-complete ``describe()`` strings, so anything
        else gets per-instance tables instead of (possibly wrong) shared ones.
        The fused GEMM kernels key their derived signed-product tables by the
        same identity.
        """
        policy = self.mantissa_multiplier.policy
        if type(policy) not in (UniformCellPolicy, HeterogeneousCellPolicy):
            return None
        return (policy.describe(), self.mantissa_multiplier.n_bits, self.mantissa_multiplier.port_a)

    def _get_lut(self) -> np.ndarray:
        if self._lut is None:
            key = self._lut_cache_key()
            if key is None:
                self._lut = self.mantissa_multiplier.build_lut()
                return self._lut
            lut = _LUT_CACHE.get(key)
            if lut is None:
                lut = self.mantissa_multiplier.build_lut()
                lut.setflags(write=False)  # shared across instances
                _LUT_CACHE[key] = lut
            self._lut = lut
        return self._lut

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{type(self).__name__}(frac_bits={self.frac_bits}, "
            f"cells={self.mantissa_multiplier.policy.describe()}, "
            f"port_a={self.mantissa_multiplier.port_a!r})"
        )


@MULTIPLIERS.register("axfpm", metadata={"summary": "AMA5 mantissa array (the paper's Ax-FPM)"})
class AxFPM(ApproxFPM):
    """The paper's approximate floating point multiplier.

    Every cell of the mantissa array multiplier is an AMA5 approximate mirror
    adder (``Sum = B``, ``Cout = A``).  With the default wiring the injected
    noise reproduces the three observations of Figure 3: it is data-dependent
    and discontinuous, it inflates the magnitude of the product in the vast
    majority of cases, and it grows with the magnitude of the operands.
    """

    name = "axfpm"

    def __init__(self, frac_bits: int = 8, use_lut: Optional[bool] = None):
        super().__init__(
            cells="ama5", frac_bits=frac_bits, port_a="partial_product", use_lut=use_lut
        )


@MULTIPLIERS.register("heap", metadata={"summary": "heterogeneous AMA3/exact mantissa array"})
class HEAPMultiplier(ApproxFPM):
    """HEAP-style heterogeneous approximate floating point multiplier.

    The original HEAP design (Guesmi et al., RSP 2019) selects a combination of
    approximate full adders that minimises accuracy loss.  We model it as an
    array whose low-significance columns use AMA3 cells while the
    high-significance columns stay exact.  The default configuration is
    calibrated so that the error profile matches the shape the paper reports
    (Figure 15 / Table 8): roughly a third the relative error of Ax-FPM, far
    weaker magnitude inflation, and weaker data dependence.
    """

    name = "heap"

    def __init__(
        self,
        frac_bits: int = 8,
        approx_fraction: float = 0.8,
        approx_cell="ama3",
        use_lut: Optional[bool] = None,
    ):
        policy = HeterogeneousCellPolicy(
            approx_cell=approx_cell, exact_cell="exact", exact_above_weight=approx_fraction
        )
        super().__init__(
            cells=policy, frac_bits=frac_bits, port_a="partial_product", use_lut=use_lut
        )
        self.approx_fraction = approx_fraction


def list_multipliers() -> list:
    """Names of all registered multipliers."""
    return MULTIPLIERS.names()


def get_multiplier(name: str, **kwargs) -> Multiplier:
    """Instantiate a multiplier by name (shim over the ``"multiplier"`` registry)."""
    return MULTIPLIERS.create(name, **kwargs)
