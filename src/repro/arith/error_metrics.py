"""Error metrics and noise profiling for approximate multipliers.

Implements the metrics the paper uses to characterise multiplier accuracy
(Table 8) and the noise profiles of Figures 3, 13 and 15:

* **MRED** -- mean relative error distance, ``mean(|approx - exact| / |exact|)``.
* **NMED** -- normalised mean error distance, ``mean(|approx - exact|) / max|exact|``.
* :func:`profile_multiplier` -- samples random operand pairs and reports the
  error distribution, including the fraction of products whose magnitude is
  inflated by the approximation (the paper reports 96 % for Ax-FPM and 34 % for
  HEAP).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.arith.fpm import ExactMultiplier, Multiplier


def mred(exact: np.ndarray, approx: np.ndarray, eps: float = 1e-12) -> float:
    """Mean relative error distance between exact and approximate results.

    Entries whose exact value is (numerically) zero are excluded, matching the
    usual definition for multiplier characterisation.
    """
    exact = np.asarray(exact, dtype=np.float64)
    approx = np.asarray(approx, dtype=np.float64)
    mask = np.abs(exact) > eps
    if not np.any(mask):
        return 0.0
    return float(np.mean(np.abs(approx[mask] - exact[mask]) / np.abs(exact[mask])))


def nmed(exact: np.ndarray, approx: np.ndarray) -> float:
    """Normalised mean error distance (normalised by the largest exact magnitude)."""
    exact = np.asarray(exact, dtype=np.float64)
    approx = np.asarray(approx, dtype=np.float64)
    max_exact = float(np.max(np.abs(exact))) if exact.size else 0.0
    if max_exact == 0.0:
        return 0.0
    return float(np.mean(np.abs(approx - exact)) / max_exact)


@dataclass
class ErrorProfile:
    """Summary of a multiplier's noise behaviour over sampled operand pairs."""

    multiplier_name: str
    n_samples: int
    operand_low: float
    operand_high: float
    mred: float
    nmed: float
    mean_error: float
    mean_abs_error: float
    max_abs_error: float
    fraction_magnitude_inflated: float
    fraction_positive_error: float
    #: Pearson correlation between |exact product| and |error|; a strongly
    #: positive value means the noise grows with the operand magnitude
    #: (observation (iii) of Figure 3).
    error_magnitude_correlation: float
    exact_products: np.ndarray = field(repr=False)
    errors: np.ndarray = field(repr=False)

    def summary(self) -> str:
        """One-line human readable summary used by benches and examples."""
        return (
            f"{self.multiplier_name}: MRED={self.mred:.4f} NMED={self.nmed:.4f} "
            f"inflated={100 * self.fraction_magnitude_inflated:.1f}% "
            f"corr(|x*y|,|err|)={self.error_magnitude_correlation:.2f}"
        )


def profile_multiplier(
    multiplier: Multiplier,
    n_samples: int = 100_000,
    operand_range: Tuple[float, float] = (-1.0, 1.0),
    rng: Optional[np.random.Generator] = None,
    reference: Optional[Multiplier] = None,
) -> ErrorProfile:
    """Sample random operand pairs and characterise the multiplier's error.

    This is the experiment behind Figure 3 (Ax-FPM), Figure 13 (bfloat16) and
    Figure 15 (Ax-FPM vs HEAP): operands are drawn uniformly from
    ``operand_range`` (the paper uses [-1, 1] / [0, 1] because almost all
    intra-CNN values live there) and the error is the difference between the
    approximate and the exact product.
    """
    rng = rng or np.random.default_rng(0)
    reference = reference or ExactMultiplier()
    low, high = operand_range
    a = rng.uniform(low, high, size=n_samples).astype(np.float32)
    b = rng.uniform(low, high, size=n_samples).astype(np.float32)

    exact = reference.multiply(a, b).astype(np.float64)
    approx = multiplier.multiply(a, b).astype(np.float64)
    errors = approx - exact

    nonzero = np.abs(exact) > 1e-12
    inflated = np.abs(approx[nonzero]) > np.abs(exact[nonzero])
    fraction_inflated = float(np.mean(inflated)) if nonzero.any() else 0.0

    abs_exact = np.abs(exact)
    abs_err = np.abs(errors)
    if np.std(abs_exact) > 0 and np.std(abs_err) > 0:
        corr = float(np.corrcoef(abs_exact, abs_err)[0, 1])
    else:
        corr = 0.0

    return ErrorProfile(
        multiplier_name=multiplier.name,
        n_samples=n_samples,
        operand_low=low,
        operand_high=high,
        mred=mred(exact, approx),
        nmed=nmed(exact, approx),
        mean_error=float(np.mean(errors)),
        mean_abs_error=float(np.mean(abs_err)),
        max_abs_error=float(np.max(abs_err)) if errors.size else 0.0,
        fraction_magnitude_inflated=fraction_inflated,
        fraction_positive_error=float(np.mean(errors > 0)),
        error_magnitude_correlation=corr,
        exact_products=exact,
        errors=errors,
    )
