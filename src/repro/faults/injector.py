"""Deterministic fault injection behind ``REPRO_FAULTS``.

The fault model is a small catalog of *named injection points*
(:data:`FAULT_POINTS`) wired into the layers whose failures the execution
stack must survive: pool workers, the artifact store's publication and lease
protocol, the kernel build path and the HTTP layer.  Each point is armed by
an entry in ``REPRO_FAULTS``::

    REPRO_FAULTS="worker.crash:0.1:7,shard.hang:0.05:11"

where each entry is ``point:probability:seed`` (seed optional, default 0).
Whether a given *site* fires is a pure function of ``(seed, point, key)`` --
the key is stable content such as ``<cell digest>:<shard>:<attempt>`` -- so a
chaos run is exactly reproducible: same seed, same schedule of crashes,
hangs and torn writes.  Folding the *attempt* into the key is what makes
retries converge: the first attempt of an unlucky shard dies
deterministically, its retry draws a fresh coin.

In-process points additionally fire **at most once per key**: a retried
computation inside the same process (the serial runner's retry loop, an HTTP
client's second request) succeeds instead of looping on the same
deterministic coin.  Process-killing points (``worker.crash``) don't need
the guard -- the process that fired is gone.

Everything here is observability-grade machinery: with ``REPRO_FAULTS``
unset, :meth:`FaultInjector.should_inject` is one attribute read and a
``return False`` (the ``perf_pipeline --check`` gate holds it under 2%), and
no injection point can fire.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.counters import ProcessCounters

#: the injection-point catalog: name -> where it bites
FAULT_POINTS = {
    "worker.crash": "pool worker hard-exits mid-shard (simulated segfault)",
    "shard.hang": "pool worker wedges mid-shard (sleeps past any timeout)",
    "store.torn_write": "artifact publication leaves a truncated file instead",
    "store.lease_steal": "a writer's lease refresh finds its claim usurped",
    "kernel.build_fail": "fused-GEMM kernel construction raises once",
    "http.disconnect": "the service drops a connection before responding",
    "remote.timeout": "a remote store call stalls past its request deadline",
    "remote.error_5xx": "the remote store answers 500 instead of serving",
    "remote.corrupt_body": "a fetched remote artifact body arrives corrupted",
    "remote.reject_meta": "a fetched remote meta sidecar carries stale fingerprints",
}

#: how long an injected hang sleeps (seconds); ``REPRO_FAULT_HANG_SECONDS``
#: overrides it.  Chosen to outlive any sane ``REPRO_SHARD_TIMEOUT`` so a
#: hang is always resolved by the timeout/retry machinery, never by luck.
DEFAULT_HANG_SECONDS = 3600.0


class InjectedFault(RuntimeError):
    """An armed injection point fired (carries the point and site key)."""

    def __init__(self, point: str, key: str):
        # args must round-trip through pickle: workers raise this across the
        # process-pool boundary and unpickling re-calls __init__(*args)
        super().__init__(point, key)
        self.point = point
        self.key = key

    def __str__(self) -> str:
        return f"injected fault {self.point} at {self.key}"


class FaultStats(ProcessCounters):
    """Process-level injection counters, one field per catalog point.

    Same snapshot/delta contract as the kernel/query/store counters; the
    service's ``/metrics`` exposes the totals as
    ``repro_fault_injections_total{point=...}``.  ``checks`` counts every
    armed-point evaluation (fired or not) -- the denominator chaos tests and
    the faults-off overhead estimate both need.
    """

    _FIELDS = (
        "checks",
        "injected",
        "worker_crash",
        "shard_hang",
        "store_torn_write",
        "store_lease_steal",
        "kernel_build_fail",
        "http_disconnect",
        "remote_timeout",
        "remote_error_5xx",
        "remote_corrupt_body",
        "remote_reject_meta",
    )


#: process-wide injection counters
FAULT_STATS = FaultStats()


@dataclass(frozen=True)
class FaultSpec:
    """One armed injection point: fire with ``probability`` under ``seed``."""

    point: str
    probability: float
    seed: int = 0


def parse_fault_specs(text: Optional[str]) -> Dict[str, FaultSpec]:
    """``"point:prob[:seed],..."`` -> ``{point: FaultSpec}``.

    Unknown points and malformed entries raise ``ValueError`` -- a chaos run
    with a typo'd point silently injecting nothing would defeat its purpose.
    """
    specs: Dict[str, FaultSpec] = {}
    if not text or not text.strip():
        return specs
    for entry in text.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(
                f"bad REPRO_FAULTS entry {entry!r} (expected point:probability[:seed])"
            )
        point = parts[0].strip()
        if point not in FAULT_POINTS:
            known = ", ".join(sorted(FAULT_POINTS))
            raise ValueError(f"unknown fault point {point!r} (known: {known})")
        try:
            probability = float(parts[1])
        except ValueError:
            raise ValueError(f"bad probability in REPRO_FAULTS entry {entry!r}") from None
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of [0, 1] in REPRO_FAULTS entry {entry!r}")
        try:
            seed = int(parts[2]) if len(parts) == 3 else 0
        except ValueError:
            raise ValueError(f"bad seed in REPRO_FAULTS entry {entry!r}") from None
        specs[point] = FaultSpec(point=point, probability=probability, seed=seed)
    return specs


def _hang_seconds() -> float:
    raw = os.environ.get("REPRO_FAULT_HANG_SECONDS", "")
    try:
        return max(0.001, float(raw))
    except ValueError:
        return DEFAULT_HANG_SECONDS


class FaultInjector:
    """The process-wide injection switchboard (singleton :data:`FAULTS`).

    Reads ``REPRO_FAULTS`` once at construction (pool workers inherit the
    environment under both ``fork`` and ``spawn``, so parent and workers
    always agree on the schedule); tests re-arm via :meth:`configure` or
    :meth:`reload`.
    """

    def __init__(self, env: Optional[str] = None):
        self._specs: Dict[str, FaultSpec] = {}
        self._fired: Set[Tuple[str, str]] = set()
        self.configure(os.environ.get("REPRO_FAULTS") if env is None else env)

    @property
    def enabled(self) -> bool:
        return bool(self._specs)

    def configure(self, text: Optional[str]) -> None:
        """Arm the points described by ``text`` (``None``/empty disarms all)."""
        self._specs = parse_fault_specs(text)
        self._fired = set()

    def reload(self) -> None:
        """Re-read ``REPRO_FAULTS`` (tests that monkeypatch the environment)."""
        self.configure(os.environ.get("REPRO_FAULTS"))

    # ------------------------------------------------------------- decisions
    @staticmethod
    def _decide(spec: FaultSpec, key: str) -> bool:
        """The deterministic coin: pure function of ``(seed, point, key)``."""
        digest = hashlib.sha256(f"{spec.seed}|{spec.point}|{key}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64 < spec.probability

    def should_inject(self, point: str, key: str) -> bool:
        """Whether the armed point fires at this site (at most once per key).

        The disarmed path -- the shipped default -- is one dict truthiness
        check; injection sites call this unconditionally.
        """
        if not self._specs:
            return False
        spec = self._specs.get(point)
        if spec is None:
            return False
        FAULT_STATS.checks += 1
        if (point, key) in self._fired or not self._decide(spec, key):
            return False
        self._fired.add((point, key))
        FAULT_STATS.injected += 1
        field = point.replace(".", "_")
        setattr(FAULT_STATS, field, getattr(FAULT_STATS, field) + 1)
        return True

    # ------------------------------------------------------------- actions
    def maybe_crash(self, key: str) -> None:
        """``worker.crash``: hard-exit the process, as a segfault would."""
        if self.should_inject("worker.crash", key):
            os._exit(117)

    def maybe_hang(self, key: str) -> None:
        """``shard.hang``: wedge this thread until killed or timed out."""
        if self.should_inject("shard.hang", key):
            deadline = time.monotonic() + _hang_seconds()
            while time.monotonic() < deadline:
                time.sleep(0.05)

    def maybe_raise(self, point: str, key: str) -> None:
        """Raise :class:`InjectedFault` if ``point`` fires at ``key``."""
        if self.should_inject(point, key):
            raise InjectedFault(point, key)


#: the process singleton every injection site consults
FAULTS = FaultInjector()
