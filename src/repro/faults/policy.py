"""Fault-tolerance policy knobs: timeouts, retry budgets, backoff.

One module owns every retry/timeout environment variable so the fault model
documented in ``docs/faults.md`` has a single source of truth.  All of these
are *execution* policy: like ``--jobs`` and the shard size, no setting
changes a single result bit -- they only change how failures are survived.
"""

from __future__ import annotations

import os
import random
from typing import Optional, Tuple

#: default bounded retry budget per shard (attempts = retries + 1)
DEFAULT_SHARD_RETRIES = 2

#: exponential-backoff shape for shard/cell retries: ``base * 2**attempt``
#: seconds, capped, with +/-25% jitter so simultaneous retries spread out
BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0

#: how many times the engine rebuilds a broken/hung worker pool before it
#: degrades to serial in-process execution instead of aborting the run
POOL_RESPAWN_LIMIT = 3

#: default lease-wait polling: start interval and backoff cap (seconds)
DEFAULT_LEASE_POLL = (0.02, 0.25)

#: default retry budget for service jobs that die on a retryable error
DEFAULT_JOB_RETRIES = 1

#: default per-request deadline for remote artifact-store calls (seconds)
DEFAULT_REMOTE_TIMEOUT = 5.0

#: default bounded retry budget per remote call (attempts = retries + 1);
#: retries apply to transport errors, timeouts and 5xx answers -- never to
#: a clean 404 (a miss is an answer, not a failure)
DEFAULT_REMOTE_RETRIES = 2

#: default circuit-breaker policy for the remote tier:
#: (consecutive-failure threshold that opens it, cooldown seconds before a
#: half-open probe is allowed)
DEFAULT_REMOTE_BREAKER = (5, 30.0)


def _float_env(name: str, default: Optional[float]) -> Optional[float]:
    raw = os.environ.get(name, "")
    try:
        return float(raw)
    except ValueError:
        return default


def _int_env(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    try:
        return int(raw)
    except ValueError:
        return default


def shard_timeout() -> Optional[float]:
    """Per-shard wall-clock budget (``REPRO_SHARD_TIMEOUT`` seconds).

    ``None`` (unset, or any value <= 0) disables the timeout -- the shipped
    default, because a legitimate full-profile attack cell can run for
    minutes.  Chaos runs and services that must bound tail latency set it.
    """
    value = _float_env("REPRO_SHARD_TIMEOUT", None)
    if value is None or value <= 0:
        return None
    return value


def shard_retries() -> int:
    """Bounded retry budget per shard/cell (``REPRO_SHARD_RETRIES``)."""
    return max(0, _int_env("REPRO_SHARD_RETRIES", DEFAULT_SHARD_RETRIES))


def backoff_seconds(attempt: int, rng: Optional[random.Random] = None) -> float:
    """Exponential backoff with jitter before retry number ``attempt`` (>= 1).

    ``base * 2**(attempt-1)`` capped at :data:`BACKOFF_CAP`, scaled by a
    uniform +/-25% jitter.  Jitter is timing-only randomness -- it cannot
    reach any result bit -- so a plain :mod:`random` draw is fine.
    """
    delay = min(BACKOFF_CAP, BACKOFF_BASE * (2 ** max(0, attempt - 1)))
    jitter = (rng or random).uniform(0.75, 1.25)
    return delay * jitter


def lease_poll() -> Tuple[float, float]:
    """Lease-wait polling ``(start_interval, cap)`` in seconds.

    ``REPRO_STORE_LEASE_POLL`` accepts ``interval`` or ``interval:cap``
    (e.g. ``0.05:1.0``).  Waiters back off exponentially from the start
    interval to the cap, jittered, so N workers waiting out one writer don't
    thundering-herd the artifact and lease files in lockstep.
    """
    raw = os.environ.get("REPRO_STORE_LEASE_POLL", "")
    start, cap = DEFAULT_LEASE_POLL
    if raw.strip():
        parts = raw.split(":")
        try:
            start = max(0.001, float(parts[0]))
            cap = max(start, float(parts[1])) if len(parts) > 1 and parts[1] else max(start, cap)
        except ValueError:
            start, cap = DEFAULT_LEASE_POLL
    return start, max(start, cap)


def remote_timeout() -> float:
    """Per-request deadline for remote store calls (``REPRO_REMOTE_TIMEOUT``).

    Applies to every HTTP exchange with the remote artifact tier --
    connect, send and read together.  Values <= 0 fall back to the default:
    the remote tier is an optimisation, so "no deadline" is never a valid
    policy for it.
    """
    value = _float_env("REPRO_REMOTE_TIMEOUT", None)
    if value is None or value <= 0:
        return DEFAULT_REMOTE_TIMEOUT
    return value


def remote_retries() -> int:
    """Bounded retry budget per remote store call (``REPRO_REMOTE_RETRIES``).

    Retried failures are transport errors, timeouts and 5xx responses, with
    the same jittered exponential :func:`backoff_seconds` schedule the shard
    retries use.  404 is a miss, not a failure, and is never retried.
    """
    return max(0, _int_env("REPRO_REMOTE_RETRIES", DEFAULT_REMOTE_RETRIES))


def remote_breaker() -> Tuple[int, float]:
    """Circuit-breaker policy ``(threshold, cooldown)`` for the remote tier.

    ``REPRO_REMOTE_BREAKER`` accepts ``threshold`` or ``threshold:cooldown``
    (e.g. ``3:10``): after ``threshold`` *consecutive* remote failures the
    breaker opens and every remote call short-circuits to a local fallback;
    after ``cooldown`` seconds one half-open probe is allowed through --
    success closes the breaker, failure re-opens it for another cooldown.
    """
    raw = os.environ.get("REPRO_REMOTE_BREAKER", "")
    threshold, cooldown = DEFAULT_REMOTE_BREAKER
    if raw.strip():
        parts = raw.split(":")
        try:
            threshold = max(1, int(parts[0]))
            if len(parts) > 1 and parts[1]:
                cooldown = max(0.0, float(parts[1]))
        except ValueError:
            threshold, cooldown = DEFAULT_REMOTE_BREAKER
    return threshold, cooldown


def job_retries() -> int:
    """Default service-job retry budget (``REPRO_JOB_RETRIES``).

    Per-submission ``{"retries": N}`` overrides it; retries apply only to
    retryable execution failures, never to submission (validation) errors.
    """
    return max(0, _int_env("REPRO_JOB_RETRIES", DEFAULT_JOB_RETRIES))
