"""Crash-resumable run manifests.

A run that dies -- worker segfault cascade, OOM kill, ``kill -9`` on the CLI
process -- leaves its completed cells published in the artifact store, but
nothing that *names* them as a unit.  The manifest closes that gap: the
runner writes ``results/<label>.manifest.json`` incrementally (atomic
replace after every completed cell), recording each finished cell's digest,
kind and outcome.  ``python -m repro run --resume`` (and service resubmits)
read the previous manifest back and count every still-published completed
cell as *resumed* in the run telemetry -- turning "the cache probably saved
us" into an auditable number: a resumed run's ``cells_resumed`` plus its
recomputed cells must account for exactly the interrupted run's plan.

The manifest is evidence, not a cache layer: cell values still live in (and
are trusted from) the content-addressed store, whose per-cell dependency
fingerprints already guarantee a stale artifact can never be mistaken for a
finished one -- a digest listed here but missing or superseded in the store
is simply recomputed.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.parallel.locks import atomic_write_json

#: manifest schema version (bump on incompatible layout changes)
MANIFEST_VERSION = 1


class RunManifest:
    """One run's incrementally-written record of completed cells."""

    def __init__(
        self,
        path: Union[str, Path],
        label: str,
        experiments: Optional[List[str]] = None,
        cells_total: int = 0,
    ):
        self.path = Path(path)
        self.label = label
        self.experiments = list(experiments or [])
        self.cells_total = int(cells_total)
        self.completed: Dict[str, Dict[str, Any]] = {}
        self.finished = False
        self._started_unix = time.time()

    # ------------------------------------------------------------------ write
    def record(self, digest: str, kind: str, status: str, seconds: float = 0.0) -> None:
        """Mark one cell done and republish the manifest atomically.

        Called as each cell completes, so the on-disk manifest always names
        every cell finished *before* a crash -- atomic replace means a reader
        (or a resumed run) sees the previous complete manifest or this one,
        never a torn file.
        """
        self.completed[digest] = {
            "kind": kind,
            "status": status,
            "seconds": round(float(seconds), 4),
        }
        self._write()

    def finish(self) -> None:
        """Mark the run complete (every planned cell accounted for)."""
        self.finished = True
        self._write()

    def _write(self) -> None:
        atomic_write_json(self.path, self.to_dict(), indent=2, sort_keys=True)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": MANIFEST_VERSION,
            "label": self.label,
            "experiments": self.experiments,
            "cells_total": self.cells_total,
            "cells_completed": len(self.completed),
            "finished": self.finished,
            "started_unix": round(self._started_unix, 3),
            "completed": self.completed,
        }

    # ------------------------------------------------------------------- read
    @classmethod
    def load(cls, path: Union[str, Path]) -> Optional["RunManifest"]:
        """The manifest at ``path``, or ``None`` (absent / corrupt / foreign)."""
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict) or data.get("version") != MANIFEST_VERSION:
            return None
        manifest = cls(
            path,
            label=str(data.get("label", "")),
            experiments=[str(n) for n in data.get("experiments", [])],
            cells_total=int(data.get("cells_total", 0)),
        )
        completed = data.get("completed")
        if isinstance(completed, dict):
            manifest.completed = {
                str(digest): dict(entry)
                for digest, entry in completed.items()
                if isinstance(entry, dict)
            }
        manifest.finished = bool(data.get("finished", False))
        return manifest
