"""repro.faults -- fault injection, retry policy and crash-resumable runs.

Three pieces make the execution stack's fault tolerance *testable* instead
of aspirational:

* :mod:`repro.faults.injector` -- a registry of named injection points
  (``worker.crash``, ``shard.hang``, ``store.torn_write``, ...) armed via
  ``REPRO_FAULTS=point:prob:seed``, deterministic per site key so chaos runs
  replay exactly;
* :mod:`repro.faults.policy` -- the retry/timeout/backoff knobs
  (``REPRO_SHARD_TIMEOUT``, ``REPRO_SHARD_RETRIES``,
  ``REPRO_STORE_LEASE_POLL``, ``REPRO_JOB_RETRIES``) consumed by the
  parallel engine, the artifact store and the service job queue;
* :mod:`repro.faults.manifest` -- the incrementally-written per-run manifest
  behind ``python -m repro run --resume``.

See ``docs/faults.md`` for the fault model and the injection-point catalog.
"""

from repro.faults.injector import (
    FAULT_POINTS,
    FAULT_STATS,
    FAULTS,
    FaultInjector,
    FaultSpec,
    FaultStats,
    InjectedFault,
    parse_fault_specs,
)
from repro.faults.manifest import RunManifest
from repro.faults.policy import (
    POOL_RESPAWN_LIMIT,
    backoff_seconds,
    job_retries,
    lease_poll,
    remote_breaker,
    remote_retries,
    remote_timeout,
    shard_retries,
    shard_timeout,
)

__all__ = [
    "FAULT_POINTS",
    "FAULT_STATS",
    "FAULTS",
    "FaultInjector",
    "FaultSpec",
    "FaultStats",
    "InjectedFault",
    "parse_fault_specs",
    "RunManifest",
    "POOL_RESPAWN_LIMIT",
    "backoff_seconds",
    "job_retries",
    "lease_poll",
    "remote_breaker",
    "remote_retries",
    "remote_timeout",
    "shard_retries",
    "shard_timeout",
]
