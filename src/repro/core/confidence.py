"""Classification-confidence analysis (Figure 12 and Section 6).

The paper defines classification confidence as the gap between the softmax
score of the true class and the runner-up class.  Defensive Approximation is
observed to *increase* this gap on clean inputs, which the authors link to the
robustness gains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.network import Sequential


def classification_confidence(
    model: Sequential, images: np.ndarray, labels: np.ndarray, batch_size: int = 64
) -> np.ndarray:
    """Per-sample confidence ``C = p[true] - max_{j != true} p[j]``.

    Samples the model's softmax output; misclassified samples naturally get a
    negative confidence (the true class is not the top class).
    """
    labels = np.asarray(labels, dtype=np.int64)
    confidences = np.empty(len(images), dtype=np.float64)
    for start in range(0, len(images), batch_size):
        stop = min(len(images), start + batch_size)
        probs = model.predict_proba(images[start:stop])
        idx = np.arange(stop - start)
        true_scores = probs[idx, labels[start:stop]]
        masked = probs.copy()
        masked[idx, labels[start:stop]] = -np.inf
        runner_up = masked.max(axis=1)
        confidences[start:stop] = true_scores - runner_up
    return confidences


@dataclass
class ConfidenceComparison:
    """Confidence distributions of the exact and the approximate classifier."""

    exact_confidences: np.ndarray
    approximate_confidences: np.ndarray

    def fraction_above(self, threshold: float) -> tuple[float, float]:
        """Fraction of samples whose confidence exceeds ``threshold`` (exact, approx)."""
        return (
            float(np.mean(self.exact_confidences > threshold)),
            float(np.mean(self.approximate_confidences > threshold)),
        )

    def mean_confidence(self) -> tuple[float, float]:
        """Mean confidence of both classifiers (exact, approx)."""
        return (
            float(np.mean(self.exact_confidences)),
            float(np.mean(self.approximate_confidences)),
        )

    def cumulative_distribution(self, n_points: int = 101) -> dict:
        """CDF samples of both confidence distributions (the data behind Figure 12)."""
        thresholds = np.linspace(-1.0, 1.0, n_points)
        exact_cdf = np.array([np.mean(self.exact_confidences <= t) for t in thresholds])
        approx_cdf = np.array([np.mean(self.approximate_confidences <= t) for t in thresholds])
        return {"thresholds": thresholds, "exact_cdf": exact_cdf, "approximate_cdf": approx_cdf}


def compare_confidence(
    exact_model: Sequential,
    approximate_model: Sequential,
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int = 64,
) -> ConfidenceComparison:
    """Compute the Figure 12 comparison on a set of clean samples."""
    return ConfidenceComparison(
        exact_confidences=classification_confidence(exact_model, images, labels, batch_size),
        approximate_confidences=classification_confidence(
            approximate_model, images, labels, batch_size
        ),
    )
