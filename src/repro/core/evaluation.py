"""Threat-model evaluation harnesses.

Three harnesses mirror the paper's attack scenarios (Section 3.1):

* :func:`evaluate_transferability` -- adversarial examples are crafted on a
  *source* classifier (the exact model) and replayed against one or more
  *target* classifiers (the DA model, DQ models, bfloat16, ...).  Behind
  Tables 2, 3, 5 and 10.
* :func:`evaluate_black_box` -- adversarial examples are crafted on a
  *substitute* model trained from the victim's query responses and replayed
  against the victim.  Behind Table 4.
* :func:`evaluate_white_box` -- the attack runs directly against the victim
  with full (BPDA) gradient access; robustness is measured by the perturbation
  budget required.  Behind Figures 8-11.

Following the paper's methodology, transfer rates are reported over the
samples that (a) the source classifier originally classifies correctly and
(b) the attack successfully fools on the source -- that is the "100 %" column
of the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.attacks.base import Attack, Classifier
from repro.core.metrics import l2_distance, mse, psnr


def select_correctly_classified(
    classifier: Classifier,
    images: np.ndarray,
    labels: np.ndarray,
    max_samples: Optional[int] = None,
    batch_size: int = 128,
) -> np.ndarray:
    """Indices of samples the classifier labels correctly (optionally capped).

    With ``max_samples`` the scan early-stops once enough correct samples are
    found, predicting in ``batch_size`` chunks: selecting a handful of victims
    no longer pays for classifying the whole test set (which is expensive on
    the emulated approximate hardware).  The returned indices are identical to
    a full scan followed by a cap -- the selection is a prefix property -- so
    every shard of a cell reproduces the same victim set.
    """
    labels = np.asarray(labels)
    if max_samples is None:
        predictions = classifier.predict(images)
        return np.flatnonzero(predictions == labels)
    collected = []
    found = 0
    for start in range(0, len(images), batch_size):
        stop = min(len(images), start + batch_size)
        predictions = classifier.predict(images[start:stop])
        hits = np.flatnonzero(predictions == labels[start:stop]) + start
        collected.append(hits)
        found += len(hits)
        if found >= max_samples:
            break
    indices = np.concatenate(collected) if collected else np.array([], dtype=np.intp)
    return indices[:max_samples]


# ------------------------------------------------------------ transferability
@dataclass
class TransferabilityEvaluation:
    """Outcome of one transferability experiment for one attack method."""

    attack_name: str
    source_name: str
    n_crafted: int
    n_source_success: int
    source_success_rate: float
    #: per-target success rate among the examples that fooled the source model
    target_success_rates: Dict[str, float] = field(default_factory=dict)
    #: per-target robustness = 1 - success rate (the paper's headline metric)
    target_robustness: Dict[str, float] = field(default_factory=dict)

    def summary_row(self, target_order: Sequence[str]) -> list:
        """Row for the paper-style table: attack, source rate, then each target."""
        row: list = [self.attack_name, f"{100 * self.source_success_rate:.0f}%"]
        row += [f"{100 * self.target_success_rates.get(t, float('nan')):.0f}%" for t in target_order]
        return row


def evaluate_transferability(
    source: Classifier,
    targets: Dict[str, Classifier],
    attack: Attack,
    images: np.ndarray,
    labels: np.ndarray,
    max_samples: Optional[int] = None,
    require_source_correct: bool = True,
) -> TransferabilityEvaluation:
    """Craft adversarial examples on ``source`` and replay them on ``targets``."""
    images = np.asarray(images, dtype=np.float32)
    labels = np.asarray(labels, dtype=np.int64)
    if require_source_correct:
        indices = select_correctly_classified(source, images, labels, max_samples)
    else:
        indices = np.arange(len(images) if max_samples is None else min(len(images), max_samples))
    x = images[indices]
    y = labels[indices]

    result = attack.generate(source, x, y)
    fooled = result.success
    adv = result.adversarial[fooled]
    adv_labels = y[fooled]

    evaluation = TransferabilityEvaluation(
        attack_name=attack.name,
        source_name="source",
        n_crafted=len(x),
        n_source_success=int(fooled.sum()),
        source_success_rate=float(fooled.mean()) if len(fooled) else 0.0,
    )
    for name, target in targets.items():
        if len(adv) == 0:
            evaluation.target_success_rates[name] = 0.0
            evaluation.target_robustness[name] = 1.0
            continue
        target_preds = target.predict(adv)
        success = float(np.mean(target_preds != adv_labels))
        evaluation.target_success_rates[name] = success
        evaluation.target_robustness[name] = 1.0 - success
    return evaluation


# ---------------------------------------------------------------- black box
@dataclass
class BlackBoxEvaluation:
    """Outcome of one black-box (substitute-model) experiment."""

    attack_name: str
    n_crafted: int
    substitute_success_rate: float
    victim_success_rate: float

    @property
    def victim_robustness(self) -> float:
        return 1.0 - self.victim_success_rate


def evaluate_black_box(
    victim: Classifier,
    substitute: Classifier,
    attack: Attack,
    images: np.ndarray,
    labels: np.ndarray,
    max_samples: Optional[int] = None,
    require_substitute_correct: bool = True,
) -> BlackBoxEvaluation:
    """Craft adversarial examples on the substitute and replay them on the victim."""
    images = np.asarray(images, dtype=np.float32)
    labels = np.asarray(labels, dtype=np.int64)
    if require_substitute_correct:
        indices = select_correctly_classified(substitute, images, labels, max_samples)
    else:
        indices = np.arange(len(images) if max_samples is None else min(len(images), max_samples))
    x = images[indices]
    y = labels[indices]

    result = attack.generate(substitute, x, y)
    fooled = result.success
    adv = result.adversarial[fooled]
    adv_labels = y[fooled]
    if len(adv):
        victim_preds = victim.predict(adv)
        victim_success = float(np.mean(victim_preds != adv_labels))
    else:
        victim_success = 0.0
    return BlackBoxEvaluation(
        attack_name=attack.name,
        n_crafted=len(x),
        substitute_success_rate=float(fooled.mean()) if len(fooled) else 0.0,
        victim_success_rate=victim_success,
    )


# ----------------------------------------------------------------- white box
@dataclass
class WhiteBoxEvaluation:
    """Outcome of one white-box experiment: perturbation budget statistics."""

    attack_name: str
    victim_name: str
    n_samples: int
    success_rate: float
    l2: np.ndarray
    mse: np.ndarray
    psnr: np.ndarray

    @property
    def mean_l2(self) -> float:
        return float(np.mean(self.l2)) if len(self.l2) else float("nan")

    @property
    def mean_mse(self) -> float:
        return float(np.mean(self.mse)) if len(self.mse) else float("nan")

    @property
    def mean_psnr(self) -> float:
        return float(np.mean(self.psnr)) if len(self.psnr) else float("nan")


def evaluate_white_box(
    victim: Classifier,
    attack: Attack,
    images: np.ndarray,
    labels: np.ndarray,
    max_samples: Optional[int] = None,
    victim_name: str = "victim",
) -> WhiteBoxEvaluation:
    """Run an attack directly against the victim and measure the noise it needs.

    Only samples the victim classifies correctly are attacked (fooling an
    already-misclassified sample requires no perturbation), and the
    perturbation statistics are computed over the successful adversarial
    examples, as in Figures 8-11.
    """
    images = np.asarray(images, dtype=np.float32)
    labels = np.asarray(labels, dtype=np.int64)
    indices = select_correctly_classified(victim, images, labels, max_samples)
    x = images[indices]
    y = labels[indices]
    result = attack.generate(victim, x, y)
    success = result.success
    adv = result.adversarial[success]
    clean = x[success]
    return WhiteBoxEvaluation(
        attack_name=attack.name,
        victim_name=victim_name,
        n_samples=len(x),
        success_rate=float(success.mean()) if len(success) else 0.0,
        l2=l2_distance(clean, adv) if len(adv) else np.array([]),
        mse=mse(clean, adv) if len(adv) else np.array([]),
        psnr=psnr(clean, adv) if len(adv) else np.array([]),
    )
