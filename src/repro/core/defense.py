"""Defensive Approximation: the drop-in hardware defense.

:class:`DefensiveApproximation` wraps a *trained* exact model and produces its
approximate counterpart by swapping the convolution hardware for an
approximate multiplier (Ax-FPM by default).  Nothing else changes: same
architecture, same parameters, no retraining or fine-tuning -- exactly the
deployment model of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.arith.fpm import AxFPM, Multiplier
from repro.attacks.base import Classifier
from repro.nn.models import convert_to_approximate
from repro.nn.network import Sequential
from repro.nn.training import evaluate_accuracy


@dataclass
class AccuracyReport:
    """Clean accuracy of the exact model and of its DA counterpart."""

    exact_accuracy: float
    approximate_accuracy: float

    @property
    def accuracy_drop(self) -> float:
        return self.exact_accuracy - self.approximate_accuracy


class DefensiveApproximation:
    """Builds and manages the approximate (defended) version of a trained model.

    Parameters
    ----------
    exact_model:
        Trained exact classifier (its parameters are shared, not copied).
    multiplier:
        Hardware multiplier model used for the convolution layers; defaults to
        the paper's Ax-FPM.
    convert_linear:
        Also approximate dense layers (off by default, as in the paper).
    batch_chunk:
        Emulation memory/throughput knob forwarded to the approximate layers.
    """

    def __init__(
        self,
        exact_model: Sequential,
        multiplier: Optional[Multiplier] = None,
        convert_linear: bool = False,
        batch_chunk: int = 32,
    ):
        self.exact_model = exact_model
        self.multiplier = multiplier if multiplier is not None else AxFPM()
        self.approximate_model = convert_to_approximate(
            exact_model,
            multiplier=self.multiplier,
            convert_linear=convert_linear,
            batch_chunk=batch_chunk,
        )

    # ------------------------------------------------------------------ API
    def exact_classifier(self, clip_min: float = 0.0, clip_max: float = 1.0) -> Classifier:
        """Attack-facing facade of the undefended exact model."""
        return Classifier(self.exact_model, clip_min, clip_max)

    def defended_classifier(self, clip_min: float = 0.0, clip_max: float = 1.0) -> Classifier:
        """Attack-facing facade of the DA-protected model."""
        return Classifier(self.approximate_model, clip_min, clip_max)

    def accuracy_report(
        self, images: np.ndarray, labels: np.ndarray, batch_size: int = 128
    ) -> AccuracyReport:
        """Clean-accuracy comparison between the exact and the defended model.

        This is the paper's Section 8.1 check: the defense must not degrade
        accuracy on non-adversarial inputs.
        """
        return AccuracyReport(
            exact_accuracy=evaluate_accuracy(self.exact_model, images, labels, batch_size),
            approximate_accuracy=evaluate_accuracy(
                self.approximate_model, images, labels, batch_size
            ),
        )

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Predictions of the defended model."""
        return self.approximate_model.predict(images)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DefensiveApproximation(model={self.exact_model.name!r}, "
            f"multiplier={self.multiplier.name})"
        )
