"""Defensive Approximation core: the paper's contribution.

* :mod:`repro.core.defense` -- :class:`DefensiveApproximation`, the drop-in
  hardware conversion of a trained model plus accuracy bookkeeping.
* :mod:`repro.core.evaluation` -- the three threat-model harnesses
  (transferability, black-box, white-box) behind Tables 2-5 and Figures 8-11.
* :mod:`repro.core.substitute` -- black-box substitute model training.
* :mod:`repro.core.confidence` -- classification-confidence analysis (Figure 12).
* :mod:`repro.core.metrics` -- image distance metrics (L0/L2/Linf, MSE, PSNR).
* :mod:`repro.core.results` -- small table/report formatting helpers shared by
  the benchmarks and examples.
"""

#: numerics version of the evaluation harnesses (victim selection, success
#: accounting, distance metrics).  Bump when how cells *measure* changes
#: without the underlying attacks or models changing.
EVALUATION_NUMERICS_VERSION = 1

from repro.core.confidence import ConfidenceComparison, classification_confidence, compare_confidence
from repro.core.defense import DefensiveApproximation
from repro.core.evaluation import (
    BlackBoxEvaluation,
    TransferabilityEvaluation,
    WhiteBoxEvaluation,
    evaluate_black_box,
    evaluate_transferability,
    evaluate_white_box,
)
from repro.core.metrics import l0_distance, l2_distance, linf_distance, mse, psnr
from repro.core.results import format_table
from repro.core.substitute import train_substitute

__all__ = [
    "DefensiveApproximation",
    "TransferabilityEvaluation",
    "BlackBoxEvaluation",
    "WhiteBoxEvaluation",
    "evaluate_transferability",
    "evaluate_black_box",
    "evaluate_white_box",
    "train_substitute",
    "classification_confidence",
    "compare_confidence",
    "ConfidenceComparison",
    "l0_distance",
    "l2_distance",
    "linf_distance",
    "mse",
    "psnr",
    "format_table",
]
