"""Small result-formatting helpers shared by benchmarks and examples."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a plain-text table with aligned columns.

    Used by the benchmark harnesses to print the same rows the paper's tables
    report (the values come from our simulator, the layout mirrors the paper).
    """
    str_rows: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        str_rows.append([_format_cell(cell) for cell in row])
    widths = [max(len(r[i]) for r in str_rows) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(str_rows):
        lines.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * widths[j] for j in range(len(headers))))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_percentage(value: float) -> str:
    """Format a 0..1 fraction as a percentage string (paper-table style)."""
    return f"{100.0 * value:.0f}%"
