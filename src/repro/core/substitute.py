"""Black-box substitute (proxy) model training.

In the paper's black-box threat model the attacker can only query the victim
classifier for labels.  They train a *substitute* CNN on inputs labelled by the
victim (Papernot-style model extraction) and craft adversarial examples on the
substitute, hoping they transfer to the victim.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.nn.models import build_lenet5
from repro.nn.network import Sequential
from repro.nn.optim import Adam
from repro.nn.training import train_classifier


def train_substitute(
    victim_predict: Callable[[np.ndarray], np.ndarray],
    query_images: np.ndarray,
    build_model: Optional[Callable[[], Sequential]] = None,
    epochs: int = 15,
    batch_size: int = 64,
    learning_rate: float = 0.002,
    augmentation_rounds: int = 1,
    augmentation_noise: float = 0.05,
    seed: int = 0,
) -> Sequential:
    """Train a substitute model from victim queries.

    Parameters
    ----------
    victim_predict:
        Callable returning the victim's predicted labels for a batch of images
        (this is the only access the black-box attacker has).
    query_images:
        The attacker's unlabeled query set.
    build_model:
        Factory for the substitute architecture.  Defaults to a LeNet-5 sized
        for the query images.
    augmentation_rounds:
        Jacobian-free data augmentation: each round adds noisy copies of the
        query set, labelled by the victim, which grows the substitute's
        training set the way Papernot et al.'s augmentation does.
    """
    rng = np.random.default_rng(seed)
    query_images = np.asarray(query_images, dtype=np.float32)

    if build_model is None:
        input_shape = query_images.shape[1:]

        def build_model() -> Sequential:  # type: ignore[misc]
            return build_lenet5(input_shape, num_classes=10, seed=seed + 1)

    images = query_images
    labels = np.asarray(victim_predict(query_images), dtype=np.int64)
    for _ in range(max(0, augmentation_rounds)):
        noisy = np.clip(
            query_images + rng.normal(0.0, augmentation_noise, size=query_images.shape), 0.0, 1.0
        ).astype(np.float32)
        images = np.concatenate([images, noisy])
        labels = np.concatenate([labels, np.asarray(victim_predict(noisy), dtype=np.int64)])

    substitute = build_model()
    optimizer = Adam(substitute.parameters(), lr=learning_rate)
    train_classifier(
        substitute,
        optimizer,
        images,
        labels,
        epochs=epochs,
        batch_size=batch_size,
        rng=rng,
    )
    return substitute
