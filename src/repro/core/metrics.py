"""Image distance and quality metrics used throughout the evaluation.

The paper quantifies adversarial perturbations with the L0 / L2 / L-infinity
norms (Section 2.1) and reports the image-quality impact of white-box attacks
with MSE and PSNR (Figures 10 and 11).
"""

from __future__ import annotations

import numpy as np


def _flatten_pairs(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.ndim == 3:  # single image
        a = a[np.newaxis]
        b = b[np.newaxis]
    return a.reshape(len(a), -1), b.reshape(len(b), -1)


def l0_distance(a: np.ndarray, b: np.ndarray, tolerance: float = 1e-6) -> np.ndarray:
    """Number of features that differ by more than ``tolerance`` (per sample)."""
    fa, fb = _flatten_pairs(a, b)
    return (np.abs(fa - fb) > tolerance).sum(axis=1)


def l2_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean distance between images (per sample)."""
    fa, fb = _flatten_pairs(a, b)
    return np.linalg.norm(fa - fb, axis=1)


def linf_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Maximum absolute per-feature difference (per sample)."""
    fa, fb = _flatten_pairs(a, b)
    return np.abs(fa - fb).max(axis=1)


def mse(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Mean squared error between images (per sample)."""
    fa, fb = _flatten_pairs(a, b)
    return np.mean((fa - fb) ** 2, axis=1)


def psnr(a: np.ndarray, b: np.ndarray, max_value: float = 1.0) -> np.ndarray:
    """Peak signal-to-noise ratio in dB (per sample).

    ``PSNR = 20 * log10(MAX / sqrt(MSE))``; identical images yield ``inf``.
    """
    errors = mse(a, b)
    with np.errstate(divide="ignore"):
        return 20.0 * np.log10(max_value / np.sqrt(errors))
