#!/usr/bin/env python
"""Docs/source consistency lint (CI's docs-lint job).

Two checks, both two-way where that makes sense:

1. **Environment variables** -- every ``REPRO_*`` name read anywhere in
   ``src/`` or ``benchmarks/`` must be documented in
   ``docs/environment.md``, and every variable documented there must still
   exist in the code (no ghost documentation).

2. **Dead relative links** -- every relative markdown link in ``docs/*.md``
   and ``README.md`` must point at a file that exists (``#anchors`` are
   stripped; absolute URLs are ignored).

Exit status 0 when clean; 1 with one line per violation otherwise.  No
dependencies beyond the standard library, so it runs anywhere CI does:

    python scripts/docs_lint.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ENV_DOC = REPO / "docs" / "environment.md"

#: where env-var reads live; benchmarks own REPRO_JOBS
SOURCE_DIRS = ("src", "benchmarks")

ENV_RE = re.compile(r"REPRO_[A-Z]+(?:_[A-Z]+)*")

#: inline markdown links: [text](target) -- images share the syntax
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def source_env_vars() -> dict:
    """``{var: first use site}`` across the scanned source trees."""
    found = {}
    for directory in SOURCE_DIRS:
        for path in sorted((REPO / directory).rglob("*.py")):
            for match in ENV_RE.finditer(path.read_text(errors="replace")):
                found.setdefault(match.group(), path.relative_to(REPO))
    return found


def documented_env_vars() -> set:
    if not ENV_DOC.exists():
        return set()
    return set(ENV_RE.findall(ENV_DOC.read_text()))


def check_env_vars() -> list:
    errors = []
    used = source_env_vars()
    documented = documented_env_vars()
    if not ENV_DOC.exists():
        return [f"missing {ENV_DOC.relative_to(REPO)}"]
    for var in sorted(set(used) - documented):
        errors.append(
            f"{var} (used in {used[var]}) is not documented in "
            f"{ENV_DOC.relative_to(REPO)}"
        )
    for var in sorted(documented - set(used)):
        errors.append(
            f"{var} is documented in {ENV_DOC.relative_to(REPO)} but no longer "
            f"read anywhere under {'/'.join(SOURCE_DIRS)}"
        )
    return errors


def markdown_files() -> list:
    files = [REPO / "README.md"]
    files += sorted((REPO / "docs").glob("*.md")) if (REPO / "docs").is_dir() else []
    return [path for path in files if path.exists()]


def check_links() -> list:
    errors = []
    for path in markdown_files():
        for match in LINK_RE.finditer(path.read_text()):
            target = match.group(1).split("#", 1)[0]
            if not target or "://" in target or target.startswith("mailto:"):
                continue
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                errors.append(
                    f"{path.relative_to(REPO)}: dead link -> {match.group(1)}"
                )
    return errors


def main() -> int:
    errors = check_env_vars() + check_links()
    for error in errors:
        print(f"docs-lint: {error}", file=sys.stderr)
    if errors:
        print(f"docs-lint: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print("docs-lint: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
