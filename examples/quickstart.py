"""Quickstart: train a digit classifier, defend it with Defensive Approximation,
and watch a transferred FGSM attack bounce off.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.attacks import FGSM
from repro.core import DefensiveApproximation, evaluate_transferability
from repro.datasets import generate_digits, train_test_split
from repro.nn import Adam, build_lenet5, train_classifier


def main() -> None:
    # 1. Data: a synthetic MNIST-like digit dataset (offline substitute).
    print("Generating the synthetic digit dataset...")
    split = train_test_split(generate_digits(n_samples=3000, size=16, seed=1), test_fraction=0.15)

    # 2. Train an ordinary (exact-hardware) LeNet-5.
    print("Training the exact LeNet-5 classifier...")
    model = build_lenet5(split.train.input_shape, conv_channels=(12, 24), fc_sizes=(96, 64))
    optimizer = Adam(model.parameters(), lr=0.002)
    history = train_classifier(
        model,
        optimizer,
        split.train.images,
        split.train.labels,
        split.test.images,
        split.test.labels,
        epochs=20,
        batch_size=64,
    )
    print(f"  clean accuracy of the exact model: {history.final_val_accuracy:.3f}")

    # 3. Defend it: swap the convolution hardware for the approximate Ax-FPM.
    #    No retraining, no fine-tuning -- the weights are shared.
    print("Converting to the Defensive Approximation (Ax-FPM) model...")
    defense = DefensiveApproximation(model)
    report = defense.accuracy_report(split.test.images[:200], split.test.labels[:200])
    print(
        f"  clean accuracy: exact {report.exact_accuracy:.3f} vs "
        f"DA {report.approximate_accuracy:.3f} (drop {report.accuracy_drop:.3f})"
    )

    # 4. Attack: craft FGSM adversarial examples against the exact model and
    #    replay them against both models (the transferability threat model).
    print("Crafting FGSM adversarial examples on the exact model...")
    evaluation = evaluate_transferability(
        source=defense.exact_classifier(),
        targets={"exact": defense.exact_classifier(), "defended (DA)": defense.defended_classifier()},
        attack=FGSM(epsilon=0.1),
        images=split.test.images,
        labels=split.test.labels,
        max_samples=20,
    )
    print(f"  attack success on the exact model:    "
          f"{100 * evaluation.target_success_rates['exact']:.0f}%")
    print(f"  attack success on the defended model: "
          f"{100 * evaluation.target_success_rates['defended (DA)']:.0f}%")
    print(f"  => Defensive Approximation blocked "
          f"{100 * evaluation.target_robustness['defended (DA)']:.0f}% of the transferred attacks")


if __name__ == "__main__":
    main()
