"""Inspect the noise each hardware multiplier injects (Figures 3, 13 and 15).

Profiles the Ax-FPM, HEAP and Bfloat16 multipliers over random operands in
[-1, 1] and prints the error statistics the paper's figures visualise:
magnitude, bias (inflating vs deflating), and data dependence.

Run with:  python examples/multiplier_noise_profile.py
"""

from repro.arith import AxFPM, Bfloat16Multiplier, HEAPMultiplier, profile_multiplier
from repro.core.results import format_table


def main() -> None:
    multipliers = [AxFPM(), HEAPMultiplier(), Bfloat16Multiplier()]
    rows = []
    for multiplier in multipliers:
        profile = profile_multiplier(multiplier, n_samples=100_000, operand_range=(-1.0, 1.0))
        rows.append(
            (
                multiplier.name,
                profile.mred,
                profile.nmed,
                f"{100 * profile.fraction_magnitude_inflated:.1f}%",
                profile.error_magnitude_correlation,
                profile.max_abs_error,
            )
        )
    print(
        format_table(
            ["multiplier", "MRED", "NMED", "% inflated", "corr(|x*y|,|err|)", "max |err|"], rows
        )
    )
    print(
        "\nReading: the Ax-FPM noise is large, inflating and strongly data dependent\n"
        "(the Defensive Approximation ingredients); HEAP is milder; bfloat16 noise is\n"
        "tiny, deflating and carries no robustness benefit."
    )


if __name__ == "__main__":
    main()
