"""Pipeline quickstart: run catalog experiments and a custom spec.

Shows the three layers of the experiment API: the catalog (named paper
experiments), the Runner (execution + caching), and a custom declarative
ExperimentSpec built from registry names.  Everything runs in the fast
smoke-test profile so the script finishes in well under a minute.
"""

from repro.pipeline import ExperimentSpec, Runner, list_experiments
from repro.pipeline.catalog import DIGIT_ATTACKS


def main() -> None:
    print("Catalog:", ", ".join(list_experiments()), "\n")

    runner = Runner(fast=True)

    # 1. a named paper experiment
    result = runner.run("fig03_axfpm_noise")
    print(result.table)
    print(f"(cells: {result.cache_hits} cached / {result.cache_misses} computed)\n")

    # 2. a custom scenario: transferability to a bfloat16 target, declared in
    #    a few lines instead of a bespoke harness script
    spec = ExperimentSpec(
        name="custom_bfloat16_transfer",
        kind="transferability",
        title="transferability to a bfloat16 LeNet (custom spec)",
        model="lenet_digits",
        source="exact",
        variants=("exact", "bfloat16"),
        attacks=DIGIT_ATTACKS[:3],  # FGSM, PGD, JSMA
        n_samples=8,
    )
    result = runner.run(spec)
    print(result.table)
    print("mean transfer:", result.metrics["mean_target_success"])


if __name__ == "__main__":
    main()
