"""Black-box scenario: model extraction plus transfer attack.

The attacker can only query the victim for labels.  They train a substitute
CNN on query responses (Papernot-style), craft adversarial examples on the
substitute, and replay them on the victim.  This example compares how well that
works against the exact classifier and against the Defensive Approximation
classifier (Table 4 of the paper).

Run with:  python examples/blackbox_substitute.py
"""

from repro.attacks import PGD
from repro.attacks.base import Classifier
from repro.core import DefensiveApproximation, evaluate_black_box, train_substitute
from repro.experiments import lenet_digits
from repro.nn import build_lenet5


def main() -> None:
    print("Loading (or training) the exact LeNet digit classifier...")
    model, split = lenet_digits()
    defense = DefensiveApproximation(model)
    query_set = split.train.images[:800]

    def substitute_factory():
        return build_lenet5(
            split.train.input_shape, conv_channels=(8, 16), fc_sizes=(64, 48), seed=21
        )

    for name, victim in (
        ("exact classifier", defense.exact_classifier()),
        ("Defensive Approximation classifier", defense.defended_classifier()),
    ):
        print(f"\nReverse engineering the {name} from query responses...")
        substitute = train_substitute(
            victim.predict, query_set, build_model=substitute_factory, epochs=15, seed=21
        )
        evaluation = evaluate_black_box(
            victim,
            Classifier(substitute),
            PGD(epsilon=0.1, steps=15),
            split.test.images,
            split.test.labels,
            max_samples=15,
        )
        print(f"  PGD success on the substitute: {100 * evaluation.substitute_success_rate:.0f}%")
        print(f"  PGD success on the victim:     {100 * evaluation.victim_success_rate:.0f}%")
        print(f"  victim robustness:             {100 * evaluation.victim_robustness:.0f}%")


if __name__ == "__main__":
    main()
