"""White-box scenario: how much noise does an adaptive attacker need?

Reproduces the Figures 8-11 experiment on a small scale: the DeepFool attack is
run with full (BPDA) gradient access against both the exact and the Defensive
Approximation classifier, and the perturbation budget (L2, MSE, PSNR) of the
successful adversarial examples is compared.

Run with:  python examples/whitebox_noise_budget.py
"""

from repro.attacks import DeepFool
from repro.core import DefensiveApproximation, evaluate_white_box
from repro.experiments import lenet_digits


def main() -> None:
    print("Loading (or training) the exact LeNet digit classifier...")
    model, split = lenet_digits()
    defense = DefensiveApproximation(model)

    for name, victim in (
        ("exact classifier", defense.exact_classifier()),
        ("Defensive Approximation classifier", defense.defended_classifier()),
    ):
        print(f"\nAttacking the {name} with white-box DeepFool...")
        evaluation = evaluate_white_box(
            victim,
            DeepFool(max_iterations=30),
            split.test.images,
            split.test.labels,
            max_samples=5,
            victim_name=name,
        )
        print(f"  attack success rate: {100 * evaluation.success_rate:.0f}%")
        print(f"  mean L2 perturbation: {evaluation.mean_l2:.3f}")
        print(f"  mean MSE:             {evaluation.mean_mse:.5f}")
        print(f"  mean PSNR:            {evaluation.mean_psnr:.1f} dB")

    print(
        "\nA white-box attacker can always succeed eventually; the defense shows up as a\n"
        "larger perturbation budget (larger L2/MSE, lower PSNR) against the DA classifier."
    )


if __name__ == "__main__":
    main()
