"""Hardware cost report: energy and delay of the multiplier designs.

Prints the Table 7 / Table 9 style normalised energy and delay numbers from the
analytical gate-count model, plus the per-design cell census of the mantissa
array.

Run with:  python examples/energy_report.py
"""

from repro.arith import AxFPM, HEAPMultiplier
from repro.arith.array_multiplier import ArrayMultiplier
from repro.core.results import format_table
from repro.hw import energy_delay_table, mantissa_energy_delay_table


def main() -> None:
    print("Complete floating point multipliers (normalised to the exact FPM):")
    print(format_table(["Multiplier", "Energy", "Delay"], energy_delay_table()))

    print("\nBare 24x24 mantissa multipliers (normalised to the exact array):")
    print(format_table(["Multiplier", "Energy", "Delay"], mantissa_energy_delay_table()))

    print("\nCell census of the full-width (24-bit) mantissa arrays:")
    rows = []
    for name, fpm in (("Ax-FPM", AxFPM()), ("HEAP", HEAPMultiplier())):
        array = ArrayMultiplier(24, fpm.mantissa_multiplier.policy)
        census = array.cell_census()
        rows.append((name, ", ".join(f"{cell}: {count}" for cell, count in sorted(census.items()))))
    print(format_table(["Design", "Adder cells"], rows))


if __name__ == "__main__":
    main()
