"""Frozen per-example reference implementations of the batched attacks.

These are the pre-batching attack loops, kept verbatim as the parity oracle
for the active-set engine (:mod:`repro.attacks.batched`) and as the timing
baseline of ``benchmarks/perf_attacks.py``: one victim example at a time,
one classifier call per probe/gradient.  The only change from the historical
code is that the stochastic attacks take an explicit per-example
``np.random.Generator`` instead of owning one shared stream -- the batched
engine's determinism contract is *per-example* streams spawned as
``SeedSequence(entropy=seed, spawn_key=(seed_offset + i,))``, and
:func:`reference_perturb` spawns them exactly that way.

Do not "improve" these implementations: their floating-point expressions,
call order and query pattern define what bit-for-bit parity means.
"""

from __future__ import annotations

import numpy as np


def example_seed_sequence(seed, offset: int, i: int) -> np.random.SeedSequence:
    """The RNG stream root of victim example ``offset + i`` (engine contract)."""
    return np.random.SeedSequence(entropy=seed, spawn_key=(offset + int(i),))


def reference_perturb(attack_name, classifier, x, y, params=None, seed=0, seed_offset=0):
    """Run the per-example reference loop of ``attack_name`` over a batch."""
    params = dict(params or {})
    single = {
        "deepfool": _deepfool_single,
        "cw": _cw_single,
        "jsma": _jsma_single,
        "lsa": _lsa_single,
        "boundary": _boundary_single,
        "hsj": _hsj_single,
    }[attack_name]
    x = np.asarray(x, dtype=np.float32)
    adversarial = np.empty_like(x)
    for i in range(len(x)):
        rng = np.random.default_rng(example_seed_sequence(seed, seed_offset, i))
        adversarial[i] = single(classifier, x[i], int(y[i]), rng=rng, **params)
    return adversarial


# ---------------------------------------------------------------- deepfool
def _deepfool_single(
    classifier, x, label, rng, max_iterations=50, overshoot=0.02, num_candidate_classes=10
):
    x0 = x[np.newaxis].astype(np.float32)
    logits = classifier.predict_logits(x0)[0]
    n_classes = logits.shape[0]
    k = min(num_candidate_classes, n_classes)
    candidates = np.argsort(logits)[::-1][:k]
    candidates = [c for c in candidates if c != label]

    x_adv = x0.copy()
    total_perturbation = np.zeros_like(x0)
    for _ in range(max_iterations):
        logits = classifier.predict_logits(x_adv)[0]
        if logits.argmax() != label:
            break
        grad_true = classifier.class_gradient(x_adv, np.array([label]))[0]
        best_ratio = np.inf
        best_direction = None
        for c in candidates:
            grad_c = classifier.class_gradient(x_adv, np.array([c]))[0]
            w = grad_c - grad_true
            f = logits[c] - logits[label]
            w_norm = np.linalg.norm(w.ravel()) + 1e-12
            ratio = abs(f) / w_norm
            if ratio < best_ratio:
                best_ratio = ratio
                best_direction = (abs(f) + 1e-6) * w / (w_norm ** 2)
        if best_direction is None:
            break
        total_perturbation += best_direction
        x_adv = classifier.clip(x0 + (1.0 + overshoot) * total_perturbation)
    return x_adv[0]


# -------------------------------------------------------- carlini & wagner
def _cw_optimise(classifier, x, y, const, confidence, learning_rate, max_iterations):
    lo, hi = classifier.clip_min, classifier.clip_max
    span = hi - lo
    x_scaled = np.clip((x - lo) / span, 1e-6, 1.0 - 1e-6)
    w = np.arctanh(2.0 * x_scaled - 1.0).astype(np.float32)

    n = len(x)
    n_classes = classifier.num_classes
    one_hot = np.zeros((n, n_classes), dtype=np.float32)
    one_hot[np.arange(n), y] = 1.0

    m = np.zeros_like(w)
    v = np.zeros_like(w)
    beta1, beta2, eps = 0.9, 0.999, 1e-8

    for t in range(1, max_iterations + 1):
        x_adv = (np.tanh(w) + 1.0) / 2.0 * span + lo
        logits = classifier.predict_logits(x_adv)
        true_logit = (logits * one_hot).sum(axis=1)
        other_logit = (logits - 1e9 * one_hot).max(axis=1)
        margin = true_logit - other_logit + confidence
        attack_active = margin > 0

        grad_logits = np.zeros_like(logits)
        rows = np.arange(n)
        other_idx = (logits - 1e9 * one_hot).argmax(axis=1)
        grad_logits[rows, y] = 1.0
        grad_logits[rows, other_idx] -= 1.0
        grad_logits *= (const * attack_active)[:, np.newaxis]
        grad_from_margin = classifier.logits_gradient(x_adv, grad_logits)

        grad_from_l2 = 2.0 * (x_adv - x)
        grad_x = grad_from_l2 + grad_from_margin
        grad_w = grad_x * (1.0 - np.tanh(w) ** 2) * (span / 2.0)

        m = beta1 * m + (1 - beta1) * grad_w
        v = beta2 * v + (1 - beta2) * grad_w ** 2
        m_hat = m / (1 - beta1 ** t)
        v_hat = v / (1 - beta2 ** t)
        w = w - learning_rate * m_hat / (np.sqrt(v_hat) + eps)

    return classifier.clip((np.tanh(w) + 1.0) / 2.0 * span + lo)


def _cw_single(
    classifier,
    x,
    label,
    rng,
    confidence=0.0,
    learning_rate=0.05,
    max_iterations=100,
    initial_const=0.5,
    const_factor=5.0,
    num_const_steps=3,
):
    x = x[np.newaxis].astype(np.float32)
    y = np.array([label], dtype=np.int64)
    best = x.copy()
    best_l2 = np.full(len(x), np.inf)

    const = initial_const
    for _ in range(num_const_steps):
        candidates = _cw_optimise(
            classifier, x, y, const, confidence, learning_rate, max_iterations
        )
        preds = classifier.predict(candidates)
        for i in range(len(x)):
            if preds[i] != y[i]:
                l2 = float(np.linalg.norm((candidates[i] - x[i]).ravel()))
                if l2 < best_l2[i]:
                    best_l2[i] = l2
                    best[i] = candidates[i]
        if np.all(np.isfinite(best_l2)):
            break
        const *= const_factor
    return best[0]


# -------------------------------------------------------------------- jsma
def _jsma_single(classifier, x, label, rng, theta=0.6, gamma=0.12):
    x_adv = x[np.newaxis].astype(np.float32).copy()
    n_features = x_adv.size
    max_modified = max(2, int(gamma * n_features))
    modified = set()

    logits = classifier.predict_logits(x_adv)[0]
    target = int(np.argsort(logits)[::-1][1])

    while len(modified) < max_modified:
        logits = classifier.predict_logits(x_adv)[0]
        if logits.argmax() != label:
            break
        jac = classifier.jacobian(x_adv)[0].reshape(classifier.num_classes, -1)
        grad_target = jac[target]
        grad_others = jac.sum(axis=0) - grad_target

        flat = x_adv.reshape(-1)
        saliency = np.where(
            (grad_target > 0) & (grad_others < 0), grad_target * np.abs(grad_others), 0.0
        )
        saliency[flat >= classifier.clip_max] = 0.0
        for idx in modified:
            saliency[idx] = 0.0
        if saliency.max() <= 0:
            fallback = grad_target.copy()
            fallback[flat >= classifier.clip_max] = -np.inf
            for idx in modified:
                fallback[idx] = -np.inf
            if not np.isfinite(fallback.max()):
                break
            pixel = int(fallback.argmax())
        else:
            pixel = int(saliency.argmax())
        flat[pixel] = min(classifier.clip_max, flat[pixel] + theta)
        modified.add(pixel)
    return x_adv[0]


# --------------------------------------------------------------------- lsa
def _lsa_single(
    classifier,
    x,
    label,
    rng,
    perturbation=0.5,
    candidates_per_round=32,
    pixels_per_round=4,
    max_rounds=15,
):
    x_adv = x.astype(np.float32).copy()
    n_features = x_adv.size
    for _ in range(max_rounds):
        if classifier.predict(x_adv[np.newaxis])[0] != label:
            break
        candidates = rng.choice(
            n_features, size=min(candidates_per_round, n_features), replace=False
        )
        probes = np.repeat(x_adv[np.newaxis], 2 * len(candidates), axis=0)
        flat = probes.reshape(2 * len(candidates), -1)
        for j, pixel in enumerate(candidates):
            flat[2 * j, pixel] = np.clip(
                flat[2 * j, pixel] + perturbation, classifier.clip_min, classifier.clip_max
            )
            flat[2 * j + 1, pixel] = np.clip(
                flat[2 * j + 1, pixel] - perturbation,
                classifier.clip_min,
                classifier.clip_max,
            )
        scores = classifier.predict_proba(probes)[:, label]
        order = np.argsort(scores)
        flat_adv = x_adv.reshape(-1)
        for probe_idx in order[:pixels_per_round]:
            pixel = candidates[probe_idx // 2]
            flat_adv[pixel] = flat[probe_idx, pixel]
    return x_adv


# ---------------------------------------------------------------- boundary
def _find_start_single(classifier, x, label, rng, init_trials):
    for _ in range(init_trials):
        candidate = rng.uniform(classifier.clip_min, classifier.clip_max, size=x.shape).astype(
            np.float32
        )
        if classifier.predict(candidate[np.newaxis])[0] != label:
            return candidate
    return None


def _boundary_single(
    classifier,
    x,
    label,
    rng,
    max_iterations=150,
    orthogonal_step=0.1,
    source_step=0.1,
    init_trials=50,
):
    x = x.astype(np.float32)
    current = _find_start_single(classifier, x, label, rng, init_trials)
    if current is None:
        return x.copy()

    ortho_step = orthogonal_step
    for _ in range(max_iterations):
        diff = x - current
        dist = np.linalg.norm(diff.ravel())
        if dist < 1e-6:
            break
        noise = rng.normal(size=x.shape).astype(np.float32)
        noise *= ortho_step * dist / (np.linalg.norm(noise.ravel()) + 1e-12)
        candidate = current + noise
        cand_diff = x - candidate
        cand_dist = np.linalg.norm(cand_diff.ravel()) + 1e-12
        candidate = x - cand_diff * (dist / cand_dist)
        candidate = candidate + source_step * (x - candidate)
        candidate = classifier.clip(candidate)

        if classifier.predict(candidate[np.newaxis])[0] != label:
            current = candidate
            ortho_step = min(ortho_step * 1.05, 0.5)
            source_step = min(source_step * 1.05, 0.5)
        else:
            ortho_step *= 0.9
            source_step *= 0.9
    return current


# ------------------------------------------------------------- hopskipjump
def _hsj_binary_search(classifier, x, adversarial, label, binary_search_steps):
    low, high = 0.0, 1.0
    for _ in range(binary_search_steps):
        mid = (low + high) / 2.0
        blended = (1 - mid) * x + mid * adversarial
        if classifier.predict(blended[np.newaxis])[0] != label:
            high = mid
        else:
            low = mid
    return ((1 - high) * x + high * adversarial).astype(np.float32)


def _hsj_estimate_direction(classifier, boundary_point, label, iteration, rng, num_eval_samples):
    n_samples = int(num_eval_samples * np.sqrt(iteration + 1))
    delta = 0.1 / np.sqrt(np.prod(boundary_point.shape))
    noise = rng.normal(size=(n_samples,) + boundary_point.shape).astype(np.float32)
    norms = np.linalg.norm(noise.reshape(n_samples, -1), axis=1).reshape(
        (-1,) + (1,) * boundary_point.ndim
    )
    noise /= norms + 1e-12
    probes = np.clip(
        boundary_point[np.newaxis] + delta * noise, classifier.clip_min, classifier.clip_max
    )
    is_adv = (classifier.predict(probes) != label).astype(np.float32) * 2.0 - 1.0
    is_adv -= is_adv.mean()
    direction = (is_adv.reshape((-1,) + (1,) * boundary_point.ndim) * noise).mean(axis=0)
    norm = np.linalg.norm(direction.ravel())
    if norm < 1e-12:
        return noise[0]
    return direction / norm


def _hsj_single(
    classifier,
    x,
    label,
    rng,
    max_iterations=10,
    init_trials=50,
    num_eval_samples=24,
    binary_search_steps=8,
):
    x = x.astype(np.float32)
    current = _find_start_single(classifier, x, label, rng, init_trials)
    if current is None:
        return x.copy()
    current = _hsj_binary_search(classifier, x, current, label, binary_search_steps)

    for iteration in range(max_iterations):
        direction = _hsj_estimate_direction(
            classifier, current, label, iteration, rng, num_eval_samples
        )
        dist = np.linalg.norm((current - x).ravel())
        step = dist / np.sqrt(iteration + 1)
        success = False
        for _ in range(10):
            candidate = classifier.clip(current + step * direction)
            if classifier.predict(candidate[np.newaxis])[0] != label:
                success = True
                break
            step /= 2.0
        if success:
            current = _hsj_binary_search(classifier, x, candidate, label, binary_search_steps)
    return current
