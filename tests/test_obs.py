"""Tests for ``repro.obs``: tracing, cross-process folding, the trace CLI.

Covers the tracer's lifecycle (off by default, ``REPRO_TRACE`` parsing, spool
-> merge), the Prometheus renderer, and the PR's acceptance behaviour: a
``--jobs 2`` attack run whose result telemetry carries kernel/query counters
folded from the worker processes and whose merged trace contains spans from
every worker pid, including store-lease and kernel-strategy spans.
"""

import json
import multiprocessing

import pytest

from repro.cli import main as cli_main
from repro.experiments.zoo import ZOO
from repro.obs import TRACER, Histogram, MetricsRenderer
from repro.obs.timeline import chrome_trace, load_spans, summarize
from repro.obs.trace import _NULL_SPAN
from repro.pipeline import ExperimentSpec, Runner

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(autouse=True)
def reset_tracer():
    """Leave the process-global tracer lazily unconfigured after every test."""
    yield
    TRACER.configure()


# ------------------------------------------------------------------- tracer
def test_tracing_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    TRACER.configure()
    assert not TRACER.enabled
    # the disabled path hands out one shared no-op span -- no allocation
    span = TRACER.span("anything", cat="test", key="value")
    assert span is _NULL_SPAN
    with span as live:
        live["ignored"] = 1  # setitem on the null span must be a no-op
    assert TRACER.begin_run("x") is None
    assert TRACER.worker_spool_dir() is None
    assert TRACER.end_run(None) is None


@pytest.mark.parametrize("value", ["", "0", "false", "no", "off", " OFF "])
def test_falsey_env_values_disable(monkeypatch, value):
    monkeypatch.setenv("REPRO_TRACE", value)
    TRACER.configure()
    assert not TRACER.enabled


def test_env_path_selects_spool_directory(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "mytrace"))
    TRACER.configure()
    assert TRACER.enabled
    scope = TRACER.begin_run("env")
    assert scope is not None
    assert scope.directory.parent == tmp_path / "mytrace"
    TRACER.end_run(scope)


def test_span_spool_and_merge(tmp_path):
    TRACER.configure(enabled=True, directory=tmp_path)
    scope = TRACER.begin_run("unit")
    assert scope is not None
    # a second scope while one is active: spans merge into the owner's
    assert TRACER.begin_run("nested") is None
    with TRACER.span("outer", cat="test", fixed=1) as span:
        span["discovered"] = "late"
        with TRACER.span("inner", cat="test"):
            pass
    with pytest.raises(RuntimeError):
        with TRACER.span("failing", cat="test"):
            raise RuntimeError("boom")
    merged = tmp_path / "unit.trace.ndjson"
    trace = TRACER.end_run(scope, merged)
    assert trace == {"path": str(merged), "spans": 3, "pids": trace["pids"]}
    assert not scope.directory.exists()  # spool dir cleaned up
    spans = [json.loads(line) for line in merged.read_text().splitlines()]
    by_name = {s["name"]: s for s in spans}
    assert by_name["outer"]["args"] == {"fixed": 1, "discovered": "late"}
    assert by_name["failing"]["args"]["error"] == "RuntimeError"
    # inner closed before outer but started later: merge is ts-sorted
    assert [s["ts"] for s in spans] == sorted(s["ts"] for s in spans)
    assert all(s["dur"] >= 0 for s in spans)


def test_attach_spools_into_foreign_scope(tmp_path):
    TRACER.configure(enabled=True, directory=tmp_path / "base")
    TRACER.attach(str(tmp_path / "scope"))
    with TRACER.span("from-worker", cat="test"):
        pass
    spools = list((tmp_path / "scope").glob("*.ndjson"))
    assert len(spools) == 1
    assert json.loads(spools[0].read_text())["name"] == "from-worker"


# ------------------------------------------------------------------ metrics
def test_histogram_buckets_are_cumulative():
    hist = Histogram(buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 0.5, 2.0):
        hist.observe(value)
    out = MetricsRenderer()
    out.histogram("t_seconds", "test", hist)
    text = out.render()
    assert 't_seconds_bucket{le="0.1"} 1' in text
    assert 't_seconds_bucket{le="1.0"} 3' in text
    assert 't_seconds_bucket{le="+Inf"} 4' in text
    assert "t_seconds_count 4" in text
    assert "t_seconds_sum 3.05" in text


def test_renderer_families_and_label_escaping():
    out = MetricsRenderer()
    out.counter("c_total", "a counter", 7)
    out.gauge(
        "g", "a gauge", samples=[({"path": 'a"b\\c'}, 1.5), ({"path": "plain"}, 2)]
    )
    text = out.render()
    assert "# HELP c_total a counter\n# TYPE c_total counter\nc_total 7" in text
    assert 'g{path="a\\"b\\\\c"} 1.5' in text
    assert 'g{path="plain"} 2' in text
    assert text.endswith("\n")


# ------------------------------------- cross-process folding (acceptance)
@pytest.fixture()
def obs_zoo_entry(tiny_model, digit_split):
    name = "obs_test_zoo"
    ZOO.register(name, lambda fast=False: (tiny_model, digit_split), overwrite=True)
    yield name
    ZOO.unregister(name)


def attack_spec(zoo_name):
    """A tiny white-box grid over the approximate victim (kernels must fire)."""
    return ExperimentSpec(
        name="obs_whitebox",
        kind="whitebox",
        model=zoo_name,
        variants=("exact", "da"),
        attacks=(("PGD", "pgd", {"epsilon": 0.1, "steps": 3}),),
        n_samples=4,
        params={"columns": ("success", "l2")},
    )


@pytest.mark.skipif(not HAS_FORK, reason="pool test needs fork to inherit the test zoo entry")
def test_jobs2_folds_worker_counters_and_merges_traces(tmp_path, obs_zoo_entry):
    TRACER.configure(enabled=True, directory=tmp_path / "spool")
    runner = Runner(
        fast=True,
        cache_dir=tmp_path / "cells",
        results_dir=tmp_path / "results",
        jobs=2,
        shard_size=2,
    )
    runner.run(attack_spec(obs_zoo_entry))

    telemetry = runner.telemetry
    # the compute happened in workers, yet the folded totals are nonzero
    kernels = telemetry.kernel_totals()
    assert kernels["fused_calls"] + kernels["fallback_calls"] > 0
    queries = telemetry.query_totals()
    assert queries["query_samples"] > 0 and queries["gradient_samples"] > 0
    assert telemetry.worker_pids, "shard stats must carry the worker pids"
    assert telemetry.attack_queries()["query_samples"] == queries["query_samples"]

    trace = telemetry.trace
    assert trace is not None and trace["spans"] > 0
    # spans from the parent AND every folded worker pid
    assert len(trace["pids"]) >= 2
    assert set(telemetry.worker_pids) <= set(trace["pids"])
    spans = [
        json.loads(line)
        for line in (tmp_path / "results" / "obs_whitebox.trace.ndjson")
        .read_text()
        .splitlines()
    ]
    names = {s["name"] for s in spans}
    assert any(name.startswith("store.lease") for name in names)
    assert any(s["cat"] == "kernel" for s in spans)
    assert "shard" in names and "run" in names
    # the result JSON round-trips the folded run-scoped totals
    payload = json.loads((tmp_path / "results" / "obs_whitebox.json").read_text())
    assert payload["telemetry"]["kernels"] == {"scope": "run", **kernels}
    assert payload["telemetry"]["attack_queries"]["query_samples"] == queries["query_samples"]
    snapshot = telemetry.snapshot()
    assert snapshot["worker_pids"] == sorted(set(telemetry.worker_pids))
    assert snapshot["trace"]["spans"] == trace["spans"]


def test_serial_run_snapshot_has_no_worker_pids(tmp_path):
    runner = Runner(fast=True, cache_dir=tmp_path / "cells", jobs=1)
    runner.run("table07_energy_delay")
    snapshot = runner.telemetry.snapshot()
    assert snapshot["worker_pids"] == []
    assert "kernels" in snapshot


# ---------------------------------------------------------------- trace CLI
def make_trace_file(tmp_path):
    TRACER.configure(enabled=True, directory=tmp_path / "spool")
    scope = TRACER.begin_run("cli")
    with TRACER.span("cell", cat="runner", kind="energy", digest="abc123def456"):
        with TRACER.span("shard", cat="engine", shard=0):
            pass
    merged = tmp_path / "cli.trace.ndjson"
    TRACER.end_run(scope, merged)
    return merged


def test_trace_cli_summary_and_chrome_export(tmp_path, capsys):
    merged = make_trace_file(tmp_path)
    chrome_out = tmp_path / "chrome.json"
    assert cli_main(["trace", str(merged), "--chrome", str(chrome_out)]) == 0
    out = capsys.readouterr().out
    assert "2 spans from 1 process(es)" in out
    assert "cell timeline" in out and "digest=abc123def456" in out
    doc = json.loads(chrome_out.read_text())
    assert doc["displayTimeUnit"] == "ms"
    assert len(doc["traceEvents"]) == 2
    assert all(e["ph"] == "X" for e in doc["traceEvents"])
    assert min(e["ts"] for e in doc["traceEvents"]) == 0.0


def test_trace_cli_json_aggregate(tmp_path, capsys):
    merged = make_trace_file(tmp_path)
    assert cli_main(["trace", str(merged), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["source"] == "trace" and doc["spans"] == 2
    assert {row["name"] for row in doc["by_span"]} == {"cell", "shard"}


def test_trace_cli_reads_result_json(tmp_path, capsys):
    runner = Runner(fast=True, cache_dir=tmp_path / "cells", results_dir=tmp_path, jobs=1)
    runner.run("table07_energy_delay")
    result_path = tmp_path / "table07_energy_delay.json"
    assert cli_main(["trace", str(result_path)]) == 0
    out = capsys.readouterr().out
    assert "synthetic timeline from result telemetry" in out
    assert "kind=energy" in out
    spans, source = load_spans(result_path)
    assert source == "result" and spans
    assert chrome_trace(spans)["traceEvents"]
    assert "1 process(es)" in summarize(spans, source)


def test_trace_cli_missing_file(tmp_path, capsys):
    assert cli_main(["trace", str(tmp_path / "nope.ndjson")]) == 2
    assert "cannot read" in capsys.readouterr().err
