"""Tests for the convolution / pooling / activation primitives."""

import numpy as np
import pytest

from repro.nn import functional as F


def naive_conv2d(x, weight, bias, stride=1, padding=0):
    """Straightforward (slow) reference convolution."""
    n, c, h, w = x.shape
    f, _, kh, kw = weight.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (x.shape[2] - kh) // stride + 1
    out_w = (x.shape[3] - kw) // stride + 1
    out = np.zeros((n, f, out_h, out_w), dtype=np.float64)
    for ni in range(n):
        for fi in range(f):
            for i in range(out_h):
                for j in range(out_w):
                    patch = x[ni, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[ni, fi, i, j] = np.sum(patch * weight[fi]) + bias[fi]
    return out.astype(np.float32)


def numerical_gradient(fn, x, grad_out, eps=1e-3):
    """Finite-difference gradient of ``sum(fn(x) * grad_out)`` w.r.t. x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = float(np.sum(fn(x) * grad_out))
        flat[i] = orig - eps
        minus = float(np.sum(fn(x) * grad_out))
        flat[i] = orig
        gflat[i] = (plus - minus) / (2 * eps)
    return grad


# ------------------------------------------------------------------ geometry
def test_conv_output_size():
    assert F.conv_output_size(16, 3, 1, 0) == 14
    assert F.conv_output_size(16, 3, 1, 1) == 16
    assert F.conv_output_size(16, 2, 2, 0) == 8


def test_im2col_shape_and_content():
    x = np.arange(2 * 1 * 4 * 4, dtype=np.float32).reshape(2, 1, 4, 4)
    cols = F.im2col(x, (2, 2), stride=1, padding=0)
    assert cols.shape == (2, 4, 9)
    # the first patch of the first image is the 2x2 top-left corner
    np.testing.assert_array_equal(cols[0, :, 0], [0, 1, 4, 5])


def test_im2col_invalid_geometry():
    x = np.zeros((1, 1, 2, 2), dtype=np.float32)
    with pytest.raises(ValueError):
        F.im2col(x, (5, 5))


def test_col2im_inverts_non_overlapping_patches():
    x = np.random.default_rng(0).normal(size=(2, 3, 4, 4)).astype(np.float32)
    cols = F.im2col(x, (2, 2), stride=2)
    rebuilt = F.col2im(cols, x.shape, (2, 2), stride=2)
    np.testing.assert_allclose(rebuilt, x, rtol=1e-6)


# --------------------------------------------------------------- convolution
@pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0)])
def test_conv2d_forward_matches_naive(stride, padding):
    rng = np.random.default_rng(1)
    x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
    w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
    b = rng.normal(size=4).astype(np.float32)
    out, _ = F.conv2d_forward(x, w, b, stride, padding)
    np.testing.assert_allclose(out, naive_conv2d(x, w, b, stride, padding), rtol=1e-4, atol=1e-5)


def test_conv2d_backward_input_gradient_matches_numerical():
    rng = np.random.default_rng(2)
    x = rng.normal(size=(1, 2, 5, 5)).astype(np.float64)
    w = rng.normal(size=(3, 2, 3, 3)).astype(np.float32)
    b = rng.normal(size=3).astype(np.float32)
    out, cols = F.conv2d_forward(x.astype(np.float32), w, b)
    grad_out = rng.normal(size=out.shape).astype(np.float32)
    grad_in, grad_w, grad_b = F.conv2d_backward(grad_out, cols, x.shape, w)

    num_grad = numerical_gradient(
        lambda xx: F.conv2d_forward(xx.astype(np.float32), w, b)[0], x.copy(), grad_out
    )
    np.testing.assert_allclose(grad_in, num_grad, rtol=1e-2, atol=1e-3)
    assert grad_w.shape == w.shape
    np.testing.assert_allclose(grad_b, grad_out.sum(axis=(0, 2, 3)), rtol=1e-5)


def test_conv2d_backward_weight_gradient_matches_numerical():
    rng = np.random.default_rng(3)
    x = rng.normal(size=(2, 1, 4, 4)).astype(np.float32)
    w = rng.normal(size=(2, 1, 2, 2)).astype(np.float64)
    b = np.zeros(2, dtype=np.float32)
    out, cols = F.conv2d_forward(x, w.astype(np.float32), b)
    grad_out = rng.normal(size=out.shape).astype(np.float32)
    _, grad_w, _ = F.conv2d_backward(grad_out, cols, x.shape, w.astype(np.float32))
    num_grad = numerical_gradient(
        lambda ww: F.conv2d_forward(x, ww.astype(np.float32), b)[0], w.copy(), grad_out
    )
    np.testing.assert_allclose(grad_w, num_grad, rtol=1e-2, atol=1e-3)


# -------------------------------------------------------------------- pooling
def test_maxpool_forward_simple():
    x = np.array([[[[1, 2, 5, 6], [3, 4, 7, 8], [0, 0, 1, 1], [0, 9, 1, 1]]]], dtype=np.float32)
    out, _ = F.maxpool2d_forward(x, 2, 2)
    np.testing.assert_array_equal(out[0, 0], [[4, 8], [9, 1]])


def test_maxpool_backward_routes_gradient_to_argmax():
    x = np.array([[[[1, 2], [3, 4]]]], dtype=np.float32)
    out, argmax = F.maxpool2d_forward(x, 2, 2)
    grad = F.maxpool2d_backward(np.ones_like(out), argmax, x.shape, 2, 2)
    np.testing.assert_array_equal(grad[0, 0], [[0, 0], [0, 1]])


def test_maxpool_backward_matches_numerical():
    rng = np.random.default_rng(4)
    x = rng.normal(size=(2, 2, 4, 4)).astype(np.float64)
    out, argmax = F.maxpool2d_forward(x.astype(np.float32))
    grad_out = rng.normal(size=out.shape).astype(np.float32)
    grad_in = F.maxpool2d_backward(grad_out, argmax, x.shape)
    num_grad = numerical_gradient(
        lambda xx: F.maxpool2d_forward(xx.astype(np.float32))[0], x.copy(), grad_out, eps=1e-4
    )
    np.testing.assert_allclose(grad_in, num_grad, rtol=1e-2, atol=1e-3)


# ---------------------------------------------------------------- activations
def test_relu_forward_backward():
    x = np.array([[-1.0, 0.0, 2.0]], dtype=np.float32)
    out, mask = F.relu_forward(x)
    np.testing.assert_array_equal(out, [[0.0, 0.0, 2.0]])
    grad = F.relu_backward(np.ones_like(x), mask)
    np.testing.assert_array_equal(grad, [[0.0, 0.0, 1.0]])


def test_softmax_rows_sum_to_one_and_is_stable():
    logits = np.array([[1000.0, 1001.0, 999.0], [0.0, 0.0, 0.0]], dtype=np.float32)
    probs = F.softmax(logits)
    np.testing.assert_allclose(probs.sum(axis=1), [1.0, 1.0], rtol=1e-5)
    assert np.all(np.isfinite(probs))
    assert probs[0].argmax() == 1


def test_log_softmax_matches_log_of_softmax():
    rng = np.random.default_rng(5)
    logits = rng.normal(size=(4, 6)).astype(np.float32)
    np.testing.assert_allclose(F.log_softmax(logits), np.log(F.softmax(logits)), rtol=1e-4, atol=1e-5)
