"""Tests for the unified component registry (repro.registry)."""

import pytest

from repro.registry import Registry, RegistryError, namespaces, registry


def test_register_create_names_roundtrip():
    reg = Registry("widget")

    class Widget:
        def __init__(self, size=1):
            self.size = size

    reg.register("basic", Widget)
    assert reg.names() == ["basic"]
    assert "basic" in reg
    widget = reg.create("basic", size=3)
    assert isinstance(widget, Widget)
    assert widget.size == 3


def test_decorator_with_explicit_name_and_metadata():
    reg = Registry("widget")

    @reg.register("fancy", metadata={"tier": 2})
    class Fancy:
        pass

    assert reg.create("fancy").__class__ is Fancy
    assert reg.metadata("fancy") == {"tier": 2}


def test_bare_decorator_infers_name_attribute():
    reg = Registry("widget")

    @reg.register
    class Thing:
        name = "thing-a"

    @reg.register
    class Other:  # no name attribute: lowercased class name
        pass

    assert reg.names() == ["thing-a", "other"]


def test_unknown_name_raises_keyerror_listing_available():
    reg = Registry("widget")
    reg.register("only", lambda: None)
    with pytest.raises(RegistryError) as excinfo:
        reg.create("missing")
    assert "missing" in str(excinfo.value)
    assert "only" in str(excinfo.value)
    # RegistryError subclasses KeyError for backwards compatibility
    with pytest.raises(KeyError):
        reg.get("missing")


def test_double_registration_is_an_error_unless_overwritten():
    reg = Registry("widget")
    reg.register("dup", lambda: 1)
    with pytest.raises(ValueError):
        reg.register("dup", lambda: 2)
    reg.register("dup", lambda: 2, overwrite=True)
    assert reg.create("dup") == 2


def test_global_hub_returns_same_registry_per_namespace():
    a = registry("test-hub-namespace")
    b = registry("test-hub-namespace")
    assert a is b
    assert "test-hub-namespace" in namespaces()
    a.register("entry", lambda: 42)
    try:
        assert registry("test-hub-namespace").create("entry") == 42
    finally:
        a.unregister("entry")


def test_builtin_namespaces_are_populated():
    import repro.attacks  # noqa: F401
    import repro.arith  # noqa: F401
    import repro.datasets  # noqa: F401
    import repro.experiments  # noqa: F401
    import repro.nn.models  # noqa: F401

    assert set(registry("multiplier").names()) == {"exact", "bfloat16", "axfpm", "heap"}
    assert registry("attack").names() == [
        "fgsm", "pgd", "jsma", "cw", "deepfool", "lsa", "boundary", "hsj",
    ]
    assert set(registry("adder-cell").names()) == {
        "exact", "ama1", "ama2", "ama3", "ama4", "ama5",
    }
    assert set(registry("dataset").names()) == {"digits", "objects"}
    assert {"lenet5", "alexnet", "dq_cnn"} <= set(registry("model").names())
    assert {"exact", "da", "heap", "bfloat16"} <= set(registry("variant").names())
    assert {"lenet_digits", "alexnet_objects", "dq_objects", "substitute_digits"} <= set(
        registry("zoo").names()
    )


def test_legacy_shims_resolve_through_registries():
    from repro.arith import AxFPM, get_cell, get_multiplier
    from repro.arith.adders import AMA5
    from repro.attacks import ATTACK_SPECS, create_attack
    from repro.attacks.fgsm import FGSM

    assert isinstance(get_multiplier("axfpm", frac_bits=6), AxFPM)
    assert isinstance(get_cell("ama5"), AMA5)
    assert isinstance(create_attack("fgsm", epsilon=0.25), FGSM)
    assert ATTACK_SPECS["cw"].strength == 5
    assert "fgsm" in ATTACK_SPECS
    assert len(list(ATTACK_SPECS.items())) == len(ATTACK_SPECS)
