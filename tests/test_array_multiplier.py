"""Unit and property tests for the gate-level array multiplier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.adders import AMA5, ExactFullAdder
from repro.arith.array_multiplier import (
    ArrayMultiplier,
    HeterogeneousCellPolicy,
    UniformCellPolicy,
)


def test_exact_cells_give_exact_products():
    m = ArrayMultiplier(8, "exact")
    rng = np.random.default_rng(0)
    a = rng.integers(0, 256, size=500)
    b = rng.integers(0, 256, size=500)
    np.testing.assert_array_equal(m.multiply(a, b), (a * b).astype(np.uint64))


def test_exact_cells_give_exact_products_for_both_wirings():
    rng = np.random.default_rng(1)
    a = rng.integers(0, 128, size=200)
    b = rng.integers(0, 128, size=200)
    for wiring in ("partial_product", "accumulator"):
        m = ArrayMultiplier(7, "exact", port_a=wiring)
        np.testing.assert_array_equal(m.multiply(a, b), (a * b).astype(np.uint64))


@settings(max_examples=60, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=2 ** 10 - 1),
    b=st.integers(min_value=0, max_value=2 ** 10 - 1),
)
def test_exact_array_matches_integer_multiplication(a, b):
    m = ArrayMultiplier(10, "exact")
    assert int(m.multiply(np.array([a]), np.array([b]))[0]) == a * b


@settings(max_examples=40, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=2 ** 8 - 1),
    b=st.integers(min_value=0, max_value=2 ** 8 - 1),
)
def test_approximate_product_is_bounded(a, b):
    """Any cell policy must produce a product representable in 2n+1 bits."""
    m = ArrayMultiplier(8, "ama5")
    product = int(m.multiply(np.array([a]), np.array([b]))[0])
    assert 0 <= product < 2 ** 17


def test_multiply_by_zero_with_ama5_is_zero():
    m = ArrayMultiplier(8, "ama5")
    values = np.arange(256)
    np.testing.assert_array_equal(m.multiply(values, np.zeros_like(values)), np.zeros(256, dtype=np.uint64))
    np.testing.assert_array_equal(m.multiply(np.zeros_like(values), values), np.zeros(256, dtype=np.uint64))


def test_ama5_array_inflates_normalised_products():
    """For normalised significands the AMA5 array overshoots the exact product
    in the overwhelming majority of cases (the paper's Figure 3 observation)."""
    rng = np.random.default_rng(2)
    n = 9
    a = rng.integers(2 ** (n - 1), 2 ** n, size=2000)
    b = rng.integers(2 ** (n - 1), 2 ** n, size=2000)
    approx = ArrayMultiplier(n, "ama5").multiply(a, b).astype(np.float64)
    exact = (a * b).astype(np.float64)
    assert np.mean(approx >= exact) > 0.9


def test_operand_range_is_validated():
    m = ArrayMultiplier(4, "exact")
    with pytest.raises(ValueError):
        m.multiply(np.array([16]), np.array([1]))


def test_invalid_constructor_arguments():
    with pytest.raises(ValueError):
        ArrayMultiplier(0, "exact")
    with pytest.raises(ValueError):
        ArrayMultiplier(4, "exact", port_a="bogus")


def test_lut_matches_direct_simulation():
    m = ArrayMultiplier(5, "ama5")
    lut = m.build_lut()
    assert lut.shape == (32, 32)
    rng = np.random.default_rng(3)
    a = rng.integers(0, 32, size=300)
    b = rng.integers(0, 32, size=300)
    np.testing.assert_array_equal(lut[a, b], m.multiply(a, b))


def test_lut_refused_for_wide_multipliers():
    with pytest.raises(ValueError):
        ArrayMultiplier(16, "exact").build_lut()


def test_lut_uses_smallest_sufficient_dtype():
    # products carry 2n+1 bits: uint16 up to n=7, uint32 up to n=12
    assert ArrayMultiplier(5, "ama5").build_lut().dtype == np.uint16
    assert ArrayMultiplier(7, "exact").build_lut().dtype == np.uint16
    assert ArrayMultiplier(8, "exact").lut_dtype() == np.uint32
    assert ArrayMultiplier(9, "ama5").build_lut().dtype == np.uint32


def test_downcast_lut_preserves_products_exactly():
    m = ArrayMultiplier(7, "ama5")
    lut = m.build_lut()
    rng = np.random.default_rng(9)
    a = rng.integers(0, 128, size=500)
    b = rng.integers(0, 128, size=500)
    np.testing.assert_array_equal(lut[a, b].astype(np.uint64), m.multiply(a, b))


def test_uniform_policy_description_and_cells():
    policy = UniformCellPolicy("ama5")
    assert isinstance(policy.cell_at(1, 0, 8), AMA5)
    assert "ama5" in policy.describe()


def test_heterogeneous_policy_splits_by_weight():
    policy = HeterogeneousCellPolicy(approx_cell="ama5", exact_above_weight=0.5)
    n = 8
    low_cell = policy.cell_at(1, 0, n)  # weight 1 < 8
    high_cell = policy.cell_at(n - 1, n - 1, n)  # weight 14 >= 8
    assert isinstance(low_cell, AMA5)
    assert isinstance(high_cell, ExactFullAdder)


def test_heterogeneous_array_error_between_exact_and_uniform():
    rng = np.random.default_rng(4)
    n = 8
    a = rng.integers(2 ** (n - 1), 2 ** n, size=1000)
    b = rng.integers(2 ** (n - 1), 2 ** n, size=1000)
    exact = (a * b).astype(np.float64)
    uniform_err = np.abs(ArrayMultiplier(n, "ama5").multiply(a, b).astype(np.float64) - exact).mean()
    hetero = ArrayMultiplier(n, HeterogeneousCellPolicy(approx_cell="ama5", exact_above_weight=0.5))
    hetero_err = np.abs(hetero.multiply(a, b).astype(np.float64) - exact).mean()
    assert 0 < hetero_err < uniform_err


def test_cell_census_counts_all_positions():
    m = ArrayMultiplier(6, HeterogeneousCellPolicy(approx_cell="ama5", exact_above_weight=0.5))
    census = m.cell_census()
    assert sum(census.values()) == 5 * 6
    assert set(census) <= {"ama5", "exact"}


def test_single_bit_multiplier_is_an_and_gate():
    m = ArrayMultiplier(1, "ama5")
    for a in (0, 1):
        for b in (0, 1):
            assert int(m.multiply(np.array([a]), np.array([b]))[0]) == a & b


def test_broadcasting_of_operands():
    m = ArrayMultiplier(6, "exact")
    a = np.arange(8).reshape(8, 1)
    b = np.arange(4).reshape(1, 4)
    product = m.multiply(a, b)
    assert product.shape == (8, 4)
    np.testing.assert_array_equal(product, (a * b).astype(np.uint64))
