"""Unit and property tests for the floating point multiplier models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.fpm import (
    ApproxFPM,
    AxFPM,
    Bfloat16Multiplier,
    ExactMultiplier,
    HEAPMultiplier,
    get_multiplier,
)

operands = st.floats(min_value=-4.0, max_value=4.0, allow_nan=False, width=32)


def test_exact_multiplier_matches_numpy():
    rng = np.random.default_rng(0)
    a = rng.uniform(-10, 10, 1000).astype(np.float32)
    b = rng.uniform(-10, 10, 1000).astype(np.float32)
    np.testing.assert_array_equal(ExactMultiplier().multiply(a, b), a * b)


def test_axfpm_zero_handling():
    ax = AxFPM(frac_bits=6)
    a = np.array([0.0, 1.5, 0.0, -2.0], dtype=np.float32)
    b = np.array([3.0, 0.0, 0.0, 0.5], dtype=np.float32)
    out = ax.multiply(a, b)
    assert out[0] == 0.0 and out[1] == 0.0 and out[2] == 0.0
    assert out[3] != 0.0


def test_axfpm_sign_follows_operands():
    ax = AxFPM(frac_bits=8)
    rng = np.random.default_rng(1)
    a = rng.uniform(0.1, 1.0, 500).astype(np.float32)
    b = rng.uniform(0.1, 1.0, 500).astype(np.float32)
    assert np.all(ax.multiply(a, b) > 0)
    assert np.all(ax.multiply(-a, b) < 0)
    assert np.all(ax.multiply(-a, -b) > 0)


def test_axfpm_inflates_magnitude_in_most_cases():
    """Figure 3 observation (ii): ~96 % of approximate products are larger in
    magnitude than the exact products."""
    ax = AxFPM(frac_bits=8)
    rng = np.random.default_rng(2)
    a = rng.uniform(-1, 1, 20000).astype(np.float32)
    b = rng.uniform(-1, 1, 20000).astype(np.float32)
    exact = a * b
    approx = ax.multiply(a, b)
    nonzero = np.abs(exact) > 1e-9
    inflated = np.abs(approx[nonzero]) > np.abs(exact[nonzero])
    assert inflated.mean() > 0.9


def test_axfpm_error_grows_with_magnitude():
    """Figure 3 observation (iii): larger operands produce larger errors."""
    ax = AxFPM(frac_bits=8)
    rng = np.random.default_rng(3)
    small_a = rng.uniform(0.01, 0.1, 5000).astype(np.float32)
    small_b = rng.uniform(0.01, 0.1, 5000).astype(np.float32)
    big_a = rng.uniform(0.5, 1.0, 5000).astype(np.float32)
    big_b = rng.uniform(0.5, 1.0, 5000).astype(np.float32)
    err_small = np.abs(ax.multiply(small_a, small_b) - small_a * small_b).mean()
    err_big = np.abs(ax.multiply(big_a, big_b) - big_a * big_b).mean()
    assert err_big > err_small


def test_axfpm_relative_error_is_bounded():
    """The AMA5 array never more than doubles / never flips the product."""
    ax = AxFPM(frac_bits=8)
    rng = np.random.default_rng(4)
    a = rng.uniform(0.05, 1.0, 10000).astype(np.float32)
    b = rng.uniform(0.05, 1.0, 10000).astype(np.float32)
    ratio = ax.multiply(a, b) / (a * b)
    assert np.all(ratio > 0.45)
    assert np.all(ratio < 2.6)


@settings(max_examples=80, deadline=None)
@given(a=operands, b=operands)
def test_axfpm_property_sign_and_boundedness(a, b):
    ax = AxFPM(frac_bits=6)
    result = float(ax.multiply(np.array([a], dtype=np.float32), np.array([b], dtype=np.float32))[0])
    exact = float(np.float32(a) * np.float32(b))
    if exact == 0.0 or abs(exact) < 1e-30:
        assert result == 0.0 or abs(result) <= 4 * abs(exact) + 1e-30
    else:
        assert np.sign(result) == np.sign(exact)
        assert abs(result) <= 4 * abs(exact)


def test_axfpm_is_deterministic():
    ax = AxFPM(frac_bits=8)
    rng = np.random.default_rng(5)
    a = rng.uniform(-1, 1, 100).astype(np.float32)
    b = rng.uniform(-1, 1, 100).astype(np.float32)
    np.testing.assert_array_equal(ax.multiply(a, b), ax.multiply(a, b))


def test_lut_and_direct_simulation_agree():
    rng = np.random.default_rng(6)
    a = rng.uniform(-1, 1, 200).astype(np.float32)
    b = rng.uniform(-1, 1, 200).astype(np.float32)
    with_lut = AxFPM(frac_bits=6, use_lut=True).multiply(a, b)
    without_lut = AxFPM(frac_bits=6, use_lut=False).multiply(a, b)
    np.testing.assert_array_equal(with_lut, without_lut)


def test_approxfpm_with_exact_cells_is_nearly_exact():
    """With exact adder cells the only error left is the fraction truncation."""
    fpm = ApproxFPM(cells="exact", frac_bits=10)
    rng = np.random.default_rng(7)
    a = rng.uniform(-1, 1, 1000).astype(np.float32)
    b = rng.uniform(-1, 1, 1000).astype(np.float32)
    np.testing.assert_allclose(fpm.multiply(a, b), a * b, rtol=4e-3, atol=1e-7)


def test_heap_error_is_smaller_than_axfpm():
    rng = np.random.default_rng(8)
    a = rng.uniform(-1, 1, 5000).astype(np.float32)
    b = rng.uniform(-1, 1, 5000).astype(np.float32)
    exact = a * b
    ax_err = np.abs(AxFPM(frac_bits=8).multiply(a, b) - exact).mean()
    heap_err = np.abs(HEAPMultiplier(frac_bits=8).multiply(a, b) - exact).mean()
    assert 0 < heap_err < ax_err


def test_bfloat16_noise_is_small_and_deflating_for_positive_operands():
    rng = np.random.default_rng(9)
    a = rng.uniform(0.0, 1.0, 5000).astype(np.float32)
    b = rng.uniform(0.0, 1.0, 5000).astype(np.float32)
    approx = Bfloat16Multiplier().multiply(a, b)
    errors = approx - a * b
    assert np.abs(errors).max() < 0.02
    assert np.mean(errors <= 0) > 0.95


def test_broadcasting_through_the_multiplier():
    ax = AxFPM(frac_bits=8)
    a = np.linspace(0.1, 1.0, 5, dtype=np.float32).reshape(5, 1)
    b = np.linspace(0.1, 1.0, 3, dtype=np.float32).reshape(1, 3)
    out = ax.multiply(a, b)
    assert out.shape == (5, 3)


def test_frac_bits_validation():
    with pytest.raises(ValueError):
        AxFPM(frac_bits=0)
    with pytest.raises(ValueError):
        AxFPM(frac_bits=24)


def test_multiplier_registry():
    assert isinstance(get_multiplier("exact"), ExactMultiplier)
    assert isinstance(get_multiplier("axfpm", frac_bits=6), AxFPM)
    assert isinstance(get_multiplier("heap"), HEAPMultiplier)
    assert isinstance(get_multiplier("bfloat16"), Bfloat16Multiplier)
    with pytest.raises(KeyError):
        get_multiplier("unknown")


def test_callable_interface():
    ax = AxFPM(frac_bits=6)
    a = np.array([0.5], dtype=np.float32)
    b = np.array([0.5], dtype=np.float32)
    np.testing.assert_array_equal(ax(a, b), ax.multiply(a, b))
