"""End-to-end tests for the robustness-evaluation service (``repro.service``).

The service runs in-process on a background thread (real sockets, ephemeral
port) and is exercised through plain ``urllib`` HTTP clients -- exactly what
an external consumer would do.  The centrepiece is the concurrency test: two
clients submitting the overlapping Figure 8/9 and Figure 10/11 experiments
concurrently, with the streamed cell telemetry proving every shared cell was
computed exactly once and the results byte-identical to a serial run.
"""

import asyncio
import json
import re
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments.zoo import ZOO
from repro.pipeline import NONDETERMINISTIC_RESULT_FIELDS, ExperimentSpec, Runner
from repro.service import Service

OVERLAPPING = ("fig08_09_whitebox_l2", "fig10_11_whitebox_psnr_mse")


class ServiceThread:
    """A live service on an ephemeral port, event loop on a daemon thread."""

    def __init__(self, tmp_path, workers=2, **kwargs):
        self.service = Service(
            results_dir=tmp_path / "results",
            cache_dir=tmp_path / "cells",
            workers=workers,
            **kwargs,
        )
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(timeout=30), "service failed to start"

    def _run(self):
        asyncio.set_event_loop(self._loop)
        self._server = self._loop.run_until_complete(self.service.start(port=0))
        host, port = self._server.sockets[0].getsockname()[:2]
        self.base = f"http://{host}:{port}"
        self._ready.set()
        self._loop.run_forever()
        self._loop.run_until_complete(self.service.close())
        self._server.close()
        self._loop.run_until_complete(self._server.wait_closed())
        self._loop.close()

    def close(self):
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)

    # ------------------------------------------------------------ clients
    def get(self, path, timeout=120):
        with urllib.request.urlopen(self.base + path, timeout=timeout) as response:
            return json.loads(response.read())

    def post(self, path, payload, timeout=120):
        request = urllib.request.Request(
            self.base + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())

    def stream_events(self, job_id, timeout=600):
        """All NDJSON events of a job, blocking until the stream terminates."""
        url = f"{self.base}/jobs/{job_id}/events"
        with urllib.request.urlopen(url, timeout=timeout) as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            return [json.loads(line) for line in response if line.strip()]

    def run_job(self, payload):
        """Submit, follow the event stream to completion, return everything."""
        status, job = self.post("/jobs", payload)
        assert status == 202
        events = self.stream_events(job["id"])
        final = self.get(f"/jobs/{job['id']}")
        return job, events, final


@pytest.fixture()
def service(tmp_path):
    thread = ServiceThread(tmp_path)
    yield thread
    thread.close()


def deterministic(payload):
    payload = dict(payload)
    for field in NONDETERMINISTIC_RESULT_FIELDS:
        payload.pop(field, None)
    return json.dumps(payload, sort_keys=True)


# -------------------------------------------------------------- HTTP basics
def test_health_and_catalog(service):
    health = service.get("/health")
    assert health["status"] == "ok" and health["queue"]["jobs_total"] == 0
    names = service.get("/experiments")["experiments"]
    assert set(OVERLAPPING) <= set(names)
    spec = service.get("/experiments/fig08_09_whitebox_l2")
    # the advertised spec is the submittable wire format, round-trip exact
    assert ExperimentSpec.from_dict(spec).digest() == ExperimentSpec.from_dict(
        json.loads(json.dumps(spec))
    ).digest()


def test_error_responses(service):
    with pytest.raises(urllib.error.HTTPError) as err:
        service.get("/experiments/no_such_table")
    assert err.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as err:
        service.get("/no/such/endpoint")
    assert err.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as err:
        service.post("/experiments", {})  # POST on a GET route
    assert err.value.code == 405
    with pytest.raises(urllib.error.HTTPError) as err:
        service.post("/jobs", {"experiments": ["no_such_table"]})
    assert err.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as err:
        service.post("/jobs", {"wrong": "shape"})
    assert err.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as err:
        service.get("/results/fig08_09_whitebox_l2")  # nothing computed yet
    assert err.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as err:
        service.get("/results/..")  # traversal attempts are rejected
    assert err.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as err:
        # an encoded slash decodes before routing: three segments, no route
        service.get("/results/..%2Fsneaky")
    assert err.value.code == 404


# ----------------------------------------------------- the E2E acceptance test
def test_concurrent_overlapping_jobs_dedup_and_match_serial(service, tmp_path):
    """Two concurrent clients, overlapping experiments: shared cells computed
    once, both streams live, results byte-identical to a serial run."""
    with ThreadPoolExecutor(max_workers=2) as clients:
        futures = [
            clients.submit(service.run_job, {"experiments": [name], "fast": True})
            for name in OVERLAPPING
        ]
        outcomes = [future.result(timeout=600) for future in futures]

    for _job, events, final in outcomes:
        assert final["status"] == "succeeded", final.get("error")
        kinds = [event["event"] for event in events]
        # the full lifecycle streamed: queued -> running -> cells -> result -> done
        assert kinds[0] == "status" and kinds[-1] == "status"
        assert "cell" in kinds and "result" in kinds
        assert [event["seq"] for event in events] == list(range(len(events)))

    # exactly-once: across BOTH jobs' telemetry every cell digest was
    # computed once -- the overlapping whitebox cells were computed by
    # whichever job won the lease and streamed as hits to the other
    cell_events = [
        event
        for _job, events, _final in outcomes
        for event in events
        if event["event"] == "cell"
    ]
    computed = [e["digest"] for e in cell_events if e["status"] == "computed"]
    assert len(computed) == len(set(computed)), "a shared cell was computed twice"
    per_job = [
        {e["digest"] for e in events if e["event"] == "cell"}
        for _job, events, _final in outcomes
    ]
    shared = per_job[0] & per_job[1]
    assert shared, "the fig08/09 and fig10/11 whitebox grids should share cells"
    hits = {e["digest"] for e in cell_events if e["status"] == "hit"}
    assert shared <= set(computed) | hits  # every shared cell was seen by both

    # byte-identical to a direct serial run on a fresh cache
    serial = Runner(fast=True, cache_dir=tmp_path / "serial-cells", jobs=1)
    for name, serial_result in zip(OVERLAPPING, serial.run_many(list(OVERLAPPING))):
        served = service.get(f"/results/{name}")
        assert deterministic(served) == deterministic(serial_result.to_json())


def test_warm_resubmit_is_instant(service):
    first_job, _events, first = service.run_job(
        {"experiments": ["fig13_bfloat16_noise"], "fast": True}
    )
    assert first["status"] == "succeeded"
    # resubmit: planning sees every cell in the store
    start = time.perf_counter()
    _job, _events, final = service.run_job(
        {"experiments": ["fig13_bfloat16_noise"], "fast": True}
    )
    wall = time.perf_counter() - start
    assert final["status"] == "succeeded"
    dedup = final["dedup"]
    assert dedup["cells_cached"] == dedup["cells_total"] > 0
    assert dedup["cells_new"] == 0
    assert final["summary"]["cache_misses"] == 0
    # the acceptance bound: server-side execution of an all-hits job is
    # milliseconds; the full submit+stream+poll round trip stays under 1s
    assert final["elapsed_seconds"] < 0.1
    assert wall < 1.0


def test_inline_spec_submission(service, tiny_model, digit_split):
    name = "service_test_zoo"
    ZOO.register(name, lambda fast=False: (tiny_model, digit_split), overwrite=True)
    try:
        spec = ExperimentSpec(
            name="service_inline_whitebox",
            kind="whitebox",
            model=name,
            variants=("exact",),
            attacks=(("PGD", "pgd", {"epsilon": 0.1, "steps": 5}),),
            n_samples=4,
            params={"columns": ("success", "l2")},
        )
        # what `python -m repro info --json` emits is exactly what we POST
        wire = json.loads(json.dumps(spec.to_dict()))
        _job, events, final = service.run_job({"experiments": [wire], "fast": True})
        assert final["status"] == "succeeded", final.get("error")
        served = service.get("/results/service_inline_whitebox")
        direct = Runner(fast=True, cache_dir=service.service.cache_dir, jobs=1).run(spec)
        assert deterministic(served) == deterministic(direct.to_json())
        assert direct.cache_hits == 1  # the service's artifact was reused
    finally:
        ZOO.unregister(name)


def test_store_endpoints(service):
    service.run_job({"experiments": ["fig13_bfloat16_noise"], "fast": True})
    stats = service.get("/store/stats")
    assert stats["artifacts"] > 0 and stats["bytes"] > 0
    assert "noise_profile" in stats["namespaces"]
    report_status, report = service.post("/store/gc", {})
    assert report_status == 200
    assert report["evicted"] == 0  # no budget configured: a scan, not a purge
    assert report["scanned"] == stats["artifacts"]
    # an explicit budget in the request body forces eviction
    _status, purge = service.post("/store/gc", {"budget": 0})
    assert purge["evicted"] == stats["artifacts"]


def test_failed_job_reports_error(service, tiny_model, digit_split):
    name = "service_test_zoo_failing"
    ZOO.register(name, lambda fast=False: (tiny_model, digit_split), overwrite=True)
    try:
        spec = ExperimentSpec(
            name="service_failing",
            kind="whitebox",
            model=name,
            variants=("exact",),
            attacks=(("Nope", "no_such_attack", {}),),
            n_samples=2,
        )
        _job, events, final = service.run_job(
            {"experiments": [spec.to_dict()], "fast": True}
        )
        assert final["status"] == "failed"
        assert "no_such_attack" in final["error"]
        assert events[-1]["status"] == "failed"  # failure reached the stream
    finally:
        ZOO.unregister(name)


# -------------------------------------------------------------- observability
METRIC_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[+-]?Inf|[+-]?[0-9.e+-]+)$'
)


def scrape_metrics(service):
    """GET /metrics raw; returns (content_type, {sample_name: value})."""
    with urllib.request.urlopen(service.base + "/metrics", timeout=60) as response:
        content_type = response.headers["Content-Type"]
        text = response.read().decode("utf-8")
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert METRIC_LINE.match(line), f"unparseable exposition line: {line!r}"
        name, _, value = line.partition(" ")
        samples[name] = float(value)
    return content_type, samples


def test_health_reports_uptime_and_version(service):
    first = service.get("/health")
    assert first["version"] and first["uptime_seconds"] >= 0
    time.sleep(0.05)
    second = service.get("/health")
    assert second["uptime_seconds"] > first["uptime_seconds"]


def test_metrics_prometheus_exposition(service):
    service.get("/health")  # guarantee at least one observed GET 200
    content_type, samples = scrape_metrics(service)
    assert content_type == "text/plain; version=0.0.4; charset=utf-8"
    version = service.get("/health")["version"]
    assert samples[f'repro_service_info{{version="{version}"}}'] == 1
    assert samples["repro_service_uptime_seconds"] > 0
    assert samples['repro_jobs{state="succeeded"}'] == 0
    assert samples['repro_cells_total{outcome="computed"}'] == 0
    assert samples['repro_http_requests_total{method="GET",status="200"}'] >= 1
    # histogram invariants: buckets are cumulative, +Inf equals the count
    assert samples["repro_http_request_seconds_count"] >= 1
    assert (
        samples['repro_http_request_seconds_bucket{le="+Inf"}']
        == samples["repro_http_request_seconds_count"]
    )


def test_metrics_counters_move_with_a_job(service):
    _job, _events, final = service.run_job(
        {"experiments": ["fig13_bfloat16_noise"], "fast": True}
    )
    assert final["status"] == "succeeded"
    _content_type, samples = scrape_metrics(service)
    assert samples['repro_jobs{state="succeeded"}'] == 1
    assert samples['repro_cells_total{outcome="computed"}'] > 0
    assert samples["repro_store_bytes"] > 0
    assert samples['repro_http_requests_total{method="POST",status="202"}'] == 1
    # resubmitting the same experiment is all cache hits -- the hit counter moves
    _job2, _events2, final2 = service.run_job(
        {"experiments": ["fig13_bfloat16_noise"], "fast": True}
    )
    assert final2["status"] == "succeeded"
    _content_type, samples = scrape_metrics(service)
    assert samples['repro_cells_total{outcome="hit"}'] > 0
