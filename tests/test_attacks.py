"""Tests for the adversarial attack suite.

The attacks run against the small trained model from ``conftest.py``; the
checks focus on attack invariants (norm constraints, clipping, success on an
undefended model) rather than exact success percentages.
"""

import numpy as np
import pytest

from repro.attacks import (
    FGSM,
    JSMA,
    PGD,
    BoundaryAttack,
    CarliniWagnerL2,
    DeepFool,
    HopSkipJump,
    LocalSearchAttack,
)
from repro.attacks.registry import ATTACK_SPECS, create_attack, list_attacks
from repro.core.metrics import l0_distance, linf_distance


def test_fgsm_respects_epsilon_and_clip(tiny_classifier, attack_samples):
    x, y = attack_samples
    attack = FGSM(epsilon=0.1)
    result = attack.generate(tiny_classifier, x, y)
    assert result.adversarial.min() >= 0.0 and result.adversarial.max() <= 1.0
    assert np.all(linf_distance(x, result.adversarial) <= 0.1 + 1e-5)


def test_fgsm_fools_undefended_model(tiny_classifier, attack_samples):
    x, y = attack_samples
    result = FGSM(epsilon=0.25).generate(tiny_classifier, x, y)
    assert result.success_rate >= 0.5


def test_fgsm_validates_epsilon():
    with pytest.raises(ValueError):
        FGSM(epsilon=0.0)


def test_pgd_stays_in_epsilon_ball(tiny_classifier, attack_samples):
    x, y = attack_samples
    attack = PGD(epsilon=0.12, steps=8)
    result = attack.generate(tiny_classifier, x, y)
    assert np.all(linf_distance(x, result.adversarial) <= 0.12 + 1e-5)
    assert result.adversarial.min() >= 0.0 and result.adversarial.max() <= 1.0


def test_pgd_is_at_least_as_strong_as_fgsm(tiny_classifier, attack_samples):
    x, y = attack_samples
    fgsm = FGSM(epsilon=0.15).generate(tiny_classifier, x, y)
    pgd = PGD(epsilon=0.15, steps=15).generate(tiny_classifier, x, y)
    assert pgd.success_rate >= fgsm.success_rate - 1e-9


def test_pgd_validates_arguments():
    with pytest.raises(ValueError):
        PGD(epsilon=-1)
    with pytest.raises(ValueError):
        PGD(steps=0)


@pytest.mark.parametrize(
    "attack",
    [
        FGSM(epsilon=0.1),
        PGD(epsilon=0.1, steps=2, random_start=True),
        JSMA(theta=0.8, gamma=0.1),
        DeepFool(max_iterations=3),
        CarliniWagnerL2(max_iterations=3, num_const_steps=2),
        LocalSearchAttack(max_rounds=3, seed=0),
        BoundaryAttack(max_iterations=3, seed=0),
        HopSkipJump(max_iterations=2, seed=0),
    ],
    ids=lambda a: a.name,
)
def test_attacks_handle_empty_batch(tiny_classifier, attack_samples, attack):
    # the per-example loops no-op'd on an empty victim slice; the batched
    # rollouts (and PGD's np.stack of per-example noise draws) must too
    x, y = attack_samples
    empty = attack.perturb(tiny_classifier, x[:0], y[:0])
    assert empty.shape == x[:0].shape


def test_jsma_modifies_few_pixels(tiny_classifier, attack_samples):
    x, y = attack_samples
    attack = JSMA(theta=0.8, gamma=0.1)
    result = attack.generate(tiny_classifier, x[:3], y[:3])
    n_features = int(np.prod(x.shape[1:]))
    assert np.all(l0_distance(x[:3], result.adversarial) <= 0.1 * n_features + 1)


def test_jsma_validates_gamma():
    with pytest.raises(ValueError):
        JSMA(gamma=0.0)


def test_cw_finds_small_perturbations(tiny_classifier, attack_samples):
    x, y = attack_samples
    attack = CarliniWagnerL2(max_iterations=60, initial_const=1.0)
    result = attack.generate(tiny_classifier, x[:3], y[:3])
    assert result.success_rate > 0.5
    distances = result.l2_distances()[result.success]
    assert np.all(distances < 4.0)


def test_deepfool_success_and_small_norm(tiny_classifier, attack_samples):
    x, y = attack_samples
    result = DeepFool(max_iterations=30).generate(tiny_classifier, x[:4], y[:4])
    assert result.success_rate > 0.5
    assert np.all(result.l2_distances()[result.success] < 5.0)


def test_lsa_uses_only_scores(tiny_classifier, attack_samples):
    x, y = attack_samples
    clf = tiny_classifier
    clf.reset_counters()
    LocalSearchAttack(max_rounds=4, candidates_per_round=12).generate(clf, x[:2], y[:2])
    assert clf.gradient_count == 0  # score-based: never calls the gradient
    assert clf.query_count > 0


def test_boundary_attack_output_valid_and_gradient_free(tiny_classifier, attack_samples):
    x, y = attack_samples
    clf = tiny_classifier
    clf.reset_counters()
    result = BoundaryAttack(max_iterations=30, init_trials=20).generate(clf, x[:2], y[:2])
    assert clf.gradient_count == 0
    assert result.adversarial.min() >= 0.0 and result.adversarial.max() <= 1.0


def test_hopskipjump_reduces_distance_over_plain_start(tiny_classifier, attack_samples):
    x, y = attack_samples
    clf = tiny_classifier
    clf.reset_counters()
    result = HopSkipJump(max_iterations=3, init_trials=20, num_eval_samples=10).generate(
        clf, x[:2], y[:2]
    )
    assert clf.gradient_count == 0
    # successful samples should be closer to the original than a random image would be
    if result.success.any():
        assert result.l2_distances()[result.success].max() < np.sqrt(x[0].size)


def test_attack_result_bookkeeping(tiny_classifier, attack_samples):
    x, y = attack_samples
    result = FGSM(epsilon=0.2).generate(tiny_classifier, x, y)
    assert result.adversarial.shape == x.shape
    assert result.success.shape == (len(x),)
    assert len(result.l2_distances()) == len(x)
    assert 0.0 <= result.success_rate <= 1.0


def test_registry_lists_all_eight_attacks():
    names = list_attacks()
    assert len(names) == 8
    for expected in ("fgsm", "pgd", "jsma", "cw", "deepfool", "lsa", "boundary", "hsj"):
        assert expected in names


def test_registry_creates_attacks_with_overrides():
    attack = create_attack("fgsm", epsilon=0.3)
    assert isinstance(attack, FGSM)
    assert attack.epsilon == 0.3
    with pytest.raises(KeyError):
        create_attack("unknown-attack")


def test_registry_metadata_matches_table1():
    assert ATTACK_SPECS["cw"].strength == 5
    assert ATTACK_SPECS["fgsm"].learning == "one-shot"
    assert ATTACK_SPECS["boundary"].category == "decision-based"
    assert ATTACK_SPECS["jsma"].norm == "L0"
