"""Tests for multiplier error metrics and noise profiling."""

import numpy as np
import pytest

from repro.arith.error_metrics import mred, nmed, profile_multiplier
from repro.arith.fpm import AxFPM, Bfloat16Multiplier, ExactMultiplier, HEAPMultiplier


def test_mred_known_value():
    exact = np.array([1.0, 2.0, 4.0])
    approx = np.array([1.1, 2.2, 4.4])
    assert mred(exact, approx) == pytest.approx(0.1)


def test_mred_ignores_zero_reference_entries():
    exact = np.array([0.0, 2.0])
    approx = np.array([5.0, 2.2])
    assert mred(exact, approx) == pytest.approx(0.1)


def test_mred_all_zero_reference():
    assert mred(np.zeros(4), np.ones(4)) == 0.0


def test_nmed_known_value():
    exact = np.array([1.0, -2.0, 4.0])
    approx = np.array([1.5, -2.5, 4.5])
    assert nmed(exact, approx) == pytest.approx(0.5 / 4.0)


def test_nmed_zero_reference():
    assert nmed(np.zeros(3), np.ones(3)) == 0.0


def test_profile_exact_multiplier_has_no_error():
    profile = profile_multiplier(ExactMultiplier(), n_samples=2000)
    assert profile.mred == 0.0
    assert profile.nmed == 0.0
    assert profile.max_abs_error == 0.0


def test_profile_axfpm_matches_paper_shape():
    """Figure 3 / Table 8 shape: MRED around a third, strong magnitude inflation,
    positive correlation between operand magnitude and error."""
    profile = profile_multiplier(AxFPM(frac_bits=8), n_samples=20000)
    assert 0.2 < profile.mred < 0.6
    assert profile.fraction_magnitude_inflated > 0.9
    assert profile.error_magnitude_correlation > 0.3


def test_profile_heap_is_milder_than_axfpm():
    ax = profile_multiplier(AxFPM(frac_bits=8), n_samples=10000)
    heap = profile_multiplier(HEAPMultiplier(frac_bits=8), n_samples=10000)
    assert heap.mred < ax.mred
    assert heap.fraction_magnitude_inflated < ax.fraction_magnitude_inflated


def test_profile_bfloat16_noise_is_tiny():
    profile = profile_multiplier(Bfloat16Multiplier(), n_samples=10000)
    assert profile.mred < 0.02
    assert profile.fraction_magnitude_inflated < 0.1


def test_profile_respects_operand_range():
    profile = profile_multiplier(AxFPM(frac_bits=8), n_samples=500, operand_range=(0.0, 0.5))
    assert profile.operand_low == 0.0
    assert profile.operand_high == 0.5
    assert np.all(np.abs(profile.exact_products) <= 0.25 + 1e-6)


def test_profile_summary_mentions_multiplier_name():
    profile = profile_multiplier(AxFPM(frac_bits=6), n_samples=500)
    assert "axfpm" in profile.summary()
