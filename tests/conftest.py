"""Shared fixtures: tiny datasets and models sized for fast unit testing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.base import Classifier
from repro.datasets import generate_digits, train_test_split
from repro.nn import Adam, build_lenet5, train_classifier
from repro.nn.models import convert_to_approximate


@pytest.fixture(scope="session")
def digit_split():
    """A small synthetic-digit split shared across the test session."""
    dataset = generate_digits(n_samples=2400, size=16, seed=7)
    return train_test_split(dataset, test_fraction=0.15)


@pytest.fixture(scope="session")
def tiny_model(digit_split):
    """A small LeNet trained well enough for attack and defense tests (~93 % accuracy)."""
    model = build_lenet5(
        digit_split.train.input_shape,
        conv_channels=(8, 16),
        fc_sizes=(64, 48),
        dropout=0.2,
        seed=3,
    )
    optimizer = Adam(model.parameters(), lr=0.002)
    train_classifier(
        model,
        optimizer,
        digit_split.train.images,
        digit_split.train.labels,
        epochs=30,
        batch_size=64,
        rng=np.random.default_rng(3),
    )
    optimizer.lr = 0.0005
    train_classifier(
        model,
        optimizer,
        digit_split.train.images,
        digit_split.train.labels,
        epochs=5,
        batch_size=64,
        rng=np.random.default_rng(4),
    )
    return model


@pytest.fixture(scope="session")
def tiny_approx_model(tiny_model):
    """The Defensive Approximation conversion of the tiny model."""
    return convert_to_approximate(tiny_model)


@pytest.fixture()
def tiny_classifier(tiny_model):
    """Attack facade around the tiny exact model."""
    return Classifier(tiny_model)


@pytest.fixture()
def tiny_approx_classifier(tiny_approx_model):
    """Attack facade around the tiny approximate model."""
    return Classifier(tiny_approx_model)


@pytest.fixture(scope="session")
def attack_samples(digit_split, tiny_model):
    """A handful of correctly classified test samples for attack tests."""
    images = digit_split.test.images
    labels = digit_split.test.labels
    preds = tiny_model.predict(images)
    correct = np.flatnonzero(preds == labels)[:6]
    return images[correct], labels[correct]
