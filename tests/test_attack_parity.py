"""Bit-for-bit parity of the batched attack engine with per-example loops.

Every rewritten attack (DeepFool, C&W, JSMA, LSA, Boundary, HopSkipJump) is
checked against the frozen per-example reference implementation
(:mod:`attack_reference`) at batch sizes 1, 3 and 8, on the exact *and* the
approximate classifier: adversarial outputs must be byte-identical and the
query/gradient budgets must match exactly.  This is the contract that lets
the pipeline treat the shard size as pure execution tuning.
"""

from __future__ import annotations

import numpy as np
import pytest

from attack_reference import reference_perturb
from repro.attacks.base import QUERY_STATS
from repro.attacks.registry import create_attack

#: shrunken-but-representative parameters per attack (shared by both sides)
PARITY_CASES = {
    "deepfool": dict(max_iterations=4),
    "cw": dict(max_iterations=8, num_const_steps=2),
    "jsma": dict(gamma=0.03),
    "lsa": dict(max_rounds=3, candidates_per_round=10, pixels_per_round=2),
    "boundary": dict(max_iterations=8, init_trials=10),
    "hsj": dict(max_iterations=2, init_trials=10, num_eval_samples=6, binary_search_steps=3),
}
SEEDED = {"lsa", "boundary", "hsj"}
SEED = 1234


@pytest.fixture(scope="module")
def victims(digit_split, tiny_model):
    """Eight correctly classified victims (batch-8 is the largest parity case)."""
    images = digit_split.test.images
    labels = digit_split.test.labels
    correct = np.flatnonzero(tiny_model.predict(images) == labels)[:8]
    assert len(correct) == 8
    return images[correct].astype(np.float32), labels[correct]


def _attack(name, seed_offset=0):
    params = dict(PARITY_CASES[name])
    if name in SEEDED:
        params["seed"] = SEED
    attack = create_attack(name, **params)
    attack.seed_offset = seed_offset
    return attack


def _assert_parity(classifier, name, x, y, seed_offset=0):
    classifier.reset_counters()
    batched = _attack(name, seed_offset).perturb(classifier, x, y)
    batched_counts = (classifier.query_count, classifier.gradient_count)

    classifier.reset_counters()
    reference = reference_perturb(
        name,
        classifier,
        x,
        y,
        params=PARITY_CASES[name],
        seed=SEED if name in SEEDED else 0,
        seed_offset=seed_offset,
    )
    reference_counts = (classifier.query_count, classifier.gradient_count)

    assert batched.dtype == reference.dtype
    assert batched.tobytes() == reference.tobytes(), f"{name}: outputs diverge"
    assert batched_counts == reference_counts, f"{name}: query budget diverges"
    return batched


@pytest.mark.parametrize("batch", [1, 3, 8])
@pytest.mark.parametrize("name", sorted(PARITY_CASES))
def test_batched_attack_matches_per_example_loop_exact(
    tiny_classifier, victims, name, batch
):
    x, y = victims
    _assert_parity(tiny_classifier, name, x[:batch], y[:batch])


@pytest.mark.parametrize("batch", [1, 3, 8])
@pytest.mark.parametrize("name", sorted(PARITY_CASES))
def test_batched_attack_matches_per_example_loop_approx(
    tiny_approx_classifier, victims, name, batch
):
    x, y = victims
    _assert_parity(tiny_approx_classifier, name, x[:batch], y[:batch])


@pytest.mark.parametrize("name", sorted(SEEDED))
def test_seed_offset_decomposes_the_batch(tiny_classifier, victims, name):
    """Attacking victims [3:8] with seed_offset=3 reproduces rows 3:8 of the
    full batch -- the property that makes shard layout irrelevant."""
    x, y = victims
    full = _attack(name).perturb(tiny_classifier, x, y)
    tail = _attack(name, seed_offset=3).perturb(tiny_classifier, x[3:], y[3:])
    assert full[3:].tobytes() == tail.tobytes()


def test_batched_rollouts_amortise_model_calls(tiny_classifier, victims):
    """At batch 8 the engine issues far fewer calls than samples queried."""
    x, y = victims
    mark = QUERY_STATS.snapshot()
    _attack("deepfool").generate(tiny_classifier, x, y)
    delta = QUERY_STATS.delta(mark)
    assert delta["query_samples"] > delta["query_calls"]
    assert delta["gradient_samples"] > delta["gradient_calls"]
    mean_batch = delta["query_samples"] / delta["query_calls"]
    assert mean_batch > 1.5
    # counting is scoped to attack execution: calls outside generate() --
    # victim selection, transfer replays -- must not dilute the histogram
    mark = QUERY_STATS.snapshot()
    tiny_classifier.predict_logits(x)
    assert QUERY_STATS.delta(mark)["query_calls"] == 0
