"""Tests for the multi-tenant content-addressed artifact store (``repro.store``).

Covers the three behaviours the service tier leans on: optimistic lock-free
reads are never torn, writer leases are mutually exclusive with stale-lease
takeover (dead pid, expired TTL), and LRU eviction respects both the byte
budget and active leases -- including two real processes racing on one digest.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.store import DEFAULT_LEASE_TTL, ArtifactStore, parse_size

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def make_store(tmp_path, **kwargs):
    return ArtifactStore(tmp_path / "store", **kwargs)


# ------------------------------------------------------------- size parsing
def test_parse_size_units():
    assert parse_size(None) is None
    assert parse_size("") is None
    assert parse_size(12345) == 12345
    assert parse_size("1024") == 1024
    assert parse_size("4k") == 4096
    assert parse_size("512M") == 512 * 1024**2
    assert parse_size("2G") == 2 * 1024**3
    assert parse_size("1.5g") == int(1.5 * 1024**3)
    assert parse_size("2GB") == 2 * 1024**3
    with pytest.raises(ValueError):
        parse_size("lots")


def test_budget_and_ttl_from_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE_BUDGET", "1M")
    monkeypatch.setenv("REPRO_STORE_LEASE_TTL", "7.5")
    store = make_store(tmp_path)
    assert store.budget == 1024**2
    assert store.lease_ttl == 7.5
    monkeypatch.delenv("REPRO_STORE_BUDGET")
    monkeypatch.delenv("REPRO_STORE_LEASE_TTL")
    store = make_store(tmp_path)
    assert store.budget is None
    assert store.lease_ttl == DEFAULT_LEASE_TTL
    # explicit arguments beat the environment
    monkeypatch.setenv("REPRO_STORE_BUDGET", "1M")
    assert make_store(tmp_path, budget="2G").budget == 2 * 1024**3


# ---------------------------------------------------------------- basic IO
def test_put_get_roundtrip_and_layout(tmp_path):
    store = make_store(tmp_path)
    value = {"rows": [[1, 2], [3, 4]], "label": "x"}
    path = store.put("whitebox", "d" * 40, value)
    assert path == store.root / "whitebox" / ("d" * 40 + ".json")  # legacy layout
    assert store.get("whitebox", "d" * 40) == value
    assert store.contains("whitebox", "d" * 40)
    assert store.get("whitebox", "e" * 40) is None
    assert not store.contains("whitebox", "e" * 40)


def test_corrupt_artifact_reads_as_absent_and_is_removed(tmp_path):
    store = make_store(tmp_path)
    path = store.path("ns", "abc")
    path.parent.mkdir(parents=True)
    path.write_text('{"truncated": ')
    assert store.get("ns", "abc") is None
    assert not path.exists()  # removed so the next writer republishes cleanly


def test_reserved_namespaces_rejected(tmp_path):
    store = make_store(tmp_path)
    for bad in ("leases", "locks", "", ".hidden"):
        with pytest.raises(ValueError):
            store.path(bad, "abc")


# ------------------------------------------------------------------ leases
def test_lease_mutual_exclusion_and_release(tmp_path):
    store = make_store(tmp_path)
    lease = store.try_lease("ns", "d1")
    assert lease is not None
    assert store.try_lease("ns", "d1") is None  # held
    assert store.try_lease("ns", "d2") is not None  # other digests independent
    holder = store.lease_holder("ns", "d1")
    assert holder["pid"] == os.getpid()
    lease.release()
    assert store.lease_holder("ns", "d1") is None
    assert store.try_lease("ns", "d1") is not None  # reacquirable


def test_lease_ttl_takeover(tmp_path):
    store = make_store(tmp_path, lease_ttl=0.05)
    first = store.try_lease("ns", "d1")
    assert first is not None
    # forge a remote host so the pid-liveness probe cannot keep it alive:
    # only the TTL can expire this claim
    lease_path = store._lease_path("ns", "d1")
    claim = json.loads(lease_path.read_text())
    claim["host"] = "elsewhere"
    lease_path.write_text(json.dumps(claim))
    assert store.try_lease("ns", "d1") is None  # not expired yet
    time.sleep(0.08)
    second = store.try_lease("ns", "d1")
    assert second is not None  # TTL lapsed: taken over
    # the usurped holder can no longer refresh or release the claim
    assert first.refresh() is False
    first.release()
    assert store.lease_holder("ns", "d1")["token"] == second.token


def test_lease_dead_pid_takeover(tmp_path):
    store = make_store(tmp_path)  # default 300s TTL: only the pid probe helps
    ctx = multiprocessing.get_context()
    proc = ctx.Process(target=_acquire_and_exit, args=(store.root,))
    proc.start()
    proc.join(timeout=30)
    assert proc.exitcode == 0
    holder = store.lease_holder("ns", "d1")
    assert holder is not None and holder["pid"] == proc.pid
    # the claim's pid is dead on this host -> immediate takeover, no TTL wait
    assert store.try_lease("ns", "d1") is not None


def _acquire_and_exit(root):
    lease = ArtifactStore(root).try_lease("ns", "d1")
    assert lease is not None
    # exit WITHOUT releasing: simulates a worker crashing mid-computation


def test_refresh_extends_expiry(tmp_path):
    store = make_store(tmp_path, lease_ttl=0.2)
    lease = store.try_lease("ns", "d1")
    for _ in range(3):
        time.sleep(0.1)
        assert lease.refresh() is True  # keeps the claim alive past one TTL
    assert store.try_lease("ns", "d1") is None
    lease.release()


def test_wait_for_returns_published_value(tmp_path):
    store = make_store(tmp_path, lease_ttl=0.2)
    writer = store.try_lease("ns", "d1")
    store.put("ns", "d1", {"answer": 42})
    writer.release()
    value, lease = store.wait_for("ns", "d1")
    assert value == {"answer": 42} and lease is None


def test_wait_for_inherits_abandoned_lease(tmp_path):
    store = make_store(tmp_path, lease_ttl=0.05)
    lease_path = store._lease_path("ns", "d1")
    store.try_lease("ns", "d1")  # never released...
    claim = json.loads(lease_path.read_text())
    claim["host"] = "elsewhere"  # ...and unprobeable: must wait out the TTL
    lease_path.write_text(json.dumps(claim))
    value, lease = store.wait_for("ns", "d1", poll=0.01, timeout=5.0)
    assert value is None and lease is not None  # caller now owns the cell
    lease.release()


def test_wait_for_timeout(tmp_path):
    store = make_store(tmp_path)
    with store.try_lease("ns", "d1"):
        with pytest.raises(TimeoutError):
            # the holding lease belongs to this live process, so a second
            # client can neither read a value nor take the lease over
            ArtifactStore(store.root).wait_for("ns", "d1", poll=0.01, timeout=0.1)


# -------------------------------------------------------- concurrent access
@pytest.mark.skipif(not HAS_FORK, reason="needs cheap process spawning")
def test_two_processes_race_one_digest_compute_once(tmp_path):
    """N processes racing on one digest: exactly one computes, no torn reads."""
    ctx = multiprocessing.get_context("fork")
    root = tmp_path / "store"
    queue = ctx.Queue()
    barrier = ctx.Barrier(3)
    procs = [
        ctx.Process(target=_race_compute, args=(root, barrier, queue, i)) for i in range(3)
    ]
    for proc in procs:
        proc.start()
    outcomes = [queue.get(timeout=60) for _ in procs]
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0
    statuses = sorted(status for status, _ in outcomes)
    assert statuses == ["computed", "hit", "hit"], outcomes
    values = {json.dumps(value, sort_keys=True) for _, value in outcomes}
    assert len(values) == 1  # everyone read the same complete artifact


def _race_compute(root, barrier, queue, index):
    store = ArtifactStore(root)
    barrier.wait()  # maximise contention: all processes start together
    lease = store.try_lease("cell", "shared-digest")
    if lease is None:
        value, lease = store.wait_for("cell", "shared-digest", poll=0.005, timeout=30)
        if value is not None:
            queue.put(("hit", value))
            return
    try:
        value = store.get("cell", "shared-digest")
        if value is not None:
            queue.put(("hit", value))
            return
        time.sleep(0.05)  # make the computation window wide enough to race
        value = {"computed_by": "winner", "payload": list(range(50))}
        store.put("cell", "shared-digest", value)
        queue.put(("computed", value))
    finally:
        lease.release()


@pytest.mark.skipif(not HAS_FORK, reason="needs cheap process spawning")
def test_optimistic_reads_never_torn(tmp_path):
    """A writer republishing in a loop never exposes partial JSON to readers."""
    ctx = multiprocessing.get_context("fork")
    root = tmp_path / "store"
    stop = ctx.Event()
    writer = ctx.Process(target=_republish_loop, args=(root, stop))
    writer.start()
    store = ArtifactStore(root)
    try:
        reads = 0
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            value = store.get("ns", "hot")
            if value is not None:
                # every observed value is internally consistent
                assert value["blob"] == "x" * value["size"], "torn read observed"
                reads += 1
        assert reads > 10  # the reader actually overlapped the writer
    finally:
        stop.set()
        writer.join(timeout=30)
        assert writer.exitcode == 0


def _republish_loop(root, stop):
    store = ArtifactStore(root)
    size = 1
    while not stop.is_set():
        size = (size * 7) % 20000 + 1
        store.put("ns", "hot", {"size": size, "blob": "x" * size})


# ------------------------------------------------------------ stats and GC
def test_stats_shape(tmp_path):
    store = make_store(tmp_path, budget="1M", lease_ttl=9.0)
    store.put("alpha", "a1", {"x": 1})
    store.put("alpha", "a2", {"x": 2})
    store.put("beta", "b1", {"x": 3})
    with store.try_lease("beta", "b2"):
        stats = store.stats()
        assert stats["active_leases"] == 1
    assert stats["artifacts"] == 3
    assert stats["bytes"] > 0
    assert stats["budget_bytes"] == 1024**2
    assert stats["lease_ttl_seconds"] == 9.0
    assert stats["namespaces"]["alpha"]["artifacts"] == 2
    assert stats["namespaces"]["beta"]["artifacts"] == 1
    assert store.stats()["active_leases"] == 0


def test_gc_evicts_least_recently_read_first(tmp_path):
    store = make_store(tmp_path)
    payload = {"blob": "x" * 2000}
    for i, digest in enumerate(["old", "mid", "new"]):
        store.put("ns", digest, payload)
        os.utime(store.path("ns", digest), (time.time() + i, time.time() + i))
    # reading "old" touches it most-recently -> "mid" becomes the LRU victim
    store.get("ns", "old")
    os.utime(store.path("ns", "old"), (time.time() + 10, time.time() + 10))
    size = store.path("ns", "new").stat().st_size
    report = store.gc(budget=2 * size + size // 2)  # room for two artifacts
    assert report["evicted"] == 1
    assert not store.contains("ns", "mid")
    assert store.contains("ns", "old") and store.contains("ns", "new")
    assert report["bytes_after"] <= 2 * size + size // 2


def test_gc_never_evicts_leased_artifacts(tmp_path):
    store = make_store(tmp_path)
    store.put("ns", "victim", {"blob": "x" * 2000})
    store.put("ns", "fresh", {"blob": "y" * 2000})
    os.utime(store.path("ns", "victim"), (1, 1))  # oldest: first eviction pick
    with store.try_lease("ns", "victim"):
        report = store.gc(budget=0)
        assert report["skipped_leased"] == 1
        assert store.contains("ns", "victim")  # leased: survived budget=0
        assert not store.contains("ns", "fresh")
    report = store.gc(budget=0)  # lease released: now evictable
    assert report["evicted"] == 1
    assert not store.contains("ns", "victim")


def test_gc_without_budget_is_a_noop_scan(tmp_path):
    store = make_store(tmp_path)
    store.put("ns", "keep", {"x": 1})
    report = store.gc()
    assert report["evicted"] == 0 and report["scanned"] == 1
    assert store.contains("ns", "keep")


def test_put_with_budget_triggers_opportunistic_gc(tmp_path):
    store = make_store(tmp_path, budget=1500)
    for i in range(5):
        store.put("ns", f"d{i}", {"blob": "x" * 1000})
        time.sleep(0.01)  # distinct mtimes on coarse filesystems
    assert store.stats()["bytes"] <= 1500
    assert store.contains("ns", "d4")  # the newest write always survives
