"""Tests for the declarative experiment pipeline (spec -> Runner -> result)."""

import json

import pytest

from repro.pipeline import (
    EXPERIMENT_KINDS,
    ExperimentSpec,
    Runner,
    get_experiment,
    list_experiments,
)
from repro.pipeline.catalog import DIGIT_ATTACKS
from repro.pipeline.spec import AttackGridEntry, canonical_digest


def make_runner(tmp_path, **kwargs):
    kwargs.setdefault("cache_dir", tmp_path / "cells")
    kwargs.setdefault("results_dir", tmp_path / "results")
    return Runner(**kwargs)


NOISE_SPEC = ExperimentSpec(
    name="test_noise",
    kind="noise_profile",
    title="tiny noise profile",
    params={
        "multipliers": [{"label": "Bfloat16", "name": "bfloat16"}],
        "n_samples": 2000,
        "operand_range": (0.0, 1.0),
    },
)


def test_catalog_covers_the_paper():
    names = list_experiments()
    assert len(names) >= 10
    assert "table04_blackbox_mnist" in names
    assert "table02_transferability_mnist" in names
    for name in names:
        spec = get_experiment(name)
        assert spec.name == name
        assert spec.kind in EXPERIMENT_KINDS


def test_spec_digest_and_replace():
    spec = get_experiment("table02_transferability_mnist")
    assert spec.digest() == spec.digest()
    changed = spec.replace(n_samples=3)
    assert changed.n_samples == 3
    assert changed.digest() != spec.digest()
    assert spec.n_samples != 3  # original untouched (frozen dataclass)


def test_run_writes_results_and_caches_cells(tmp_path):
    runner = make_runner(tmp_path)
    result = runner.run(NOISE_SPEC)
    assert result.cache_misses == 1 and result.cache_hits == 0
    txt = tmp_path / "results" / "test_noise.txt"
    js = tmp_path / "results" / "test_noise.json"
    assert txt.exists() and js.exists()
    assert "MRED" in txt.read_text()
    payload = json.loads(js.read_text())
    assert payload["name"] == "test_noise"
    assert payload["metrics"]["profiles"]["Bfloat16"]["n_samples"] == 2000
    assert payload["spec"]["kind"] == "noise_profile"

    # second run: artifact cache hit, identical metrics
    rerun = make_runner(tmp_path).run(NOISE_SPEC)
    assert rerun.cache_hits == 1 and rerun.cache_misses == 0
    assert rerun.metrics == result.metrics


def test_cache_key_depends_on_spec_content(tmp_path):
    runner = make_runner(tmp_path)
    runner.run(NOISE_SPEC)
    changed = NOISE_SPEC.replace(
        params={**NOISE_SPEC.params, "n_samples": 1000}
    )
    result = runner.run(changed)
    assert result.cache_misses == 1  # different payload -> new cell


def test_no_cache_mode_recomputes(tmp_path):
    runner = make_runner(tmp_path, use_cache=False)
    runner.run(NOISE_SPEC)
    rerun = make_runner(tmp_path, use_cache=False).run(NOISE_SPEC)
    assert rerun.cache_hits == 0 and rerun.cache_misses == 1


def test_fast_mode_scales_attack_params_and_budgets():
    fast = Runner(fast=True)
    full = Runner(fast=False)
    entry = AttackGridEntry("PGD", "pgd", {"epsilon": 0.1, "steps": 15})
    assert full.attack_params(entry) == {"epsilon": 0.1, "steps": 15}
    assert fast.attack_params(entry) == {"epsilon": 0.1, "steps": 3}
    boundary = AttackGridEntry("BA", "boundary", {"max_iterations": 80, "init_trials": 30})
    assert fast.attack_params(boundary) == {"max_iterations": 20, "init_trials": 10}
    spec = get_experiment("table02_transferability_mnist")
    assert full.sample_budget(spec) == spec.n_samples
    assert fast.sample_budget(spec) <= 4


def test_attack_grid_entries_resolve_through_attack_registry():
    runner = Runner()
    for entry in DIGIT_ATTACKS:
        attack = runner.attack(entry)
        assert attack.name  # instantiated Attack subclass


def test_unknown_experiment_raises_keyerror():
    with pytest.raises(KeyError):
        Runner().run("does_not_exist")


def test_unknown_kind_raises_keyerror():
    spec = ExperimentSpec(name="bad", kind="no_such_kind")
    with pytest.raises(KeyError):
        Runner().run(spec)


def test_digest_is_order_insensitive_for_dict_payloads():
    assert canonical_digest({"a": 1, "b": 2}) == canonical_digest({"b": 2, "a": 1})
    assert canonical_digest({"a": 1}) != canonical_digest({"a": 2})
