"""End-to-end integration tests: train, defend, attack, evaluate.

These tests run the full Defensive Approximation pipeline on miniature models
and datasets.  They assert the *direction* of the paper's findings (DA keeps
clean accuracy, blunts transferred attacks, raises the white-box noise budget)
rather than specific percentages.
"""

import numpy as np
import pytest

from repro.arith.fpm import HEAPMultiplier
from repro.attacks import FGSM, PGD, DeepFool
from repro.attacks.base import Classifier
from repro.core.defense import DefensiveApproximation
from repro.core.evaluation import evaluate_transferability, evaluate_white_box
from repro.nn import evaluate_accuracy
from repro.nn.models import convert_to_approximate


def test_full_pipeline_transferability(tiny_model, tiny_approx_model, digit_split):
    defense = DefensiveApproximation(tiny_model)
    source = defense.exact_classifier()
    targets = {
        "exact": Classifier(tiny_model),
        "da": defense.defended_classifier(),
    }
    images = digit_split.test.images
    labels = digit_split.test.labels

    total_da_success = []
    for attack in (FGSM(epsilon=0.1), DeepFool(max_iterations=25)):
        evaluation = evaluate_transferability(
            source, targets, attack, images, labels, max_samples=12
        )
        assert evaluation.target_success_rates["exact"] == pytest.approx(1.0)
        total_da_success.append(evaluation.target_success_rates["da"])
    # on average across attacks the DA model resists a meaningful share of the
    # adversarial examples that fully fool the exact model
    assert np.mean(total_da_success) < 0.95


def test_da_accuracy_and_confidence_shape(tiny_model, tiny_approx_model, digit_split):
    x = digit_split.test.images[:80]
    y = digit_split.test.labels[:80]
    exact_acc = evaluate_accuracy(tiny_model, x, y)
    da_acc = evaluate_accuracy(tiny_approx_model, x, y)
    assert exact_acc > 0.7
    # DA must not collapse the classifier
    assert da_acc > 0.5


def test_white_box_needs_more_noise_on_da(tiny_model, tiny_approx_model, digit_split):
    """Figures 8-11: DeepFool needs a larger perturbation to fool the DA model."""
    exact_eval = evaluate_white_box(
        Classifier(tiny_model),
        DeepFool(max_iterations=25),
        digit_split.test.images,
        digit_split.test.labels,
        max_samples=5,
        victim_name="exact",
    )
    da_eval = evaluate_white_box(
        Classifier(tiny_approx_model),
        DeepFool(max_iterations=25),
        digit_split.test.images,
        digit_split.test.labels,
        max_samples=5,
        victim_name="da",
    )
    # both should mostly succeed (white-box attacks always can), but the noise
    # budget on DA should not be smaller than on the exact classifier
    if exact_eval.success_rate > 0 and da_eval.success_rate > 0:
        assert da_eval.mean_l2 >= 0.5 * exact_eval.mean_l2


def test_heap_based_defense_also_works(tiny_model, digit_split):
    heap_model = convert_to_approximate(tiny_model, multiplier=HEAPMultiplier(frac_bits=8))
    x = digit_split.test.images[:40]
    y = digit_split.test.labels[:40]
    assert evaluate_accuracy(heap_model, x, y) > 0.6


def test_defense_is_deterministic(tiny_model, digit_split):
    defense_a = DefensiveApproximation(tiny_model)
    defense_b = DefensiveApproximation(tiny_model)
    x = digit_split.test.images[:10]
    np.testing.assert_array_equal(defense_a.predict(x), defense_b.predict(x))
