"""Tests for the layer modules (forward/backward correctness, parameter handling)."""

import numpy as np
import pytest

from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    Parameter,
    ReLU,
)


def test_parameter_zero_grad_and_shape():
    p = Parameter(np.ones((2, 3)), name="w")
    p.grad += 5.0
    p.zero_grad()
    np.testing.assert_array_equal(p.grad, np.zeros((2, 3)))
    assert p.shape == (2, 3)


def test_parameter_version_bumps_on_assignment():
    p = Parameter(np.ones((2, 2)), name="w")
    v0 = p.version
    p.value = np.zeros((2, 2))
    v1 = p.version
    assert v1 > v0
    p.value -= 1.0  # augmented assignment re-binds through the setter
    v2 = p.version
    assert v2 > v1
    p.bump_version()  # escape hatch for in-place array writes
    assert p.version > v2
    assert p.value.dtype == np.float32


def test_parameter_versions_are_process_unique():
    # two distinct Parameters never share a version, so replacing a layer's
    # Parameter object is indistinguishable from a mutation to version-keyed
    # caches (the fused GEMM kernels' weight decompositions)
    a = Parameter(np.ones(2), name="a")
    b = Parameter(np.ones(2), name="b")
    assert a.version != b.version


def test_optimizer_step_bumps_parameter_versions():
    from repro.nn.optim import SGD

    p = Parameter(np.ones(3), name="w")
    p.grad += 1.0
    v0 = p.version
    SGD([p], lr=0.1).step()
    assert p.version > v0


def test_conv2d_forward_shape_and_parameters():
    layer = Conv2d(3, 8, 3, padding=1)
    x = np.random.default_rng(0).normal(size=(4, 3, 10, 10)).astype(np.float32)
    out = layer.forward(x)
    assert out.shape == (4, 8, 10, 10)
    assert len(layer.parameters()) == 2


def test_conv2d_backward_requires_forward():
    layer = Conv2d(1, 1, 3)
    with pytest.raises(RuntimeError):
        layer.backward(np.zeros((1, 1, 2, 2), dtype=np.float32))


def test_conv2d_backward_accumulates_gradients():
    layer = Conv2d(1, 2, 3)
    x = np.random.default_rng(1).normal(size=(2, 1, 6, 6)).astype(np.float32)
    out = layer.forward(x)
    layer.backward(np.ones_like(out))
    first = layer.weight.grad.copy()
    layer.forward(x)
    layer.backward(np.ones_like(out))
    np.testing.assert_allclose(layer.weight.grad, 2 * first, rtol=1e-5)


def test_linear_forward_backward_consistency():
    layer = Linear(5, 3)
    x = np.random.default_rng(2).normal(size=(4, 5)).astype(np.float32)
    out = layer.forward(x)
    assert out.shape == (4, 3)
    grad_in = layer.backward(np.ones_like(out))
    assert grad_in.shape == x.shape
    np.testing.assert_allclose(layer.bias.grad, np.full(3, 4.0), rtol=1e-5)


def test_linear_gradient_matches_numerical():
    rng = np.random.default_rng(3)
    layer = Linear(4, 2, rng=rng)
    x = rng.normal(size=(3, 4)).astype(np.float32)
    out = layer.forward(x)
    grad_out = rng.normal(size=out.shape).astype(np.float32)
    grad_in = layer.backward(grad_out)
    eps = 1e-3
    num = np.zeros_like(x)
    for i in range(x.shape[0]):
        for j in range(x.shape[1]):
            xp = x.copy()
            xp[i, j] += eps
            xm = x.copy()
            xm[i, j] -= eps
            num[i, j] = (np.sum(layer.forward(xp) * grad_out) - np.sum(layer.forward(xm) * grad_out)) / (
                2 * eps
            )
    np.testing.assert_allclose(grad_in, num, rtol=1e-2, atol=1e-3)


def test_relu_module_roundtrip():
    layer = ReLU()
    x = np.array([[-1.0, 2.0]], dtype=np.float32)
    out = layer.forward(x)
    grad = layer.backward(np.array([[1.0, 1.0]], dtype=np.float32))
    np.testing.assert_array_equal(out, [[0.0, 2.0]])
    np.testing.assert_array_equal(grad, [[0.0, 1.0]])


def test_maxpool_module_shapes():
    layer = MaxPool2d(2)
    x = np.random.default_rng(4).normal(size=(2, 3, 8, 8)).astype(np.float32)
    out = layer.forward(x)
    assert out.shape == (2, 3, 4, 4)
    grad = layer.backward(np.ones_like(out))
    assert grad.shape == x.shape


def test_flatten_roundtrip():
    layer = Flatten()
    x = np.random.default_rng(5).normal(size=(2, 3, 4, 4)).astype(np.float32)
    out = layer.forward(x)
    assert out.shape == (2, 48)
    grad = layer.backward(out)
    assert grad.shape == x.shape


def test_dropout_identity_in_eval_mode():
    layer = Dropout(0.5)
    layer.set_training(False)
    x = np.ones((4, 10), dtype=np.float32)
    np.testing.assert_array_equal(layer.forward(x), x)
    np.testing.assert_array_equal(layer.backward(x), x)


def test_dropout_masks_and_rescales_in_training_mode():
    layer = Dropout(0.5, rng=np.random.default_rng(0))
    layer.set_training(True)
    x = np.ones((8, 100), dtype=np.float32)
    out = layer.forward(x)
    dropped = np.mean(out == 0.0)
    assert 0.3 < dropped < 0.7
    kept_values = out[out != 0]
    np.testing.assert_allclose(kept_values, 2.0, rtol=1e-6)


def test_dropout_invalid_probability():
    with pytest.raises(ValueError):
        Dropout(1.0)


def test_batchnorm_normalises_in_training_mode():
    layer = BatchNorm2d(3)
    layer.set_training(True)
    rng = np.random.default_rng(6)
    x = (rng.normal(size=(8, 3, 5, 5)) * 4 + 2).astype(np.float32)
    out = layer.forward(x)
    assert abs(out.mean()) < 0.1
    assert abs(out.std() - 1.0) < 0.1


def test_batchnorm_uses_running_stats_in_eval_mode():
    layer = BatchNorm2d(2)
    rng = np.random.default_rng(7)
    layer.set_training(True)
    for _ in range(30):
        layer.forward((rng.normal(size=(16, 2, 4, 4)) * 2 + 1).astype(np.float32))
    layer.set_training(False)
    x = (rng.normal(size=(4, 2, 4, 4)) * 2 + 1).astype(np.float32)
    out = layer.forward(x)
    assert abs(out.mean()) < 0.5


def test_batchnorm_rejects_non_4d_input():
    layer = BatchNorm2d(2)
    with pytest.raises(ValueError):
        layer.forward(np.zeros((2, 2), dtype=np.float32))


def test_batchnorm_backward_shape_and_parameter_grads():
    layer = BatchNorm2d(3)
    layer.set_training(True)
    x = np.random.default_rng(8).normal(size=(4, 3, 4, 4)).astype(np.float32)
    out = layer.forward(x)
    grad = layer.backward(np.ones_like(out))
    assert grad.shape == x.shape
    assert np.any(layer.gamma.grad != 0)
    assert np.any(layer.beta.grad != 0)
