"""Tests for losses and optimisers."""

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.optim import SGD, Adam


def test_cross_entropy_known_value():
    criterion = CrossEntropyLoss()
    logits = np.array([[10.0, 0.0], [0.0, 10.0]], dtype=np.float32)
    loss = criterion.forward(logits, np.array([0, 1]))
    assert loss == pytest.approx(0.0, abs=1e-3)


def test_cross_entropy_gradient_matches_numerical():
    rng = np.random.default_rng(0)
    logits = rng.normal(size=(3, 5)).astype(np.float64)
    labels = np.array([1, 4, 0])
    criterion = CrossEntropyLoss()
    criterion.forward(logits.astype(np.float32), labels)
    grad = criterion.backward()
    eps = 1e-4
    num = np.zeros_like(logits)
    for i in range(3):
        for j in range(5):
            lp = logits.copy()
            lp[i, j] += eps
            lm = logits.copy()
            lm[i, j] -= eps
            num[i, j] = (
                CrossEntropyLoss().forward(lp.astype(np.float32), labels)
                - CrossEntropyLoss().forward(lm.astype(np.float32), labels)
            ) / (2 * eps)
    np.testing.assert_allclose(grad, num, rtol=5e-2, atol=2e-3)


def test_cross_entropy_backward_before_forward_raises():
    with pytest.raises(RuntimeError):
        CrossEntropyLoss().backward()


def test_mse_loss_and_gradient():
    criterion = MSELoss()
    pred = np.array([[1.0, 2.0]], dtype=np.float32)
    target = np.array([[0.0, 0.0]], dtype=np.float32)
    assert criterion.forward(pred, target) == pytest.approx(2.5)
    grad = criterion.backward()
    np.testing.assert_allclose(grad, [[1.0, 2.0]], rtol=1e-6)


def test_sgd_plain_step():
    p = Parameter(np.array([1.0, 1.0], dtype=np.float32))
    opt = SGD([p], lr=0.1)
    p.grad[:] = [1.0, -1.0]
    opt.step()
    np.testing.assert_allclose(p.value, [0.9, 1.1], rtol=1e-6)


def test_sgd_momentum_accumulates():
    p = Parameter(np.array([0.0], dtype=np.float32))
    opt = SGD([p], lr=0.1, momentum=0.9)
    for _ in range(3):
        p.grad[:] = [1.0]
        opt.step()
        opt.zero_grad()
    # velocity grows: 1, 1.9, 2.71 -> total update 0.1 * (1 + 1.9 + 2.71)
    assert float(p.value[0]) == pytest.approx(-0.561, abs=1e-3)


def test_sgd_weight_decay_shrinks_parameters():
    p = Parameter(np.array([1.0], dtype=np.float32))
    opt = SGD([p], lr=0.1, weight_decay=0.5)
    p.grad[:] = [0.0]
    opt.step()
    assert float(p.value[0]) < 1.0


def test_adam_converges_on_quadratic():
    p = Parameter(np.array([5.0], dtype=np.float32))
    opt = Adam([p], lr=0.2)
    for _ in range(200):
        opt.zero_grad()
        p.grad[:] = 2 * p.value  # d/dx of x^2
        opt.step()
    assert abs(float(p.value[0])) < 0.05


def test_zero_grad_clears_all_parameters():
    params = [Parameter(np.ones(3)), Parameter(np.ones(2))]
    opt = SGD(params, lr=0.1)
    for p in params:
        p.grad += 1.0
    opt.zero_grad()
    for p in params:
        np.testing.assert_array_equal(p.grad, 0)
