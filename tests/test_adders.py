"""Unit tests for the full-adder cell library."""

import numpy as np
import pytest

from repro.arith.adders import (
    AMA1,
    AMA2,
    AMA3,
    AMA4,
    AMA5,
    ExactFullAdder,
    get_cell,
    list_cells,
)


def test_exact_full_adder_truth_table():
    cell = ExactFullAdder()
    expected = {
        (0, 0, 0): (0, 0),
        (0, 0, 1): (1, 0),
        (0, 1, 0): (1, 0),
        (0, 1, 1): (0, 1),
        (1, 0, 0): (1, 0),
        (1, 0, 1): (0, 1),
        (1, 1, 0): (0, 1),
        (1, 1, 1): (1, 1),
    }
    for (a, b, cin), (s, c) in expected.items():
        out_s, out_c = cell.compute(np.array([a]), np.array([b]), np.array([cin]))
        assert (int(out_s[0]), int(out_c[0])) == (s, c)


def test_exact_adder_has_no_errors():
    assert ExactFullAdder().error_count() == (0, 0)


def test_ama5_is_two_buffers():
    cell = AMA5()
    for a in (0, 1):
        for b in (0, 1):
            for cin in (0, 1):
                s, c = cell.compute(np.array([a]), np.array([b]), np.array([cin]))
                assert int(s[0]) == b
                assert int(c[0]) == a


def test_ama5_ignores_carry_input():
    cell = AMA5()
    a = np.array([0, 1, 0, 1])
    b = np.array([0, 0, 1, 1])
    s0, c0 = cell.compute(a, b, np.zeros(4, dtype=int))
    s1, c1 = cell.compute(a, b, np.ones(4, dtype=int))
    np.testing.assert_array_equal(s0, s1)
    np.testing.assert_array_equal(c0, c1)


def test_ama1_sum_is_not_cout_with_exact_cout():
    cell = AMA1()
    exact = ExactFullAdder()
    for a in (0, 1):
        for b in (0, 1):
            for cin in (0, 1):
                s, c = cell.compute(np.array([a]), np.array([b]), np.array([cin]))
                _, ec = exact.compute(np.array([a]), np.array([b]), np.array([cin]))
                assert int(c[0]) == int(ec[0])
                assert int(s[0]) == 1 - int(c[0])


def test_ama1_has_exactly_two_sum_errors():
    sum_errors, cout_errors = AMA1().error_count()
    assert sum_errors == 2
    assert cout_errors == 0


def test_ama4_keeps_sum_exact():
    sum_errors, _ = AMA4().error_count()
    assert sum_errors == 0


@pytest.mark.parametrize("cell_cls", [AMA1, AMA2, AMA3, AMA4, AMA5])
def test_approximate_cells_are_cheaper_than_exact(cell_cls):
    cell = cell_cls()
    exact = ExactFullAdder()
    assert cell.transistor_count < exact.transistor_count
    assert cell.relative_delay <= exact.relative_delay


@pytest.mark.parametrize("cell_cls", [AMA1, AMA2, AMA3, AMA4, AMA5])
def test_approximate_cells_have_some_error(cell_cls):
    sum_errors, cout_errors = cell_cls().error_count()
    assert sum_errors + cout_errors > 0


def test_cells_vectorised_over_arrays():
    cell = AMA5()
    rng = np.random.default_rng(0)
    a = rng.integers(0, 2, size=100).astype(np.uint8)
    b = rng.integers(0, 2, size=100).astype(np.uint8)
    cin = rng.integers(0, 2, size=100).astype(np.uint8)
    s, c = cell.compute(a, b, cin)
    assert s.shape == (100,)
    np.testing.assert_array_equal(s, b)
    np.testing.assert_array_equal(c, a)


def test_registry_contains_all_cells():
    names = list_cells()
    for expected in ("exact", "ama1", "ama2", "ama3", "ama4", "ama5"):
        assert expected in names


def test_registry_lookup_and_unknown_cell():
    assert isinstance(get_cell("ama5"), AMA5)
    with pytest.raises(KeyError):
        get_cell("does-not-exist")


def test_truth_table_has_eight_rows():
    table = AMA3().truth_table()
    assert len(table) == 8
    assert all(len(row) == 5 for row in table)
