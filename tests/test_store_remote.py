"""Unit and wire tests for the remote artifact tier.

Covers the circuit breaker's state machine (injectable clock, no sleeps),
the ``REPRO_REMOTE_*`` policy parsing, the client's retry/timeout/integrity
behaviour under injected faults, the artifact-exchange endpoints' trust
checks (checksummed PUT, traversal-proof route params, HEAD), and the HTTP
hardening satellites (``REPRO_HTTP_MAX_BODY`` body cap,
``REPRO_HTTP_READ_TIMEOUT`` stalled-client guard).
"""

import hashlib
import json
import socket
import time

import pytest

from repro.faults import FAULTS, remote_breaker, remote_retries, remote_timeout
from repro.faults.injector import FaultInjector, FaultSpec
from repro.store import (
    REMOTE_STATS,
    CircuitBreaker,
    RemoteRejected,
    RemoteStoreClient,
    RemoteStoreError,
    RemoteUnavailable,
    body_checksum,
)
from repro.store.remote import CHECKSUM_HEADER
from store_service_harness import StoreServiceThread


@pytest.fixture(scope="module")
def share_service(tmp_path_factory):
    service = StoreServiceThread(tmp_path_factory.mktemp("remote-service"))
    yield service
    service.close()


@pytest.fixture()
def digest(request):
    return hashlib.sha256(request.node.nodeid.encode()).hexdigest()[:32]


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    FAULTS.configure(None)


# ------------------------------------------------------------ breaker unit
class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def test_breaker_opens_after_threshold():
    breaker = CircuitBreaker(threshold=3, cooldown=30.0, clock=FakeClock())
    transitions = []
    breaker.on_transition = lambda old, new: transitions.append((old, new))
    for _ in range(2):
        breaker.record_failure()
    assert breaker.state == "closed" and breaker.allow()
    breaker.record_failure()
    assert breaker.state == "open" and not breaker.allow()
    assert transitions == [("closed", "open")]


def test_breaker_success_resets_failure_streak():
    breaker = CircuitBreaker(threshold=2, cooldown=30.0, clock=FakeClock())
    breaker.record_failure()
    breaker.record_success()  # streak broken
    breaker.record_failure()
    assert breaker.state == "closed"  # 1 consecutive, not 2


def test_breaker_half_open_admits_single_probe():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
    breaker.record_failure()
    assert not breaker.allow()
    clock.now = 10.0
    assert breaker.state == "half_open"
    assert breaker.allow()  # the probe
    assert not breaker.allow()  # everyone else still refused
    breaker.record_success()
    assert breaker.state == "closed" and breaker.allow()


def test_breaker_failed_probe_reopens_with_fresh_cooldown():
    clock = FakeClock()
    breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
    breaker.record_failure()
    clock.now = 10.0
    assert breaker.allow()
    breaker.record_failure()  # the probe dies
    assert breaker.state == "open"
    clock.now = 19.0  # the *fresh* cooldown has not lapsed
    assert breaker.state == "open"
    clock.now = 20.0
    assert breaker.state == "half_open"


# ------------------------------------------------------------- policy knobs
def test_remote_policy_defaults(monkeypatch):
    for var in ("REPRO_REMOTE_TIMEOUT", "REPRO_REMOTE_RETRIES", "REPRO_REMOTE_BREAKER"):
        monkeypatch.delenv(var, raising=False)
    assert remote_timeout() == 5.0
    assert remote_retries() == 2
    assert remote_breaker() == (5, 30.0)


def test_remote_policy_overrides(monkeypatch):
    monkeypatch.setenv("REPRO_REMOTE_TIMEOUT", "0.25")
    monkeypatch.setenv("REPRO_REMOTE_RETRIES", "7")
    monkeypatch.setenv("REPRO_REMOTE_BREAKER", "3:1.5")
    assert remote_timeout() == 0.25
    assert remote_retries() == 7
    assert remote_breaker() == (3, 1.5)


def test_remote_policy_rejects_nonsense(monkeypatch):
    monkeypatch.setenv("REPRO_REMOTE_TIMEOUT", "-4")  # no "no deadline" setting
    monkeypatch.setenv("REPRO_REMOTE_RETRIES", "banana")
    monkeypatch.setenv("REPRO_REMOTE_BREAKER", "zero:what")
    assert remote_timeout() == 5.0
    assert remote_retries() == 2
    assert remote_breaker() == (5, 30.0)


# ------------------------------------------------------------- client unit
def test_client_rejects_non_http_urls():
    with pytest.raises(ValueError):
        RemoteStoreClient("https://example.com")
    with pytest.raises(ValueError):
        RemoteStoreClient("http://")


def test_client_checksum_verification():
    client = RemoteStoreClient("http://127.0.0.1:1", timeout=0.05, retries=0)
    body = json.dumps({"v": 1}).encode()
    good = {CHECKSUM_HEADER.lower(): body_checksum(body)}
    assert client._verified_json(good, body) == {"v": 1}
    mark = REMOTE_STATS.snapshot()
    with pytest.raises(RemoteRejected):
        client._verified_json({CHECKSUM_HEADER.lower(): "0" * 64}, body)
    with pytest.raises(RemoteRejected):
        client._verified_json({}, body)  # a peer that does not vouch
    assert REMOTE_STATS.delta(mark)["rejected_checksum"] == 2


def test_dead_peer_exhausts_retries_then_opens_breaker(digest):
    client = RemoteStoreClient(
        "http://127.0.0.1:9", timeout=0.05, retries=1,
        breaker=CircuitBreaker(threshold=1, cooldown=3600.0),
    )
    mark = REMOTE_STATS.snapshot()
    start = time.perf_counter()
    with pytest.raises(RemoteStoreError):
        client.fetch("cells", digest)
    assert time.perf_counter() - start < 5.0  # bounded, not hanging
    with pytest.raises(RemoteUnavailable):
        client.fetch("cells", digest)  # breaker now open: no network at all
    delta = REMOTE_STATS.delta(mark)
    assert delta["retries"] == 1
    assert delta["breaker_opened"] == 1
    assert delta["breaker_open_skips"] == 1


# ---------------------------------------------------- injected remote faults
def test_injected_timeout_exhausts_retries(share_service, digest):
    client = RemoteStoreClient(share_service.base, retries=1)
    FAULTS.configure("remote.timeout:1")  # every attempt's coin fires
    mark = REMOTE_STATS.snapshot()
    with pytest.raises(RemoteStoreError):
        client.fetch("cells", digest)
    delta = REMOTE_STATS.delta(mark)
    assert delta["timeouts"] == 2 and delta["retries"] == 1


def _seed_firing_only_first_attempt(path):
    """A seed whose p=0.5 coin fires at attempt 0 and not at attempt 1."""
    for seed in range(500):
        spec = FaultSpec("remote.timeout", 0.5, seed)
        if FaultInjector._decide(spec, f"GET:{path}:0") and not FaultInjector._decide(
            spec, f"GET:{path}:1"
        ):
            return seed
    raise AssertionError("no such seed in range; statistically impossible")


def test_retry_heals_injected_timeout(share_service, digest):
    share_service.store.put("cells", digest, {"v": 8})
    path = f"/store/artifacts/cells/{digest}"
    seed = _seed_firing_only_first_attempt(path)
    FAULTS.configure(f"remote.timeout:0.5:{seed}")
    client = RemoteStoreClient(share_service.base, retries=2)
    mark = REMOTE_STATS.snapshot()
    assert client.fetch("cells", digest) == {"v": 8}  # attempt 1 heals attempt 0
    delta = REMOTE_STATS.delta(mark)
    assert delta["timeouts"] == 1 and delta["retries"] == 1 and delta["hits"] == 1


def test_injected_5xx_is_retried_and_counted(share_service, digest):
    share_service.store.put("cells", digest, {"v": 9})
    client = RemoteStoreClient(share_service.base, retries=0)
    FAULTS.configure("remote.error_5xx:1")
    with pytest.raises(RemoteStoreError):
        client.fetch("cells", digest)
    FAULTS.configure(None)
    assert client.fetch("cells", digest) == {"v": 9}  # healthy again


# ------------------------------------------------------- wire / endpoints
def test_artifact_exchange_roundtrip(share_service, digest):
    client = RemoteStoreClient(share_service.base)
    assert not client.head("cells", digest)
    assert client.publish("cells", digest, {"v": 10}, meta={"kind": "bench", "deps": {}})
    assert client.head("cells", digest)
    assert client.fetch("cells", digest) == {"v": 10}
    assert client.fetch_meta("cells", digest) == {"kind": "bench", "deps": {}}
    assert client.remote_store_stats()["artifacts"] >= 1


def test_fetch_meta_none_when_peer_has_no_sidecar(share_service, digest):
    share_service.store.put("cells", digest, {"v": 11})  # no meta
    client = RemoteStoreClient(share_service.base)
    assert client.fetch_meta("cells", digest) is None


def test_get_serves_checksum_of_exact_bytes(share_service, digest):
    share_service.store.put("cells", digest, {"b": 2, "a": 1})
    status, headers, payload = share_service.request(
        "GET", f"/store/artifacts/cells/{digest}"
    )
    assert status == 200
    assert headers[CHECKSUM_HEADER] == body_checksum(payload)
    assert json.loads(payload) == {"a": 1, "b": 2}


def test_put_with_wrong_checksum_is_refused(share_service, digest):
    body = json.dumps({"value": {"v": 1}}).encode()
    status, _headers, _payload = share_service.request(
        "PUT",
        f"/store/artifacts/cells/{digest}",
        body=body,
        headers={CHECKSUM_HEADER: "0" * 64},
    )
    assert status == 400
    assert share_service.store.get("cells", digest) is None


def test_put_without_checksum_is_refused(share_service, digest):
    body = json.dumps({"value": {"v": 1}}).encode()
    status, _headers, _payload = share_service.request(
        "PUT", f"/store/artifacts/cells/{digest}", body=body
    )
    assert status == 400


def test_traversal_route_params_rejected(share_service):
    # %252e double-encodes so the route decode leaves "%2e.." style params;
    # every shape must die at validation, never reach the filesystem
    for bad in ("%252e%252e", "..%252fx", "a%252fb"):
        status, _headers, _payload = share_service.request(
            "GET", f"/store/artifacts/cells/{bad}"
        )
        assert status in (400, 404)
    status, _headers, _payload = share_service.request(
        "GET", "/store/artifacts/%252e%252e/abcdef"
    )
    assert status in (400, 404)


def test_head_falls_back_to_get_route(share_service, digest):
    share_service.store.put("cells", digest, {"v": 12})
    status, headers, payload = share_service.request(
        "HEAD", f"/store/artifacts/cells/{digest}"
    )
    assert status == 200
    assert payload == b""  # no body...
    assert int(headers["Content-Length"]) > 0  # ...but the true length


def test_share_store_disabled_answers_404(tmp_path_factory):
    service = StoreServiceThread(
        tmp_path_factory.mktemp("no-share"), share_store=False
    )
    try:
        service.store.put("cells", "e" * 32, {"v": 1})
        status, _headers, _payload = service.request(
            "GET", "/store/artifacts/cells/" + "e" * 32
        )
        assert status == 404  # indistinguishable from a service without the feature
        client = RemoteStoreClient(service.base, retries=0)
        assert client.fetch("cells", "e" * 32) is None  # a clean miss client-side
    finally:
        service.close()


# ------------------------------------------------- http hardening satellites
def test_body_cap_overridable_and_enforced(share_service, monkeypatch, digest):
    monkeypatch.setenv("REPRO_HTTP_MAX_BODY", "1K")
    value = {"value": {"pad": "x" * 4096}}
    body = json.dumps(value).encode()
    status, _headers, payload = share_service.request(
        "PUT",
        f"/store/artifacts/cells/{digest}",
        body=body,
        headers={CHECKSUM_HEADER: body_checksum(body)},
    )
    assert status == 413
    monkeypatch.delenv("REPRO_HTTP_MAX_BODY")
    status, _headers, _payload = share_service.request(
        "PUT",
        f"/store/artifacts/cells/{digest}",
        body=body,
        headers={CHECKSUM_HEADER: body_checksum(body)},
    )
    assert status == 201


def test_stalled_client_is_dropped(share_service, monkeypatch):
    monkeypatch.setenv("REPRO_HTTP_READ_TIMEOUT", "0.3")
    with socket.create_connection((share_service.host, share_service.port), timeout=10) as sock:
        sock.sendall(b"GET /health HTTP/1.1\r\nHost: x\r\n")  # ...and stall mid-headers
        sock.settimeout(10)
        start = time.perf_counter()
        chunks = []
        while True:
            data = sock.recv(4096)
            if not data:
                break
            chunks.append(data)
        elapsed = time.perf_counter() - start
    # the server answered 408 (or dropped) within the deadline's order of
    # magnitude instead of holding the connection for the default 30s
    assert elapsed < 5.0
    response = b"".join(chunks)
    assert response == b"" or b"408" in response.split(b"\r\n", 1)[0]


def test_healthy_requests_unaffected_by_read_timeout(share_service, monkeypatch):
    monkeypatch.setenv("REPRO_HTTP_READ_TIMEOUT", "0.3")
    assert share_service.get_json("/health")["status"] == "ok"
