"""Parity and caching tests for the fused approximate-GEMM kernel engine.

The contract under test: for every multiplier and every input, the kernel
returned by ``Multiplier.make_gemm_kernel()`` is **bit-identical** to the
reference computation ``multiplier.multiply`` + float32 left-fold sum over K
(which is exactly what ``products.sum(axis=2)`` performs over the strided
reduction axis of the historical convolution path).
"""

import numpy as np
import pytest

from repro.arith.fpm import AxFPM, Bfloat16Multiplier, ExactMultiplier, HEAPMultiplier
from repro.arith.kernels import (
    KERNEL_STATS,
    FallbackGemmKernel,
    FusedLutGemmKernel,
    pow2_table,
    signed_product_table,
)
from repro.nn.approx import ApproxConv2d, ApproxLinear, prime_gemm_kernels
from repro.nn.layers import Conv2d, Linear


def reference_gemm(multiplier, cols, weight):
    """The pre-kernel path: broadcast multiply + identity-seeded float32 fold."""
    products = multiplier.multiply(
        cols[:, np.newaxis, :, :], weight[np.newaxis, :, :, np.newaxis]
    )
    out = np.zeros((cols.shape[0], weight.shape[0], cols.shape[2]), dtype=np.float32)
    for k in range(products.shape[2]):
        np.add(out, products[:, :, k, :], out=out)
    return out


def assert_bit_identical(a, b, context=""):
    __tracebackhint__ = True
    assert a.shape == b.shape and a.dtype == b.dtype == np.float32, context
    np.testing.assert_array_equal(a.view(np.uint32), b.view(np.uint32), err_msg=context)


def mixed_operands(rng, shape, zeros=0.15):
    """float32 values mixing signs, magnitudes and exact zeros."""
    x = rng.uniform(-2.0, 2.0, size=shape).astype(np.float32)
    x[rng.random(shape) < zeros] = 0.0
    x[rng.random(shape) < 0.05] *= np.float32(1e-3)  # small magnitudes
    return x


MULTIPLIER_CASES = [
    ("axfpm-4", lambda: AxFPM(frac_bits=4)),
    ("axfpm-8", lambda: AxFPM(frac_bits=8)),
    ("axfpm-10", lambda: AxFPM(frac_bits=10)),
    ("heap-4", lambda: HEAPMultiplier(frac_bits=4)),
    ("heap-8", lambda: HEAPMultiplier(frac_bits=8)),
    ("heap-10", lambda: HEAPMultiplier(frac_bits=10)),
    ("bfloat16", Bfloat16Multiplier),
    ("exact", ExactMultiplier),
]

SHAPES = [(4, 3, 1, 5), (3, 5, 17, 9), (2, 16, 54, 25), (5, 2, 40, 1)]


@pytest.mark.parametrize("name,factory", MULTIPLIER_CASES, ids=[c[0] for c in MULTIPLIER_CASES])
def test_kernel_bit_identical_to_reference(name, factory):
    multiplier = factory()
    kernel = multiplier.make_gemm_kernel()
    rng = np.random.default_rng(hash(name) % 2**32)
    for n, f, k, l in SHAPES:
        cols = mixed_operands(rng, (n, k, l))
        weight = mixed_operands(rng, (f, k), zeros=0.1)
        got = kernel(cols, weight, weight_version=1)
        assert_bit_identical(got, reference_gemm(multiplier, cols, weight), f"{name} {n,f,k,l}")


def test_kernel_matches_strided_axis_sum():
    """For L > 1 the reference fold equals numpy's own ``sum(axis=2)``."""
    multiplier = AxFPM(frac_bits=8)
    kernel = multiplier.make_gemm_kernel()
    rng = np.random.default_rng(7)
    cols = mixed_operands(rng, (3, 60, 11))
    weight = mixed_operands(rng, (6, 60))
    products = multiplier.multiply(cols[:, None, :, :], weight[None, :, :, None])
    assert_bit_identical(
        kernel(cols, weight), products.sum(axis=2, dtype=np.float32), "sum(axis=2)"
    )


def test_fused_kernel_selected_only_when_lut_available():
    assert isinstance(AxFPM(frac_bits=8).make_gemm_kernel(), FusedLutGemmKernel)
    assert isinstance(AxFPM(frac_bits=12, use_lut=False).make_gemm_kernel(), FallbackGemmKernel)
    assert isinstance(ExactMultiplier().make_gemm_kernel(), FallbackGemmKernel)
    assert isinstance(Bfloat16Multiplier().make_gemm_kernel(), FallbackGemmKernel)


def test_both_fused_strategies_are_bit_identical():
    """The weight-baked table path and the shared two-gather path agree."""
    multiplier = AxFPM(frac_bits=8)
    rng = np.random.default_rng(11)
    cols = mixed_operands(rng, (4, 33, 13))
    weight = mixed_operands(rng, (5, 33))
    baked = FusedLutGemmKernel(multiplier)
    shared = FusedLutGemmKernel(multiplier, bake_budget=0)  # bake never fits
    out_baked = baked(cols, weight, weight_version=1)
    out_shared = shared(cols, weight, weight_version=1)
    assert any(p.baked is not None for p in baked._prepared.values())
    assert all(p.baked is None for p in shared._prepared.values())
    assert_bit_identical(out_baked, out_shared, "baked vs shared")
    assert_bit_identical(out_baked, reference_gemm(multiplier, cols, weight), "baked vs ref")


def test_extreme_exponents_fall_back_with_parity():
    """Operands outside the provably-safe scaling window stay bit-exact."""
    multiplier = AxFPM(frac_bits=8)
    kernel = multiplier.make_gemm_kernel()
    rng = np.random.default_rng(13)
    cols = (rng.uniform(1.0, 2.0, size=(2, 6, 3)) * 1e38).astype(np.float32)
    weight = (rng.uniform(1.0, 2.0, size=(3, 6)) * 1e38).astype(np.float32)
    before = KERNEL_STATS.unsafe_calls
    got = kernel(cols, weight, weight_version=1)
    assert KERNEL_STATS.unsafe_calls > before
    assert_bit_identical(got, reference_gemm(multiplier, cols, weight), "overflow regime")

    tiny_cols = (rng.uniform(1.0, 2.0, size=(2, 6, 3)) * 1e-38).astype(np.float32)
    tiny_weight = (rng.uniform(1.0, 2.0, size=(3, 6)) * 1e-38).astype(np.float32)
    got = kernel(tiny_cols, tiny_weight, weight_version=2)
    assert_bit_identical(got, reference_gemm(multiplier, tiny_cols, tiny_weight), "underflow")


def test_non_finite_activations_fall_back_with_parity():
    multiplier = AxFPM(frac_bits=8)
    kernel = multiplier.make_gemm_kernel()
    rng = np.random.default_rng(17)
    cols = mixed_operands(rng, (2, 5, 4))
    cols[0, 0, 0] = np.inf
    weight = mixed_operands(rng, (3, 5))
    got = kernel(cols, weight, weight_version=1)
    assert_bit_identical(got, reference_gemm(multiplier, cols, weight), "inf activation")


def test_signed_zero_products_match_reference():
    multiplier = AxFPM(frac_bits=8)
    kernel = multiplier.make_gemm_kernel()
    cols = np.array([[[0.0], [-0.0], [1.5]]], dtype=np.float32)  # (1, 3, 1)
    weight = np.array([[-2.0, 3.0, 0.0], [0.0, -0.0, -1.25]], dtype=np.float32)
    got = kernel(cols, weight, weight_version=1)
    assert_bit_identical(got, reference_gemm(multiplier, cols, weight), "signed zeros")


def test_weight_cache_hits_across_calls():
    multiplier = AxFPM(frac_bits=8)
    kernel = multiplier.make_gemm_kernel()
    rng = np.random.default_rng(19)
    cols = mixed_operands(rng, (3, 12, 7))
    weight = mixed_operands(rng, (4, 12))
    kernel(cols, weight, weight_version=41)
    hits = KERNEL_STATS.weight_cache_hits
    misses = KERNEL_STATS.weight_cache_misses
    kernel(cols, weight, weight_version=41)
    kernel(cols, weight, weight_version=41)
    assert KERNEL_STATS.weight_cache_hits == hits + 2
    assert KERNEL_STATS.weight_cache_misses == misses


def test_weight_cache_invalidated_on_version_change():
    multiplier = AxFPM(frac_bits=8)
    kernel = multiplier.make_gemm_kernel()
    rng = np.random.default_rng(23)
    cols = mixed_operands(rng, (3, 12, 7))
    weight_a = mixed_operands(rng, (4, 12))
    weight_b = mixed_operands(rng, (4, 12))
    out_a = kernel(cols, weight_a, weight_version=1)
    # new content under a new version: the kernel must recompute, not reuse
    out_b = kernel(cols, weight_b, weight_version=2)
    assert_bit_identical(out_b, reference_gemm(multiplier, cols, weight_b), "after mutation")
    assert not np.array_equal(out_a, out_b)


def test_conv_layer_weight_mutation_recomputes():
    """Mutating layer weights (through Parameter assignment) is picked up."""
    layer = ApproxConv2d(1, 2, 3, multiplier=AxFPM(frac_bits=8), rng=np.random.default_rng(3))
    x = np.random.default_rng(4).uniform(-1, 1, size=(2, 1, 8, 8)).astype(np.float32)
    out1 = layer.forward(x)
    version = layer.weight.version
    layer.weight.value = layer.weight.value * np.float32(2.0)
    assert layer.weight.version > version
    out2 = layer.forward(x)
    assert not np.array_equal(out1, out2)
    # and the recomputed outputs match a fresh layer with the same weights
    fresh = ApproxConv2d(1, 2, 3, multiplier=AxFPM(frac_bits=8))
    fresh.weight = layer.weight
    fresh.bias = layer.bias
    assert_bit_identical(out2, fresh.forward(x), "stale weight cache")


def test_conv_layer_weight_object_replacement_recomputes():
    """Swapping the weight Parameter *object* must also invalidate the cache."""
    from repro.nn.layers import Parameter

    layer = ApproxConv2d(1, 2, 3, multiplier=AxFPM(frac_bits=8), rng=np.random.default_rng(31))
    x = np.random.default_rng(32).uniform(-1, 1, size=(2, 1, 7, 7)).astype(np.float32)
    out1 = layer.forward(x)
    layer.weight = Parameter(
        np.random.default_rng(33).normal(0, 0.3, size=layer.weight.shape), name="swapped"
    )
    out2 = layer.forward(x)
    assert not np.array_equal(out1, out2)
    fresh = ApproxConv2d(1, 2, 3, multiplier=AxFPM(frac_bits=8))
    fresh.weight = layer.weight
    fresh.bias = layer.bias
    assert_bit_identical(out2, fresh.forward(x), "weight object swap")


def test_approx_conv_forward_bit_identical_to_pre_kernel_path():
    """End-to-end layer parity against the historical forward implementation."""
    exact = Conv2d(2, 4, 3, rng=np.random.default_rng(5))
    multiplier = AxFPM(frac_bits=8)
    layer = ApproxConv2d.from_exact(exact, multiplier=multiplier, batch_chunk=2)
    x = mixed_operands(np.random.default_rng(6), (5, 2, 9, 9))

    from repro.nn import functional as F

    cols = F.im2col(x, (3, 3), 1, 0)
    w_mat = layer.weight.value.reshape(4, -1)
    out_ref = np.empty((5, 4, 49), dtype=np.float32)
    for start in range(0, 5, 2):
        stop = min(5, start + 2)
        products = multiplier.multiply(
            cols[start:stop, np.newaxis, :, :], w_mat[np.newaxis, :, :, np.newaxis]
        )
        out_ref[start:stop] = products.sum(axis=2, dtype=np.float32)
    out_ref += layer.bias.value.reshape(1, 4, 1)
    expected = out_ref.reshape(5, 4, 7, 7).astype(np.float32)
    assert_bit_identical(layer.forward(x), expected, "ApproxConv2d vs pre-kernel path")


def test_approx_linear_out_chunking_is_bit_exact_and_bounded():
    exact = Linear(30, 50, rng=np.random.default_rng(8))
    x = mixed_operands(np.random.default_rng(9), (6, 30))
    wide = ApproxLinear.from_exact(exact, multiplier=AxFPM(frac_bits=8), out_chunk=1000)
    narrow = ApproxLinear.from_exact(exact, multiplier=AxFPM(frac_bits=8), out_chunk=7)
    assert_bit_identical(wide.forward(x), narrow.forward(x), "out_chunk")


def test_approx_linear_chunk_grid_matches_reference():
    exact = Linear(20, 9, rng=np.random.default_rng(10))
    multiplier = AxFPM(frac_bits=8)
    x = mixed_operands(np.random.default_rng(12), (5, 20))
    expected = reference_gemm(multiplier, x[:, :, np.newaxis], exact.weight.value)[:, :, 0]
    expected = (expected + exact.bias.value).astype(np.float32)
    for batch_chunk, out_chunk in [(2, 3), (5, 9), (1, 1), (64, 64)]:
        layer = ApproxLinear.from_exact(
            exact, multiplier=multiplier, batch_chunk=batch_chunk, out_chunk=out_chunk
        )
        assert_bit_identical(layer.forward(x), expected, f"chunks {batch_chunk}x{out_chunk}")


def test_kernel_rebuilt_when_multiplier_swapped():
    layer = ApproxConv2d(1, 2, 3, multiplier=AxFPM(frac_bits=8))
    first = layer.gemm_kernel
    assert layer.gemm_kernel is first  # stable while the multiplier stays
    layer.multiplier = ExactMultiplier()
    assert isinstance(layer.gemm_kernel, FallbackGemmKernel)


def test_prime_gemm_kernels_builds_layer_kernels():
    from repro.nn.models import build_lenet5, convert_to_approximate

    model = build_lenet5((1, 12, 12), conv_channels=(2, 3), fc_sizes=(8, 8), dropout=0.0)
    approx = convert_to_approximate(model)
    layers = [l for l in approx.layers if isinstance(l, ApproxConv2d)]
    assert all(l._gemm_kernel is None for l in layers)
    prime_gemm_kernels(approx)
    assert all(isinstance(l._gemm_kernel, FusedLutGemmKernel) for l in layers)


def test_signed_product_table_layout():
    multiplier = AxFPM(frac_bits=4)
    table = signed_product_table(multiplier._get_lut(), 4)
    half = 1 << 4
    assert table.shape == (2 * half + 1, 2 * half + 1)
    assert not table.flags.writeable
    # zero row/column flush to +0.0 (no sign)
    assert np.all(table[2 * half] == 0.0) and np.all(table[:, 2 * half] == 0.0)
    assert not np.any(np.signbit(table[2 * half]))
    # sign symmetry of the quadrants
    np.testing.assert_array_equal(table[:half, :half], -table[:half, half : 2 * half])
    np.testing.assert_array_equal(table[:half, :half], table[half : 2 * half, half : 2 * half])


def test_pow2_table_exact_inside_window():
    table = pow2_table()
    from repro.arith.kernels import POW2_BIAS

    for e in (-149, -126, -1, 0, 1, 127):
        assert table[e + POW2_BIAS] == np.float32(2.0**e)
    assert table[256 + POW2_BIAS] == np.inf  # beyond float32's exponent range
    assert table[0] == 0.0


def test_run_telemetry_embeds_kernel_deltas():
    from repro.parallel.telemetry import RunTelemetry

    telemetry = RunTelemetry()
    multiplier = AxFPM(frac_bits=8)
    kernel = multiplier.make_gemm_kernel()
    rng = np.random.default_rng(29)
    kernel(mixed_operands(rng, (2, 9, 4)), mixed_operands(rng, (3, 9)), weight_version=1)
    snap = telemetry.snapshot()["kernels"]
    assert snap["fused_calls"] >= 1
    assert snap["fused_macs"] >= 2 * 3 * 9 * 4
