"""Property-based tests (hypothesis) on core invariants across the stack."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.fpm import AxFPM, ExactMultiplier, HEAPMultiplier
from repro.core.metrics import l2_distance, linf_distance, psnr
from repro.nn.functional import softmax
from repro.nn.quantize import quantize_tensor, quantize_weights

unit_floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32)


@settings(max_examples=50, deadline=None)
@given(
    a=st.lists(unit_floats, min_size=1, max_size=8),
    b=st.lists(unit_floats, min_size=1, max_size=8),
)
def test_multipliers_agree_on_sign_and_zero(a, b):
    n = min(len(a), len(b))
    x = np.array(a[:n], dtype=np.float32)
    y = np.array(b[:n], dtype=np.float32)
    exact = ExactMultiplier().multiply(x, y)
    for multiplier in (AxFPM(frac_bits=6), HEAPMultiplier(frac_bits=6)):
        approx = multiplier.multiply(x, y)
        # zero operands always produce zero
        assert np.all(approx[(x == 0) | (y == 0)] == 0)
        # non-zero products never change sign
        nz = np.abs(exact) > 1e-20
        assert np.all(np.sign(approx[nz]) == np.sign(exact[nz]))


@settings(max_examples=50, deadline=None)
@given(logits=st.lists(st.floats(min_value=-50, max_value=50, allow_nan=False), min_size=2, max_size=10))
def test_softmax_is_a_probability_distribution(logits):
    logits32 = np.array([logits], dtype=np.float32)
    probs = softmax(logits32)
    assert np.all(probs >= 0)
    assert abs(float(probs.sum()) - 1.0) < 1e-4
    # the top class is preserved whenever the maximum is unambiguous in float32
    sorted_logits = np.sort(logits32[0])
    if len(logits) >= 2 and sorted_logits[-1] - sorted_logits[-2] > 1e-3:
        assert int(probs.argmax()) == int(logits32[0].argmax())


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(unit_floats, min_size=1, max_size=20),
    bits=st.integers(min_value=1, max_value=8),
)
def test_quantize_tensor_properties(values, bits):
    x = np.array(values, dtype=np.float32)
    q = quantize_tensor(x, bits)
    levels = (1 << bits) - 1
    # output stays in [0, 1], on the quantisation grid, and within half a step
    assert np.all(q >= 0) and np.all(q <= 1)
    np.testing.assert_allclose(q * levels, np.round(q * levels), atol=1e-4)
    assert np.all(np.abs(q - x) <= 0.5 / levels + 1e-6)


@settings(max_examples=50, deadline=None)
@given(
    weights=st.lists(
        st.floats(min_value=-5, max_value=5, allow_nan=False), min_size=1, max_size=20
    ),
    bits=st.integers(min_value=1, max_value=8),
)
def test_quantize_weights_bounded(weights, bits):
    w = np.array(weights, dtype=np.float32)
    q = quantize_weights(w, bits)
    assert np.all(q >= -1.0 - 1e-6) and np.all(q <= 1.0 + 1e-6)


@settings(max_examples=40, deadline=None)
@given(
    pixels=st.lists(unit_floats, min_size=4, max_size=16),
    noise=st.floats(min_value=0.0, max_value=0.3, allow_nan=False),
)
def test_distance_metrics_consistency(pixels, noise):
    n = len(pixels)
    clean = np.array(pixels, dtype=np.float32).reshape(1, 1, 1, n)
    perturbed = np.clip(clean + noise, 0, 1)
    l2 = float(l2_distance(clean, perturbed)[0])
    linf = float(linf_distance(clean, perturbed)[0])
    # norm inequalities: linf <= l2 <= sqrt(n) * linf
    assert linf <= l2 + 1e-6
    assert l2 <= np.sqrt(n) * linf + 1e-6
    # PSNR is monotone in the noise level
    if noise > 0 and np.any(perturbed != clean):
        assert psnr(clean, perturbed)[0] < np.inf
