"""Tests for the attack-facing Classifier facade."""

import numpy as np
import pytest

from repro.attacks.base import Classifier
from repro.nn.layers import Flatten, Linear, ReLU
from repro.nn.network import Sequential


def make_classifier(seed=0, in_features=9, classes=4):
    rng = np.random.default_rng(seed)
    model = Sequential(
        [Flatten(), Linear(in_features, 8, rng=rng), ReLU(), Linear(8, classes, rng=rng)]
    )
    return Classifier(model)


def test_predict_and_query_counting():
    clf = make_classifier()
    x = np.random.default_rng(1).uniform(0, 1, size=(5, 1, 3, 3)).astype(np.float32)
    labels = clf.predict(x)
    assert labels.shape == (5,)
    assert clf.query_count == 5
    clf.reset_counters()
    assert clf.query_count == 0


def test_predict_proba_sums_to_one():
    clf = make_classifier()
    x = np.random.default_rng(2).uniform(0, 1, size=(3, 1, 3, 3)).astype(np.float32)
    probs = clf.predict_proba(x)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-5)


def test_num_classes_inferred_from_head():
    assert make_classifier(classes=7).num_classes == 7


def test_loss_gradient_matches_numerical():
    clf = make_classifier(seed=3)
    rng = np.random.default_rng(4)
    x = rng.uniform(0, 1, size=(2, 1, 3, 3)).astype(np.float64)
    y = np.array([0, 2])
    grad = clf.loss_gradient(x.astype(np.float32), y)

    from repro.nn.losses import CrossEntropyLoss

    def loss_of(xx):
        return CrossEntropyLoss().forward(clf.model.predict_logits(xx.astype(np.float32)), y) * len(y)

    eps = 1e-3
    num = np.zeros_like(x)
    flat_x = x.reshape(-1)
    flat_n = num.reshape(-1)
    for i in range(flat_x.size):
        orig = flat_x[i]
        flat_x[i] = orig + eps
        plus = loss_of(x)
        flat_x[i] = orig - eps
        minus = loss_of(x)
        flat_x[i] = orig
        flat_n[i] = (plus - minus) / (2 * eps)
    np.testing.assert_allclose(grad, num, rtol=5e-2, atol=1e-3)


def test_class_gradient_points_to_requested_class():
    clf = make_classifier(seed=5)
    x = np.random.default_rng(6).uniform(0, 1, size=(1, 1, 3, 3)).astype(np.float32)
    grad = clf.class_gradient(x, np.array([1]))
    assert grad.shape == x.shape
    # moving along the gradient must increase that class logit
    logits_before = clf.model.predict_logits(x)[0, 1]
    logits_after = clf.model.predict_logits(x + 1e-2 * grad)[0, 1]
    assert logits_after > logits_before


def test_jacobian_shape_and_consistency_with_class_gradient():
    clf = make_classifier(seed=7)
    x = np.random.default_rng(8).uniform(0, 1, size=(2, 1, 3, 3)).astype(np.float32)
    jac = clf.jacobian(x)
    assert jac.shape == (2, clf.num_classes, 1, 3, 3)
    grad_class0 = clf.class_gradient(x, np.array([0, 0]))
    np.testing.assert_allclose(jac[:, 0], grad_class0, rtol=1e-5, atol=1e-6)


def test_gradient_counter_increments():
    clf = make_classifier()
    x = np.random.default_rng(9).uniform(0, 1, size=(3, 1, 3, 3)).astype(np.float32)
    clf.loss_gradient(x, np.array([0, 1, 2]))
    assert clf.gradient_count == 3


def test_class_gradient_counts_no_queries_and_one_gradient_per_sample():
    # regression test for the black-box budget leak: class_gradient used to
    # call model.predict_logits directly, bypassing query_count
    clf = make_classifier(seed=10)
    x = np.random.default_rng(11).uniform(0, 1, size=(4, 1, 3, 3)).astype(np.float32)
    clf.class_gradient(x, np.array([0, 1, 2, 3]))
    assert clf.query_count == 0
    assert clf.gradient_count == 4


def test_jacobian_counter_invariants():
    clf = make_classifier(seed=12)
    x = np.random.default_rng(13).uniform(0, 1, size=(2, 1, 3, 3)).astype(np.float32)
    clf.jacobian(x)
    # one backward pass per class, each counted over the batch; no queries
    assert clf.query_count == 0
    assert clf.gradient_count == 2 * clf.num_classes


def test_clip_respects_bounds():
    clf = make_classifier()
    x = np.array([-1.0, 0.5, 2.0], dtype=np.float32)
    np.testing.assert_array_equal(clf.clip(x), [0.0, 0.5, 1.0])


def test_cached_logits_gradient_rejects_stale_activations():
    clf = make_classifier(seed=14)
    x = np.random.default_rng(15).uniform(0, 1, size=(3, 1, 3, 3)).astype(np.float32)
    logits = clf.predict_logits(x)
    serial = clf.forward_serial
    # matching batch + serial: rides the cached forward, equals logits_gradient
    cached = clf.cached_logits_gradient(np.ones_like(logits), forward_serial=serial)
    np.testing.assert_array_equal(cached, clf.logits_gradient(x, np.ones_like(logits)))
    # a same-sized forward in between invalidates the serial stamp
    clf.predict_logits(x)
    with pytest.raises(RuntimeError, match="stale"):
        clf.cached_logits_gradient(np.ones_like(logits), forward_serial=serial)
    # without a serial, a differently-sized forward still fails on batch size
    clf.predict_logits(x[:1])
    with pytest.raises(RuntimeError, match="does not match the last forward"):
        clf.cached_logits_gradient(np.ones_like(logits))
