"""Unit and property tests for IEEE-754 field manipulation and bfloat16."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith.float_format import (
    FLOAT32_FRACTION_BITS,
    bfloat16_truncate,
    compose_float32,
    decompose_float32,
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False, width=32
)


def test_decompose_simple_values():
    fields = decompose_float32(np.array([1.0, 2.0, -3.0, 0.5], dtype=np.float32))
    np.testing.assert_array_equal(fields.sign, [0, 0, 1, 0])
    np.testing.assert_array_equal(fields.exponent, [0, 1, 1, -1])
    # 1.0 and 2.0 have significand exactly 2**23; 3.0 is 1.5 * 2**1
    assert fields.significand[0] == 1 << 23
    assert fields.significand[2] == 3 << 22


def test_decompose_zero_is_flagged():
    fields = decompose_float32(np.array([0.0, -0.0, 1.0], dtype=np.float32))
    np.testing.assert_array_equal(fields.is_zero, [True, True, False])
    assert fields.significand[0] == 0


def test_decompose_flushes_subnormals_to_zero():
    subnormal = np.float32(1e-45)
    fields = decompose_float32(np.array([subnormal], dtype=np.float32))
    assert bool(fields.is_zero[0])


def test_decompose_reduced_fraction_width_truncates():
    x = np.array([1.9999999], dtype=np.float32)
    full = decompose_float32(x, frac_bits=23)
    reduced = decompose_float32(x, frac_bits=8)
    assert reduced.significand[0] == full.significand[0] >> (23 - 8)


def test_decompose_validates_frac_bits():
    with pytest.raises(ValueError):
        decompose_float32(np.array([1.0]), frac_bits=0)
    with pytest.raises(ValueError):
        decompose_float32(np.array([1.0]), frac_bits=30)


@settings(max_examples=100, deadline=None)
@given(x=finite_floats)
def test_decompose_compose_roundtrip(x):
    arr = np.array([x], dtype=np.float32)
    fields = decompose_float32(arr)
    rebuilt = compose_float32(
        fields.sign, fields.exponent, fields.significand, fields.frac_bits, fields.is_zero
    )
    if abs(float(arr[0])) < float(np.finfo(np.float32).tiny):  # subnormals flush to zero
        assert rebuilt[0] == 0.0
    else:
        np.testing.assert_allclose(rebuilt, arr, rtol=0, atol=0)


@settings(max_examples=100, deadline=None)
@given(x=finite_floats)
def test_bfloat16_truncation_error_is_small_and_toward_zero(x):
    arr = np.array([x], dtype=np.float32)
    truncated = bfloat16_truncate(arr)
    # truncation never increases the magnitude
    assert abs(float(truncated[0])) <= abs(float(arr[0]))
    if abs(float(arr[0])) > 1e-30:  # subnormals may lose all precision
        rel_err = abs(float(truncated[0]) - float(arr[0])) / abs(float(arr[0]))
        assert rel_err < 2 ** -7  # 7 fraction bits remain


def test_bfloat16_preserves_sign_and_special_values():
    x = np.array([-2.5, 0.0, 1.0], dtype=np.float32)
    t = bfloat16_truncate(x)
    assert t[0] < 0
    assert t[1] == 0.0
    assert t[2] == 1.0


def test_bfloat16_output_is_float32_copy():
    x = np.array([3.14159], dtype=np.float32)
    t = bfloat16_truncate(x)
    assert t.dtype == np.float32
    t[0] = 0.0
    assert x[0] != 0.0  # original untouched


def test_constants():
    assert FLOAT32_FRACTION_BITS == 23
