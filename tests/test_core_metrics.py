"""Tests for image distance / quality metrics."""

import numpy as np
import pytest

from repro.core.metrics import l0_distance, l2_distance, linf_distance, mse, psnr


def test_identical_images_have_zero_distance():
    x = np.random.default_rng(0).uniform(0, 1, size=(2, 1, 4, 4)).astype(np.float32)
    assert np.all(l0_distance(x, x) == 0)
    assert np.all(l2_distance(x, x) == 0)
    assert np.all(linf_distance(x, x) == 0)
    assert np.all(mse(x, x) == 0)
    assert np.all(np.isinf(psnr(x, x)))


def test_l0_counts_changed_pixels():
    a = np.zeros((1, 1, 2, 2), dtype=np.float32)
    b = a.copy()
    b[0, 0, 0, 0] = 1.0
    b[0, 0, 1, 1] = 0.5
    assert l0_distance(a, b)[0] == 2


def test_l2_known_value():
    a = np.zeros((1, 1, 1, 2), dtype=np.float32)
    b = np.array([[[[3.0, 4.0]]]], dtype=np.float32)
    assert l2_distance(a, b)[0] == pytest.approx(5.0)


def test_linf_known_value():
    a = np.zeros((1, 1, 1, 3), dtype=np.float32)
    b = np.array([[[[0.1, -0.7, 0.3]]]], dtype=np.float32)
    assert linf_distance(a, b)[0] == pytest.approx(0.7)


def test_mse_and_psnr_relationship():
    a = np.zeros((1, 1, 4, 4), dtype=np.float32)
    b = np.full((1, 1, 4, 4), 0.1, dtype=np.float32)
    m = mse(a, b)[0]
    assert m == pytest.approx(0.01)
    assert psnr(a, b)[0] == pytest.approx(20.0, abs=1e-3)


def test_psnr_decreases_with_noise():
    rng = np.random.default_rng(1)
    clean = rng.uniform(0, 1, size=(3, 1, 8, 8)).astype(np.float32)
    small = np.clip(clean + rng.normal(0, 0.01, clean.shape), 0, 1)
    large = np.clip(clean + rng.normal(0, 0.2, clean.shape), 0, 1)
    assert np.all(psnr(clean, small) > psnr(clean, large))


def test_single_image_inputs_are_accepted():
    a = np.zeros((1, 4, 4), dtype=np.float32)
    b = np.ones((1, 4, 4), dtype=np.float32)
    assert l2_distance(a, b).shape == (1,)


def test_shape_mismatch_raises():
    with pytest.raises(ValueError):
        l2_distance(np.zeros((1, 1, 2, 2)), np.zeros((1, 1, 3, 3)))
