"""Shared test harness: a live ``--share-store`` service on a daemon thread.

Used by the store conformance and remote-tier suites; mirrors the
``ServiceThread`` harness in ``test_service.py`` but defaults to
``share_store=True`` and exposes raw-byte HTTP helpers (the remote-store
tests care about exact wire bytes and headers, not parsed JSON).
"""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.error
import urllib.request

from repro.service import Service


class StoreServiceThread:
    """A live artifact-sharing service on an ephemeral port."""

    def __init__(self, root, share_store=True, **kwargs):
        self.service = Service(
            results_dir=root / "results",
            cache_dir=root / "cells",
            workers=1,
            share_store=share_store,
            **kwargs,
        )
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        assert self._ready.wait(timeout=30), "service failed to start"

    def _run(self):
        asyncio.set_event_loop(self._loop)
        self._server = self._loop.run_until_complete(self.service.start(port=0))
        host, port = self._server.sockets[0].getsockname()[:2]
        self.host, self.port = host, port
        self.base = f"http://{host}:{port}"
        self._ready.set()
        self._loop.run_forever()
        self._loop.run_until_complete(self.service.close())
        self._server.close()
        self._loop.run_until_complete(self._server.wait_closed())
        self._loop.close()

    def close(self):
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)

    @property
    def store(self):
        """The service's own (local) artifact store."""
        return self.service.store

    # ------------------------------------------------------------- clients
    def request(self, method, path, body=None, headers=None, timeout=30):
        """One raw exchange: ``(status, headers dict, body bytes)``."""
        req = urllib.request.Request(
            self.base + path, data=body, headers=headers or {}, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=timeout) as response:
                return response.status, dict(response.headers), response.read()
        except urllib.error.HTTPError as err:
            return err.code, dict(err.headers), err.read()

    def get_json(self, path, timeout=30):
        status, _headers, payload = self.request("GET", path, timeout=timeout)
        assert status == 200, f"GET {path} -> {status}: {payload!r}"
        return json.loads(payload)
