"""Tests for the hardware energy/delay cost model."""

import pytest

from repro.arith.array_multiplier import ArrayMultiplier, HeterogeneousCellPolicy
from repro.arith.fpm import AxFPM, Bfloat16Multiplier, ExactMultiplier, HEAPMultiplier
from repro.hw.energy_model import (
    estimate_array_multiplier_cost,
    estimate_fpm_cost,
)
from repro.hw.report import cost_summary, energy_delay_table, mantissa_energy_delay_table


def test_ama5_array_is_cheaper_than_exact_array():
    exact = estimate_array_multiplier_cost(ArrayMultiplier(24, "exact"))
    ax = estimate_array_multiplier_cost(ArrayMultiplier(24, "ama5"))
    assert ax.energy < exact.energy
    assert ax.delay < exact.delay


def test_heterogeneous_array_between_exact_and_uniform():
    exact = estimate_array_multiplier_cost(ArrayMultiplier(24, "exact"))
    ax = estimate_array_multiplier_cost(ArrayMultiplier(24, "ama5"))
    hetero = estimate_array_multiplier_cost(
        ArrayMultiplier(24, HeterogeneousCellPolicy(approx_cell="ama5", exact_above_weight=0.5))
    )
    assert ax.energy < hetero.energy < exact.energy


def test_fpm_cost_ordering_matches_table7():
    exact = estimate_fpm_cost(ExactMultiplier())
    ax = estimate_fpm_cost(AxFPM())
    bf16 = estimate_fpm_cost(Bfloat16Multiplier())
    assert ax.energy < exact.energy
    assert bf16.energy < exact.energy
    assert ax.delay < exact.delay


def test_fpm_cost_rejects_unknown_multiplier():
    class Mystery:
        name = "mystery"

    with pytest.raises(TypeError):
        estimate_fpm_cost(Mystery())  # type: ignore[arg-type]


def test_normalisation():
    exact = estimate_fpm_cost(ExactMultiplier())
    normalised = exact.normalised_to(exact)
    assert normalised.energy == pytest.approx(1.0)
    assert normalised.delay == pytest.approx(1.0)


def test_energy_delay_table_shape_and_values():
    table = energy_delay_table()
    names = [row[0] for row in table]
    assert names == ["Exact multiplier", "Ax-FPM", "Bfloat16"]
    exact_row, ax_row, bf_row = table
    assert exact_row[1] == pytest.approx(1.0)
    # the paper reports roughly 50 % energy and 70 % delay savings for Ax-FPM
    assert 0.3 < ax_row[1] < 0.7
    assert 0.15 < ax_row[2] < 0.5
    assert bf_row[1] < 1.0


def test_mantissa_energy_delay_table_ordering():
    table = mantissa_energy_delay_table()
    by_name = {row[0]: row for row in table}
    assert by_name["Ax-FPM"][1] < by_name["HEAP"][1] < by_name["Exact multiplier"][1]
    assert by_name["Ax-FPM"][2] < by_name["HEAP"][2] <= by_name["Exact multiplier"][2]


def test_cost_summary_contains_all_designs():
    summary = cost_summary()
    assert set(summary) == {"exact", "axfpm", "heap", "bfloat16"}
    assert summary["axfpm"].energy < summary["exact"].energy


def test_heap_fpm_energy_between_ax_and_exact():
    exact = estimate_fpm_cost(ExactMultiplier())
    heap = estimate_fpm_cost(HEAPMultiplier())
    ax = estimate_fpm_cost(AxFPM())
    assert ax.energy < heap.energy < exact.energy
