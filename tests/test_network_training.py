"""Tests for the Sequential container and the training loop."""

import numpy as np
import pytest

from repro.datasets import generate_digits
from repro.nn import Adam, CrossEntropyLoss, build_lenet5, evaluate_accuracy, train_classifier
from repro.nn.layers import Flatten, Linear, ReLU
from repro.nn.network import Sequential


def small_mlp(in_features=16, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        [Flatten(), Linear(in_features, 12, rng=rng), ReLU(), Linear(12, classes, rng=rng)],
        name="mlp",
    )


def test_forward_backward_shapes():
    model = small_mlp()
    x = np.random.default_rng(0).normal(size=(5, 1, 4, 4)).astype(np.float32)
    logits = model.forward(x)
    assert logits.shape == (5, 3)
    grad = model.backward(np.ones_like(logits))
    assert grad.shape == x.shape


def test_predict_helpers_consistency():
    model = small_mlp()
    x = np.random.default_rng(1).normal(size=(4, 1, 4, 4)).astype(np.float32)
    logits = model.predict_logits(x)
    probs = model.predict_proba(x)
    labels = model.predict(x)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-5)
    np.testing.assert_array_equal(labels, logits.argmax(axis=1))


def test_predict_logits_restores_training_mode():
    model = small_mlp()
    model.set_training(True)
    model.predict_logits(np.zeros((1, 1, 4, 4), dtype=np.float32))
    assert model.training is True


def test_state_dict_roundtrip():
    model_a = small_mlp(seed=0)
    model_b = small_mlp(seed=99)
    model_b.load_state_dict(model_a.state_dict())
    x = np.random.default_rng(2).normal(size=(3, 1, 4, 4)).astype(np.float32)
    np.testing.assert_allclose(model_a.predict_logits(x), model_b.predict_logits(x), rtol=1e-6)


def test_state_dict_mismatch_raises():
    model = small_mlp()
    other = Sequential([Flatten(), Linear(16, 3)])
    with pytest.raises(KeyError):
        other.load_state_dict(model.state_dict())


def test_save_and_load(tmp_path):
    model_a = small_mlp(seed=1)
    path = tmp_path / "weights.npz"
    model_a.save(str(path))
    model_b = small_mlp(seed=42)
    model_b.load(str(path))
    x = np.random.default_rng(3).normal(size=(2, 1, 4, 4)).astype(np.float32)
    np.testing.assert_allclose(model_a.predict_logits(x), model_b.predict_logits(x), rtol=1e-6)


def test_num_parameters_counts_everything():
    model = small_mlp()
    expected = 16 * 12 + 12 + 12 * 3 + 3
    assert model.num_parameters() == expected


def test_zero_grad_resets_gradients():
    model = small_mlp()
    x = np.zeros((2, 1, 4, 4), dtype=np.float32)
    logits = model.forward(x)
    model.backward(np.ones_like(logits))
    model.zero_grad()
    assert all(np.all(p.grad == 0) for p in model.parameters())


def test_training_reduces_loss_and_reaches_high_accuracy():
    dataset = generate_digits(400, size=12, seed=11)
    model = build_lenet5((1, 12, 12), conv_channels=(4, 8), fc_sizes=(32, 24), dropout=0.0, seed=1)
    history = train_classifier(
        model,
        Adam(model.parameters(), lr=0.004),
        dataset.images,
        dataset.labels,
        epochs=15,
        batch_size=32,
    )
    assert history.losses[-1] < history.losses[0]
    # well above the 10 % chance level on this deliberately tiny setup
    assert history.train_accuracies[-1] > 0.4


def test_training_history_tracks_validation():
    dataset = generate_digits(200, size=12, seed=12)
    model = build_lenet5((1, 12, 12), conv_channels=(4, 8), fc_sizes=(24, 16), dropout=0.0, seed=2)
    history = train_classifier(
        model,
        Adam(model.parameters(), lr=0.003),
        dataset.images[:150],
        dataset.labels[:150],
        dataset.images[150:],
        dataset.labels[150:],
        epochs=3,
        batch_size=32,
    )
    assert len(history.val_accuracies) == 3
    assert 0.0 <= history.final_val_accuracy <= 1.0


def test_evaluate_accuracy_bounds():
    dataset = generate_digits(50, size=12, seed=13)
    model = build_lenet5((1, 12, 12), conv_channels=(4, 8), fc_sizes=(24, 16), dropout=0.0)
    acc = evaluate_accuracy(model, dataset.images, dataset.labels)
    assert 0.0 <= acc <= 1.0


def test_cross_entropy_plus_network_gradient_direction():
    """One SGD-style step along the gradient must reduce the loss."""
    model = small_mlp(seed=5)
    x = np.random.default_rng(6).normal(size=(8, 1, 4, 4)).astype(np.float32)
    y = np.random.default_rng(7).integers(0, 3, size=8)
    criterion = CrossEntropyLoss()
    loss_before = criterion.forward(model.forward(x), y)
    model.backward(criterion.backward())
    for p in model.parameters():
        p.value -= 0.05 * p.grad
    loss_after = CrossEntropyLoss().forward(model.forward(x), y)
    assert loss_after < loss_before
