"""Tests for the synthetic dataset generators and containers."""

import numpy as np
import pytest

from repro.datasets import (
    OBJECT_CLASS_NAMES,
    Dataset,
    generate_digits,
    generate_objects,
    render_digit,
    render_object,
    train_test_split,
)


def test_render_digit_shape_and_range():
    image = render_digit(3, size=16, rng=np.random.default_rng(0))
    assert image.shape == (1, 16, 16)
    assert image.min() >= 0.0 and image.max() <= 1.0
    assert image.max() > 0.3  # the glyph is actually drawn


def test_render_digit_validates_arguments():
    with pytest.raises(ValueError):
        render_digit(11)
    with pytest.raises(ValueError):
        render_digit(1, size=4)


def test_render_digit_canonical_is_deterministic():
    a = render_digit(7, size=16, jitter=False)
    b = render_digit(7, size=16, jitter=False)
    np.testing.assert_array_equal(a, b)


def test_digits_are_distinguishable_without_jitter():
    """Canonical renderings of different digits must differ substantially."""
    images = [render_digit(d, size=16, jitter=False) for d in range(10)]
    for i in range(10):
        for j in range(i + 1, 10):
            assert np.abs(images[i] - images[j]).mean() > 0.01


def test_generate_digits_shapes_balance_and_determinism():
    dataset = generate_digits(100, size=14, seed=5)
    assert dataset.images.shape == (100, 1, 14, 14)
    assert dataset.labels.shape == (100,)
    counts = np.bincount(dataset.labels, minlength=10)
    assert counts.min() == 10 and counts.max() == 10
    again = generate_digits(100, size=14, seed=5)
    np.testing.assert_array_equal(dataset.images, again.images)


def test_render_object_shape_and_range():
    image = render_object(0, size=24, rng=np.random.default_rng(1))
    assert image.shape == (3, 24, 24)
    assert image.min() >= 0.0 and image.max() <= 1.0


def test_render_object_validates_arguments():
    with pytest.raises(ValueError):
        render_object(10)
    with pytest.raises(ValueError):
        render_object(0, size=4)


def test_generate_objects_covers_all_classes():
    dataset = generate_objects(60, size=20, seed=2)
    assert dataset.images.shape == (60, 3, 20, 20)
    assert set(np.unique(dataset.labels)) == set(range(len(OBJECT_CLASS_NAMES)))


def test_object_classes_are_visually_distinct():
    """Mean images of different classes must differ (the classifier needs signal)."""
    dataset = generate_objects(200, size=20, seed=3)
    means = [dataset.images[dataset.labels == c].mean(axis=0) for c in range(10)]
    for i in range(10):
        for j in range(i + 1, 10):
            assert np.abs(means[i] - means[j]).mean() > 0.005


def test_dataset_validation():
    with pytest.raises(ValueError):
        Dataset(np.zeros((3, 4)), np.zeros(3))  # not 4D
    with pytest.raises(ValueError):
        Dataset(np.zeros((3, 1, 4, 4)), np.zeros(2))  # length mismatch


def test_dataset_properties_and_subset():
    dataset = generate_digits(50, size=12, seed=4)
    assert len(dataset) == 50
    assert dataset.num_classes == 10
    assert dataset.input_shape == (1, 12, 12)
    subset = dataset.subset(np.arange(5))
    assert len(subset) == 5


def test_sample_per_class_balances():
    dataset = generate_digits(100, size=12, seed=6)
    balanced = dataset.sample_per_class(3)
    counts = np.bincount(balanced.labels, minlength=10)
    assert np.all(counts == 3)


def test_batches_cover_dataset():
    dataset = generate_digits(37, size=12, seed=7)
    seen = 0
    for xb, yb in dataset.batches(batch_size=10):
        assert len(xb) == len(yb)
        seen += len(xb)
    assert seen == 37


def test_train_test_split_sizes_and_disjointness():
    dataset = generate_digits(100, size=12, seed=8)
    split = train_test_split(dataset, test_fraction=0.25)
    assert len(split.test) == 25
    assert len(split.train) == 75


def test_train_test_split_invalid_fraction():
    dataset = generate_digits(20, size=12, seed=9)
    with pytest.raises(ValueError):
        train_test_split(dataset, test_fraction=1.5)
