"""Smoke tests for the ``python -m repro`` command line interface."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_list_enumerates_catalog(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    names = [line.split()[0] for line in out.strip().splitlines()]
    assert len(names) >= 10
    assert "table04_blackbox_mnist" in names


def test_info_prints_spec_json(capsys):
    assert main(["info", "table02_transferability_mnist"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "transferability"
    assert payload["model"] == "lenet_digits"


def test_run_writes_results(tmp_path, capsys):
    results_dir = tmp_path / "results"
    code = main(
        ["run", "table07_energy_delay", "--fast", "--no-cache", "--results-dir", str(results_dir)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "table07_energy_delay" in out
    assert (results_dir / "table07_energy_delay.txt").exists()
    payload = json.loads((results_dir / "table07_energy_delay.json").read_text())
    assert payload["fast"] is True
    assert payload["metrics"]["by_name"]["Exact multiplier"] == {"energy": 1.0, "delay": 1.0}


def test_run_with_jobs_flag_spawns_the_pool(tmp_path, capsys):
    results_dir = tmp_path / "results"
    code = main(
        [
            "run",
            "table07_energy_delay",
            "--fast",
            "--no-cache",
            "--jobs",
            "2",
            "--quiet",
            "--results-dir",
            str(results_dir),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "run summary" in out and "2 worker(s)" in out
    payload = json.loads((results_dir / "table07_energy_delay.json").read_text())
    assert payload["telemetry"]["jobs"] == 2
    assert payload["metrics"]["by_name"]["Exact multiplier"] == {"energy": 1.0, "delay": 1.0}


def test_unknown_experiment_is_a_clean_error(capsys):
    assert main(["run", "no_such_experiment"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err
    assert "table04_blackbox_mnist" in err  # lists what is available
    assert main(["info", "no_such_experiment"]) == 2


def test_module_entry_point_runs_fast_experiment(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_DA_CACHE"] = str(tmp_path / "cache")  # keep ~/.cache pristine
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "run",
            "table09_mantissa_energy",
            "--fast",
            "--quiet",
            "--results-dir",
            str(tmp_path / "results"),
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(tmp_path),
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert (tmp_path / "results" / "table09_mantissa_energy.txt").exists()
    assert (tmp_path / "results" / "table09_mantissa_energy.json").exists()
