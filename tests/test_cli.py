"""Smoke tests for the ``python -m repro`` command line interface."""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_list_enumerates_catalog(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    names = [line.split()[0] for line in out.strip().splitlines()]
    assert len(names) >= 10
    assert "table04_blackbox_mnist" in names


def test_list_json_is_machine_readable(capsys):
    assert main(["list", "--json"]) == 0
    catalog = json.loads(capsys.readouterr().out)
    assert isinstance(catalog, list) and len(catalog) >= 10
    entry = next(e for e in catalog if e["name"] == "table04_blackbox_mnist")
    assert entry["kind"] == "blackbox" and entry["title"]


def test_info_prints_spec_json_and_cell_outlook(tmp_path, capsys):
    assert main(["info", "table02_transferability_mnist", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    # human mode: the spec JSON document, then the planned-cell outlook
    spec_json, _, cells = out.partition("\n# cells")
    payload = json.loads(spec_json)
    assert payload["kind"] == "transferability"
    assert payload["model"] == "lenet_digits"
    assert "cold" in cells  # empty store: every planned cell is cold
    assert "transferability" in cells


def test_info_json_round_trips_through_from_dict(capsys):
    from repro.pipeline import ExperimentSpec, get_experiment

    assert main(["info", "fig08_09_whitebox_l2", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    # the emitted spec is the service wire format: rebuilding it yields the
    # same digest, so an inline HTTP submission hits the same cell cache
    # (tuples inside params become JSON arrays, which canonical JSON encodes
    # identically -- digest equality is the contract, not dataclass equality)
    rebuilt = ExperimentSpec.from_dict(payload)
    original = get_experiment("fig08_09_whitebox_l2")
    assert rebuilt.name == original.name and rebuilt.attacks == original.attacks
    assert rebuilt.digest() == original.digest()


def test_cache_stats_and_gc(tmp_path, capsys):
    cache_dir = tmp_path / "cells"
    code = main(
        [
            "run",
            "table07_energy_delay",
            "--fast",
            "--quiet",
            "--results-dir",
            str(tmp_path / "results"),
        ]
    )
    assert code == 0
    capsys.readouterr()
    # `run` uses the default cache dir; exercise stats/gc on an explicit one
    from repro.store import ArtifactStore

    ArtifactStore(cache_dir).put("energy", "a" * 40, {"rows": [1, 2, 3]})
    assert main(["cache", "stats", "--json", "--cache-dir", str(cache_dir)]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["artifacts"] == 1
    assert stats["namespaces"]["energy"]["artifacts"] == 1
    assert main(["cache", "stats", "--cache-dir", str(cache_dir)]) == 0
    human = capsys.readouterr().out
    assert "artifacts" in human and "energy" in human
    assert main(["cache", "gc", "--budget", "0", "--cache-dir", str(cache_dir)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["evicted"] == 1 and report["bytes_after"] == 0


def test_run_writes_results(tmp_path, capsys):
    results_dir = tmp_path / "results"
    code = main(
        ["run", "table07_energy_delay", "--fast", "--no-cache", "--results-dir", str(results_dir)]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "table07_energy_delay" in out
    assert (results_dir / "table07_energy_delay.txt").exists()
    payload = json.loads((results_dir / "table07_energy_delay.json").read_text())
    assert payload["fast"] is True
    assert payload["metrics"]["by_name"]["Exact multiplier"] == {"energy": 1.0, "delay": 1.0}


def test_run_with_jobs_flag_spawns_the_pool(tmp_path, capsys):
    results_dir = tmp_path / "results"
    code = main(
        [
            "run",
            "table07_energy_delay",
            "--fast",
            "--no-cache",
            "--jobs",
            "2",
            "--quiet",
            "--results-dir",
            str(results_dir),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "run summary" in out and "2 worker(s)" in out
    payload = json.loads((results_dir / "table07_energy_delay.json").read_text())
    assert payload["telemetry"]["jobs"] == 2
    assert payload["metrics"]["by_name"]["Exact multiplier"] == {"energy": 1.0, "delay": 1.0}


def test_unknown_experiment_is_a_clean_error(capsys):
    assert main(["run", "no_such_experiment"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err
    assert "table04_blackbox_mnist" in err  # lists what is available
    assert main(["info", "no_such_experiment"]) == 2


def test_module_entry_point_runs_fast_experiment(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_DA_CACHE"] = str(tmp_path / "cache")  # keep ~/.cache pristine
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "run",
            "table09_mantissa_energy",
            "--fast",
            "--quiet",
            "--results-dir",
            str(tmp_path / "results"),
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(tmp_path),
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    assert (tmp_path / "results" / "table09_mantissa_energy.txt").exists()
    assert (tmp_path / "results" / "table09_mantissa_energy.json").exists()
