"""Store conformance: ``TieredStore`` honours the ``ArtifactStore`` contract.

The same put/get/lease/remove/gc semantics are asserted against both store
implementations through one parameterized fixture -- the Runner swaps one
for the other based on ``--remote``, so any behavioural drift between them
is a correctness bug.  The tiered variant runs against a *live*
``--share-store`` service (real sockets, synchronous publication), and a
second block covers the semantics only the tiered store has: fill-through,
integrity rejection, fingerprint rejection and breaker-open fallback.
"""

import hashlib

import pytest

from repro.faults import FAULTS
from repro.store import (
    REMOTE_STATS,
    ArtifactStore,
    CircuitBreaker,
    RemoteStoreClient,
    TieredStore,
)
from store_service_harness import StoreServiceThread


@pytest.fixture(scope="module")
def share_service(tmp_path_factory):
    service = StoreServiceThread(tmp_path_factory.mktemp("share-service"))
    yield service
    service.close()


@pytest.fixture(params=["local", "tiered"])
def store(request, tmp_path, share_service):
    """The store under test: plain local, or local+remote tiered."""
    local = ArtifactStore(tmp_path / "store")
    if request.param == "local":
        return local
    return TieredStore(
        local,
        RemoteStoreClient(share_service.base, retries=0),
        publish_async=False,
    )


@pytest.fixture()
def digest(request):
    """A per-test unique digest: the share service outlives a single test."""
    return hashlib.sha256(request.node.nodeid.encode()).hexdigest()[:32]


@pytest.fixture(autouse=True)
def _disarm_faults():
    yield
    FAULTS.configure(None)


# ----------------------------------------------------- the shared contract
def test_put_get_roundtrip(store, digest):
    value = {"rows": [1, 2.5, "x"], "nested": {"ok": True}}
    path = store.put("cells", digest, value)
    assert path.exists()
    assert store.get("cells", digest) == value
    assert store.contains("cells", digest)


def test_get_missing_is_none(store, digest):
    assert store.get("cells", digest) is None
    assert not store.contains("cells", digest)


def test_meta_sidecar_roundtrip(store, digest):
    meta = {"kind": "bench", "deps": {"attacks": "abc123"}}
    store.put("cells", digest, {"v": 1}, meta=meta)
    assert store.get_meta("cells", digest) == meta


def test_lease_exclusivity(store, digest):
    lease = store.try_lease("cells", digest)
    assert lease is not None
    assert store.try_lease("cells", digest) is None  # held
    lease.release()
    second = store.try_lease("cells", digest)
    assert second is not None
    second.release()


def test_remove_is_local_eviction(store, digest):
    store.put("cells", digest, {"v": 1}, meta={"kind": "bench"})
    assert store.remove("cells", digest)
    # removal evicts the *local* copy; it is not a global delete, so a tiered
    # get may legitimately fill the cell back through from the peer
    local = getattr(store, "local", store)
    assert local.get("cells", digest) is None
    assert not store.remove("cells", digest)  # already gone locally


def test_stats_shape(store, digest):
    store.put("cells", digest, {"v": 1})
    stats = store.stats()
    assert stats["artifacts"] >= 1
    assert stats["bytes"] > 0
    assert "active_leases" in stats and "counters" in stats


def test_gc_evicts_down_to_budget(store, digest):
    for i in range(4):
        store.put("gc-conformance", f"{digest}{i:02d}", {"pad": "y" * 256, "i": i})
    report = store.gc(budget=1)
    assert report["evicted"] >= 3


def test_corrupt_artifact_unlinked_and_counted(store, digest):
    from repro.store import STORE_STATS

    # plant a torn artifact directly (never published anywhere): the read
    # must unlink it, count it, and fall through to a miss
    path = store.path("cells", digest)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("{truncated")
    mark = STORE_STATS.snapshot()
    assert store.get("cells", digest) is None
    assert not path.exists()  # silently unlinked...
    assert STORE_STATS.delta(mark)["corrupt_unlinked"] == 1  # ...but counted


# ------------------------------------------------- tiered-only semantics
@pytest.fixture()
def tiered(tmp_path, share_service):
    store = TieredStore(
        ArtifactStore(tmp_path / "tiered"),
        RemoteStoreClient(share_service.base, retries=0),
        publish_async=False,
    )
    counts = {}

    def on_fault(name, n=1):
        counts[name] = counts.get(name, 0) + n

    store.on_fault = on_fault
    return store, counts


def test_fill_through_adopts_foreign_artifact(tiered, share_service, digest):
    store, counts = tiered
    share_service.store.put("cells", digest, {"from": "peer"})
    mark = REMOTE_STATS.snapshot()
    assert store.get("cells", digest) == {"from": "peer"}
    assert counts == {"remote_cell_hits": 1}
    delta = REMOTE_STATS.delta(mark)
    assert delta["gets"] == 1 and delta["hits"] == 1
    # adopted into L1: the next read never touches the network
    assert store.local.get("cells", digest) == {"from": "peer"}
    assert REMOTE_STATS.delta(mark)["gets"] == 1


def test_fill_through_carries_meta_sidecar(tiered, share_service, digest):
    store, _counts = tiered
    meta = {"kind": "bench", "deps": {}}
    share_service.store.put("cells", digest, {"v": 9}, meta=meta)
    assert store.get("cells", digest) == {"v": 9}
    assert store.local.get_meta("cells", digest) == meta


def test_put_publishes_to_peer(tiered, share_service, digest):
    store, _counts = tiered
    store.put("cells", digest, {"local": True}, meta={"kind": "bench", "deps": {}})
    assert share_service.store.get("cells", digest) == {"local": True}
    assert share_service.store.get_meta("cells", digest) == {
        "kind": "bench",
        "deps": {},
    }


def test_corrupt_body_rejected_not_trusted(tiered, share_service, digest):
    store, counts = tiered
    share_service.store.put("cells", digest, {"v": 3})
    FAULTS.configure("remote.corrupt_body:1")
    mark = REMOTE_STATS.snapshot()
    assert store.get("cells", digest) is None  # a counted miss, never bad data
    assert counts == {"remote_rejects": 1}
    assert REMOTE_STATS.delta(mark)["rejected_checksum"] == 1
    assert store.local.get("cells", digest) is None  # nothing adopted


def test_stale_meta_rejected(tiered, share_service, digest):
    store, counts = tiered
    from repro.pipeline.fingerprints import fingerprint_map

    # a genuinely fresh sidecar (live tokens) whose fingerprints the fault
    # garbles in flight: the peer then claims the cell was computed under
    # dependencies that never existed, and the artifact must not be adopted
    share_service.store.put(
        "cells", digest, {"v": 4}, meta={"kind": "bench", "deps": fingerprint_map(["attacks"])}
    )
    FAULTS.configure("remote.reject_meta:1")
    mark = REMOTE_STATS.snapshot()
    assert store.get("cells", digest) is None
    assert counts == {"remote_rejects": 1}
    assert REMOTE_STATS.delta(mark)["rejected_meta"] == 1
    assert store.local.get("cells", digest) is None


def test_breaker_open_fallback(tmp_path, digest):
    dead = RemoteStoreClient(
        "http://127.0.0.1:9", timeout=0.05, retries=0,
        breaker=CircuitBreaker(threshold=1, cooldown=3600.0),
    )
    store = TieredStore(ArtifactStore(tmp_path / "dead"), dead, publish_async=False)
    counts = {}
    store.on_fault = lambda name, n=1: counts.update({name: counts.get(name, 0) + n})
    mark = REMOTE_STATS.snapshot()
    assert store.get("cells", digest) is None  # transport failure -> fallback
    assert store.get("cells", digest) is None  # breaker now open -> skip
    delta = REMOTE_STATS.delta(mark)
    assert delta["breaker_opened"] == 1
    assert delta["breaker_open_skips"] >= 1
    assert counts["remote_fallbacks"] == 2
    # writes still land locally and never raise
    store.put("cells", digest, {"v": 5})
    assert store.local.get("cells", digest) == {"v": 5}


def test_half_open_recovery(tmp_path, share_service, digest):
    clock = {"now": 0.0}
    breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=lambda: clock["now"])
    client = RemoteStoreClient(share_service.base, retries=0, breaker=breaker)
    store = TieredStore(ArtifactStore(tmp_path / "recover"), client, publish_async=False)
    share_service.store.put("cells", digest, {"v": 6})
    breaker.record_failure()  # the peer "died" once; breaker opens
    assert breaker.state == "open"
    assert store.get("cells", digest) is None  # refused without the network
    clock["now"] = 11.0  # cooldown lapses
    assert breaker.state == "half_open"
    assert store.get("cells", digest) == {"v": 6}  # the probe succeeds...
    assert breaker.state == "closed"  # ...and the breaker closes


def test_delegation_keeps_local_surface(tiered):
    store, _counts = tiered
    # everything the Runner and parallel engine touch beyond get/put resolves
    # on the local tier through delegation
    assert store.root == store.local.root
    assert store.meta_index("cells") == store.local.meta_index("cells")
    assert store.lease_holder("cells", "f" * 32) is None
    with pytest.raises(AttributeError):
        store.no_such_attribute
