"""Chaos tests for ``repro.faults``: injection, retry/timeout, resume.

The contract under test (docs/faults.md): any run that completes -- however
many injected crashes, hangs, torn writes and stolen leases it survived --
produces results byte-identical to a clean run, and an interrupted run's
manifest plus ``--resume`` account for exactly the work already done.
"""

import asyncio
import json
import multiprocessing
import pickle
import threading
import time

import pytest

from repro.arith.fpm import AxFPM
from repro.arith.kernels import FusedLutGemmKernel
from repro.cli import main
from repro.experiments.zoo import ZOO
from repro.faults import (
    FAULT_POINTS,
    FAULT_STATS,
    FAULTS,
    FaultInjector,
    InjectedFault,
    RunManifest,
    backoff_seconds,
    job_retries,
    lease_poll,
    parse_fault_specs,
    shard_retries,
    shard_timeout,
)
from repro.parallel.engine import CellExecutionError
from repro.pipeline import NONDETERMINISTIC_RESULT_FIELDS, ExperimentSpec, Runner
from repro.service.jobs import JobQueue
from repro.store import ArtifactStore

CHEAP_EXPERIMENTS = ["fig04_approx_convolution", "table07_energy_delay"]

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

#: chaos pool tests arm the parent's injector singleton and rely on ``fork``
#: carrying it into the workers; under ``spawn`` a worker re-reads the
#: (unset) environment and would be disarmed
needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="chaos pool tests need fork to inherit the armed injector"
)


@pytest.fixture(autouse=True)
def disarm_faults():
    """Every test starts and ends with the injector disarmed."""
    FAULTS.configure(None)
    yield
    FAULTS.configure(None)


def make_runner(tmp_path, tag="cells", **kwargs):
    kwargs.setdefault("cache_dir", tmp_path / tag)
    return Runner(fast=True, **kwargs)


def deterministic_json(result):
    payload = result.to_json()
    for field in NONDETERMINISTIC_RESULT_FIELDS:
        payload.pop(field)
    return json.dumps(payload, sort_keys=True)


@pytest.fixture()
def tiny_zoo_entry(tiny_model, digit_split):
    name = "faults_test_zoo"
    ZOO.register(name, lambda fast=False: (tiny_model, digit_split), overwrite=True)
    yield name
    ZOO.unregister(name)


# ------------------------------------------------------------------ injector
def test_parse_fault_specs():
    specs = parse_fault_specs("worker.crash:0.5:7, shard.hang:1.0")
    assert specs["worker.crash"].probability == 0.5
    assert specs["worker.crash"].seed == 7
    assert specs["shard.hang"].seed == 0  # seed is optional
    assert parse_fault_specs(None) == {} and parse_fault_specs("  ") == {}
    with pytest.raises(ValueError, match="unknown fault point"):
        parse_fault_specs("worker.cras:0.5")
    with pytest.raises(ValueError, match="probability"):
        parse_fault_specs("worker.crash:nope")
    with pytest.raises(ValueError, match="out of"):
        parse_fault_specs("worker.crash:1.5")
    with pytest.raises(ValueError, match="expected point:probability"):
        parse_fault_specs("worker.crash")
    with pytest.raises(ValueError, match="bad seed"):
        parse_fault_specs("worker.crash:0.5:x")


def test_coin_is_deterministic_and_fires_once_per_key():
    a = FaultInjector("store.torn_write:0.5:3")
    b = FaultInjector("store.torn_write:0.5:3")
    keys = [f"cells:{i}" for i in range(64)]
    decisions = [a.should_inject("store.torn_write", k) for k in keys]
    assert any(decisions) and not all(decisions)  # the coin actually splits
    # same (seed, point, key) on a fresh injector: identical schedule
    assert decisions == [b.should_inject("store.torn_write", k) for k in keys]
    # in-process once-per-key guard: a retry at the same site passes
    assert not any(a.should_inject("store.torn_write", k) for k in keys)
    # a different seed draws a different schedule
    c = FaultInjector("store.torn_write:0.5:4")
    assert decisions != [c.should_inject("store.torn_write", k) for k in keys]


def test_disarmed_injector_counts_nothing():
    mark = FAULT_STATS.snapshot()
    assert not FAULTS.enabled
    assert not FAULTS.should_inject("worker.crash", "any")
    FAULTS.maybe_raise("kernel.build_fail", "any")  # no-op, must not raise
    assert not any(FAULT_STATS.delta(mark).values())
    # armed-but-different-point evaluations are also free
    FAULTS.configure("shard.hang:1.0")
    assert not FAULTS.should_inject("worker.crash", "any")
    assert not any(FAULT_STATS.delta(mark).values())


def test_armed_injector_counts_checks_and_injections():
    FAULTS.configure("kernel.build_fail:1.0")
    mark = FAULT_STATS.snapshot()
    with pytest.raises(InjectedFault) as excinfo:
        FAULTS.maybe_raise("kernel.build_fail", "axfpm8")
    assert excinfo.value.point == "kernel.build_fail"
    assert excinfo.value.key == "axfpm8"
    FAULTS.maybe_raise("kernel.build_fail", "axfpm8")  # healed: once per key
    delta = FAULT_STATS.delta(mark)
    assert delta["checks"] == 2
    assert delta["injected"] == 1
    assert delta["kernel_build_fail"] == 1


def test_injected_fault_pickles_across_process_boundary():
    # workers raise InjectedFault across the pool; unpickling re-calls
    # __init__(*args), which must round-trip the (point, key) identity
    fault = pickle.loads(pickle.dumps(InjectedFault("worker.crash", "d:0:1")))
    assert fault.point == "worker.crash"
    assert fault.key == "d:0:1"
    assert "worker.crash" in str(fault) and "d:0:1" in str(fault)


def test_every_catalog_point_parses():
    armed = ",".join(f"{point}:0.5" for point in FAULT_POINTS)
    assert set(parse_fault_specs(armed)) == set(FAULT_POINTS)


# -------------------------------------------------------------------- policy
def test_policy_env_knobs(monkeypatch):
    for var in ("REPRO_SHARD_TIMEOUT", "REPRO_SHARD_RETRIES",
                "REPRO_STORE_LEASE_POLL", "REPRO_JOB_RETRIES"):
        monkeypatch.delenv(var, raising=False)
    assert shard_timeout() is None
    assert shard_retries() == 2
    assert lease_poll() == (0.02, 0.25)
    assert job_retries() == 1

    monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "30")
    assert shard_timeout() == 30.0
    monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "0")  # <= 0 disables
    assert shard_timeout() is None
    monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "bogus")
    assert shard_timeout() is None

    monkeypatch.setenv("REPRO_SHARD_RETRIES", "5")
    assert shard_retries() == 5
    monkeypatch.setenv("REPRO_SHARD_RETRIES", "-3")  # clamped
    assert shard_retries() == 0

    monkeypatch.setenv("REPRO_STORE_LEASE_POLL", "0.05")
    assert lease_poll() == (0.05, 0.25)
    monkeypatch.setenv("REPRO_STORE_LEASE_POLL", "0.1:1.5")
    assert lease_poll() == (0.1, 1.5)
    monkeypatch.setenv("REPRO_STORE_LEASE_POLL", "2.0:0.5")  # cap >= start
    assert lease_poll() == (2.0, 2.0)
    monkeypatch.setenv("REPRO_STORE_LEASE_POLL", "junk")
    assert lease_poll() == (0.02, 0.25)

    monkeypatch.setenv("REPRO_JOB_RETRIES", "4")
    assert job_retries() == 4


def test_backoff_grows_exponentially_and_caps():
    import random

    rng = random.Random(0)
    delays = [backoff_seconds(attempt, rng) for attempt in (1, 2, 3, 10)]
    assert 0.05 * 0.75 <= delays[0] <= 0.05 * 1.25
    assert 0.10 * 0.75 <= delays[1] <= 0.10 * 1.25
    assert delays[3] <= 2.0 * 1.25  # capped


# ------------------------------------------------------------------ manifest
def test_manifest_roundtrip(tmp_path):
    path = tmp_path / "run.manifest.json"
    manifest = RunManifest(path, label="demo", experiments=["a", "b"], cells_total=3)
    manifest.record("d1", "energy", "computed", 1.234)
    manifest.record("d2", "whitebox", "hit")
    loaded = RunManifest.load(path)  # mid-run snapshot: honest, unfinished
    assert loaded is not None and not loaded.finished
    assert loaded.cells_total == 3
    assert set(loaded.completed) == {"d1", "d2"}
    assert loaded.completed["d1"]["kind"] == "energy"
    assert loaded.completed["d1"]["seconds"] == 1.234
    manifest.finish()
    assert RunManifest.load(path).finished

    assert RunManifest.load(tmp_path / "absent.json") is None
    (tmp_path / "torn.json").write_text('{"version": 1, "comp')
    assert RunManifest.load(tmp_path / "torn.json") is None
    (tmp_path / "foreign.json").write_text(json.dumps({"version": 999}))
    assert RunManifest.load(tmp_path / "foreign.json") is None


# ------------------------------------------------------------ injection sites
def test_kernel_build_fail_fires_once_then_heals():
    FAULTS.configure("kernel.build_fail:1.0")
    with pytest.raises(InjectedFault):
        FusedLutGemmKernel(AxFPM(frac_bits=8))
    # the once-per-key guard lets the in-process retry succeed
    kernel = FusedLutGemmKernel(AxFPM(frac_bits=8))
    assert kernel is not None


def test_torn_write_is_detected_and_recoverable(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    FAULTS.configure("store.torn_write:1.0")
    mark = FAULT_STATS.snapshot()
    path = store.put("cells", "deadbeef", {"value": [1, 2, 3]})
    assert path.exists()
    with pytest.raises(json.JSONDecodeError):
        json.loads(path.read_text())  # the write really tore
    assert store.get("cells", "deadbeef") is None  # detected ...
    assert not path.exists()  # ... and quarantined (unlinked)
    store.put("cells", "deadbeef", {"value": [1, 2, 3]})  # retry: once per key
    assert store.get("cells", "deadbeef") == {"value": [1, 2, 3]}
    assert FAULT_STATS.delta(mark)["store_torn_write"] == 1


def test_lease_steal_fails_refresh_and_allows_reacquire(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    lease = store.try_lease("cells", "cafe01")
    assert lease is not None
    FAULTS.configure("store.lease_steal:1.0")
    assert lease.refresh() is False  # claim usurped under us
    FAULTS.configure(None)
    fresh = store.try_lease("cells", "cafe01")  # the engine's recovery move
    assert fresh is not None
    fresh.release()


# ------------------------------------------------------- engine chaos (pool)
@needs_fork
def test_crash_storm_degrades_to_serial_with_identical_results(tmp_path, monkeypatch):
    clean = make_runner(tmp_path, "clean", jobs=1).run("table07_energy_delay")
    monkeypatch.setenv("REPRO_SHARD_RETRIES", "10")
    # probability 1.0: every pooled attempt dies, so the engine must burn
    # through its whole respawn budget and finish the shard in-parent
    FAULTS.configure("worker.crash:1.0")
    runner = make_runner(tmp_path, "chaos", jobs=2)
    with pytest.warns(RuntimeWarning, match="worker pool died"):
        chaos = runner.run("table07_energy_delay")
    faults = runner.telemetry.faults
    assert faults["worker_crashes"] == 4  # one per pool death
    assert faults["pool_respawns"] == 3  # POOL_RESPAWN_LIMIT rebuilds
    assert faults["degraded_serial"] == 1  # then gave up on the pool
    assert faults["shard_retries"] == 3
    assert deterministic_json(chaos) == deterministic_json(clean)


@needs_fork
def test_hung_shards_time_out_and_results_survive(tmp_path, monkeypatch):
    clean = make_runner(tmp_path, "clean", jobs=1).run("table07_energy_delay")
    monkeypatch.setenv("REPRO_SHARD_TIMEOUT", "0.5")
    monkeypatch.setenv("REPRO_SHARD_RETRIES", "10")
    # bound the injected sleep so a timeout-machinery bug fails the test
    # instead of wedging the suite
    monkeypatch.setenv("REPRO_FAULT_HANG_SECONDS", "30")
    FAULTS.configure("shard.hang:1.0")
    runner = make_runner(tmp_path, "chaos", jobs=2)
    with pytest.warns(RuntimeWarning, match="worker pool died"):
        chaos = runner.run("table07_energy_delay")
    faults = runner.telemetry.faults
    assert faults["shard_timeouts"] == 4
    assert faults["pool_respawns"] == 3
    assert faults["degraded_serial"] == 1
    assert deterministic_json(chaos) == deterministic_json(clean)


@needs_fork
def test_exhausted_retries_raise_cell_identity(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_RETRIES", "0")
    FAULTS.configure("worker.crash:1.0")
    runner = make_runner(tmp_path, "chaos", jobs=2)
    with pytest.raises(CellExecutionError) as excinfo:
        runner.run("table07_energy_delay")
    error = excinfo.value
    assert error.kind == "energy"
    assert error.digest and error.digest[:10] in str(error)
    assert error.shard == 0
    assert error.owner == "table07_energy_delay"
    assert "crashed after 1 attempt(s)" in str(error)


@needs_fork
def test_cli_reports_failing_cell_and_resume_hint(tmp_path, monkeypatch, capsys):
    # arm via the environment (what a chaos run actually does) + reload
    monkeypatch.setenv("REPRO_FAULTS", "worker.crash:1.0")
    monkeypatch.setenv("REPRO_SHARD_RETRIES", "0")
    FAULTS.reload()
    code = main(
        [
            "run",
            "table07_energy_delay",
            "--fast",
            "--quiet",
            "--no-cache",  # force a pooled compute even with a warm store
            "--jobs",
            "2",
            "--results-dir",
            str(tmp_path / "results"),
        ]
    )
    assert code == 3  # the CLI's "cell died" exit code
    err = capsys.readouterr().err
    assert "error: energy cell" in err and "crashed" in err
    assert "--resume" in err  # the operator knows the way out


# -------------------------------------------------------- manifests & resume
def test_completed_run_writes_finished_manifest_and_resume_counts(tmp_path):
    results = tmp_path / "results"
    first = make_runner(tmp_path, jobs=1, results_dir=results)
    first.run_many(CHEAP_EXPERIMENTS)
    manifest_path = results / "fig04_approx_convolution+1.manifest.json"
    manifest = RunManifest.load(manifest_path)
    assert manifest is not None and manifest.finished
    assert len(manifest.completed) == manifest.cells_total == 2
    assert first.telemetry.faults["cells_resumed"] == 0  # nothing to resume

    again = make_runner(tmp_path, jobs=1, results_dir=results, resume=True)
    again.run_many(CHEAP_EXPERIMENTS)
    assert again.cache_misses == 0
    # every hit whose digest the previous manifest proved complete is counted
    assert again.telemetry.faults["cells_resumed"] == 2
    assert RunManifest.load(manifest_path).finished


def test_midrun_failure_leaves_partial_manifest_then_resume(
    tmp_path, monkeypatch, tiny_zoo_entry
):
    monkeypatch.setenv("REPRO_SHARD_RETRIES", "0")
    results = tmp_path / "results"
    broken = ExperimentSpec(
        name="faults_partial",
        kind="whitebox",
        model=tiny_zoo_entry,
        variants=("exact",),
        attacks=(("Nope", "no_such_attack", {}),),
        n_samples=2,
    )
    runner = make_runner(tmp_path, jobs=1, results_dir=results)
    # equal-cost cells run in submission order: the energy cell completes,
    # then the broken attack cell kills the run
    with pytest.raises(CellExecutionError):
        runner.run_many(["table07_energy_delay", broken])
    manifest_path = results / "table07_energy_delay+1.manifest.json"
    manifest = RunManifest.load(manifest_path)
    assert manifest is not None
    assert not manifest.finished  # an interrupted run never claims otherwise
    assert manifest.cells_total == 2
    assert len(manifest.completed) == 1
    (entry,) = manifest.completed.values()
    assert entry["kind"] == "energy" and entry["status"] == "computed"

    # fix the failing spec and resume under the same run label: the energy
    # cell is proven-resumed work, only the repaired cell computes
    fixed = broken.replace(attacks=(("PGD", "pgd", {"epsilon": 0.1, "steps": 3}),))
    resumed = make_runner(tmp_path, jobs=1, results_dir=results, resume=True)
    resumed.run_many(["table07_energy_delay", fixed])
    assert resumed.telemetry.faults["cells_resumed"] == 1
    assert resumed.cache_misses == 1  # the repaired cell, nothing else
    manifest = RunManifest.load(manifest_path)
    assert manifest.finished and len(manifest.completed) == 2


# ------------------------------------------------------------- service jobs
def drain(coro):
    return asyncio.run(coro)


async def wait_terminal(job, timeout=120.0):
    deadline = time.monotonic() + timeout
    while not job.terminal:
        assert time.monotonic() < deadline, f"job stuck in {job.status}"
        await asyncio.sleep(0.02)


def test_job_retry_state_machine(tmp_path):
    """A transient first-attempt failure requeues through ``retrying``."""
    flaky_state = {"failures_left": 1}

    class FlakyRunner(Runner):
        def run_many(self, specs, on_result=None):
            if flaky_state["failures_left"] > 0:
                flaky_state["failures_left"] -= 1
                raise RuntimeError("transient boom")
            return super().run_many(specs, on_result=on_result)

    def factory(fast=False, jobs=None):
        return FlakyRunner(fast=fast, cache_dir=tmp_path / "cells", jobs=1)

    async def scenario():
        queue = JobQueue(factory, workers=1)
        queue.start()
        job = queue.submit(
            {"experiments": ["table07_energy_delay"], "fast": True, "retries": 1}
        )
        assert job.status == "pending" and job.max_retries == 1
        await wait_terminal(job)
        await queue.close()
        return queue, job

    queue, job = drain(scenario())
    assert job.status == "succeeded"
    assert job.attempts == 2
    assert queue.retries_total == 1
    statuses = [e["status"] for e in job.events if e["event"] == "status"]
    assert statuses == ["pending", "running", "retrying", "running", "succeeded"]
    retrying = next(e for e in job.events if e.get("status") == "retrying")
    assert "transient boom" in retrying["error"]
    assert retrying["attempt"] == 1 and retrying["max_retries"] == 1
    assert "elapsed_seconds" in job.snapshot()


def test_failed_job_final_event_names_the_cell(tmp_path, monkeypatch, tiny_zoo_entry):
    monkeypatch.setenv("REPRO_SHARD_RETRIES", "0")
    broken = ExperimentSpec(
        name="faults_service_failing",
        kind="whitebox",
        model=tiny_zoo_entry,
        variants=("exact",),
        attacks=(("Nope", "no_such_attack", {}),),
        n_samples=2,
    )

    def factory(fast=False, jobs=None):
        return Runner(fast=fast, cache_dir=tmp_path / "cells", jobs=1)

    async def scenario():
        queue = JobQueue(factory, workers=1)
        queue.start()
        job = queue.submit(
            {"experiments": [broken.to_dict()], "fast": True, "retries": 0}
        )
        await wait_terminal(job)
        await queue.close()
        return job

    job = drain(scenario())
    assert job.status == "failed" and job.attempts == 1
    final = job.events[-1]
    assert final["status"] == "failed"
    assert "no_such_attack" in final["error"]
    # CellExecutionError identity made it to the wire: which cell, what kind
    assert final["failed_cell"]["kind"] == "whitebox"
    assert final["failed_cell"]["digest"]
    assert job.snapshot()["failed_cell"] == final["failed_cell"]


def test_job_retries_rejects_bad_values(tmp_path):
    def factory(fast=False, jobs=None):
        return Runner(fast=fast, cache_dir=tmp_path / "cells", jobs=1)

    async def scenario():
        from repro.service.jobs import SubmitError

        queue = JobQueue(factory, workers=1)
        for bad in (-1, True, "2"):
            with pytest.raises(SubmitError, match="retries"):
                queue.submit(
                    {"experiments": ["table07_energy_delay"], "retries": bad}
                )

    drain(scenario())


def test_close_cancels_running_and_queued_jobs(tmp_path):
    """Shutdown reports ``cancelled`` -- never ``failed`` -- and drains."""
    release = threading.Event()

    class BlockingRunner(Runner):
        def run_many(self, specs, on_result=None):
            release.wait(timeout=60)
            return []

    def factory(fast=False, jobs=None):
        return BlockingRunner(fast=fast, cache_dir=tmp_path / "cells", jobs=1)

    async def scenario():
        queue = JobQueue(factory, workers=1)
        queue.start()
        running = queue.submit({"experiments": ["table07_energy_delay"], "fast": True})
        queued = queue.submit({"experiments": ["fig04_approx_convolution"], "fast": True})
        while running.status != "running":  # the single worker picked it up
            await asyncio.sleep(0.01)
        assert queued.status == "pending"
        await queue.close()
        release.set()  # let the executor thread exit before the loop closes
        return running, queued

    running, queued = drain(scenario())
    assert running.status == "cancelled"
    assert queued.status == "cancelled"
    # never-started jobs have no elapsed time, and snapshotting them works
    snapshot = queued.snapshot()
    assert "elapsed_seconds" not in snapshot and "started_unix" not in snapshot
    # both final events reached their streams, so no follower blocks forever
    assert running.events[-1]["status"] == "cancelled"
    assert queued.events[-1]["status"] == "cancelled"
