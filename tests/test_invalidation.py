"""Per-cell cache invalidation: dependency fingerprints do their job.

The contract under test (see ``docs/caching.md``): every cell kind declares
the code/numerics surfaces its bits depend on, the cell digest folds in
exactly those fingerprints, and therefore bumping one surface's version
constant invalidates *all* of its dependents and *only* its dependents --
a kernel tweak recomputes approximate-arithmetic cells while clean-accuracy
and dataset cells stay warm.
"""

import json
import multiprocessing
import subprocess
import sys
from pathlib import Path

import pytest

from repro.pipeline import Runner, list_experiments
from repro.pipeline.fingerprints import (
    conservative_keys,
    content_key,
    diff_fingerprints,
    fingerprint_map,
    meta_status,
    resolve_fingerprint,
)

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

#: surface key -> (module path, version attribute) for monkeypatch bumps
SURFACE_CONSTANTS = {
    "kernels": ("repro.arith.kernels", "KERNEL_NUMERICS_VERSION"),
    "arith": ("repro.arith", "ARITH_NUMERICS_VERSION"),
    "attacks": ("repro.attacks", "ATTACK_NUMERICS_VERSION"),
    "models": ("repro.nn", "MODEL_NUMERICS_VERSION"),
    "datasets": ("repro.datasets", "DATASET_NUMERICS_VERSION"),
    "evaluation": ("repro.core", "EVALUATION_NUMERICS_VERSION"),
    "hw": ("repro.hw", "HW_MODEL_VERSION"),
}

#: one representative payload per registered cell kind (plan-time shape:
#: digests and dependency declarations never execute the compute)
KIND_PAYLOADS = {
    "transferability": {
        "model": "lenet_digits", "source": "exact", "targets": ("da",),
        "attack": "fgsm", "n_samples": 4,
    },
    "blackbox": {
        "model": "lenet_digits", "substitute": "substitute_digits",
        "victim": "da", "attack": "fgsm", "n_samples": 4,
    },
    "whitebox": {
        "model": "lenet_digits", "victim": "da", "attack": "pgd", "n_samples": 4,
    },
    "accuracy": {"model": "lenet_digits", "variant": "exact", "n_samples": 64},
    "noise_profile": {"multiplier": "axfpm", "n_samples": 100},
    "conv_response": {"model": "lenet_digits", "scale": 0.5},
    "confidence": {"model": "lenet_digits", "n_samples": 16},
    "feature_maps": {"model": "lenet_digits", "variant": "da", "n_samples": 2},
    "energy": {"design": "axfpm"},
}


def bump(monkeypatch, key: str) -> None:
    """Advance one surface's version constant, as a numerics PR would."""
    module_path, attr = SURFACE_CONSTANTS[key]
    module = __import__(module_path, fromlist=[attr])
    monkeypatch.setattr(module, attr, getattr(module, attr) + 1)


@pytest.fixture
def runner(tmp_path):
    return Runner(fast=True, cache_dir=tmp_path / "cells")


# ------------------------------------------------------- declared dependencies
def test_exact_variants_do_not_depend_on_approximate_arithmetic(runner):
    deps = runner.cell_dependencies("accuracy", KIND_PAYLOADS["accuracy"])
    assert "kernels" not in deps and "arith" not in deps
    assert set(deps) == {"datasets", "evaluation", "models", "zoo:lenet_digits"}


def test_approx_variants_pull_in_the_kernel_surfaces(runner):
    payload = dict(KIND_PAYLOADS["accuracy"], variant="da")
    deps = runner.cell_dependencies("accuracy", payload)
    assert "kernels" in deps and "arith" in deps


def test_dq_variants_count_as_exact_arithmetic(runner):
    # independently-trained quantised models evaluate in exact float32;
    # their own training is covered by the dq zoo recipe surface
    payload = dict(
        KIND_PAYLOADS["whitebox"], victim="dq_full", dq_zoo="dq_objects"
    )
    deps = runner.cell_dependencies("whitebox", payload)
    assert "kernels" not in deps and "arith" not in deps
    assert "zoo:dq_objects" in deps


def test_leaf_kinds_have_minimal_dependencies(runner):
    assert runner.cell_dependencies("energy", KIND_PAYLOADS["energy"]) == ("hw",)
    assert runner.cell_dependencies(
        "noise_profile", KIND_PAYLOADS["noise_profile"]
    ) == ("arith",)


def test_unregistered_kinds_fall_back_to_every_surface(runner):
    # the legacy Runner.cell(kind, payload, compute=closure) protocol: as
    # conservative as the old global CELL_CACHE_VERSION
    payload = {"model": "lenet_digits", "x": 1}
    deps = runner.cell_dependencies("some_legacy_kind", payload)
    assert deps == conservative_keys(payload)
    assert set(SURFACE_CONSTANTS) <= set(deps)
    assert "zoo:lenet_digits" in deps


# ------------------------------------------------ surface bumps flip dependents
@pytest.mark.parametrize("kind", sorted(KIND_PAYLOADS))
@pytest.mark.parametrize("surface", sorted(SURFACE_CONSTANTS))
def test_surface_bump_flips_exactly_its_dependents(runner, monkeypatch, kind, surface):
    payload = KIND_PAYLOADS[kind]
    deps = runner.cell_dependencies(kind, payload)
    before = runner.cell_digest(kind, payload)
    bump(monkeypatch, surface)
    after = runner.cell_digest(kind, payload)
    if surface in deps:
        assert after != before, f"{kind} depends on {surface} but did not flip"
    else:
        assert after == before, f"{kind} flipped on unrelated surface {surface}"


def test_zoo_recipe_edit_flips_only_cells_referencing_that_model(
    runner, monkeypatch
):
    from repro.experiments.zoo import zoo_recipe

    t_before = runner.cell_digest("transferability", KIND_PAYLOADS["transferability"])
    e_before = runner.cell_digest("energy", KIND_PAYLOADS["energy"])
    n_before = runner.cell_digest("noise_profile", KIND_PAYLOADS["noise_profile"])
    monkeypatch.setitem(zoo_recipe("lenet_digits"), "probe", "edited")
    assert runner.cell_digest("transferability", KIND_PAYLOADS["transferability"]) != t_before
    assert runner.cell_digest("energy", KIND_PAYLOADS["energy"]) == e_before
    assert runner.cell_digest("noise_profile", KIND_PAYLOADS["noise_profile"]) == n_before


def test_recipe_digests_recurse_through_depends_on(monkeypatch):
    from repro.experiments.zoo import zoo_recipe, zoo_recipe_digest

    sub_before = zoo_recipe_digest("substitute_digits")
    alex_before = zoo_recipe_digest("alexnet_objects")
    # the substitute is trained against lenet_digits' labels: editing the
    # *target's* recipe must retrain the substitute too
    monkeypatch.setitem(zoo_recipe("lenet_digits"), "probe", "edited")
    assert zoo_recipe_digest("substitute_digits") != sub_before
    assert zoo_recipe_digest("alexnet_objects") == alex_before


def test_zoo_cache_filenames_carry_the_recipe_digest(monkeypatch):
    from repro.experiments.zoo import zoo_cache_path, zoo_recipe

    before = zoo_cache_path("lenet_digits", "lenet_digits")
    monkeypatch.setitem(zoo_recipe("lenet_digits"), "probe", "edited")
    after = zoo_cache_path("lenet_digits", "lenet_digits")
    assert before != after  # a recipe edit retrains into a fresh file


# --------------------------------------------------- whole-catalog consistency
def test_kernel_bump_leaves_exact_and_dataset_cells_warm(tmp_path, monkeypatch):
    """The tentpole scenario, over every cell the full catalog plans."""
    from repro.parallel.plan import build_plan
    from repro.pipeline import get_experiment

    def digest_map(runner):
        plan = build_plan(runner, [get_experiment(n) for n in list_experiments()])
        return {
            (task.kind, json.dumps(task.payload, sort_keys=True, default=str)): digest
            for digest, task in plan.tasks.items()
        }

    runner = Runner(fast=True, cache_dir=tmp_path / "cells")
    before = digest_map(runner)
    bump(monkeypatch, "kernels")
    after = digest_map(Runner(fast=True, cache_dir=tmp_path / "cells"))
    assert set(before) == set(after)
    flipped = {key for key in before if before[key] != after[key]}
    for (kind, payload_json), digest in before.items():
        payload = json.loads(payload_json)
        deps = runner.cell_dependencies(kind, payload)
        if "kernels" in deps:
            assert (kind, payload_json) in flipped
        else:
            assert (kind, payload_json) not in flipped
    # the catalog exercises both sides: some cells flipped, some stayed warm
    assert flipped and flipped != set(before)


@pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
def test_digests_are_identical_in_forked_workers(runner):
    """Pool workers must plan the same digests as the parent process."""
    cases = [(kind, KIND_PAYLOADS[kind]) for kind in sorted(KIND_PAYLOADS)]
    parent = [runner.cell_digest(kind, payload) for kind, payload in cases]

    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()

    def child(queue, cases):
        queue.put([runner.cell_digest(kind, payload) for kind, payload in cases])

    proc = ctx.Process(target=child, args=(queue, cases))
    proc.start()
    child_digests = queue.get(timeout=30)
    proc.join(timeout=30)
    assert child_digests == parent


# -------------------------------------------------- staleness: detect + reclaim
def test_meta_sidecar_records_the_digest_inputs(runner):
    payload = KIND_PAYLOADS["energy"]
    digest = runner.cell_digest("energy", payload)
    runner.write_cell("energy", digest, {"value": 1}, payload=payload)
    meta = runner.store.get_meta("energy", digest)
    assert meta["kind"] == "energy" and meta["fast"] is True
    assert meta["deps"] == fingerprint_map(runner.cell_dependencies("energy", payload))
    assert meta["content_key"] == content_key("energy", True, payload)
    assert meta_status(meta) == "fresh"


def test_bumped_surface_shows_up_as_moved_in_the_diff(runner, monkeypatch):
    payload = KIND_PAYLOADS["energy"]
    recorded = fingerprint_map(runner.cell_dependencies("energy", payload))
    bump(monkeypatch, "hw")
    diff = diff_fingerprints(recorded)
    assert diff["hw"]["moved"] and diff["hw"]["live"] == resolve_fingerprint("hw")
    assert meta_status({"deps": recorded}) == "stale"


def test_outlook_and_stale_gc_roundtrip(tmp_path, monkeypatch):
    """Warm -> (bump) -> stale -> recompute/reclaim, on a real computed cell."""
    from repro.parallel.plan import build_plan, cache_outlook
    from repro.pipeline import get_experiment
    from repro.pipeline.fingerprints import collect_stale

    spec = get_experiment("table07_energy_delay")  # cheap: no zoo, no attacks
    runner = Runner(fast=True, cache_dir=tmp_path / "cells", results_dir=tmp_path)

    outlook = cache_outlook(runner, build_plan(runner, [spec]))
    assert outlook["cold"] == len(outlook["cells"]) > 0

    runner.run(spec.name)
    fresh_runner = Runner(fast=True, cache_dir=tmp_path / "cells", results_dir=tmp_path)
    outlook = cache_outlook(fresh_runner, build_plan(fresh_runner, [spec]))
    assert outlook["warm"] == len(outlook["cells"])

    bump(monkeypatch, "hw")
    bumped_runner = Runner(fast=True, cache_dir=tmp_path / "cells", results_dir=tmp_path)
    outlook = cache_outlook(bumped_runner, build_plan(bumped_runner, [spec]))
    assert outlook["stale"] == len(outlook["cells"])
    assert all(cell["superseded"] for cell in outlook["cells"])

    stale = collect_stale(bumped_runner.store)
    assert {namespace for namespace, _ in stale} == {"energy"}
    for namespace, digest in stale:
        assert bumped_runner.store.remove(namespace, digest)
    assert collect_stale(bumped_runner.store) == []
    outlook = cache_outlook(bumped_runner, build_plan(bumped_runner, [spec]))
    assert outlook["cold"] == len(outlook["cells"])


def test_cache_cli_stats_explain_and_stale_gc(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    cache = tmp_path / "cells"
    runner = Runner(fast=True, cache_dir=cache, results_dir=tmp_path)
    runner.run("table07_energy_delay")
    digest = next(d for _, d, _, _ in runner.store._artifacts())

    assert main(["cache", "explain", digest[:10], "--cache-dir", str(cache), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    report = report[0] if isinstance(report, list) else report
    assert report["status"] == "fresh"
    assert not any(entry["moved"] for entry in report["deps"].values())

    bump(monkeypatch, "hw")
    assert main(["cache", "explain", digest[:10], "--cache-dir", str(cache), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    report = report[0] if isinstance(report, list) else report
    assert report["status"] == "stale" and report["deps"]["hw"]["moved"]

    assert main(["cache", "stats", "--cache-dir", str(cache), "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["staleness"]["stale"] == stats["artifacts"] > 0

    assert main(["cache", "gc", "--stale", "--cache-dir", str(cache)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["stale_removed"] == stats["artifacts"]
    assert main(["cache", "stats", "--cache-dir", str(cache), "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["artifacts"] == 0


# ------------------------------------------------------------------- docs lint
def test_docs_lint_passes():
    script = Path(__file__).resolve().parent.parent / "scripts" / "docs_lint.py"
    proc = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stderr
