"""Tests for the approximate (DA) convolution and dense layers."""

import numpy as np
import pytest

from repro.arith.fpm import AxFPM, ExactMultiplier
from repro.nn.approx import ApproxConv2d, ApproxLinear
from repro.nn.layers import Conv2d, Linear
from repro.nn.models import build_lenet5, convert_to_approximate, convert_to_bfloat16
from repro.nn.network import Sequential


def test_approx_conv_with_exact_multiplier_matches_exact_conv():
    rng = np.random.default_rng(0)
    exact = Conv2d(2, 3, 3, rng=np.random.default_rng(1))
    approx = ApproxConv2d.from_exact(exact, multiplier=ExactMultiplier())
    x = rng.uniform(0, 1, size=(2, 2, 6, 6)).astype(np.float32)
    np.testing.assert_allclose(approx.forward(x), exact.forward(x), rtol=1e-5, atol=1e-6)


def test_approx_conv_from_exact_shares_parameters():
    exact = Conv2d(1, 2, 3)
    approx = ApproxConv2d.from_exact(exact)
    assert approx.weight is exact.weight
    assert approx.bias is exact.bias


def test_approx_conv_with_axfpm_differs_from_exact():
    rng = np.random.default_rng(2)
    exact = Conv2d(1, 4, 3, rng=np.random.default_rng(3))
    approx = ApproxConv2d.from_exact(exact, multiplier=AxFPM(frac_bits=8))
    x = rng.uniform(0, 1, size=(2, 1, 8, 8)).astype(np.float32)
    out_exact = exact.forward(x)
    out_approx = approx.forward(x)
    assert out_approx.shape == out_exact.shape
    assert not np.allclose(out_approx, out_exact)


def test_approx_conv_amplifies_strong_responses():
    """Figure 4 behaviour: the approximate convolution inflates the magnitude of
    the accumulated response when input and filter are well aligned."""
    kernel = np.ones((1, 1, 3, 3), dtype=np.float32) * 0.3
    exact = Conv2d(1, 1, 3)
    exact.weight.value = kernel
    exact.bias.value = np.zeros(1, dtype=np.float32)
    approx = ApproxConv2d.from_exact(exact, multiplier=AxFPM(frac_bits=8))
    aligned = np.ones((1, 1, 3, 3), dtype=np.float32) * 0.9
    exact_response = float(exact.forward(aligned)[0, 0, 0, 0])
    approx_response = float(approx.forward(aligned)[0, 0, 0, 0])
    assert approx_response > exact_response


def test_approx_conv_backward_is_bpda_through_exact_path():
    exact = Conv2d(1, 2, 3, rng=np.random.default_rng(4))
    approx = ApproxConv2d.from_exact(exact, multiplier=AxFPM(frac_bits=8))
    x = np.random.default_rng(5).uniform(0, 1, size=(1, 1, 6, 6)).astype(np.float32)
    out_exact = exact.forward(x)
    grad_exact = exact.backward(np.ones_like(out_exact))
    out_approx = approx.forward(x)
    grad_approx = approx.backward(np.ones_like(out_approx))
    np.testing.assert_allclose(grad_approx, grad_exact, rtol=1e-5, atol=1e-6)


def test_approx_conv_chunking_is_equivalent():
    exact = Conv2d(1, 2, 3, rng=np.random.default_rng(6))
    x = np.random.default_rng(7).uniform(0, 1, size=(5, 1, 6, 6)).astype(np.float32)
    big_chunk = ApproxConv2d.from_exact(exact, multiplier=AxFPM(frac_bits=8), batch_chunk=64)
    small_chunk = ApproxConv2d.from_exact(exact, multiplier=AxFPM(frac_bits=8), batch_chunk=2)
    np.testing.assert_allclose(big_chunk.forward(x), small_chunk.forward(x), rtol=1e-6)


def test_approx_linear_with_exact_multiplier_matches_linear():
    exact = Linear(6, 4, rng=np.random.default_rng(8))
    approx = ApproxLinear.from_exact(exact, multiplier=ExactMultiplier())
    x = np.random.default_rng(9).uniform(-1, 1, size=(3, 6)).astype(np.float32)
    np.testing.assert_allclose(approx.forward(x), exact.forward(x), rtol=1e-5, atol=1e-6)


def test_approx_linear_shares_parameters_and_differs_under_axfpm():
    exact = Linear(6, 4, rng=np.random.default_rng(10))
    approx = ApproxLinear.from_exact(exact, multiplier=AxFPM(frac_bits=8))
    assert approx.weight is exact.weight
    x = np.random.default_rng(11).uniform(0.1, 1, size=(2, 6)).astype(np.float32)
    assert not np.allclose(approx.forward(x), exact.forward(x))


def test_convert_to_approximate_replaces_only_conv_layers():
    model = build_lenet5((1, 12, 12), conv_channels=(4, 8), fc_sizes=(24, 16), dropout=0.0)
    converted = convert_to_approximate(model)
    conv_types = [type(l).__name__ for l in converted.layers if "Conv" in type(l).__name__]
    linear_types = [type(l).__name__ for l in converted.layers if type(l).__name__ == "Linear"]
    assert all(t == "ApproxConv2d" for t in conv_types)
    assert len(linear_types) == 3  # dense layers stay exact by default


def test_convert_to_approximate_shares_weights_not_caches():
    model = build_lenet5((1, 12, 12), conv_channels=(4, 8), fc_sizes=(24, 16), dropout=0.0)
    converted = convert_to_approximate(model)
    # parameters shared
    assert converted.layers[0].weight is model.layers[0].weight
    # stateless layers are fresh objects so forward caches never collide
    assert converted.layers[1] is not model.layers[1]


def test_convert_to_approximate_convert_linear_flag():
    model = build_lenet5((1, 12, 12), conv_channels=(4, 8), fc_sizes=(24, 16), dropout=0.0)
    converted = convert_to_approximate(model, convert_linear=True)
    assert any(type(l).__name__ == "ApproxLinear" for l in converted.layers)


def test_convert_to_bfloat16_predictions_close_to_exact():
    model = build_lenet5((1, 12, 12), conv_channels=(4, 8), fc_sizes=(24, 16), dropout=0.0)
    bf16 = convert_to_bfloat16(model)
    x = np.random.default_rng(12).uniform(0, 1, size=(4, 1, 12, 12)).astype(np.float32)
    np.testing.assert_allclose(bf16.predict_logits(x), model.predict_logits(x), rtol=0.1, atol=0.05)


def test_approximate_model_keeps_most_accuracy(tiny_model, tiny_approx_model, digit_split):
    from repro.nn import evaluate_accuracy

    images = digit_split.test.images[:80]
    labels = digit_split.test.labels[:80]
    exact_acc = evaluate_accuracy(tiny_model, images, labels)
    approx_acc = evaluate_accuracy(tiny_approx_model, images, labels)
    assert exact_acc > 0.7
    assert approx_acc > exact_acc - 0.25
