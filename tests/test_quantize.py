"""Tests for the DoReFa quantisation layers (Defensive Quantization baseline)."""

import numpy as np
import pytest

from repro.nn.quantize import (
    QuantConv2d,
    QuantLinear,
    QuantReLU,
    quantize_activations,
    quantize_tensor,
    quantize_weights,
)


def test_quantize_tensor_levels():
    x = np.linspace(0, 1, 11).astype(np.float32)
    q = quantize_tensor(x, bits=2)
    grid = np.array([0.0, 1 / 3, 2 / 3, 1.0])
    distances = np.abs(q[:, np.newaxis] - grid[np.newaxis, :]).min(axis=1)
    assert np.all(distances < 1e-6)


def test_quantize_tensor_high_bits_is_identity():
    x = np.random.default_rng(0).uniform(0, 1, 100).astype(np.float32)
    np.testing.assert_array_equal(quantize_tensor(x, bits=32), x)


def test_quantize_tensor_invalid_bits():
    with pytest.raises(ValueError):
        quantize_tensor(np.zeros(3), bits=0)


def test_quantize_weights_range_and_levels():
    w = np.random.default_rng(1).normal(0, 2, size=1000).astype(np.float32)
    q = quantize_weights(w, bits=4)
    assert q.min() >= -1.0 and q.max() <= 1.0
    assert len(np.unique(q)) <= 2 ** 4


def test_quantize_weights_preserves_sign():
    w = np.array([-1.5, -0.1, 0.1, 1.5], dtype=np.float32)
    q = quantize_weights(w, bits=4)
    assert q[0] < 0 and q[3] > 0


def test_quantize_activations_clips_to_unit_interval():
    x = np.array([-2.0, 0.4, 3.0], dtype=np.float32)
    q = quantize_activations(x, bits=4)
    assert q[0] == 0.0 and q[2] == 1.0
    assert 0.0 <= q[1] <= 1.0


def test_quant_conv_output_matches_conv_with_quantised_weights():
    layer = QuantConv2d(1, 2, 3, bits=4, rng=np.random.default_rng(2))
    x = np.random.default_rng(3).uniform(0, 1, size=(2, 1, 6, 6)).astype(np.float32)
    out = layer.forward(x)
    assert out.shape == (2, 2, 4, 4)
    # the latent full-precision weights are untouched
    assert len(np.unique(layer.weight.value)) > 2 ** 4


def test_quant_conv_latent_weights_restored_after_forward():
    layer = QuantConv2d(1, 1, 3, bits=2)
    before = layer.weight.value.copy()
    layer.forward(np.zeros((1, 1, 5, 5), dtype=np.float32))
    np.testing.assert_array_equal(layer.weight.value, before)


def test_quant_linear_forward_and_backward():
    layer = QuantLinear(4, 3, bits=4, rng=np.random.default_rng(4))
    x = np.random.default_rng(5).uniform(0, 1, size=(2, 4)).astype(np.float32)
    out = layer.forward(x)
    grad = layer.backward(np.ones_like(out))
    assert grad.shape == x.shape


def test_quant_relu_output_is_quantised():
    layer = QuantReLU(bits=2)
    x = np.array([[-0.5, 0.2, 0.8, 1.5]], dtype=np.float32)
    out = layer.forward(x)
    assert out[0, 0] == 0.0
    assert out[0, 3] == 1.0
    grid = np.array([0.0, 1 / 3, 2 / 3, 1.0])
    distances = np.abs(out.reshape(-1, 1) - grid[np.newaxis, :]).min(axis=1)
    assert np.all(distances < 1e-6)


def test_quant_relu_straight_through_gradient():
    layer = QuantReLU(bits=2)
    x = np.array([[-0.5, 0.5, 1.5]], dtype=np.float32)
    layer.forward(x)
    grad = layer.backward(np.ones((1, 3), dtype=np.float32))
    np.testing.assert_array_equal(grad, [[0.0, 1.0, 0.0]])


def test_quant_relu_backward_before_forward_raises():
    with pytest.raises(RuntimeError):
        QuantReLU().backward(np.zeros((1, 1), dtype=np.float32))
